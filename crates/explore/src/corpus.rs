//! The exploration corpus: the eight planted-bug patterns from
//! `tests/check_corpus.rs` rebuilt as closed [`Program`]s, plus one
//! genuinely *schedule-dependent* bug (`order_sensitive_event`) that the
//! canonical delivery order never exposes — only reordering does.
//!
//! Every entry is a factory (`fn() -> Program`) rather than a program:
//! each exploration run gets a fresh closure with fresh captured state
//! (events, atomics), so repeated runs and concurrently exploring tests
//! cannot bleed into each other through statics.

use crate::{ExploreConfig, Program};
use rupcxx_check::FindingKind;
use rupcxx_net::GlobalAddr;
use rupcxx_runtime::{Event, GlobalLock};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One corpus pattern: how to run it and what the checker must report.
pub struct CorpusEntry {
    /// Stable name; also the stem of the committed `.sched` regression
    /// file.
    pub name: &'static str,
    /// SPMD ranks the pattern needs.
    pub ranks: usize,
    /// Aggregation flush count, for the batched-put pattern.
    pub agg_flush_count: Option<usize>,
    /// The finding kind exploration must surface.
    pub expect: FindingKind,
    /// False when the bug manifests on the canonical baseline schedule
    /// already (the PR-4 corpus is deliberately schedule-independent);
    /// true when only a reordered schedule exposes it.
    pub schedule_dependent: bool,
    /// Build a fresh program instance.
    pub make: fn() -> Program,
}

/// The full corpus, schedule-independent PR-4 patterns first.
pub const ENTRIES: &[CorpusEntry] = &[
    CorpusEntry {
        name: "race_put_vs_read",
        ranks: 2,
        agg_flush_count: None,
        expect: FindingKind::DataRace,
        schedule_dependent: false,
        make: race_put_vs_read,
    },
    CorpusEntry {
        name: "race_write_write",
        ranks: 2,
        agg_flush_count: None,
        expect: FindingKind::DataRace,
        schedule_dependent: false,
        make: race_write_write,
    },
    CorpusEntry {
        name: "race_agg_put",
        ranks: 2,
        agg_flush_count: Some(64),
        expect: FindingKind::DataRace,
        schedule_dependent: false,
        make: race_agg_put,
    },
    CorpusEntry {
        name: "lock_across_barrier",
        ranks: 2,
        agg_flush_count: None,
        expect: FindingKind::LockAcrossBarrier,
        schedule_dependent: false,
        make: lock_across_barrier,
    },
    CorpusEntry {
        name: "deadlock_abba",
        ranks: 2,
        agg_flush_count: None,
        expect: FindingKind::LockCycle,
        schedule_dependent: false,
        make: deadlock_abba,
    },
    CorpusEntry {
        name: "deadlock_self_reacquire",
        ranks: 1,
        agg_flush_count: None,
        expect: FindingKind::LockCycle,
        schedule_dependent: false,
        make: deadlock_self_reacquire,
    },
    CorpusEntry {
        name: "event_never_signaled",
        ranks: 1,
        agg_flush_count: None,
        expect: FindingKind::EventNeverSignaled,
        schedule_dependent: false,
        make: event_never_signaled,
    },
    CorpusEntry {
        name: "barrier_mismatch",
        ranks: 2,
        agg_flush_count: None,
        expect: FindingKind::BarrierMismatch,
        schedule_dependent: false,
        make: barrier_mismatch,
    },
    CorpusEntry {
        name: "order_sensitive_event",
        ranks: 3,
        agg_flush_count: None,
        expect: FindingKind::EventNeverSignaled,
        schedule_dependent: true,
        make: order_sensitive_event,
    },
];

/// Look up an entry by name.
pub fn find(name: &str) -> &'static CorpusEntry {
    ENTRIES
        .iter()
        .find(|e| e.name == name)
        .unwrap_or_else(|| panic!("no corpus entry named {name:?}"))
}

/// The exploration config an entry needs (ranks, aggregation).
pub fn config_for(entry: &CorpusEntry) -> ExploreConfig {
    let mut cfg = ExploreConfig::new(entry.ranks);
    cfg.agg_flush_count = entry.agg_flush_count;
    cfg
}

// ---- the PR-4 patterns, as closed programs ------------------------------

/// A remote put racing an unsynchronized read of the same word.
fn race_put_vs_read() -> Program {
    Box::new(|ctx| {
        if ctx.rank() == 0 {
            ctx.fabric().put_u64(0, GlobalAddr::new(1, 256), 42);
            0
        } else {
            ctx.fabric().get_u64(1, GlobalAddr::new(1, 256))
        }
    })
}

/// Two ranks writing the same remote word with no ordering.
fn race_write_write() -> Program {
    Box::new(|ctx| {
        ctx.fabric()
            .put_u64(ctx.rank(), GlobalAddr::new(0, 128), ctx.rank() as u64);
        0
    })
}

/// A batched put applied at the barrier's flush, racing a pre-barrier
/// read at the target.
fn race_agg_put() -> Program {
    Box::new(|ctx| {
        let r = if ctx.rank() == 0 {
            ctx.fabric()
                .put_buffered(0, GlobalAddr::new(1, 512), &7u64.to_le_bytes());
            0
        } else {
            ctx.fabric().get_u64(1, GlobalAddr::new(1, 512))
        };
        ctx.barrier();
        r
    })
}

/// A `GlobalLock` held across `barrier()` (flagged, not aborted).
fn lock_across_barrier() -> Program {
    Box::new(|ctx| {
        let lock = if ctx.rank() == 0 {
            let l = GlobalLock::new(ctx, 0);
            ctx.broadcast(0, [l.addr().rank() as u64, l.addr().offset() as u64]);
            l
        } else {
            let a = ctx.broadcast(0, [0u64, 0u64]);
            GlobalLock::from_addr(GlobalAddr::new(a[0] as usize, a[1] as usize))
        };
        if ctx.rank() == 0 {
            lock.acquire(ctx);
        }
        ctx.barrier();
        if ctx.rank() == 0 {
            lock.release(ctx);
        }
        ctx.barrier();
        if ctx.rank() == 0 {
            lock.destroy(ctx);
        }
        0
    })
}

/// The classic ABBA two-lock cycle across two ranks (aborts).
fn deadlock_abba() -> Program {
    Box::new(|ctx| {
        let (la, lb) = if ctx.rank() == 0 {
            let a = GlobalLock::new(ctx, 0);
            let b = GlobalLock::new(ctx, 1);
            ctx.broadcast(
                0,
                [
                    a.addr().rank() as u64,
                    a.addr().offset() as u64,
                    b.addr().rank() as u64,
                    b.addr().offset() as u64,
                ],
            );
            (a, b)
        } else {
            let v = ctx.broadcast(0, [0u64; 4]);
            (
                GlobalLock::from_addr(GlobalAddr::new(v[0] as usize, v[1] as usize)),
                GlobalLock::from_addr(GlobalAddr::new(v[2] as usize, v[3] as usize)),
            )
        };
        if ctx.rank() == 0 {
            la.acquire(ctx);
        } else {
            lb.acquire(ctx);
        }
        ctx.barrier();
        if ctx.rank() == 0 {
            lb.acquire(ctx); // never returns
        } else {
            la.acquire(ctx); // never returns
        }
        0
    })
}

/// A rank re-acquiring the non-reentrant lock it holds (aborts).
fn deadlock_self_reacquire() -> Program {
    Box::new(|ctx| {
        let lock = GlobalLock::new(ctx, 0);
        lock.acquire(ctx);
        lock.acquire(ctx); // never returns
        0
    })
}

/// Waiting on an event nobody will ever signal (aborts).
fn event_never_signaled() -> Program {
    let ev = Event::new();
    ev.register();
    Box::new(move |ctx| {
        ev.wait(ctx); // no signal is ever sent
        0
    })
}

/// Mismatched barrier arrival: rank 1 returns without arriving (aborts).
fn barrier_mismatch() -> Program {
    Box::new(|ctx| {
        if ctx.rank() == 0 {
            ctx.barrier(); // rank 1 never arrives
        }
        0
    })
}

// ---- the schedule-dependent showcase ------------------------------------

/// The lost-signal race the canonical order can never expose. Ranks 1
/// and 2 both race a task to rank 0; whichever lands first claims
/// `first`, but only rank 1's task signals the event rank 0 waits on.
/// Rank 2's send is delayed past rank 1's, so every run under the
/// canonical (and every merely-stalled) schedule is clean — rank 1 wins,
/// signals, everyone terminates. Only a schedule that delivers rank 2's
/// task first strands rank 0 on the event: the checker's
/// `EventNeverSignaled` pass then aborts the job. Exploration finds the
/// exposing order by swapping the two concurrent same-destination
/// deliveries; ddmin shrinks it to the picks that force the inversion.
fn order_sensitive_event() -> Program {
    let ev = Event::new();
    ev.register();
    let first = Arc::new(AtomicUsize::new(0));
    Box::new(move |ctx| {
        if ctx.rank() == 0 {
            ctx.barrier();
            ev.wait(ctx);
            1
        } else {
            ctx.barrier();
            if ctx.rank() == 2 {
                // Keep the baseline deterministic: rank 1's task is
                // always the first arrival unless a schedule reorders it.
                std::thread::sleep(Duration::from_millis(10));
            }
            let me = ctx.rank();
            let first = first.clone();
            let ev = ev.clone();
            ctx.send_task(0, move || {
                if first.compare_exchange(0, me, Ordering::AcqRel, Ordering::Acquire) == Ok(0)
                    && me == 1
                {
                    ev.signal();
                }
            });
            0
        }
    })
}
