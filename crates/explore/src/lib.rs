//! rupcxx-explore: a schedule-exploration model checker for rupcxx
//! programs.
//!
//! The controlled scheduler (`rupcxx_net::schedule`) makes AM delivery
//! order an explicit, replayable input — and on this fabric delivery
//! order is the *only* source of nondeterminism a closed SPMD program
//! observes (one-sided RMA is synchronous). That reduces "is this program
//! correct under every interleaving?" to a finite search this crate
//! drives:
//!
//! 1. [`run_schedule`] executes one program under one [`Schedule`] with
//!    the race/deadlock checker installed, returning the checker's
//!    [verdict](rupcxx_check::verdict) plus the full delivery record —
//!    which, replayed as explicit picks, reproduces the run bit-for-bit.
//! 2. [`explore`] enumerates schedules from the bug-agnostic canonical
//!    start: a DPOR-style breadth-first search over adjacent swaps of
//!    *dependent* deliveries (same destination, happens-before-concurrent
//!    by the checker's own vector clocks — independent or HB-forced pairs
//!    commute and are pruned), exhaustive up to a reorder bound with a
//!    prefix sleep set deduplicating revisited orders, plus optional
//!    seeded-random schedules beyond the bound.
//! 3. Every found bug is [`minimize`]d with `rupcxx_util::prop`'s ddmin
//!    shrinker to a 1-minimal pick list, serializable via
//!    [`Schedule::to_text`] and replayable as an ordinary `cargo test`
//!    (`RUPCXX_SCHEDULE=path`).
//!
//! Programs are built fresh for every run by a factory closure, so
//! captured state (events, atomics) cannot leak between schedules.

pub mod corpus;

use rupcxx_check::{new_sink, verdict, CheckConfig, Finding, FindingKind};
use rupcxx_net::{
    new_recorder, AggConfig, DeliveryRecord, Rank, SchedCounts, Schedule, ScheduleConfig,
};
use rupcxx_runtime::{spmd, Ctx, RuntimeConfig};
use rupcxx_util::prop::shrink_vec;
use std::collections::{HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// One closed SPMD program instance: runs on every rank, returns a
/// per-rank result fingerprint (compared bit-for-bit by the
/// schedule-independence oracle).
pub type Program = Box<dyn Fn(&Ctx) -> u64 + Send + Sync>;

/// Exploration parameters.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// SPMD ranks per run.
    pub ranks: usize,
    /// Segment bytes per rank.
    pub segment_bytes: usize,
    /// Install per-destination aggregation with this flush count (the
    /// aggregated corpus pattern needs its batches to stay buffered).
    pub agg_flush_count: Option<usize>,
    /// Exhaustive-phase depth: maximum number of adjacent dependent swaps
    /// from the canonical order.
    pub reorder_bound: usize,
    /// Hard cap on executed schedules (exhaustive + random).
    pub max_schedules: usize,
    /// Seeded-random schedules run after the exhaustive phase.
    pub random_schedules: usize,
    /// Seed for the random phase (schedule k uses `random_seed + k`).
    pub random_seed: u64,
    /// Stale-pick tolerance per run; exploration keeps this low because
    /// ddmin probes legitimately contain unsatisfiable picks.
    pub stall_skip: Duration,
}

impl ExploreConfig {
    /// Defaults scaled for corpus-sized programs.
    pub fn new(ranks: usize) -> Self {
        ExploreConfig {
            ranks,
            segment_bytes: 1 << 16,
            agg_flush_count: None,
            reorder_bound: 2,
            max_schedules: 64,
            random_schedules: 0,
            random_seed: 1,
            stall_skip: Duration::from_millis(250),
        }
    }

    /// Set the exhaustive-phase reorder bound.
    pub fn reorder_bound(mut self, bound: usize) -> Self {
        self.reorder_bound = bound;
        self
    }

    /// Cap the number of executed schedules.
    pub fn max_schedules(mut self, cap: usize) -> Self {
        self.max_schedules = cap;
        self
    }

    /// Run `n` seeded-random schedules beyond the exhaustive bound.
    pub fn random_schedules(mut self, n: usize) -> Self {
        self.random_schedules = n;
        self
    }
}

/// The observable outcome of one scheduled run.
#[derive(Debug)]
pub struct RunOutcome {
    /// Distinct finding kinds, sorted — the schedule-independent verdict.
    pub verdict: Vec<FindingKind>,
    /// Every finding, in the order recorded.
    pub findings: Vec<Finding>,
    /// Every delivery the scheduler performed, in order. Replaying
    /// [`RunOutcome::picks`] reproduces this run.
    pub record: Vec<DeliveryRecord>,
    /// Scheduler pump accounting.
    pub counts: SchedCounts,
    /// Per-rank program results; `None` when the job aborted (the
    /// deadlock checker panics the stuck rank).
    pub results: Option<Vec<u64>>,
}

impl RunOutcome {
    /// The delivery record as a replayable pick list.
    pub fn picks(&self) -> Vec<(Rank, Rank)> {
        self.record.iter().map(|d| (d.src, d.dst)).collect()
    }
}

/// Run one program instance under `schedule` with the checker installed.
pub fn run_schedule(
    cfg: &ExploreConfig,
    schedule: Schedule,
    make: &dyn Fn() -> Program,
) -> RunOutcome {
    let sink = new_sink();
    let rec = new_recorder();
    let mut rt = RuntimeConfig::new(cfg.ranks)
        .segment_bytes(cfg.segment_bytes)
        .with_check(CheckConfig::all().with_sink(sink.clone()))
        .with_schedule(
            ScheduleConfig::new(schedule)
                .with_recorder(rec.clone())
                .with_stall_skip(cfg.stall_skip),
        );
    // The schedule replaces the fault plan as the source of delivery
    // nondeterminism, and aggregation comes from the exploration config —
    // ambient RUPCXX_FAULTS/RUPCXX_AGG must not perturb the search space.
    rt.faults = None;
    rt.agg = cfg.agg_flush_count.map(|c| AggConfig::new().flush_count(c));
    let program = make();
    let results = catch_unwind(AssertUnwindSafe(|| spmd(rt, |ctx| program(ctx)))).ok();
    let findings = sink.lock().clone();
    let (record, counts) = {
        let log = rec.lock();
        (log.deliveries.clone(), log.counts)
    };
    RunOutcome {
        verdict: verdict(&findings),
        findings,
        record,
        counts,
        results,
    }
}

/// A bug exposed by exploration. Bugs are deduplicated by verdict: two
/// schedules exposing the same finding kinds are the same bug.
#[derive(Clone, Debug)]
pub struct FoundBug {
    /// The exposing run's verdict (sorted distinct finding kinds).
    pub verdict: Vec<FindingKind>,
    /// The exposing run's findings.
    pub findings: Vec<Finding>,
    /// The exposing run's full delivery record as picks — replaying them
    /// reproduces the run.
    pub picks: Vec<(Rank, Rank)>,
    /// The ddmin-shrunk pick list (every pick necessary for the verdict).
    pub minimized: Vec<(Rank, Rank)>,
}

impl FoundBug {
    /// The minimized schedule, ready for [`Schedule::to_text`].
    pub fn minimized_schedule(&self) -> Schedule {
        Schedule::with_picks(self.minimized.clone())
    }
}

/// What an [`explore`] call did: bugs found plus coverage accounting.
#[derive(Debug, Default)]
pub struct Exploration {
    /// Bugs found, deduplicated by verdict, each with a minimized
    /// schedule.
    pub bugs: Vec<FoundBug>,
    /// Schedules actually executed.
    pub explored: usize,
    /// Candidate swaps dropped because the resulting order was already
    /// covered by an executed run (prefix sleep set).
    pub pruned_sleep: usize,
    /// Adjacent pairs not swapped because they are ordered — same-link
    /// FIFO or happens-before by the piggybacked vector clocks.
    pub pruned_hb: usize,
    /// Adjacent pairs not swapped because they commute (different
    /// destination inboxes — a closed program cannot observe the order).
    pub pruned_independent: usize,
    /// Candidate swaps beyond the reorder bound.
    pub pruned_bound: usize,
    /// True when `max_schedules` cut the search short.
    pub truncated: bool,
}

impl Exploration {
    /// The found bug whose verdict contains `kind`, if any.
    pub fn bug_with(&self, kind: FindingKind) -> Option<&FoundBug> {
        self.bugs.iter().find(|b| b.verdict.contains(&kind))
    }
}

/// Enumerate delivery schedules for the program from the bug-agnostic
/// canonical start; see the crate docs for the search structure. Every
/// returned bug carries a minimized replayable schedule.
pub fn explore(cfg: &ExploreConfig, make: &dyn Fn() -> Program) -> Exploration {
    let mut ex = Exploration::default();
    // The sleep set: every delivery-order prefix an executed run has
    // realized, plus every queued candidate. A candidate swap landing on
    // a member would re-explore a covered order.
    let mut visited: HashSet<Vec<(Rank, Rank)>> = HashSet::new();
    let mut queue: VecDeque<(Vec<(Rank, Rank)>, usize)> = VecDeque::new();
    visited.insert(Vec::new());
    queue.push_back((Vec::new(), 0));
    while let Some((picks, depth)) = queue.pop_front() {
        if ex.explored >= cfg.max_schedules {
            ex.truncated = true;
            break;
        }
        let out = run_schedule(cfg, Schedule::with_picks(picks), make);
        ex.explored += 1;
        let run_picks = out.picks();
        for i in 0..=run_picks.len() {
            visited.insert(run_picks[..i].to_vec());
        }
        if !out.verdict.is_empty() && !ex.bugs.iter().any(|b| b.verdict == out.verdict) {
            ex.bugs.push(FoundBug {
                verdict: out.verdict.clone(),
                findings: out.findings.clone(),
                picks: run_picks.clone(),
                minimized: Vec::new(),
            });
        }
        for i in 0..run_picks.len().saturating_sub(1) {
            let (a, b) = (&out.record[i], &out.record[i + 1]);
            if a.src == b.src && a.dst == b.dst {
                // Same link: per-link FIFO makes the order a program
                // invariant, not a schedule choice.
                ex.pruned_hb += 1;
                continue;
            }
            if a.dst != b.dst {
                // Different inboxes commute: no rank observes the order.
                ex.pruned_independent += 1;
                continue;
            }
            if let (Some(ca), Some(cb)) = (&a.clock, &b.clock) {
                if !ca.concurrent_with(cb) {
                    // The sends are happens-before ordered: any schedule
                    // satisfying the program delivers them this way.
                    ex.pruned_hb += 1;
                    continue;
                }
            }
            if depth + 1 > cfg.reorder_bound {
                ex.pruned_bound += 1;
                continue;
            }
            let mut child: Vec<(Rank, Rank)> = run_picks[..i].to_vec();
            child.push((b.src, b.dst));
            child.push((a.src, a.dst));
            if !visited.insert(child.clone()) {
                ex.pruned_sleep += 1;
                continue;
            }
            queue.push_back((child, depth + 1));
        }
    }
    for k in 0..cfg.random_schedules {
        if ex.explored >= cfg.max_schedules {
            ex.truncated = true;
            break;
        }
        let seed = cfg.random_seed.wrapping_add(k as u64);
        let out = run_schedule(cfg, Schedule::random(seed), make);
        ex.explored += 1;
        let run_picks = out.picks();
        for i in 0..=run_picks.len() {
            visited.insert(run_picks[..i].to_vec());
        }
        if !out.verdict.is_empty() && !ex.bugs.iter().any(|b| b.verdict == out.verdict) {
            ex.bugs.push(FoundBug {
                verdict: out.verdict.clone(),
                findings: out.findings.clone(),
                picks: run_picks.clone(),
                minimized: Vec::new(),
            });
        }
    }
    for bug in &mut ex.bugs {
        bug.minimized = minimize(cfg, make, bug.picks.clone(), &bug.verdict);
    }
    ex
}

/// Shrink an exposing pick list to a 1-minimal one that still produces
/// every finding kind in `target` (ddmin over runs; deterministic).
/// Falls back to the input when the full replay itself no longer exposes
/// the bug (possible when the exposing record was truncated mid-abort).
pub fn minimize(
    cfg: &ExploreConfig,
    make: &dyn Fn() -> Program,
    picks: Vec<(Rank, Rank)>,
    target: &[FindingKind],
) -> Vec<(Rank, Rank)> {
    let exposes = |cand: &[(Rank, Rank)]| {
        let v = run_schedule(cfg, Schedule::with_picks(cand.to_vec()), make).verdict;
        target.iter().all(|k| v.contains(k))
    };
    if !exposes(&picks) {
        return picks;
    }
    if exposes(&[]) {
        // The canonical order already exposes the bug — the program is
        // schedule-independent and the minimal schedule is empty.
        return Vec::new();
    }
    shrink_vec(picks, exposes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// 2 ranks, 3 messages, all on the single link 0->1.
    fn chain_program() -> Program {
        let hits = Arc::new(AtomicUsize::new(0));
        Box::new(move |ctx| {
            if ctx.rank() == 0 {
                for _ in 0..3 {
                    let h = hits.clone();
                    ctx.send_task(1, move || {
                        h.fetch_add(1, Ordering::SeqCst);
                    });
                }
            } else {
                let h = hits.clone();
                ctx.wait_until(|| h.load(Ordering::SeqCst) == 3);
            }
            0
        })
    }

    /// 3 ranks, one concurrent same-destination pair: 1->0 and 2->0.
    fn pair_program() -> Program {
        let hits = Arc::new(AtomicUsize::new(0));
        Box::new(move |ctx| {
            if ctx.rank() == 0 {
                let h = hits.clone();
                ctx.wait_until(|| h.load(Ordering::SeqCst) == 2);
            } else {
                let h = hits.clone();
                ctx.send_task(0, move || {
                    h.fetch_add(1, Ordering::SeqCst);
                });
            }
            0
        })
    }

    /// Coverage accounting, pinned: a 2-rank, 3-message program has no
    /// schedule choices at all — one canonical run, both adjacent pairs
    /// FIFO-forced on the same link.
    #[test]
    fn counts_pinned_single_link_chain() {
        let ex = explore(&ExploreConfig::new(2), &chain_program);
        assert!(ex.bugs.is_empty(), "clean program, found {:?}", ex.bugs);
        assert_eq!(ex.explored, 1);
        assert_eq!(ex.pruned_hb, 2);
        assert_eq!(ex.pruned_sleep, 0);
        assert_eq!(ex.pruned_independent, 0);
        assert_eq!(ex.pruned_bound, 0);
        assert!(!ex.truncated);
    }

    /// Coverage accounting, pinned: one concurrent pair gives exactly two
    /// orders; the second run's only swap re-proposes the first order,
    /// which the prefix sleep set rejects.
    #[test]
    fn counts_pinned_concurrent_pair() {
        let ex = explore(&ExploreConfig::new(3), &pair_program);
        assert!(ex.bugs.is_empty(), "clean program, found {:?}", ex.bugs);
        assert_eq!(ex.explored, 2);
        assert_eq!(ex.pruned_sleep, 1);
        assert_eq!(ex.pruned_hb, 0);
        assert_eq!(ex.pruned_independent, 0);
        assert_eq!(ex.pruned_bound, 0);
        assert!(!ex.truncated);
    }

    /// `max_schedules` truncates the search and says so.
    #[test]
    fn truncation_is_reported() {
        let ex = explore(&ExploreConfig::new(3).max_schedules(1), &pair_program);
        assert_eq!(ex.explored, 1);
        assert!(ex.truncated);
    }

    /// The random phase executes and counts its runs; on a single-link
    /// program every random schedule degenerates to the same FIFO order.
    #[test]
    fn random_phase_counts_runs() {
        let ex = explore(&ExploreConfig::new(2).random_schedules(2), &chain_program);
        assert!(ex.bugs.is_empty());
        assert_eq!(ex.explored, 3);
    }

    /// A run's delivery record replays bit-for-bit: same picks, same
    /// record, same (empty) verdict.
    #[test]
    fn record_replays_itself() {
        let cfg = ExploreConfig::new(2);
        let base = run_schedule(&cfg, Schedule::canonical(), &chain_program);
        assert!(base.verdict.is_empty());
        let replay = run_schedule(&cfg, Schedule::with_picks(base.picks()), &chain_program);
        assert_eq!(base.picks(), replay.picks());
        assert_eq!(replay.counts.scheduled, 3);
        assert_eq!(replay.results, Some(vec![0, 0]));
    }
}
