//! Tag matching: the heart of two-sided semantics.
//!
//! Each rank owns a [`MatchEngine`]: a FIFO list of posted receives and a
//! FIFO queue of unexpected messages. An incoming message matches the
//! earliest posted receive with equal tag and compatible source; a posted
//! receive matches the earliest unexpected message likewise. This ordering
//! is MPI's non-overtaking rule restricted to per-(source, tag) streams,
//! which the FIFO fabric guarantees.

use crate::requests::RecvState;
use std::collections::VecDeque;
use std::sync::Arc;

/// Source wildcard (`MPI_ANY_SOURCE`).
pub(crate) const ANY: usize = usize::MAX;

/// What arrives at the receiver: an eager payload or a rendezvous header.
#[derive(Debug)]
pub(crate) enum Incoming {
    Eager(Vec<u8>),
    /// Ready-to-send: where to pull the staged payload from, and how the
    /// sender wants to be notified (handled by the world layer).
    Rendezvous {
        staged: rupcxx_net::GlobalAddr,
        len: usize,
        token: u64,
    },
}

#[derive(Debug)]
pub(crate) struct Unexpected {
    pub(crate) src: usize,
    pub(crate) tag: u64,
    pub(crate) body: Incoming,
}

#[derive(Debug)]
pub(crate) struct Posted {
    pub(crate) src: usize, // ANY for wildcard
    pub(crate) tag: u64,
    pub(crate) state: Arc<RecvState>,
}

/// Per-rank matching state.
#[derive(Debug, Default)]
pub(crate) struct MatchEngine {
    posted: VecDeque<Posted>,
    unexpected: VecDeque<Unexpected>,
}

impl MatchEngine {
    /// Deliver an incoming message: either hand it to a matching posted
    /// receive (returning the receive's state) or enqueue it unexpected.
    pub(crate) fn deliver(
        &mut self,
        src: usize,
        tag: u64,
        body: Incoming,
    ) -> Option<(Arc<RecvState>, Incoming)> {
        if let Some(pos) = self
            .posted
            .iter()
            .position(|p| p.tag == tag && (p.src == ANY || p.src == src))
        {
            let posted = self.posted.remove(pos).expect("index valid");
            Some((posted.state, body))
        } else {
            self.unexpected.push_back(Unexpected { src, tag, body });
            None
        }
    }

    /// Post a receive: either match an unexpected message (returning it)
    /// or enqueue the receive.
    pub(crate) fn post(
        &mut self,
        src: usize,
        tag: u64,
        state: Arc<RecvState>,
    ) -> Option<(usize, Incoming)> {
        if let Some(pos) = self
            .unexpected
            .iter()
            .position(|u| u.tag == tag && (src == ANY || u.src == src))
        {
            let u = self.unexpected.remove(pos).expect("index valid");
            Some((u.src, u.body))
        } else {
            self.posted.push_back(Posted { src, tag, state });
            None
        }
    }

    /// Counts, for tests and diagnostics: (posted, unexpected).
    #[cfg(test)]
    pub(crate) fn depths(&self) -> (usize, usize) {
        (self.posted.len(), self.unexpected.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eager(v: &[u8]) -> Incoming {
        Incoming::Eager(v.to_vec())
    }

    #[test]
    fn unexpected_then_post_matches() {
        let mut m = MatchEngine::default();
        assert!(m.deliver(1, 7, eager(&[1])).is_none());
        assert_eq!(m.depths(), (0, 1));
        let got = m.post(1, 7, RecvState::new());
        let (src, body) = got.expect("must match");
        assert_eq!(src, 1);
        match body {
            Incoming::Eager(v) => assert_eq!(v, vec![1]),
            other => panic!("wrong body {other:?}"),
        }
        assert_eq!(m.depths(), (0, 0));
    }

    #[test]
    fn post_then_deliver_matches() {
        let mut m = MatchEngine::default();
        let st = RecvState::new();
        assert!(m.post(2, 5, st.clone()).is_none());
        let (state, _) = m.deliver(2, 5, eager(&[9])).expect("match");
        assert!(Arc::ptr_eq(&state, &st));
    }

    #[test]
    fn tag_and_source_must_match() {
        let mut m = MatchEngine::default();
        assert!(m.post(1, 7, RecvState::new()).is_none());
        // Wrong tag goes unexpected.
        assert!(m.deliver(1, 8, eager(&[])).is_none());
        // Wrong source goes unexpected.
        assert!(m.deliver(2, 7, eager(&[])).is_none());
        assert_eq!(m.depths(), (1, 2));
        // Right source+tag matches the posted receive.
        assert!(m.deliver(1, 7, eager(&[])).is_some());
    }

    #[test]
    fn any_source_matches_first_arrival() {
        let mut m = MatchEngine::default();
        assert!(m.deliver(3, 1, eager(&[3])).is_none());
        assert!(m.deliver(2, 1, eager(&[2])).is_none());
        let (src, _) = m.post(ANY, 1, RecvState::new()).expect("match");
        assert_eq!(src, 3, "FIFO: earliest unexpected wins");
    }

    #[test]
    fn fifo_matching_per_source_tag() {
        let mut m = MatchEngine::default();
        m.deliver(1, 1, eager(&[10]));
        m.deliver(1, 1, eager(&[20]));
        let (_, first) = m.post(1, 1, RecvState::new()).unwrap();
        let (_, second) = m.post(1, 1, RecvState::new()).unwrap();
        match (first, second) {
            (Incoming::Eager(a), Incoming::Eager(b)) => {
                assert_eq!(a, vec![10]);
                assert_eq!(b, vec![20]);
            }
            _ => panic!("wrong bodies"),
        }
    }
}
