//! The communicator: two-sided sends/receives over the fabric.

use crate::matching::{Incoming, MatchEngine, ANY};
use crate::requests::{RecvReq, RecvState, SendReq};
use rupcxx_net::{pod, GlobalAddr, Pod, Rank};
use rupcxx_runtime::{Ctx, Shared};
use rupcxx_util::sync::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Receive from any source (`MPI_ANY_SOURCE`).
pub const ANY_SOURCE: Rank = ANY;

/// Default eager/rendezvous switch-over, in bytes (typical MPI default).
pub const DEFAULT_EAGER_LIMIT: usize = 8192;

struct StagedSend {
    staged: GlobalAddr,
    done: Arc<AtomicBool>,
}

/// Job-wide two-sided state: one matching engine per rank. Create before
/// `spmd` and capture in the rank closure.
pub struct MpiWorld {
    engines: Vec<Mutex<MatchEngine>>,
    staged: Vec<Mutex<HashMap<u64, StagedSend>>>,
    tokens: Vec<AtomicU64>,
    eager_limit: usize,
}

impl MpiWorld {
    /// A world for `ranks` ranks with the default eager limit.
    pub fn new(ranks: usize) -> Arc<Self> {
        Self::with_eager_limit(ranks, DEFAULT_EAGER_LIMIT)
    }

    /// A world with a custom eager/rendezvous threshold (0 forces
    /// rendezvous for everything — the ablation knob).
    pub fn with_eager_limit(ranks: usize, eager_limit: usize) -> Arc<Self> {
        Arc::new(MpiWorld {
            engines: (0..ranks)
                .map(|_| Mutex::new(MatchEngine::default()))
                .collect(),
            staged: (0..ranks).map(|_| Mutex::new(HashMap::new())).collect(),
            tokens: (0..ranks).map(|_| AtomicU64::new(0)).collect(),
            eager_limit,
        })
    }

    /// The per-rank communicator handle.
    pub fn comm<'a>(self: &Arc<Self>, ctx: &'a Ctx) -> Comm<'a> {
        assert_eq!(
            self.engines.len(),
            ctx.ranks(),
            "MpiWorld size does not match the SPMD job"
        );
        Comm {
            world: self.clone(),
            ctx,
        }
    }
}

/// A rank's handle to the two-sided layer.
pub struct Comm<'a> {
    world: Arc<MpiWorld>,
    ctx: &'a Ctx,
}

/// Finish an already-matched incoming message on the receiving rank.
fn complete_match(
    world: &Arc<MpiWorld>,
    shared: &Arc<Shared>,
    me: Rank,
    src: Rank,
    state: Arc<RecvState>,
    body: Incoming,
) {
    match body {
        Incoming::Eager(payload) => state.complete(src, payload),
        Incoming::Rendezvous { staged, len, token } => {
            // Pull the staged payload one-sided, then notify the sender so
            // it can release the staging buffer and complete its request.
            let ctx = Ctx::new(me, shared.clone());
            let mut buf = vec![0u8; len];
            ctx.fabric().get(me, staged, &mut buf);
            state.complete(src, buf);
            let world = world.clone();
            let shared2 = shared.clone();
            ctx.send_task(src, move || {
                let entry = world.staged[src]
                    .lock()
                    .remove(&token)
                    .expect("rendezvous token");
                let sender_ctx = Ctx::new(src, shared2.clone());
                sender_ctx.free(entry.staged);
                entry.done.store(true, Ordering::Release);
            });
        }
    }
}

impl<'a> Comm<'a> {
    /// This rank's id.
    pub fn rank(&self) -> Rank {
        self.ctx.rank()
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.ctx.ranks()
    }

    /// The underlying SPMD context.
    pub fn ctx(&self) -> &Ctx {
        self.ctx
    }

    /// Non-blocking send (`MPI_Isend`). Eager messages complete
    /// immediately (buffered); rendezvous messages complete once the
    /// receiver has pulled the data.
    pub fn isend(&self, dst: Rank, tag: u64, data: &[u8]) -> SendReq {
        let me = self.ctx.rank();
        let world = self.world.clone();
        let shared = self.ctx.shared().clone();
        if data.len() <= self.world.eager_limit {
            let payload = data.to_vec();
            self.ctx.send_task(dst, move || {
                let matched = world.engines[dst]
                    .lock()
                    .deliver(me, tag, Incoming::Eager(payload));
                if let Some((state, body)) = matched {
                    complete_match(&world, &shared, dst, me, state, body);
                }
            });
            return SendReq::completed();
        }
        // Rendezvous: stage in my segment, send the header.
        let staged = self
            .ctx
            .alloc_on(me, data.len())
            .expect("segment memory for rendezvous staging");
        self.ctx.fabric().put(me, staged, data);
        let token = self.world.tokens[me].fetch_add(1, Ordering::Relaxed);
        let req = SendReq::pending();
        self.world.staged[me].lock().insert(
            token,
            StagedSend {
                staged,
                done: req.done.clone(),
            },
        );
        let len = data.len();
        self.ctx.send_task(dst, move || {
            let matched = world.engines[dst].lock().deliver(
                me,
                tag,
                Incoming::Rendezvous { staged, len, token },
            );
            if let Some((state, body)) = matched {
                complete_match(&world, &shared, dst, me, state, body);
            }
        });
        req
    }

    /// Non-blocking receive (`MPI_Irecv`). `src` may be [`ANY_SOURCE`].
    /// The payload length is carried by the message (no buffer pre-sizing).
    pub fn irecv(&self, src: Rank, tag: u64) -> RecvReq {
        let me = self.ctx.rank();
        let state = RecvState::new();
        let req = RecvReq {
            state: state.clone(),
        };
        let matched = self.world.engines[me].lock().post(src, tag, state.clone());
        if let Some((actual_src, body)) = matched {
            complete_match(&self.world, self.ctx.shared(), me, actual_src, state, body);
        }
        req
    }

    /// Wait for a send to complete (buffer reusable).
    pub fn wait_send(&self, req: &SendReq) {
        self.ctx.wait_until(|| req.is_complete());
    }

    /// Wait for a receive; returns `(source, payload)`.
    pub fn wait_recv(&self, req: &RecvReq) -> (Rank, Vec<u8>) {
        self.ctx.wait_until(|| req.is_complete());
        req.take()
    }

    /// Wait for all given sends.
    pub fn waitall_sends(&self, reqs: &[SendReq]) {
        self.ctx.wait_until(|| reqs.iter().all(|r| r.is_complete()));
    }

    /// Wait for all given receives; payloads in request order.
    pub fn waitall_recvs(&self, reqs: &[RecvReq]) -> Vec<(Rank, Vec<u8>)> {
        self.ctx.wait_until(|| reqs.iter().all(|r| r.is_complete()));
        reqs.iter().map(|r| r.take()).collect()
    }

    /// Blocking send.
    pub fn send(&self, dst: Rank, tag: u64, data: &[u8]) {
        let req = self.isend(dst, tag, data);
        self.wait_send(&req);
    }

    /// Blocking receive.
    pub fn recv(&self, src: Rank, tag: u64) -> (Rank, Vec<u8>) {
        let req = self.irecv(src, tag);
        self.wait_recv(&req)
    }

    /// Typed non-blocking send of a Pod slice.
    pub fn isend_slice<T: Pod>(&self, dst: Rank, tag: u64, data: &[T]) -> SendReq {
        self.isend(dst, tag, &pod::pack_slice(data))
    }

    /// Typed blocking receive of a Pod slice.
    pub fn recv_slice<T: Pod>(&self, src: Rank, tag: u64) -> (Rank, Vec<T>) {
        let (s, bytes) = self.recv(src, tag);
        (s, pod::unpack_slice(&bytes))
    }

    /// Barrier (delegates to the runtime's dissemination barrier, as MPI
    /// and PGAS barriers share implementations in practice — paper §III-F).
    pub fn barrier(&self) {
        self.ctx.barrier();
    }

    /// Allreduce (delegates to the runtime's binomial trees).
    pub fn allreduce<T: Pod>(&self, value: T, op: impl Fn(T, T) -> T) -> T {
        self.ctx.allreduce(value, op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupcxx_runtime::{spmd, RuntimeConfig};

    fn cfg(n: usize) -> RuntimeConfig {
        RuntimeConfig::new(n).segment_bytes(1 << 20)
    }

    #[test]
    fn eager_send_recv_roundtrip() {
        let world = MpiWorld::new(2);
        spmd(cfg(2), move |ctx| {
            let comm = world.comm(ctx);
            if ctx.rank() == 0 {
                comm.send(1, 42, &[1, 2, 3]);
            } else {
                let (src, data) = comm.recv(0, 42);
                assert_eq!(src, 0);
                assert_eq!(data, vec![1, 2, 3]);
            }
        });
    }

    #[test]
    fn rendezvous_send_recv_roundtrip() {
        let world = MpiWorld::with_eager_limit(2, 16);
        spmd(cfg(2), move |ctx| {
            let comm = world.comm(ctx);
            let big: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
            if ctx.rank() == 0 {
                let req = comm.isend(1, 7, &big);
                comm.wait_send(&req);
                // Staging buffer must have been released.
                assert_eq!(ctx.segment_in_use(0), 0);
            } else {
                let (_, data) = comm.recv(0, 7);
                assert_eq!(data, big);
            }
        });
    }

    #[test]
    fn irecv_before_send_and_after() {
        let world = MpiWorld::new(2);
        spmd(cfg(2), move |ctx| {
            let comm = world.comm(ctx);
            if ctx.rank() == 1 {
                // Posted-first path.
                let pre = comm.irecv(0, 1);
                ctx.barrier();
                let (_, a) = comm.wait_recv(&pre);
                assert_eq!(a, vec![11]);
                // Unexpected-first path.
                ctx.barrier();
                std::thread::sleep(std::time::Duration::from_millis(10));
                let (_, b) = comm.recv(0, 2);
                assert_eq!(b, vec![22]);
            } else {
                ctx.barrier();
                comm.send(1, 1, &[11]);
                comm.send(1, 2, &[22]);
                ctx.barrier();
            }
        });
    }

    #[test]
    fn any_source_receives() {
        let world = MpiWorld::new(3);
        spmd(cfg(3), move |ctx| {
            let comm = world.comm(ctx);
            if ctx.rank() == 0 {
                let mut got = vec![];
                for _ in 0..2 {
                    let (src, data) = comm.recv(ANY_SOURCE, 5);
                    assert_eq!(data, vec![src as u8]);
                    got.push(src);
                }
                got.sort_unstable();
                assert_eq!(got, vec![1, 2]);
            } else {
                comm.send(0, 5, &[ctx.rank() as u8]);
            }
        });
    }

    #[test]
    fn message_order_preserved_per_pair() {
        let world = MpiWorld::new(2);
        spmd(cfg(2), move |ctx| {
            let comm = world.comm(ctx);
            if ctx.rank() == 0 {
                for i in 0..20u8 {
                    comm.send(1, 9, &[i]);
                }
            } else {
                for i in 0..20u8 {
                    let (_, d) = comm.recv(0, 9);
                    assert_eq!(d, vec![i], "non-overtaking order");
                }
            }
        });
    }

    #[test]
    fn typed_slices() {
        let world = MpiWorld::new(2);
        spmd(cfg(2), move |ctx| {
            let comm = world.comm(ctx);
            if ctx.rank() == 0 {
                let data: Vec<f64> = (0..100).map(|i| i as f64 * 0.5).collect();
                let r = comm.isend_slice(1, 3, &data);
                comm.wait_send(&r);
            } else {
                let (_, data) = comm.recv_slice::<f64>(0, 3);
                assert_eq!(data.len(), 100);
                assert_eq!(data[99], 49.5);
            }
        });
    }

    #[test]
    fn nonblocking_exchange_pattern() {
        // The LULESH pattern: post all irecvs, all isends, waitall.
        let world = MpiWorld::new(4);
        spmd(cfg(4), move |ctx| {
            let comm = world.comm(ctx);
            let me = ctx.rank();
            let n = ctx.ranks();
            let recvs: Vec<RecvReq> = (0..n)
                .filter(|&r| r != me)
                .map(|r| comm.irecv(r, 1))
                .collect();
            let payload = vec![me as u8; 32];
            let sends: Vec<SendReq> = (0..n)
                .filter(|&r| r != me)
                .map(|r| comm.isend(r, 1, &payload))
                .collect();
            comm.waitall_sends(&sends);
            let got = comm.waitall_recvs(&recvs);
            assert_eq!(got.len(), n - 1);
            for (src, data) in got {
                assert_eq!(data, vec![src as u8; 32]);
            }
        });
    }
}
