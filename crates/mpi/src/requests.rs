//! Request handles for non-blocking operations (`MPI_Request` analogues).

use rupcxx_util::sync::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Completion state of a receive: buffer + done flag + matched source.
#[derive(Debug)]
pub(crate) struct RecvState {
    pub(crate) data: Mutex<Option<Vec<u8>>>,
    pub(crate) source: Mutex<Option<usize>>,
    pub(crate) done: AtomicBool,
}

impl RecvState {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(RecvState {
            data: Mutex::new(None),
            source: Mutex::new(None),
            done: AtomicBool::new(false),
        })
    }

    pub(crate) fn complete(&self, src: usize, payload: Vec<u8>) {
        *self.data.lock() = Some(payload);
        *self.source.lock() = Some(src);
        self.done.store(true, Ordering::Release);
    }
}

/// Handle for a non-blocking receive (`MPI_Irecv`).
#[derive(Clone, Debug)]
pub struct RecvReq {
    pub(crate) state: Arc<RecvState>,
}

impl RecvReq {
    /// True when the message has arrived.
    pub fn is_complete(&self) -> bool {
        self.state.done.load(Ordering::Acquire)
    }

    pub(crate) fn take(&self) -> (usize, Vec<u8>) {
        let src = self.state.source.lock().expect("recv not complete");
        let data = self
            .state
            .data
            .lock()
            .take()
            .expect("recv payload already taken");
        (src, data)
    }
}

/// Handle for a non-blocking send (`MPI_Isend`).
#[derive(Clone, Debug)]
pub struct SendReq {
    pub(crate) done: Arc<AtomicBool>,
}

impl SendReq {
    pub(crate) fn completed() -> Self {
        SendReq {
            done: Arc::new(AtomicBool::new(true)),
        }
    }

    pub(crate) fn pending() -> Self {
        SendReq {
            done: Arc::new(AtomicBool::new(false)),
        }
    }

    /// True when the send buffer may be reused (eager: immediately;
    /// rendezvous: after the receiver has pulled the data).
    pub fn is_complete(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recv_state_lifecycle() {
        let s = RecvState::new();
        let req = RecvReq { state: s.clone() };
        assert!(!req.is_complete());
        s.complete(3, vec![1, 2]);
        assert!(req.is_complete());
        let (src, data) = req.take();
        assert_eq!(src, 3);
        assert_eq!(data, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "already taken")]
    fn double_take_panics() {
        let s = RecvState::new();
        s.complete(0, vec![]);
        let req = RecvReq { state: s };
        let _ = req.take();
        let _ = req.take();
    }

    #[test]
    fn send_req_flags() {
        assert!(SendReq::completed().is_complete());
        let p = SendReq::pending();
        assert!(!p.is_complete());
        p.done.store(true, Ordering::Release);
        assert!(p.is_complete());
    }
}
