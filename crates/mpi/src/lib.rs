//! `rupcxx-mpi` — a two-sided, matched message-passing layer over the
//! `rupcxx` fabric: the **MPI baseline** of the paper's LULESH study (§V-E).
//!
//! The paper compares UPC++'s one-sided `async_copy` against MPI's
//! two-sided `MPI_Isend`/`MPI_Irecv`. To reproduce that comparison without
//! an MPI installation, this crate implements the essential two-sided
//! machinery from scratch, over the same fabric the PGAS layer uses:
//!
//! * **tag matching**: posted-receive list + unexpected-message queue per
//!   rank, matched FIFO by `(source, tag)` with `ANY_SOURCE` support;
//! * **eager protocol** for small messages: the payload travels inside the
//!   active message and is *copied* into the receive buffer on match (the
//!   extra copy + matching work is exactly the software overhead one-sided
//!   communication avoids);
//! * **rendezvous protocol** for large messages: the sender stages the
//!   payload in its segment and sends a ready-to-send header; the matched
//!   receiver pulls the payload with a one-sided get and notifies the
//!   sender — mirroring real MPI RDMA rendezvous.
//!
//! A [`MpiWorld`] is created before `spmd` and captured by the rank
//! closure; `world.comm(ctx)` yields the per-rank communicator handle.

pub mod matching;
pub mod requests;
pub mod world;

pub use requests::{RecvReq, SendReq};
pub use world::{Comm, MpiWorld, ANY_SOURCE, DEFAULT_EAGER_LIMIT};
