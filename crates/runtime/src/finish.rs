//! The `finish` construct (paper §III-G): a scope that blocks at its end
//! until every async spawned *in its dynamic extent* has completed.
//!
//! The paper implements `finish` with a macro expanding to a RAII object
//! whose destructor waits. In Rust the idiom is a closure-scoped guard:
//!
//! ```ignore
//! ctx.finish(|fs| {
//!     fs.spawn(p1, |_| task1());
//!     fs.spawn(p2, |_| task2());
//! }); // blocks here until task1 and task2 completed
//! ```
//!
//! As in UPC++ (and unlike X10), only asyncs spawned in the scope itself
//! are awaited — not those transitively spawned by the tasks, because
//! distributed termination detection is expensive (paper §III-G).

use crate::ctx::Ctx;
use crate::event::{FutureSetter, RtFuture};
use rupcxx_net::Rank;
use rupcxx_trace::{EventKind, WaitConstruct};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Tracks asyncs spawned within one `finish` scope.
#[must_use = "a FinishScope that is dropped unused awaits nothing"]
pub struct FinishScope<'a> {
    ctx: &'a Ctx,
    outstanding: Arc<AtomicUsize>,
}

impl<'a> FinishScope<'a> {
    fn new(ctx: &'a Ctx) -> Self {
        FinishScope {
            ctx,
            outstanding: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Spawn `task` on rank `place`; the scope will not close until the
    /// task has run and its completion reply has been processed here.
    pub fn spawn(&self, place: Rank, task: impl FnOnce(&Ctx) + Send + 'static) {
        self.outstanding.fetch_add(1, Ordering::AcqRel);
        let shared = self.ctx.shared().clone();
        let origin = self.ctx.rank();
        let counter = self.outstanding.clone();
        self.ctx.send_task(place, move || {
            let target_ctx = Ctx::new(place, shared.clone());
            task(&target_ctx);
            // Completion reply: decrement on the origin's progress engine,
            // mirroring the paper's reply active message.
            target_ctx.send_task(origin, move || {
                counter.fetch_sub(1, Ordering::AcqRel);
            });
        });
    }

    /// Spawn a value-returning task; the returned future resolves when the
    /// reply arrives (and the scope also waits for it).
    pub fn spawn_with_result<T: Send + 'static>(
        &self,
        place: Rank,
        task: impl FnOnce(&Ctx) -> T + Send + 'static,
    ) -> RtFuture<T> {
        let (future, setter) = RtFuture::pending();
        self.spawn_with_setter(place, setter, task);
        future
    }

    fn spawn_with_setter<T: Send + 'static>(
        &self,
        place: Rank,
        setter: FutureSetter<T>,
        task: impl FnOnce(&Ctx) -> T + Send + 'static,
    ) {
        self.outstanding.fetch_add(1, Ordering::AcqRel);
        let shared = self.ctx.shared().clone();
        let origin = self.ctx.rank();
        let counter = self.outstanding.clone();
        self.ctx.send_task(place, move || {
            let target_ctx = Ctx::new(place, shared.clone());
            let value = task(&target_ctx);
            target_ctx.send_task(origin, move || {
                setter.set(value);
                counter.fetch_sub(1, Ordering::AcqRel);
            });
        });
    }

    /// Number of asyncs not yet completed.
    pub fn outstanding(&self) -> usize {
        self.outstanding.load(Ordering::Acquire)
    }

    fn wait(&self) {
        let t0 = self.ctx.trace().start();
        if let Some(ck) = self.ctx.shared().fabric.checker() {
            ck.finish_wait_begin(self.ctx.rank());
        }
        self.ctx.wait_profiled(WaitConstruct::FinishWait, || {
            self.outstanding.load(Ordering::Acquire) == 0
        });
        if let Some(ck) = self.ctx.shared().fabric.checker() {
            ck.finish_wait_end(self.ctx.rank());
        }
        self.ctx.trace().span(EventKind::FinishWait, -1, 0, t0);
    }
}

impl Ctx {
    /// Run `body` inside a `finish` scope: returns only after every async
    /// spawned through the provided [`FinishScope`] has completed.
    pub fn finish<R>(&self, body: impl FnOnce(&FinishScope) -> R) -> R {
        let fs = FinishScope::new(self);
        let out = body(&fs);
        fs.wait();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared::{HandlerRegistry, Shared};
    use crate::spmd::spmd;
    use crate::RuntimeConfig;

    #[test]
    fn finish_waits_for_local_spawn() {
        let sh = Shared::new(1, 4096, HandlerRegistry::new());
        let ctx = Ctx::new(0, sh);
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        ctx.finish(|fs| {
            fs.spawn(0, move |_| {
                h.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn finish_waits_for_remote_spawns() {
        let results = spmd(RuntimeConfig::new(4).segment_bytes(4096), |ctx| {
            let hits = Arc::new(AtomicUsize::new(0));
            if ctx.rank() == 0 {
                ctx.finish(|fs| {
                    for r in 0..ctx.ranks() {
                        let h = hits.clone();
                        fs.spawn(r, move |tctx| {
                            assert_eq!(tctx.rank(), r);
                            h.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                    // Outstanding count is visible while tasks are pending.
                    let _ = fs.outstanding();
                });
                hits.load(Ordering::SeqCst)
            } else {
                // Other ranks serve progress via the post-closure drain.
                0
            }
        });
        assert_eq!(results[0], 4);
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn finish_over_dead_link_reports_failure() {
        // The spawn AM can never reach rank 1 (every attempt on the 0->1
        // link is dropped), so the enclosing finish must panic with the
        // `PeerUnreachable` report once retransmission gives up, rather
        // than wait forever for a completion signal.
        use rupcxx_net::{FaultPlan, LinkRule};
        let dead = LinkRule {
            drop_ppm: 1_000_000,
            ..Default::default()
        };
        let plan = FaultPlan::new(31).link(0, 1, dead).max_attempts(4);
        spmd(
            RuntimeConfig::new(2).segment_bytes(4096).with_faults(plan),
            |ctx| {
                if ctx.rank() == 0 {
                    ctx.finish(|fs| {
                        fs.spawn(1, |_| {});
                    });
                }
            },
        );
    }

    #[test]
    fn spawn_with_result_resolves_future() {
        let results = spmd(RuntimeConfig::new(2).segment_bytes(4096), |ctx| {
            if ctx.rank() == 0 {
                ctx.finish(|fs| {
                    let f = fs.spawn_with_result(1, |tctx| tctx.rank() * 10);
                    f.get(ctx)
                })
            } else {
                0
            }
        });
        assert_eq!(results[0], 10);
    }
}
