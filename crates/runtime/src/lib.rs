//! `rupcxx-runtime` — the SPMD runtime under the `rupcxx` PGAS API.
//!
//! This crate is the analogue of the "UPC++ Runtime" box in the paper's
//! implementation stack (Fig. 2). It provides:
//!
//! * an **SPMD launcher** ([`spmd`]): runs the same closure on N ranks
//!   (OS threads here; the paper maps ranks to OS processes — threads give
//!   identical SPMD semantics in one process and enable genuinely one-sided
//!   RMA, see `rupcxx-net`);
//! * a **progress engine** ([`Ctx::advance`]): drains the rank's active-
//!   message inbox and executes incoming tasks, exactly the paper's
//!   `advance()` (§IV);
//! * **events**, **futures** and the RAII **finish** construct for
//!   asynchronous task graphs (§III-G);
//! * an AM-based **dissemination barrier**, memory **fence**, and tree
//!   **collectives** (broadcast, reduce, allreduce, gather(v), exchange);
//! * **global locks** built on remote compare-and-swap;
//! * a per-rank **segment allocator** backing `rupcxx::allocate` — including
//!   allocation on *remote* ranks, the feature the paper highlights as
//!   unavailable in UPC and MPI (§III-C).

pub mod alloc;
pub mod barrier;
pub mod collectives;
pub mod config;
pub mod ctx;
pub mod event;
pub mod finish;
pub mod lock;
pub mod proc;
pub mod shared;
pub mod spmd;
pub mod team;

pub use config::RuntimeConfig;
pub use ctx::Ctx;
pub use event::{Event, RtFuture};
pub use finish::FinishScope;
pub use lock::GlobalLock;
pub use proc::{spmd_procs, ProcOutcome};
pub use shared::{HandlerFn, HandlerId, HandlerRegistry, Shared};
pub use spmd::{spmd, spmd_with_handlers};
pub use team::Team;

pub use rupcxx_net::{ConduitSel, Rank, SimNet};
