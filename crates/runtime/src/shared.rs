//! Process-wide state shared by all rank threads of one SPMD job.

use crate::alloc::SegAllocator;
use rupcxx_net::{
    AggConfig, CacheConfig, CheckConfig, Fabric, FabricConfig, FaultPlan, Rank, RemoteConfig,
    ScheduleConfig, SimNet,
};
use rupcxx_trace::{ProfConfig, TraceConfig};
use rupcxx_util::sync::Mutex;
use rupcxx_util::Bytes;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Id of a registered active-message handler.
pub type HandlerId = u16;

/// A registered active-message handler. Receives the executing rank's
/// context, the sending rank, and the packed argument bytes.
pub type HandlerFn = Arc<dyn Fn(&crate::Ctx, Rank, Bytes) + Send + Sync>;

/// A pending-reply continuation: consumes the packed return bytes of a
/// registered-handler RPC, resolving the caller's future.
pub type ReplyCont = Box<dyn FnOnce(Bytes) + Send>;

/// Table of AM handlers, identical on every rank (the paper assumes
/// "function entry points on all processes are either all identical or have
/// an offset collected at load time"; a shared table is the same idea).
#[derive(Clone, Default)]
pub struct HandlerRegistry {
    handlers: Vec<HandlerFn>,
}

impl HandlerRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a handler; returns its id. Must be called before launch
    /// (the registry is frozen into the job's shared state).
    pub fn register(
        &mut self,
        f: impl Fn(&crate::Ctx, Rank, Bytes) + Send + Sync + 'static,
    ) -> HandlerId {
        let id = self.handlers.len();
        assert!(id <= u16::MAX as usize, "too many AM handlers");
        self.handlers.push(Arc::new(f));
        id as HandlerId
    }

    /// Look up a handler.
    pub fn get(&self, id: HandlerId) -> &HandlerFn {
        &self.handlers[id as usize]
    }

    /// Number of registered handlers.
    pub fn len(&self) -> usize {
        self.handlers.len()
    }

    /// True when no handlers are registered.
    pub fn is_empty(&self) -> bool {
        self.handlers.is_empty()
    }
}

impl std::fmt::Debug for HandlerRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HandlerRegistry")
            .field("handlers", &self.handlers.len())
            .finish()
    }
}

/// Per-rank mailbox used by barrier and collectives: contributions keyed
/// by `(domain, sequence)` — the domain isolates independent key spaces
/// (0 = the world team; each sub-team gets its own) — deposited by AM
/// tasks and collected by the owner.
/// Contributions per `(domain, key)`: the sending rank and its payload.
type Slots = HashMap<(u64, u64), Vec<(Rank, Vec<u8>)>>;

#[derive(Debug, Default)]
pub(crate) struct Mailbox {
    pub(crate) slots: Mutex<Slots>,
}

impl Mailbox {
    pub(crate) fn deposit(&self, domain: u64, key: u64, src: Rank, bytes: Vec<u8>) {
        self.slots
            .lock()
            .entry((domain, key))
            .or_default()
            .push((src, bytes));
    }

    pub(crate) fn arrived(&self, domain: u64, key: u64) -> usize {
        self.slots.lock().get(&(domain, key)).map_or(0, |v| v.len())
    }

    pub(crate) fn take(&self, domain: u64, key: u64) -> Vec<(Rank, Vec<u8>)> {
        self.slots.lock().remove(&(domain, key)).unwrap_or_default()
    }
}

/// Handler ids of the runtime's own wire-encodable AMs, registered (after
/// every user handler, so user ids are unchanged) only when the job runs
/// as OS processes over a transport conduit. In-process jobs ship the
/// same operations as boxed-closure `Task` AMs, which cannot cross a
/// process boundary; these builtins are their registered-handler twins.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Builtins {
    /// Mailbox deposit (barrier / collectives): args = domain u64 LE +
    /// key u64 LE + payload bytes.
    pub(crate) deposit: HandlerId,
    /// Closure-completion announcement (empty args): the sender's SPMD
    /// closure returned, so bump the local completion count.
    pub(crate) complete: HandlerId,
}

/// State shared by every rank of the job.
pub struct Shared {
    /// The communication fabric.
    pub fabric: Arc<Fabric>,
    /// Per-rank segment allocators (locked: remote allocation is allowed,
    /// standing in for the paper's AM-mediated remote `allocate`).
    pub(crate) allocators: Vec<Mutex<SegAllocator>>,
    /// Per-rank collective mailboxes.
    pub(crate) mailboxes: Vec<Mailbox>,
    /// Per-rank collective sequence counters (SPMD programs call collectives
    /// in the same order on every rank, so equal counts match up).
    pub(crate) coll_seq: Vec<AtomicU64>,
    /// Frozen AM handler table.
    pub handlers: HandlerRegistry,
    /// Per-rank pending reply continuations for registered-handler RPC:
    /// a reply message carries a token; the continuation stored under it
    /// consumes the packed return bytes (resolving a future).
    pub pending_replies: Vec<Mutex<HashMap<u64, ReplyCont>>>,
    /// Per-rank token counters for [`Shared::pending_replies`].
    pub reply_tokens: Vec<AtomicU64>,
    /// Ranks that have finished the user's SPMD closure.
    pub(crate) completed: AtomicUsize,
    /// Wire-encodable runtime AM ids; present only in multi-process jobs.
    pub(crate) builtins: Option<Builtins>,
}

impl Shared {
    /// Build shared state for `ranks` ranks with `segment_bytes` segments.
    pub fn new(ranks: usize, segment_bytes: usize, handlers: HandlerRegistry) -> Arc<Self> {
        Self::new_with(ranks, segment_bytes, None, handlers)
    }

    /// Like [`Shared::new`], with an optional synthetic wire. Tracing is
    /// taken from the `RUPCXX_TRACE` environment (see `rupcxx-trace`).
    pub fn new_with(
        ranks: usize,
        segment_bytes: usize,
        simnet: Option<SimNet>,
        handlers: HandlerRegistry,
    ) -> Arc<Self> {
        Self::new_traced(
            ranks,
            segment_bytes,
            simnet,
            handlers,
            TraceConfig::from_env(),
        )
    }

    /// Like [`Shared::new_with`], with an explicit trace configuration
    /// (the SPMD launcher passes `RuntimeConfig::trace` through here).
    pub fn new_traced(
        ranks: usize,
        segment_bytes: usize,
        simnet: Option<SimNet>,
        handlers: HandlerRegistry,
        trace: TraceConfig,
    ) -> Arc<Self> {
        Self::new_full(
            ranks,
            segment_bytes,
            simnet,
            handlers,
            trace,
            None,
            None,
            None,
            None,
            None,
            None,
            None,
        )
    }

    /// The full constructor: [`Shared::new_traced`] plus an optional
    /// deterministic fault-injection plan (see `rupcxx-net`'s `faults`
    /// module), optional per-destination aggregation thresholds (its
    /// `aggregate` module), an optional race/deadlock checker config
    /// (`rupcxx-check`), an optional software read-cache config (its
    /// `cache` module), an optional causal-profiler config
    /// (`rupcxx-trace`'s `span` module) and an optional controlled
    /// delivery schedule (its `schedule` module); the SPMD launcher
    /// passes `RuntimeConfig::{faults, agg, check, cache, prof,
    /// schedule}` through. When `remote` is set this process is ONE rank
    /// of a multi-process job wired up by a transport conduit; the
    /// runtime's wire-encodable builtin handlers are appended to the
    /// registry (after all user handlers, so user ids are stable).
    #[allow(clippy::too_many_arguments)]
    pub fn new_full(
        ranks: usize,
        segment_bytes: usize,
        simnet: Option<SimNet>,
        mut handlers: HandlerRegistry,
        trace: TraceConfig,
        faults: Option<FaultPlan>,
        agg: Option<AggConfig>,
        check: Option<CheckConfig>,
        cache: Option<CacheConfig>,
        prof: Option<ProfConfig>,
        schedule: Option<ScheduleConfig>,
        remote: Option<RemoteConfig>,
    ) -> Arc<Self> {
        let builtins = remote.is_some().then(|| {
            let deposit = handlers.register(|ctx, src, args| {
                assert!(args.len() >= 16, "builtin deposit: short args");
                let domain = u64::from_le_bytes(args[..8].try_into().unwrap());
                let key = u64::from_le_bytes(args[8..16].try_into().unwrap());
                ctx.shared().mailboxes[ctx.rank()].deposit(domain, key, src, args[16..].to_vec());
            });
            let complete = handlers.register(|ctx, _src, _args| {
                ctx.shared().completed.fetch_add(1, Ordering::AcqRel);
            });
            Builtins { deposit, complete }
        });
        let fabric = Fabric::new(FabricConfig {
            ranks,
            segment_bytes,
            simnet,
            trace,
            faults,
            agg,
            check,
            cache,
            prof,
            schedule,
            remote,
        });
        Arc::new(Shared {
            fabric,
            allocators: (0..ranks)
                .map(|_| Mutex::new(SegAllocator::new(segment_bytes)))
                .collect(),
            mailboxes: (0..ranks).map(|_| Mailbox::default()).collect(),
            coll_seq: (0..ranks).map(|_| AtomicU64::new(0)).collect(),
            handlers,
            pending_replies: (0..ranks).map(|_| Mutex::new(HashMap::new())).collect(),
            reply_tokens: (0..ranks).map(|_| AtomicU64::new(0)).collect(),
            completed: AtomicUsize::new(0),
            builtins,
        })
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.fabric.ranks()
    }

    /// Next collective sequence number for `rank`.
    pub(crate) fn next_coll_seq(&self, rank: Rank) -> u64 {
        self.coll_seq[rank].fetch_add(1, Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("ranks", &self.ranks())
            .field("handlers", &self.handlers.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mailbox_deposit_and_take() {
        let mb = Mailbox::default();
        assert_eq!(mb.arrived(0, 7), 0);
        mb.deposit(0, 7, 1, vec![1, 2]);
        mb.deposit(0, 7, 2, vec![3]);
        // Same key in another domain is independent.
        mb.deposit(9, 7, 1, vec![4]);
        assert_eq!(mb.arrived(0, 7), 2);
        assert_eq!(mb.arrived(9, 7), 1);
        let got = mb.take(0, 7);
        assert_eq!(got.len(), 2);
        assert_eq!(mb.arrived(0, 7), 0);
        assert_eq!(mb.arrived(9, 7), 1);
    }

    #[test]
    fn registry_register_and_get() {
        let mut reg = HandlerRegistry::new();
        assert!(reg.is_empty());
        let id = reg.register(|_, _, _| {});
        assert_eq!(id, 0);
        assert_eq!(reg.len(), 1);
        let _f = reg.get(id);
    }

    #[test]
    fn coll_seq_increments_per_rank() {
        let sh = Shared::new(2, 4096, HandlerRegistry::new());
        assert_eq!(sh.next_coll_seq(0), 0);
        assert_eq!(sh.next_coll_seq(0), 1);
        assert_eq!(sh.next_coll_seq(1), 0);
    }
}
