//! Events and futures for asynchronous task graphs (paper §III-G).
//!
//! An [`Event`] counts outstanding operations: each registered operation
//! signals the event on completion, and when the count reaches zero the
//! event *fires*, releasing any dependents registered with
//! [`Event::on_fire`] (the mechanism under `async_after`). A fired event
//! with no registrations is *ready*, so dependents attached to a ready
//! event launch immediately — matching Phalanx/UPC++ semantics.
//!
//! An [`RtFuture`] carries the return value of a remote function invocation
//! back to the caller, as `async(place)(...)` returning `future<T>` does in
//! the paper.

use crate::ctx::Ctx;
use rupcxx_trace::{EventKind, WaitConstruct};
use rupcxx_util::sync::Mutex;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;

#[derive(Default)]
struct EventCore {
    outstanding: AtomicI64,
    deferred: Mutex<Vec<Box<dyn FnOnce() + Send>>>,
}

impl EventCore {
    fn fire(&self) {
        // Drain-and-run loop: running a dependent may register more work.
        loop {
            let thunks: Vec<_> = std::mem::take(&mut *self.deferred.lock());
            if thunks.is_empty() {
                return;
            }
            for t in thunks {
                t();
            }
            if self.outstanding.load(Ordering::Acquire) != 0 {
                return;
            }
        }
    }
}

/// A completion event, cloneable and usable from any rank thread.
#[derive(Clone, Default)]
#[must_use = "an Event that is dropped unused can never be waited on"]
pub struct Event {
    core: Arc<EventCore>,
}

impl Event {
    /// A new event with no outstanding operations (i.e. ready).
    pub fn new() -> Self {
        Self::default()
    }

    /// Checker identity for this event: the core allocation's address.
    /// Reuse of a freed address can only *add* happens-before edges
    /// (never remove them), so it cannot manufacture a false race.
    fn check_key(&self) -> usize {
        Arc::as_ptr(&self.core) as usize
    }

    /// Register one more outstanding operation.
    pub fn register(&self) {
        self.core.outstanding.fetch_add(1, Ordering::AcqRel);
    }

    /// Signal completion of one registered operation. Fires dependents when
    /// the outstanding count reaches zero.
    pub fn signal(&self) {
        // Publish the signaling thread's clock to the event *before* the
        // count drops: a waiter released by this signal must inherit
        // everything that happened before it. `signal` has no ctx
        // parameter, so the checker is reached through thread-locals.
        rupcxx_check::with_current(|ck, rank| ck.event_signal(rank, self.check_key()));
        let prev = self.core.outstanding.fetch_sub(1, Ordering::AcqRel);
        assert!(prev > 0, "Event::signal without matching register");
        if prev == 1 {
            self.core.fire();
        }
    }

    /// True when no registered operation is outstanding.
    pub fn is_ready(&self) -> bool {
        self.core.outstanding.load(Ordering::Acquire) == 0
    }

    /// Run `thunk` when the event fires. If the event is already ready the
    /// thunk runs immediately on the calling thread.
    pub fn on_fire(&self, thunk: impl FnOnce() + Send + 'static) {
        {
            let mut d = self.core.deferred.lock();
            if !self.is_ready() {
                d.push(Box::new(thunk));
                drop(d);
                // Re-check: a concurrent final signal may have drained
                // before our push landed.
                if self.is_ready() {
                    self.core.fire();
                }
                return;
            }
        }
        thunk();
    }

    /// Block (driving progress) until the event fires — `event.wait()` in
    /// the paper.
    pub fn wait(&self, ctx: &Ctx) {
        let t0 = ctx.trace().start();
        if let Some(ck) = ctx.shared().fabric.checker() {
            ck.event_wait_begin(ctx.rank());
        }
        ctx.wait_profiled(WaitConstruct::EventWait, || self.is_ready());
        if let Some(ck) = ctx.shared().fabric.checker() {
            ck.event_wait_end(ctx.rank(), self.check_key());
        }
        ctx.trace().span(EventKind::EventWait, -1, 0, t0);
    }
}

impl std::fmt::Debug for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Event")
            .field(
                "outstanding",
                &self.core.outstanding.load(Ordering::Relaxed),
            )
            .finish()
    }
}

struct FutureCore<T> {
    slot: Mutex<Option<T>>,
    done: AtomicBool,
}

/// The runtime's future: carries the return value of an async remote call.
///
/// Named `RtFuture` to avoid clashing with `std::future::Future`; the
/// `rupcxx` crate re-exports it under the paper-flavoured name.
#[must_use = "an async result that is never taken hides remote failures"]
pub struct RtFuture<T> {
    core: Arc<FutureCore<T>>,
}

impl<T> Clone for RtFuture<T> {
    fn clone(&self) -> Self {
        RtFuture {
            core: self.core.clone(),
        }
    }
}

impl<T: Send + 'static> RtFuture<T> {
    /// Create an unresolved future and its setter half.
    pub fn pending() -> (Self, FutureSetter<T>) {
        let core = Arc::new(FutureCore {
            slot: Mutex::new(None),
            done: AtomicBool::new(false),
        });
        (RtFuture { core: core.clone() }, FutureSetter { core })
    }

    /// A future already resolved with `value`.
    pub fn ready(value: T) -> Self {
        let (f, s) = Self::pending();
        s.set(value);
        f
    }

    /// True when the value has arrived.
    pub fn is_ready(&self) -> bool {
        self.core.done.load(Ordering::Acquire)
    }

    /// Take the value if it has arrived. Returns `None` if pending or if
    /// the value was already taken.
    pub fn try_take(&self) -> Option<T> {
        if self.is_ready() {
            self.core.slot.lock().take()
        } else {
            None
        }
    }

    /// Block (driving progress) until the value arrives, then take it —
    /// the paper's `future.get()`. Panics if the value was already taken.
    pub fn get(&self, ctx: &Ctx) -> T {
        let t0 = ctx.trace().start();
        if let Some(ck) = ctx.shared().fabric.checker() {
            ck.future_wait_begin(ctx.rank());
        }
        ctx.wait_profiled(WaitConstruct::FutureWait, || self.is_ready());
        if let Some(ck) = ctx.shared().fabric.checker() {
            ck.future_wait_end(ctx.rank());
        }
        ctx.trace().span(EventKind::EventWait, -1, 0, t0);
        self.core
            .slot
            .lock()
            .take()
            .expect("RtFuture::get called twice on the same future")
    }
}

impl<T> std::fmt::Debug for RtFuture<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RtFuture")
            .field("ready", &self.core.done.load(Ordering::Relaxed))
            .finish()
    }
}

/// Write-half of an [`RtFuture`], sent to the executing rank.
pub struct FutureSetter<T> {
    core: Arc<FutureCore<T>>,
}

impl<T: Send + 'static> FutureSetter<T> {
    /// Resolve the future.
    pub fn set(self, value: T) {
        *self.core.slot.lock() = Some(value);
        self.core.done.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn fresh_event_is_ready() {
        let e = Event::new();
        assert!(e.is_ready());
    }

    #[test]
    fn register_signal_cycle() {
        let e = Event::new();
        e.register();
        e.register();
        assert!(!e.is_ready());
        e.signal();
        assert!(!e.is_ready());
        e.signal();
        assert!(e.is_ready());
    }

    #[test]
    #[should_panic(expected = "without matching register")]
    fn unbalanced_signal_panics() {
        Event::new().signal();
    }

    #[test]
    fn on_fire_ready_runs_immediately() {
        let e = Event::new();
        let hit = Arc::new(AtomicUsize::new(0));
        let h = hit.clone();
        e.on_fire(move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hit.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn on_fire_deferred_runs_at_zero() {
        let e = Event::new();
        e.register();
        let hit = Arc::new(AtomicUsize::new(0));
        let h = hit.clone();
        e.on_fire(move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hit.load(Ordering::SeqCst), 0);
        e.signal();
        assert_eq!(hit.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn chained_dependents_fire_in_cascade() {
        // e1 fires -> registers on e2 which is already ready -> runs.
        let e1 = Event::new();
        e1.register();
        let e2 = Event::new();
        let hit = Arc::new(AtomicUsize::new(0));
        let h = hit.clone();
        let e2c = e2.clone();
        e1.on_fire(move || {
            e2c.on_fire(move || {
                h.fetch_add(1, Ordering::SeqCst);
            });
        });
        e1.signal();
        assert_eq!(hit.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn future_set_and_take() {
        let (f, s) = RtFuture::<u32>::pending();
        assert!(!f.is_ready());
        assert!(f.try_take().is_none());
        s.set(99);
        assert!(f.is_ready());
        assert_eq!(f.try_take(), Some(99));
        assert_eq!(f.try_take(), None);
    }

    #[test]
    fn ready_future() {
        let f = RtFuture::ready("hi");
        assert!(f.is_ready());
        assert_eq!(f.try_take(), Some("hi"));
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn event_wait_over_dead_link_reports_failure() {
        // Rank 0 waits on an event whose signal rides a task sent over a
        // link that drops every attempt. `Event::wait` funnels through
        // wait_until, so the retransmit timeout must surface as a panic
        // carrying the `PeerUnreachable` report instead of a hang.
        use crate::spmd::spmd;
        use crate::RuntimeConfig;
        use rupcxx_net::{FaultPlan, LinkRule};
        let dead = LinkRule {
            drop_ppm: 1_000_000,
            ..Default::default()
        };
        let plan = FaultPlan::new(23).link(0, 1, dead).max_attempts(4);
        spmd(
            RuntimeConfig::new(2).segment_bytes(4096).with_faults(plan),
            |ctx| {
                if ctx.rank() == 0 {
                    let ev = Event::new();
                    ev.register();
                    let ev2 = ev.clone();
                    // This task can never arrive at rank 1.
                    ctx.send_task(1, move || ev2.signal());
                    ev.wait(ctx);
                }
            },
        );
    }

    #[test]
    fn concurrent_signal_and_on_fire_never_lose_thunks() {
        for _ in 0..200 {
            let e = Event::new();
            e.register();
            let hits = Arc::new(AtomicUsize::new(0));
            let e2 = e.clone();
            let h2 = hits.clone();
            let t1 = std::thread::spawn(move || e2.signal());
            let h3 = hits.clone();
            let t2 = std::thread::spawn(move || {
                e.on_fire(move || {
                    h3.fetch_add(1, Ordering::SeqCst);
                });
            });
            t1.join().unwrap();
            t2.join().unwrap();
            assert_eq!(h2.load(Ordering::SeqCst), 1);
        }
    }
}
