//! The SPMD launcher.
//!
//! [`spmd`] runs one closure on every rank (each rank is an OS thread) and
//! returns the per-rank results in rank order. After a rank's closure
//! returns, the rank keeps serving incoming active messages until *all*
//! ranks have returned — without this drain phase, a fast rank could exit
//! while a slow rank still needs its barrier partner's progress engine.

use crate::config::RuntimeConfig;
use crate::ctx::Ctx;
use crate::shared::{HandlerRegistry, Shared};
use rupcxx_trace::{critpath, MetricsSnapshot, RankProf, TraceEvent, WaitState};
use std::fmt::Write as _;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};

/// Launch an SPMD job: run `body` on `config.ranks` ranks, returning each
/// rank's result in rank order.
///
/// ```
/// use rupcxx_runtime::{spmd, RuntimeConfig};
/// let squares = spmd(RuntimeConfig::new(4).segment_bytes(4096), |ctx| {
///     ctx.rank() * ctx.rank()
/// });
/// assert_eq!(squares, vec![0, 1, 4, 9]);
/// ```
pub fn spmd<R, F>(config: RuntimeConfig, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(&Ctx) -> R + Send + Sync,
{
    spmd_with_handlers(config, HandlerRegistry::new(), body)
}

/// Like [`spmd`], with a pre-registered active-message handler table
/// (shared identically by all ranks, as the paper assumes for function
/// entry points).
pub fn spmd_with_handlers<R, F>(config: RuntimeConfig, handlers: HandlerRegistry, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(&Ctx) -> R + Send + Sync,
{
    assert!(config.ranks > 0, "spmd needs at least one rank");
    let shared = Shared::new_full(
        config.ranks,
        config.segment_bytes,
        config.simnet,
        handlers,
        config.trace.clone(),
        config.faults.clone(),
        config.agg.clone(),
        config.check.clone(),
        config.cache.clone(),
        config.prof.clone(),
        config.schedule.clone(),
        None,
    );
    let body = &body;
    let progress_stop = std::sync::atomic::AtomicBool::new(false);
    let progress_stop = &progress_stop;
    let results = std::thread::scope(|scope| {
        // Concurrent mode (paper §IV): one progress worker per rank keeps
        // serving incoming active messages even while the rank computes.
        if config.progress_thread {
            for rank in 0..config.ranks {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("rupcxx-progress-{rank}"))
                    .spawn_scoped(scope, move || {
                        if let Some(ck) = shared.fabric.checker() {
                            rupcxx_check::set_current(ck.clone(), rank);
                        }
                        let ctx = Ctx::new(rank, shared);
                        while !progress_stop.load(std::sync::atomic::Ordering::Acquire) {
                            if ctx.advance() == 0 {
                                std::thread::yield_now();
                            }
                        }
                    })
                    .expect("failed to spawn progress thread");
            }
        }
        let mut handles = Vec::with_capacity(config.ranks);
        for rank in 0..config.ranks {
            let shared = shared.clone();
            let builder = std::thread::Builder::new()
                .name(format!("rupcxx-rank-{rank}"))
                .stack_size(8 << 20);
            let handle = builder
                .spawn_scoped(scope, move || {
                    // Pin (checker, rank) in TLS so hooks without a ctx
                    // parameter (Event::signal) can reach the checker.
                    if let Some(ck) = shared.fabric.checker() {
                        rupcxx_check::set_current(ck.clone(), rank);
                    }
                    let ctx = Ctx::new(rank, shared);
                    let result = catch_unwind(AssertUnwindSafe(|| body(&ctx)));
                    // Completion must be published even on panic, or the
                    // surviving ranks would drain forever.
                    ctx.mark_complete();
                    ctx.drain_until_all_complete();
                    match result {
                        Ok(v) => v,
                        Err(payload) => resume_unwind(payload),
                    }
                })
                .expect("failed to spawn rank thread");
            handles.push(handle);
        }
        let results: Vec<R> = handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => {
                    progress_stop.store(true, std::sync::atomic::Ordering::Release);
                    resume_unwind(payload)
                }
            })
            .collect();
        progress_stop.store(true, std::sync::atomic::Ordering::Release);
        results
    });
    export_trace(&config, &shared);
    export_prof(&config, &shared);
    export_check(&shared);
    results
}

/// Job-teardown profiler export: gather every rank's causal stream and
/// wait-state histograms, run the critical-path analysis, print the
/// per-rank table and headline attribution line, and write the JSON
/// report. All ranks have joined by now, so the rings are quiescent.
pub(crate) fn export_prof(config: &RuntimeConfig, shared: &Shared) {
    let Some(prof_cfg) = &config.prof else { return };
    let ranks = shared.ranks();
    let per_rank: Vec<RankProf> = (0..ranks)
        .filter_map(|r| {
            shared.fabric.prof(r).map(|p| RankProf {
                rank: r,
                events: p.ring.snapshot(),
                waits: p.waits.snapshot(),
                barrier_total_ns: p.barrier_total_ns.load(Ordering::Relaxed),
            })
        })
        .collect();
    let report = critpath::analyze(&per_rank);
    println!("\n== rupcxx profiler ({ranks} ranks) ==");
    print!("{}", report.table().render());
    println!(
        "critical path: {:.3} ms over {} barrier interval(s), critical rank(s) {:?}",
        report.critical_path_ns as f64 / 1e6,
        report.intervals,
        report.critical_ranks
    );
    println!(
        "barrier attribution: {:.1}% of {:.3} ms barrier wall time carries a named wait state",
        report.attributed_fraction() * 100.0,
        report.barrier_total_ns as f64 / 1e6
    );
    let retx_ns: u64 = per_rank
        .iter()
        .map(|r| r.waits.state_ns(WaitState::RetransmitStall))
        .sum();
    if retx_ns > 0 {
        println!(
            "retransmit stalls: {:.3} ms of wait time spent waiting out packet loss",
            retx_ns as f64 / 1e6
        );
    }
    let path = prof_cfg.path();
    match std::fs::write(path, report.to_json()) {
        Ok(()) => println!("[profile written {path}]"),
        Err(e) => eprintln!("(could not write profile {path}: {e})"),
    }
}

/// Job-teardown checker export: write the report file (when configured)
/// and print a one-line summary when anything was found.
pub(crate) fn export_check(shared: &Shared) {
    if let Some(ck) = shared.fabric.checker() {
        let n = ck.export();
        if n > 0 {
            eprintln!("(rupcxx-check: {n} finding(s); see report above)");
        }
    }
}

/// Chrome-trace files already written by this process (suffixes the path
/// of every traced job after the first).
static TRACE_JOBS: AtomicU64 = AtomicU64::new(0);

/// Job-teardown trace export: print the per-rank metrics summary and, in
/// events mode, write the Chrome `trace_event` JSON. All ranks have
/// joined by now, so the rings and histograms are quiescent.
pub(crate) fn export_trace(config: &RuntimeConfig, shared: &Shared) {
    if !shared.fabric.endpoint(0).trace.enabled() {
        return;
    }
    let ranks = shared.ranks();
    let metrics: Vec<(usize, MetricsSnapshot)> = (0..ranks)
        .map(|r| (r, shared.fabric.endpoint(r).trace.metrics.snapshot()))
        .collect();
    println!("\n== rupcxx trace summary ({ranks} ranks) ==");
    print!("{}", rupcxx_trace::summary_table(&metrics).render());
    if !shared.fabric.endpoint(0).trace.events_enabled() {
        return;
    }
    let per_rank: Vec<(usize, Vec<TraceEvent>)> = (0..ranks)
        .map(|r| (r, shared.fabric.endpoint(r).trace.events()))
        .collect();
    let total: usize = per_rank.iter().map(|(_, e)| e.len()).sum();
    let (mut pushed, mut dropped) = (0u64, 0u64);
    for r in 0..ranks {
        if let Some(ring) = shared.fabric.endpoint(r).trace.ring() {
            pushed += ring.pushed();
            dropped += ring.dropped();
        }
    }
    let n = TRACE_JOBS.fetch_add(1, Ordering::Relaxed);
    let path = config.trace.numbered_path(n);
    match rupcxx_trace::write_chrome_trace(&path, &per_rank) {
        Ok(()) => {
            let mut notes = String::new();
            if pushed > total as u64 + dropped {
                // The ring wrapped: older events were overwritten.
                let _ = write!(notes, ", newest of {pushed} (raise RUPCXX_TRACE_BUF)");
            }
            if dropped > 0 {
                let _ = write!(notes, ", {dropped} dropped");
            }
            println!("[trace written {path}: {total} events{notes}]");
        }
        Err(e) => eprintln!("(could not write trace {path}: {e})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn cfg(n: usize) -> RuntimeConfig {
        RuntimeConfig::new(n).segment_bytes(8192)
    }

    #[test]
    fn results_in_rank_order() {
        let out = spmd(cfg(8), |ctx| ctx.rank() * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn single_rank_job() {
        let out = spmd(cfg(1), |ctx| {
            assert_eq!(ctx.ranks(), 1);
            ctx.barrier();
            "done"
        });
        assert_eq!(out, vec!["done"]);
    }

    #[test]
    fn cross_rank_rma_visible_after_barrier() {
        use rupcxx_net::GlobalAddr;
        let out = spmd(cfg(4), |ctx| {
            // Every rank writes its id into rank 0's segment, offset 8*rank.
            ctx.fabric().put_u64(
                ctx.rank(),
                GlobalAddr::new(0, 8 * ctx.rank()),
                ctx.rank() as u64 + 100,
            );
            ctx.barrier();
            // Every rank reads all four slots back.
            (0..4)
                .map(|r| ctx.fabric().get_u64(ctx.rank(), GlobalAddr::new(0, 8 * r)))
                .collect::<Vec<_>>()
        });
        for v in out {
            assert_eq!(v, vec![100, 101, 102, 103]);
        }
    }

    #[test]
    fn post_closure_drain_serves_stragglers() {
        // Rank 0 returns immediately; rank 1 then asks rank 0 to run a task
        // (via finish), which only works if rank 0 keeps draining.
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        spmd(cfg(2), move |ctx| {
            if ctx.rank() == 1 {
                // Give rank 0 a head start to return from its closure.
                std::thread::sleep(std::time::Duration::from_millis(20));
                let h = h.clone();
                ctx.finish(|fs| {
                    fs.spawn(0, move |_| {
                        h.fetch_add(1, Ordering::SeqCst);
                    });
                });
            }
        });
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    #[should_panic(expected = "deliberate rank failure")]
    fn rank_panic_propagates_without_hanging() {
        spmd(cfg(3), |ctx| {
            ctx.barrier();
            if ctx.rank() == 1 {
                panic!("deliberate rank failure");
            }
        });
    }

    #[test]
    fn concurrent_mode_progresses_without_target_cooperation() {
        // Rank 1 spins on a plain flag without ever driving progress; the
        // flag is set by an incoming task. Deadlock in serialized mode —
        // the progress worker of concurrent mode makes it complete.
        let out = spmd(cfg(2).with_progress_thread(), |ctx| {
            let flag = Arc::new(AtomicUsize::new(0));
            if ctx.rank() == 0 {
                ctx.barrier();
                0
            } else {
                let f = flag.clone();
                // Ask rank 0 to send us a task that sets our local flag.
                let my_flag = flag.clone();
                ctx.send_task(0, {
                    let shared = ctx.shared().clone();
                    move || {
                        let c0 = Ctx::new(0, shared.clone());
                        c0.send_task(1, move || {
                            my_flag.store(7, Ordering::SeqCst);
                        });
                    }
                });
                // Busy-wait WITHOUT advance(): only the progress thread
                // can execute the incoming task.
                while f.load(Ordering::SeqCst) == 0 {
                    std::hint::spin_loop();
                }
                ctx.barrier();
                f.load(Ordering::SeqCst)
            }
        });
        assert_eq!(out[1], 7);
    }

    #[test]
    fn concurrent_mode_runs_regular_workloads() {
        let out = spmd(cfg(4).with_progress_thread(), |ctx| {
            ctx.barrier();
            ctx.allreduce(ctx.rank() as u64, |a, b| a + b)
        });
        assert!(out.iter().all(|&v| v == 6));
    }

    #[test]
    fn oversubscription_many_ranks() {
        // Far more ranks than cores: progress engines must still make
        // the barrier complete.
        let out = spmd(cfg(32), |ctx| {
            ctx.barrier();
            ctx.allreduce(1u64, |a, b| a + b)
        });
        assert!(out.iter().all(|&v| v == 32));
    }
}
