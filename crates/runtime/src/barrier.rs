//! Barrier and memory fence (paper Table I: `barrier()` & `fence()`).
//!
//! The barrier is a dissemination barrier over active messages:
//! ⌈log₂ N⌉ rounds, in round k each rank signals rank `(me + 2^k) mod N`
//! and waits for the signal from `(me − 2^k) mod N`. This is the standard
//! scalable algorithm used by PGAS runtimes, and its message count
//! (N·⌈log₂N⌉ per episode) is what the perf model charges.

use crate::collectives::{collect, deposit, WORLD_DOMAIN};
use crate::ctx::Ctx;
use rupcxx_trace::clock::now_ns;
use rupcxx_trace::waitstate::{classify, pack_wait};
use rupcxx_trace::{EventKind, ProfEvent, ProfKind, WaitConstruct};
use std::sync::atomic::Ordering;

impl Ctx {
    /// Synchronize all ranks — no rank leaves before every rank arrived.
    pub fn barrier(&self) {
        let n = self.ranks();
        // Push out buffered aggregation batches before the first signal.
        // A target's final barrier signal transitively depends on every
        // rank's arrival, i.e. it lands in the target's single FIFO inbox
        // after our batch did — so the target executes the batch before
        // it can leave the barrier. Under fault injection retransmission
        // can delay a batch past this ordering — use `agg_fence` for an
        // applied-at-target guarantee there.
        self.agg_flush();
        if let Some(ck) = self.shared().fabric.checker() {
            ck.barrier_enter(self.rank());
        }
        if n == 1 {
            if let Some(ck) = self.shared().fabric.checker() {
                ck.barrier_exit(self.rank());
            }
            self.shared().fabric.cache_invalidate_sync(self.rank());
            return;
        }
        let t0 = self.trace().start();
        // The profiler wraps the whole episode: every barrier records a
        // wait (even a short one), so barrier wall time is attributed to
        // a named state in full — the report's headline accuracy number.
        let prof = self.shared().fabric.prof(self.rank());
        let (p0, retx0, joined0) = match prof {
            Some(p) => (
                now_ns(),
                self.shared().fabric.total_retransmits(),
                p.msgs_joined.load(Ordering::Relaxed),
            ),
            None => (0, 0, 0),
        };
        let seq = self.shared().next_coll_seq(self.rank());
        let mut round = 0u64;
        let mut dist = 1usize;
        while dist < n {
            let dst = (self.rank() + dist) % n;
            let key = seq * 1024 + round;
            deposit(self, WORLD_DOMAIN, dst, key, Vec::new());
            let _ = collect(self, WORLD_DOMAIN, key, 1);
            round += 1;
            dist <<= 1;
        }
        self.trace().span(EventKind::Barrier, -1, 0, t0);
        if let Some(p) = prof {
            let dur = now_ns().saturating_sub(p0);
            let state = classify(
                WaitConstruct::Barrier,
                self.shared().fabric.total_retransmits() - retx0,
                p.msgs_joined.load(Ordering::Relaxed) - joined0,
                p.last_inject_ns.load(Ordering::Relaxed),
                p0,
            );
            p.waits.record(WaitConstruct::Barrier, state, dur);
            p.ring.push(ProfEvent {
                seq: 0,
                ts_ns: p0,
                dur_ns: dur,
                span: 0,
                peer: -1,
                a: pack_wait(WaitConstruct::Barrier, state),
                kind: ProfKind::Wait,
            });
            p.record_barrier_exit(dur);
        }
        if let Some(ck) = self.shared().fabric.checker() {
            ck.barrier_exit(self.rank());
        }
        // A barrier is a full synchronization point: peers' pre-barrier
        // writes become observable, so locally cached remote lines must
        // be refetched.
        self.shared().fabric.cache_invalidate_sync(self.rank());
    }

    /// Memory fence: orders this rank's prior global-memory operations
    /// before subsequent ones, and drives one round of progress. With the
    /// fabric's synchronous RMA this is a hardware fence plus a poll —
    /// matching UPC's `upc_fence` strength.
    pub fn fence(&self) {
        // Buffered aggregation ops are "prior operations" too: inject
        // them before ordering memory (advance() would flush as well,
        // but only after the hardware fence).
        self.agg_flush();
        std::sync::atomic::fence(std::sync::atomic::Ordering::SeqCst);
        // The fence also acts as an acquire point for the software read
        // cache: later gets must not return lines filled before it.
        self.shared().fabric.cache_invalidate_sync(self.rank());
        self.advance();
    }
}

#[cfg(test)]
mod tests {
    use crate::spmd::spmd;
    use crate::RuntimeConfig;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn barrier_separates_phases() {
        // Every rank increments a counter before the barrier; after the
        // barrier every rank must observe the full count.
        for n in [1, 2, 3, 4, 8] {
            let counter = Arc::new(AtomicUsize::new(0));
            let c2 = counter.clone();
            let seen = spmd(RuntimeConfig::new(n).segment_bytes(4096), move |ctx| {
                c2.fetch_add(1, Ordering::SeqCst);
                ctx.barrier();
                c2.load(Ordering::SeqCst)
            });
            assert!(seen.iter().all(|&s| s == n), "n={n}: {seen:?}");
        }
    }

    #[test]
    fn repeated_barriers_do_not_interfere() {
        let out = spmd(RuntimeConfig::new(4).segment_bytes(4096), |ctx| {
            for _ in 0..50 {
                ctx.barrier();
            }
            ctx.rank()
        });
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn fence_is_callable() {
        spmd(RuntimeConfig::new(2).segment_bytes(4096), |ctx| {
            ctx.fence();
        });
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn barrier_over_dead_link_reports_failure() {
        // The 0->1 link drops every attempt: rank 0's barrier signal can
        // never reach rank 1, so the job must surface `PeerUnreachable`
        // (through the wait_until funnel) rather than spin forever.
        use rupcxx_net::{FaultPlan, LinkRule};
        let dead = LinkRule {
            drop_ppm: 1_000_000,
            ..Default::default()
        };
        let plan = FaultPlan::new(11).link(0, 1, dead).max_attempts(4);
        spmd(
            RuntimeConfig::new(2).segment_bytes(4096).with_faults(plan),
            |ctx| ctx.barrier(),
        );
    }
}
