//! Global (inter-rank) locks, the UPC++ equivalent of `upc_lock_t`.
//!
//! A lock is one word in its owner rank's segment, acquired with remote
//! compare-and-swap — the way PGAS runtimes implement locks over RDMA
//! atomics. Waiters drive progress while spinning, so a lock holder that
//! is itself waiting on incoming AMs cannot deadlock the job.

use crate::ctx::Ctx;
use rupcxx_net::GlobalAddr;
use rupcxx_trace::{EventKind, WaitConstruct};

const UNLOCKED: u64 = 0;

/// A lock resident in the global address space. Copyable: the value is
/// just the lock's global address, so it can be broadcast to all ranks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GlobalLock {
    addr: GlobalAddr,
}

impl GlobalLock {
    /// Allocate a lock in `owner`'s segment (collectively usable by all
    /// ranks once they learn the address, e.g. via broadcast).
    pub fn new(ctx: &Ctx, owner: rupcxx_net::Rank) -> Self {
        let addr = ctx
            .alloc_on(owner, 8)
            .expect("segment memory for GlobalLock");
        ctx.fabric().put_u64(ctx.rank(), addr, UNLOCKED);
        GlobalLock { addr }
    }

    /// The lock word's global address (for broadcasting to other ranks).
    pub fn addr(&self) -> GlobalAddr {
        self.addr
    }

    /// Rebuild a lock handle from a broadcast address.
    pub fn from_addr(addr: GlobalAddr) -> Self {
        GlobalLock { addr }
    }

    /// Checker identity: the global word the lock lives in. Stable across
    /// ranks (unlike host pointers), so reports are deterministic.
    fn check_key(&self) -> (usize, usize) {
        (self.addr.rank(), self.addr.offset())
    }

    /// Try to acquire; true on success.
    #[must_use = "ignoring the result means not knowing whether the lock is held"]
    pub fn try_acquire(&self, ctx: &Ctx) -> bool {
        let tag = ctx.rank() as u64 + 1;
        let got = ctx
            .fabric()
            .cas_u64(ctx.rank(), self.addr, UNLOCKED, tag)
            .is_ok();
        if got {
            if let Some(ck) = ctx.shared().fabric.checker() {
                ck.lock_acquired(ctx.rank(), self.check_key());
            }
        }
        got
    }

    /// Acquire, driving progress while waiting.
    pub fn acquire(&self, ctx: &Ctx) {
        let t0 = ctx.trace().start();
        if let Some(ck) = ctx.shared().fabric.checker() {
            ck.lock_wait_begin(ctx.rank(), self.check_key());
        }
        ctx.wait_profiled(WaitConstruct::LockAcquire, || self.try_acquire(ctx));
        if let Some(ck) = ctx.shared().fabric.checker() {
            ck.lock_wait_end(ctx.rank());
        }
        ctx.trace()
            .span(EventKind::LockAcquire, self.addr.rank() as i32, 0, t0);
    }

    /// Release. Panics if this rank does not hold the lock.
    pub fn release(&self, ctx: &Ctx) {
        // The release stamp must be published *before* the word is freed:
        // once the CAS lands, another rank's acquire may succeed
        // immediately and must find this critical section's clock waiting.
        if let Some(ck) = ctx.shared().fabric.checker() {
            ck.lock_release(ctx.rank(), self.check_key());
        }
        let tag = ctx.rank() as u64 + 1;
        let res = ctx.fabric().cas_u64(ctx.rank(), self.addr, tag, UNLOCKED);
        assert!(
            res.is_ok(),
            "GlobalLock::release: rank {} does not hold the lock (word={:?})",
            ctx.rank(),
            res
        );
    }

    /// Run `body` under the lock.
    pub fn with<R>(&self, ctx: &Ctx, body: impl FnOnce() -> R) -> R {
        self.acquire(ctx);
        let out = body();
        self.release(ctx);
        out
    }

    /// Free the lock's segment memory (call once, after all ranks are done
    /// with it).
    pub fn destroy(self, ctx: &Ctx) {
        if let Some(ck) = ctx.shared().fabric.checker() {
            ck.lock_destroyed(self.check_key());
        }
        ctx.free(self.addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmd::spmd;
    use crate::RuntimeConfig;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn mutual_exclusion_across_ranks() {
        let inside = Arc::new(AtomicU64::new(0));
        let max_seen = Arc::new(AtomicU64::new(0));
        let (i2, m2) = (inside.clone(), max_seen.clone());
        let total = Arc::new(AtomicU64::new(0));
        let t2 = total.clone();
        spmd(RuntimeConfig::new(4).segment_bytes(4096), move |ctx| {
            // Rank 0 creates the lock and broadcasts its address.
            let lock = if ctx.rank() == 0 {
                let l = GlobalLock::new(ctx, 0);
                ctx.broadcast(0, [l.addr().rank() as u64, l.addr().offset() as u64]);
                l
            } else {
                let a = ctx.broadcast(0, [0u64, 0u64]);
                GlobalLock::from_addr(GlobalAddr::new(a[0] as usize, a[1] as usize))
            };
            for _ in 0..200 {
                lock.with(ctx, || {
                    let now = i2.fetch_add(1, Ordering::SeqCst) + 1;
                    m2.fetch_max(now, Ordering::SeqCst);
                    t2.fetch_add(1, Ordering::SeqCst);
                    i2.fetch_sub(1, Ordering::SeqCst);
                });
            }
            ctx.barrier();
            if ctx.rank() == 0 {
                lock.destroy(ctx);
            }
        });
        assert_eq!(max_seen.load(Ordering::SeqCst), 1, "lock was not exclusive");
        assert_eq!(total.load(Ordering::SeqCst), 800);
    }

    #[test]
    fn try_acquire_fails_when_held() {
        spmd(RuntimeConfig::new(1).segment_bytes(4096), |ctx| {
            let lock = GlobalLock::new(ctx, 0);
            assert!(lock.try_acquire(ctx));
            assert!(!lock.try_acquire(ctx));
            lock.release(ctx);
            assert!(lock.try_acquire(ctx));
            lock.release(ctx);
            lock.destroy(ctx);
        });
    }

    #[test]
    #[should_panic(expected = "does not hold the lock")]
    fn release_unheld_panics() {
        spmd(RuntimeConfig::new(1).segment_bytes(4096), |ctx| {
            let lock = GlobalLock::new(ctx, 0);
            lock.release(ctx);
        });
    }

    // ---- checker edge cases (these double as the deadlock corpus) -------

    #[test]
    #[should_panic(expected = "self-deadlock")]
    fn reacquire_by_same_rank_is_flagged_as_self_deadlock() {
        // The lock is not reentrant: a second acquire by the holder spins
        // forever. The deadlock pass must turn that hang into a report.
        spmd(
            RuntimeConfig::new(1)
                .segment_bytes(4096)
                .with_check(rupcxx_net::CheckConfig::deadlock()),
            |ctx| {
                let lock = GlobalLock::new(ctx, 0);
                lock.acquire(ctx);
                lock.acquire(ctx);
            },
        );
    }

    #[test]
    fn critical_sections_hand_off_happens_before() {
        // Lock-ordered read-modify-write of one global word from every
        // rank: the release->acquire hand-off edge must totally order the
        // critical sections, so the race pass stays silent and no
        // increment is lost.
        use rupcxx_net::GlobalAddr;
        let sink = rupcxx_check::new_sink();
        let s2 = sink.clone();
        let out = spmd(
            RuntimeConfig::new(4)
                .segment_bytes(4096)
                .with_check(rupcxx_net::CheckConfig::all().with_sink(s2)),
            |ctx| {
                let (lock, word) = if ctx.rank() == 0 {
                    let l = GlobalLock::new(ctx, 0);
                    let w = ctx.alloc_on(0, 8).expect("counter word");
                    ctx.fabric().put_u64(0, w, 0);
                    ctx.broadcast(
                        0,
                        [
                            l.addr().rank() as u64,
                            l.addr().offset() as u64,
                            w.rank() as u64,
                            w.offset() as u64,
                        ],
                    );
                    (l, w)
                } else {
                    let v = ctx.broadcast(0, [0u64; 4]);
                    (
                        GlobalLock::from_addr(GlobalAddr::new(v[0] as usize, v[1] as usize)),
                        GlobalAddr::new(v[2] as usize, v[3] as usize),
                    )
                };
                for _ in 0..25 {
                    lock.with(ctx, || {
                        let v = ctx.fabric().get_u64(ctx.rank(), word);
                        ctx.fabric().put_u64(ctx.rank(), word, v + 1);
                    });
                }
                ctx.barrier();
                ctx.fabric().get_u64(ctx.rank(), word)
            },
        );
        assert!(out.iter().all(|&v| v == 100), "lost updates: {out:?}");
        let findings = sink.lock();
        assert!(
            findings.is_empty(),
            "lock hand-off should order the critical sections:\n{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    #[should_panic(expected = "does not hold the lock")]
    fn release_without_acquire_panics_with_checker_installed() {
        // The checker's release hook runs before the CAS; it must not
        // swallow or alter the runtime's own misuse panic.
        spmd(
            RuntimeConfig::new(1)
                .segment_bytes(4096)
                .with_check(rupcxx_net::CheckConfig::all()),
            |ctx| {
                let lock = GlobalLock::new(ctx, 0);
                lock.release(ctx);
            },
        );
    }
}
