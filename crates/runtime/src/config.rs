//! Runtime configuration.

use rupcxx_net::{
    AggConfig, CacheConfig, CheckConfig, ConduitSel, FaultPlan, ScheduleConfig, SimNet,
};
use rupcxx_trace::{ProfConfig, TraceConfig};

/// Parameters for an SPMD job.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of SPMD ranks.
    pub ranks: usize,
    /// Globally addressable segment size per rank, in bytes.
    pub segment_bytes: usize,
    /// Thread-support mode (paper §IV): `false` = *serialized* mode — the
    /// rank's own calls drive progress (`advance()` runs inside blocking
    /// operations); `true` = *concurrent* mode — a dedicated worker thread
    /// per rank also drives progress, so incoming asyncs execute even
    /// while the rank computes without touching the runtime.
    pub progress_thread: bool,
    /// Optional synthetic wire timing injected into remote fabric
    /// operations (measured latency-bound behaviour on the host).
    pub simnet: Option<SimNet>,
    /// Tracing/metrics configuration. [`RuntimeConfig::new`] seeds this
    /// from the `RUPCXX_TRACE` environment variable, so harnesses get
    /// tracing for free; override with [`RuntimeConfig::with_trace`].
    pub trace: TraceConfig,
    /// Deterministic fault-injection plan for the fabric (chaos testing).
    /// [`RuntimeConfig::new`] seeds this from `RUPCXX_FAULTS`; override
    /// with [`RuntimeConfig::with_faults`]. None = fault-free fast path.
    pub faults: Option<FaultPlan>,
    /// Per-destination aggregation thresholds for fine-grained AM/RMA
    /// traffic. [`RuntimeConfig::new`] seeds this from `RUPCXX_AGG`;
    /// override with [`RuntimeConfig::with_agg`]. None = aggregation off
    /// (every buffered entry point falls through to the direct op).
    pub agg: Option<AggConfig>,
    /// Online happens-before race / deadlock checker configuration.
    /// [`RuntimeConfig::new`] seeds this from `RUPCXX_CHECK`; override
    /// with [`RuntimeConfig::with_check`]. None = checking off (one
    /// untaken branch per hook).
    pub check: Option<CheckConfig>,
    /// Software read cache for remote global-memory gets.
    /// [`RuntimeConfig::new`] seeds this from `RUPCXX_CACHE`; override
    /// with [`RuntimeConfig::with_cache`]. None = caching off (one
    /// untaken branch per get).
    pub cache: Option<CacheConfig>,
    /// Causal cross-rank profiler (wait-state attribution, critical-path
    /// analysis, flight recorder). [`RuntimeConfig::new`] seeds this from
    /// `RUPCXX_PROF`; override with [`RuntimeConfig::with_prof`]. None =
    /// profiling off (one untaken branch per hook).
    pub prof: Option<ProfConfig>,
    /// Controlled AM delivery schedule (model checking / replay).
    /// [`RuntimeConfig::new`] seeds this from `RUPCXX_SCHEDULE`; override
    /// with [`RuntimeConfig::with_schedule`]. None = direct delivery
    /// (one untaken branch per AM, wire traffic unchanged). Mutually
    /// exclusive with `faults`.
    pub schedule: Option<ScheduleConfig>,
    /// Transport conduit for multi-process jobs (see `rupcxx-net`'s
    /// `conduit` module and `spmd_procs`). [`RuntimeConfig::new`] seeds
    /// this from `RUPCXX_CONDUIT`
    /// (`loopback|shm:PATH|tcp:HOST:BASE_PORT|uds:DIR`); override with
    /// [`RuntimeConfig::with_conduit`]. None (or `loopback`) = ranks are
    /// threads of this process, exactly the pre-conduit runtime.
    pub conduit: Option<ConduitSel>,
}

impl RuntimeConfig {
    /// A job with `ranks` ranks and the default 16 MiB segment.
    pub fn new(ranks: usize) -> Self {
        RuntimeConfig {
            ranks,
            segment_bytes: 16 << 20,
            progress_thread: false,
            simnet: None,
            trace: TraceConfig::from_env(),
            faults: FaultPlan::from_env(),
            agg: AggConfig::from_env(),
            check: CheckConfig::from_env(),
            cache: CacheConfig::from_env(),
            prof: ProfConfig::from_env(),
            schedule: ScheduleConfig::from_env(),
            conduit: ConduitSel::from_env(),
        }
    }

    /// Replace the tracing configuration (overriding `RUPCXX_TRACE`).
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Install a fault-injection plan (overriding `RUPCXX_FAULTS`).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Enable per-destination message aggregation (overriding
    /// `RUPCXX_AGG`).
    pub fn with_agg(mut self, agg: AggConfig) -> Self {
        self.agg = Some(agg);
        self
    }

    /// Install the online race/deadlock checker (overriding
    /// `RUPCXX_CHECK`).
    pub fn with_check(mut self, check: CheckConfig) -> Self {
        self.check = Some(check);
        self
    }

    /// Enable the software read cache for remote gets (overriding
    /// `RUPCXX_CACHE`).
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Enable the causal cross-rank profiler (overriding `RUPCXX_PROF`).
    pub fn with_prof(mut self, prof: ProfConfig) -> Self {
        self.prof = Some(prof);
        self
    }

    /// Install a controlled AM delivery schedule (overriding
    /// `RUPCXX_SCHEDULE`).
    pub fn with_schedule(mut self, schedule: ScheduleConfig) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Select the transport conduit for `spmd_procs` (overriding
    /// `RUPCXX_CONDUIT`).
    pub fn with_conduit(mut self, conduit: ConduitSel) -> Self {
        self.conduit = Some(conduit);
        self
    }

    /// Inject synthetic wire timing into every remote operation.
    pub fn with_simnet(mut self, simnet: SimNet) -> Self {
        self.simnet = Some(simnet);
        self
    }

    /// Enable the concurrent thread-support mode (a progress worker
    /// thread per rank).
    pub fn with_progress_thread(mut self) -> Self {
        self.progress_thread = true;
        self
    }

    /// Set the per-rank segment size in bytes.
    pub fn segment_bytes(mut self, bytes: usize) -> Self {
        self.segment_bytes = bytes;
        self
    }

    /// Set the per-rank segment size in mebibytes.
    pub fn segment_mib(mut self, mib: usize) -> Self {
        self.segment_bytes = mib << 20;
        self
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig::new(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let c = RuntimeConfig::new(8).segment_mib(2);
        assert_eq!(c.ranks, 8);
        assert_eq!(c.segment_bytes, 2 << 20);
        assert!(!c.progress_thread);
        let d = RuntimeConfig::new(2)
            .segment_bytes(4096)
            .with_progress_thread();
        assert_eq!(d.segment_bytes, 4096);
        assert!(d.progress_thread);
    }

    #[test]
    fn with_faults_installs_plan() {
        let c = RuntimeConfig::new(2).with_faults(FaultPlan::new(42).drop(0.1));
        let plan = c.faults.expect("plan installed");
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.base.drop_ppm, 100_000);
    }

    #[test]
    fn with_agg_installs_thresholds() {
        let c = RuntimeConfig::new(2).with_agg(AggConfig::new().flush_count(8));
        let agg = c.agg.expect("aggregation installed");
        assert_eq!(agg.flush_count, 8);
    }

    #[test]
    fn with_cache_installs_config() {
        let c = RuntimeConfig::new(2).with_cache(CacheConfig::new().line_bytes(128));
        let cache = c.cache.expect("cache installed");
        assert_eq!(cache.line_bytes, 128);
    }
}
