//! Multi-process SPMD launch over a transport conduit.
//!
//! [`spmd`](crate::spmd()) maps ranks to OS threads of one process. This
//! module maps them to OS *processes* wired together by a `rupcxx-net`
//! conduit (`shm:`, `tcp:` or `uds:`), the way the paper's GASNet
//! deployment does. The launch protocol is re-exec:
//!
//! * the program calls [`spmd_procs`] exactly where it would call `spmd`;
//! * with no conduit configured (or `loopback`) it IS `spmd` — threads,
//!   one process, [`ProcOutcome::InProcess`];
//! * with a conduit configured and no `RUPCXX_PROC_RANK` in the
//!   environment, the call becomes the *launcher*: it spawns `ranks`
//!   copies of the current executable (same arguments) with
//!   `RUPCXX_PROC_RANK=r`, supervises them, and returns
//!   [`ProcOutcome::Launcher`] with the per-rank exit statuses;
//! * with `RUPCXX_PROC_RANK=r` set, the call runs rank `r`'s closure over
//!   the conduit and returns [`ProcOutcome::Rank`].
//!
//! The external launcher binary (`rupcxx-launch`) speaks the same
//! protocol: it just sets `RUPCXX_PROC_RANK`/`RUPCXX_CONDUIT` and spawns
//! an arbitrary program N times.

use crate::config::RuntimeConfig;
use crate::ctx::Ctx;
use crate::shared::{HandlerRegistry, Shared};
use crate::spmd::{export_check, export_prof, export_trace, spmd_with_handlers};
use rupcxx_net::{ConduitSel, Rank, RemoteConfig};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::process::{Command, ExitStatus};
use std::time::{Duration, Instant};

/// Environment variable carrying a child process's rank.
pub const PROC_RANK_ENV: &str = "RUPCXX_PROC_RANK";

/// How one [`spmd_procs`] call participated in the job.
#[derive(Debug)]
pub enum ProcOutcome<R> {
    /// No conduit (or `loopback`): the job ran as threads in this
    /// process; all ranks' results in rank order, exactly [`crate::spmd`].
    InProcess(Vec<R>),
    /// This process was the launcher parent: per-rank child exit
    /// statuses, indexed by rank.
    Launcher(Vec<ExitStatus>),
    /// This process was one rank of a multi-process job.
    Rank(Rank, R),
}

impl<R> ProcOutcome<R> {
    /// True when every rank succeeded (launcher: all children exited 0;
    /// otherwise trivially true — a failed rank panics instead).
    pub fn success(&self) -> bool {
        match self {
            ProcOutcome::Launcher(statuses) => statuses.iter().all(|s| s.success()),
            _ => true,
        }
    }
}

/// Launch an SPMD job that may span OS processes. See the module docs
/// for the protocol; `config.conduit` (usually seeded from
/// `RUPCXX_CONDUIT`) selects the transport.
pub fn spmd_procs<R, F>(config: RuntimeConfig, handlers: HandlerRegistry, body: F) -> ProcOutcome<R>
where
    R: Send,
    F: Fn(&Ctx) -> R + Send + Sync,
{
    let rank_env = std::env::var(PROC_RANK_ENV).ok();
    match (&config.conduit, rank_env) {
        (None | Some(ConduitSel::Loopback), None) => {
            ProcOutcome::InProcess(spmd_with_handlers(config, handlers, body))
        }
        (None | Some(ConduitSel::Loopback), Some(r)) => panic!(
            "{PROC_RANK_ENV}={r} is set but no multi-process conduit is \
             configured (RUPCXX_CONDUIT is unset or loopback)"
        ),
        (Some(sel), None) => ProcOutcome::Launcher(launch_children(&config, &sel.clone())),
        (Some(sel), Some(raw)) => {
            let me: Rank = raw
                .parse()
                .unwrap_or_else(|_| panic!("{PROC_RANK_ENV}={raw}: not a rank"));
            let sel = sel.clone();
            let (rank, result) = run_rank(config, handlers, body, me, sel);
            ProcOutcome::Rank(rank, result)
        }
    }
}

/// Parent half: spawn one copy of the current executable per rank and
/// supervise. When any child fails, the survivors are given a grace
/// period to notice the dead peer (`PeerUnreachable` through the conduit
/// `Closed` event) and are killed if they outlive it, so a launcher
/// never hangs on a crashed job.
fn launch_children(config: &RuntimeConfig, sel: &ConduitSel) -> Vec<ExitStatus> {
    let exe = std::env::current_exe().expect("launcher: current_exe");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut children = Vec::with_capacity(config.ranks);
    for rank in 0..config.ranks {
        let child = Command::new(&exe)
            .args(&args)
            .env(PROC_RANK_ENV, rank.to_string())
            .env("RUPCXX_CONDUIT", sel.to_string())
            .spawn()
            .unwrap_or_else(|e| panic!("launcher: spawn rank {rank}: {e}"));
        children.push((rank, child, None::<ExitStatus>));
    }
    const GRACE: Duration = Duration::from_secs(20);
    let mut failed_at: Option<Instant> = None;
    loop {
        let mut running = 0usize;
        for (rank, child, status) in children.iter_mut() {
            if status.is_some() {
                continue;
            }
            match child.try_wait() {
                Ok(Some(s)) => {
                    if !s.success() && failed_at.is_none() {
                        eprintln!("rupcxx launcher: rank {rank} exited with {s}");
                        failed_at = Some(Instant::now());
                    }
                    *status = Some(s);
                }
                Ok(None) => running += 1,
                Err(e) => panic!("launcher: wait rank {rank}: {e}"),
            }
        }
        if running == 0 {
            break;
        }
        if let Some(t0) = failed_at {
            if t0.elapsed() > GRACE {
                for (rank, child, status) in children.iter_mut() {
                    if status.is_none() {
                        eprintln!("rupcxx launcher: killing stuck rank {rank}");
                        let _ = child.kill();
                    }
                }
                failed_at = None; // killed children will report via try_wait
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    children
        .into_iter()
        .map(|(_, _, s)| s.expect("launcher: child status"))
        .collect()
}

/// Child half: run `body` as rank `me` of a conduit-connected job. The
/// structure mirrors `spmd_with_handlers` for one rank: optional progress
/// worker, catch_unwind around the closure, completion published even on
/// panic, post-closure drain (which runs the conduit FIN handshake), then
/// the trace/profiler/checker exports for this rank.
fn run_rank<R, F>(
    config: RuntimeConfig,
    handlers: HandlerRegistry,
    body: F,
    me: Rank,
    sel: ConduitSel,
) -> (Rank, R)
where
    R: Send,
    F: Fn(&Ctx) -> R + Send + Sync,
{
    assert!(
        me < config.ranks,
        "{PROC_RANK_ENV}={me} out of range for {} ranks",
        config.ranks
    );
    let shared = Shared::new_full(
        config.ranks,
        config.segment_bytes,
        config.simnet,
        handlers,
        config.trace.clone(),
        config.faults.clone(),
        config.agg.clone(),
        config.check.clone(),
        config.cache.clone(),
        config.prof.clone(),
        config.schedule.clone(),
        Some(RemoteConfig {
            my_rank: me,
            conduit: sel,
        }),
    );
    let body = &body;
    let progress_stop = std::sync::atomic::AtomicBool::new(false);
    let progress_stop = &progress_stop;
    let result = std::thread::scope(|scope| {
        if config.progress_thread {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name(format!("rupcxx-progress-{me}"))
                .spawn_scoped(scope, move || {
                    if let Some(ck) = shared.fabric.checker() {
                        rupcxx_check::set_current(ck.clone(), me);
                    }
                    let ctx = Ctx::new(me, shared);
                    while !progress_stop.load(std::sync::atomic::Ordering::Acquire) {
                        if ctx.advance() == 0 {
                            std::thread::yield_now();
                        }
                    }
                })
                .expect("failed to spawn progress thread");
        }
        if let Some(ck) = shared.fabric.checker() {
            rupcxx_check::set_current(ck.clone(), me);
        }
        let ctx = Ctx::new(me, shared.clone());
        let result = catch_unwind(AssertUnwindSafe(|| body(&ctx)));
        if result.is_ok() {
            // Completion must be published (and, here, broadcast to the
            // peer processes) even while they are mid-closure.
            ctx.mark_complete();
            ctx.drain_until_all_complete();
        }
        progress_stop.store(true, std::sync::atomic::Ordering::Release);
        match result {
            Ok(v) => v,
            // A panicking rank skips the drain: its peers detect the
            // dead link via the conduit's Closed event instead of a FIN.
            Err(payload) => resume_unwind(payload),
        }
    });
    export_trace(&config, &shared);
    export_prof(&config, &shared);
    export_check(&shared);
    (me, result)
}
