//! Teams: groups of ranks with their own collectives and group `async`.
//!
//! The paper's `async(place)` accepts "a single thread ID or a group of
//! threads" (§III-G); production UPC++ grew this into first-class teams
//! with `team_split`. A [`Team`] is an ordered subset of the world's
//! ranks; members can run team-scoped barriers, broadcasts, reductions
//! and gathers that touch only team members, and spawn asyncs on every
//! member at once.
//!
//! Teams are created collectively by [`Ctx::team_world`] /
//! [`Team::split`] and hold a private mailbox domain, so concurrent
//! collectives on disjoint teams never interfere.

use crate::collectives::{collect, deposit};
use crate::ctx::Ctx;
use rupcxx_net::{Pod, Rank};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An ordered group of ranks (a per-rank handle; each member holds one).
pub struct Team {
    /// World ranks of the members, in team order.
    members: Arc<[Rank]>,
    /// This rank's index within `members`.
    my_index: usize,
    /// Private mailbox domain (0 is the world's).
    domain: u64,
    /// Team-local collective sequence counter.
    seq: AtomicU64,
    /// Counter for ids of teams split off this one.
    next_child: AtomicU64,
}

fn mix(a: u64, b: u64) -> u64 {
    // SplitMix-style mixing for child-domain ids.
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) | 1 // never 0 (the world domain)
}

impl Ctx {
    /// The team of all ranks, in rank order. Cheap; not collective.
    pub fn team_world(&self) -> Team {
        Team {
            members: (0..self.ranks()).collect::<Vec<_>>().into(),
            my_index: self.rank(),
            // A fixed private domain, distinct from the Ctx collectives'
            // domain 0. NOTE: as with MPI communicators, create one handle
            // per team per rank and reuse it; interleaving collectives of
            // two handles to the same team is unsupported.
            domain: mix(0x57_4F_52_4C_44, 0), // "WORLD"
            seq: AtomicU64::new(0),
            next_child: AtomicU64::new(0),
        }
    }
}

impl Team {
    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// My index within the team (the team-relative rank).
    pub fn my_index(&self) -> usize {
        self.my_index
    }

    /// World rank of team member `i`.
    pub fn member(&self, i: usize) -> Rank {
        self.members[i]
    }

    /// All members, in team order.
    pub fn members(&self) -> &[Rank] {
        &self.members
    }

    /// True when the calling rank's handle belongs to the same split
    /// generation (same domain) as `other`'s — for diagnostics.
    pub fn same_team(&self, other: &Team) -> bool {
        self.domain == other.domain && self.members == other.members
    }

    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Collectively split this team by `color`: members with equal colors
    /// form new sub-teams, ordered by `(key, world rank)`. Every member of
    /// `self` must call. Mirrors `MPI_Comm_split` / UPC++ `team::split`.
    pub fn split(&self, ctx: &Ctx, color: u64, key: u64) -> Team {
        // Gather (color, key, world_rank) from every member via the
        // team's own collective machinery.
        let triples = self.allgatherv(ctx, &[color, key, ctx.rank() as u64]);
        let mut mine: Vec<(u64, u64)> = triples
            .chunks_exact(3)
            .filter(|c| c[0] == color)
            .map(|c| (c[1], c[2]))
            .collect();
        mine.sort_unstable();
        let members: Vec<Rank> = mine.iter().map(|&(_, r)| r as Rank).collect();
        let my_index = members
            .iter()
            .position(|&r| r == ctx.rank())
            .expect("caller is in its own color class");
        // Child domain: deterministic on (parent domain, split#, color) —
        // identical on every member because all members see the same
        // parent split counter value.
        let split_no = self.next_child.fetch_add(1, Ordering::Relaxed);
        let domain = mix(mix(self.domain, split_no), color);
        Team {
            members: members.into(),
            my_index,
            domain,
            seq: AtomicU64::new(0),
            next_child: AtomicU64::new(0),
        }
    }

    /// Team barrier (dissemination over the member list).
    pub fn barrier(&self, ctx: &Ctx) {
        let n = self.size();
        if n == 1 {
            return;
        }
        let seq = self.next_seq();
        let mut round = 0u64;
        let mut dist = 1usize;
        while dist < n {
            let dst = self.members[(self.my_index + dist) % n];
            deposit(
                ctx,
                self.domain,
                dst,
                seq.wrapping_mul(1024) + round,
                Vec::new(),
            );
            let _ = collect(ctx, self.domain, seq.wrapping_mul(1024) + round, 1);
            round += 1;
            dist <<= 1;
        }
    }

    /// Team broadcast from team-relative `root` (binomial tree).
    pub fn broadcast<T: Pod>(&self, ctx: &Ctx, root: usize, value: T) -> T {
        let n = self.size();
        let seq = self.next_seq();
        if n == 1 {
            return value;
        }
        let rel = (self.my_index + n - root) % n;
        let mut payload = value.to_bytes();
        let mut mask = 1usize;
        while mask < n {
            if rel & mask != 0 {
                let key = seq.wrapping_mul(1024) + mask.trailing_zeros() as u64;
                let mut arrivals = collect(ctx, self.domain, key, 1);
                payload = arrivals.pop().expect("team broadcast arrival").1;
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if rel & mask == 0 && rel + mask < n {
                let dst = self.members[(rel + mask + root) % n];
                let key = seq.wrapping_mul(1024) + mask.trailing_zeros() as u64;
                deposit(ctx, self.domain, dst, key, payload.clone());
            }
            mask >>= 1;
        }
        T::read_from(&payload)
    }

    /// Team reduction to team-relative `root`; `Some` at the root.
    pub fn reduce<T: Pod>(
        &self,
        ctx: &Ctx,
        root: usize,
        value: T,
        op: impl Fn(T, T) -> T,
    ) -> Option<T> {
        let n = self.size();
        let seq = self.next_seq();
        if n == 1 {
            return Some(value);
        }
        let rel = (self.my_index + n - root) % n;
        let mut acc = value;
        let mut mask = 1usize;
        while mask < n {
            let key = seq.wrapping_mul(1024) + mask.trailing_zeros() as u64;
            if rel & mask != 0 {
                let dst = self.members[(rel - mask + root) % n];
                deposit(ctx, self.domain, dst, key, acc.to_bytes());
                return None;
            }
            if rel + mask < n {
                let mut arrivals = collect(ctx, self.domain, key, 1);
                let contrib = T::read_from(&arrivals.pop().expect("team reduce arrival").1);
                acc = op(acc, contrib);
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// Team allreduce.
    pub fn allreduce<T: Pod>(&self, ctx: &Ctx, value: T, op: impl Fn(T, T) -> T) -> T {
        let r = self.reduce(ctx, 0, value, op);
        self.broadcast(ctx, 0, r.unwrap_or(value))
    }

    /// Team all-gather of a Pod slice, concatenated in team order.
    pub fn allgatherv<T: Pod>(&self, ctx: &Ctx, values: &[T]) -> Vec<T> {
        let n = self.size();
        let seq = self.next_seq();
        let key = seq.wrapping_mul(1024);
        let payload = rupcxx_net::pod::pack_slice(values);
        for &dst in self.members.iter() {
            deposit(ctx, self.domain, dst, key, payload.clone());
        }
        let mut arrivals = collect(ctx, self.domain, key, n);
        // Order by team index, not world rank.
        arrivals.sort_by_key(|&(src, _)| {
            self.members
                .iter()
                .position(|&m| m == src)
                .expect("sender is a member")
        });
        let mut out = Vec::new();
        for (_, b) in arrivals {
            out.extend(rupcxx_net::pod::unpack_slice::<T>(&b));
        }
        out
    }

    /// Spawn `task` on every member (the group-`place` form of the
    /// paper's `async`); completion is awaited by the surrounding
    /// `finish` scope.
    pub fn spawn_all(
        &self,
        fs: &crate::FinishScope<'_>,
        task: impl Fn(&Ctx) + Clone + Send + 'static,
    ) {
        for &m in self.members.iter() {
            let t = task.clone();
            fs.spawn(m, move |c| t(c));
        }
    }
}

impl std::fmt::Debug for Team {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Team")
            .field("size", &self.size())
            .field("my_index", &self.my_index)
            .field("domain", &self.domain)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmd::spmd;
    use crate::RuntimeConfig;
    use std::sync::atomic::AtomicUsize;

    fn cfg(n: usize) -> RuntimeConfig {
        RuntimeConfig::new(n).segment_bytes(1 << 14)
    }

    #[test]
    fn world_team_mirrors_ranks() {
        spmd(cfg(4), |ctx| {
            let w = ctx.team_world();
            assert_eq!(w.size(), 4);
            assert_eq!(w.my_index(), ctx.rank());
            assert_eq!(w.members(), &[0, 1, 2, 3]);
        });
    }

    #[test]
    fn split_even_odd_and_team_allreduce() {
        let out = spmd(cfg(6), |ctx| {
            let w = ctx.team_world();
            let color = (ctx.rank() % 2) as u64;
            let t = w.split(ctx, color, ctx.rank() as u64);
            let sum = t.allreduce(ctx, ctx.rank() as u64, |a, b| a + b);
            (t.size(), t.my_index(), sum)
        });
        // Evens: 0+2+4 = 6; odds: 1+3+5 = 9.
        for (r, &(size, idx, sum)) in out.iter().enumerate() {
            assert_eq!(size, 3);
            assert_eq!(idx, r / 2);
            assert_eq!(sum, if r % 2 == 0 { 6 } else { 9 });
        }
    }

    #[test]
    fn split_key_reorders_members() {
        let out = spmd(cfg(4), |ctx| {
            let w = ctx.team_world();
            // Reverse order via descending keys.
            let t = w.split(ctx, 0, (ctx.ranks() - ctx.rank()) as u64);
            (t.my_index(), t.members().to_vec())
        });
        for (r, (idx, members)) in out.into_iter().enumerate() {
            assert_eq!(members, vec![3, 2, 1, 0]);
            assert_eq!(idx, 3 - r);
        }
    }

    #[test]
    fn team_broadcast_and_reduce_with_offset_roots() {
        let out = spmd(cfg(5), |ctx| {
            let w = ctx.team_world();
            // One team of the top three ranks; others form a second team.
            let top = ctx.rank() >= 2;
            let t = w.split(ctx, u64::from(top), ctx.rank() as u64);
            let v = t.broadcast(ctx, t.size() - 1, ctx.rank() as u64 * 100);
            let m = t.reduce(ctx, 0, ctx.rank() as u64, u64::max);
            (v, m, t.size())
        });
        // Team {0,1}: root idx 1 → rank 1 broadcasts 100; max at idx0=rank0.
        assert_eq!(out[0], (100, Some(1), 2));
        assert_eq!(out[1], (100, None, 2));
        // Team {2,3,4}: root idx 2 → rank 4 broadcasts 400; max at rank 2.
        assert_eq!(out[2], (400, Some(4), 3));
        assert_eq!(out[3], (400, None, 3));
        assert_eq!(out[4], (400, None, 3));
    }

    #[test]
    fn concurrent_collectives_on_disjoint_teams_do_not_interfere() {
        // Two disjoint teams hammer allreduce concurrently; domains keep
        // their mailboxes separate.
        let out = spmd(cfg(6), |ctx| {
            let w = ctx.team_world();
            let t = w.split(ctx, (ctx.rank() % 3) as u64, 0);
            let mut acc = 0u64;
            for i in 0..50 {
                acc = acc.wrapping_add(t.allreduce(ctx, ctx.rank() as u64 + i, |a, b| a + b));
            }
            acc
        });
        // Teams: {0,3}, {1,4}, {2,5}. Σ_i (r + r' + 2i) for i in 0..50.
        let expect = |a: u64, b: u64| (0..50u64).map(|i| a + b + 2 * i).sum::<u64>();
        assert_eq!(out[0], expect(0, 3));
        assert_eq!(out[3], expect(0, 3));
        assert_eq!(out[1], expect(1, 4));
        assert_eq!(out[2], expect(2, 5));
    }

    #[test]
    fn nested_splits() {
        let out = spmd(cfg(8), |ctx| {
            let w = ctx.team_world();
            let half = w.split(ctx, (ctx.rank() / 4) as u64, ctx.rank() as u64);
            let quarter = half.split(ctx, (ctx.rank() % 4 / 2) as u64, ctx.rank() as u64);
            quarter.allreduce(ctx, 1u64, |a, b| a + b)
        });
        assert!(out.iter().all(|&v| v == 2), "{out:?}");
    }

    #[test]
    fn team_spawn_all_runs_on_each_member() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        spmd(cfg(4), move |ctx| {
            let w = ctx.team_world();
            let t = w.split(ctx, u64::from(ctx.rank() < 2), 0);
            if ctx.rank() == 0 {
                let h = h.clone();
                ctx.finish(|fs| {
                    t.spawn_all(fs, move |tctx| {
                        assert!(tctx.rank() < 2);
                        h.fetch_add(1, Ordering::SeqCst);
                    });
                });
            }
            ctx.barrier();
        });
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn singleton_team_operations() {
        spmd(cfg(3), |ctx| {
            let w = ctx.team_world();
            let solo = w.split(ctx, ctx.rank() as u64, 0);
            assert_eq!(solo.size(), 1);
            solo.barrier(ctx);
            assert_eq!(solo.broadcast(ctx, 0, 7u64), 7);
            assert_eq!(solo.allreduce(ctx, 5u64, |a, b| a + b), 5);
            assert_eq!(
                solo.allgatherv(ctx, &[ctx.rank() as u64]),
                vec![ctx.rank() as u64]
            );
        });
    }
}
