//! First-fit free-list allocator over a rank's segment.
//!
//! Backs `rupcxx::allocate<T>(rank, n)`. All blocks are 8-byte aligned so
//! that word-granular RMA fast paths apply, and adjacent free blocks are
//! coalesced on free. The allocator hands out *offsets* into the segment;
//! typed global pointers are layered on top by `rupcxx`.

/// Allocation failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfSegmentMemory {
    /// Bytes requested (after alignment rounding).
    pub requested: usize,
    /// Largest currently available contiguous block.
    pub largest_free: usize,
}

impl std::fmt::Display for OutOfSegmentMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of segment memory: requested {} bytes, largest free block {} bytes",
            self.requested, self.largest_free
        )
    }
}

impl std::error::Error for OutOfSegmentMemory {}

const ALIGN: usize = 8;

/// A first-fit free-list allocator handing out byte offsets.
#[derive(Debug)]
pub struct SegAllocator {
    /// Sorted, coalesced list of free `(offset, len)` blocks.
    free: Vec<(usize, usize)>,
    /// Size of each live allocation, keyed by offset (for free()).
    live: std::collections::HashMap<usize, usize>,
    capacity: usize,
}

impl SegAllocator {
    /// Allocator over `[0, capacity)`.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity - capacity % ALIGN;
        SegAllocator {
            free: if cap > 0 { vec![(0, cap)] } else { vec![] },
            live: std::collections::HashMap::new(),
            capacity: cap,
        }
    }

    /// Total managed bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn in_use(&self) -> usize {
        self.live.values().sum()
    }

    /// Number of live allocations.
    pub fn live_blocks(&self) -> usize {
        self.live.len()
    }

    /// Allocate `size` bytes (rounded up to 8-byte granularity).
    /// Zero-size requests consume one granule so each allocation has a
    /// distinct offset.
    pub fn alloc(&mut self, size: usize) -> Result<usize, OutOfSegmentMemory> {
        let size = size.max(1).div_ceil(ALIGN) * ALIGN;
        for i in 0..self.free.len() {
            let (off, len) = self.free[i];
            if len >= size {
                if len == size {
                    self.free.remove(i);
                } else {
                    self.free[i] = (off + size, len - size);
                }
                self.live.insert(off, size);
                return Ok(off);
            }
        }
        Err(OutOfSegmentMemory {
            requested: size,
            largest_free: self.free.iter().map(|&(_, l)| l).max().unwrap_or(0),
        })
    }

    /// Free a block previously returned by [`SegAllocator::alloc`].
    /// Panics on double free or a foreign offset.
    pub fn free(&mut self, offset: usize) {
        let len = self
            .live
            .remove(&offset)
            .unwrap_or_else(|| panic!("free of unallocated offset {offset}"));
        // Insert keeping the list sorted, then coalesce with neighbours.
        let pos = self.free.partition_point(|&(o, _)| o < offset);
        self.free.insert(pos, (offset, len));
        // Coalesce with next.
        if pos + 1 < self.free.len() {
            let (o, l) = self.free[pos];
            let (no, nl) = self.free[pos + 1];
            if o + l == no {
                self.free[pos] = (o, l + nl);
                self.free.remove(pos + 1);
            }
        }
        // Coalesce with previous.
        if pos > 0 {
            let (po, pl) = self.free[pos - 1];
            let (o, l) = self.free[pos];
            if po + pl == o {
                self.free[pos - 1] = (po, pl + l);
                self.free.remove(pos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_distinct() {
        let mut a = SegAllocator::new(1024);
        let x = a.alloc(3).unwrap();
        let y = a.alloc(10).unwrap();
        assert_eq!(x % 8, 0);
        assert_eq!(y % 8, 0);
        assert_ne!(x, y);
        assert_eq!(a.live_blocks(), 2);
        assert_eq!(a.in_use(), 8 + 16);
    }

    #[test]
    fn exhausts_and_recovers() {
        let mut a = SegAllocator::new(64);
        let x = a.alloc(64).unwrap();
        let err = a.alloc(8).unwrap_err();
        assert_eq!(err.largest_free, 0);
        a.free(x);
        assert!(a.alloc(64).is_ok());
    }

    #[test]
    fn free_coalesces_neighbours() {
        let mut a = SegAllocator::new(96);
        let x = a.alloc(32).unwrap();
        let y = a.alloc(32).unwrap();
        let z = a.alloc(32).unwrap();
        // Free in an order that requires both-side coalescing.
        a.free(x);
        a.free(z);
        a.free(y);
        // All memory back in a single block.
        assert_eq!(a.free, vec![(0, 96)]);
        assert!(a.alloc(96).is_ok());
    }

    #[test]
    #[should_panic(expected = "free of unallocated offset")]
    fn double_free_panics() {
        let mut a = SegAllocator::new(64);
        let x = a.alloc(8).unwrap();
        a.free(x);
        a.free(x);
    }

    #[test]
    fn zero_size_allocations_are_distinct() {
        let mut a = SegAllocator::new(64);
        let x = a.alloc(0).unwrap();
        let y = a.alloc(0).unwrap();
        assert_ne!(x, y);
    }

    #[test]
    fn error_reports_largest_block() {
        let mut a = SegAllocator::new(128);
        let _keep = a.alloc(64).unwrap();
        let hole = a.alloc(32).unwrap();
        let _tail = a.alloc(32).unwrap();
        a.free(hole);
        let err = a.alloc(64).unwrap_err();
        assert_eq!(err.largest_free, 32);
        assert_eq!(err.requested, 64);
    }
}
