//! The per-rank execution context and progress engine.

use crate::alloc::OutOfSegmentMemory;
use crate::shared::Shared;
use rupcxx_net::{AmMessage, AmPayload, BatchReader, Fabric, Frame, GlobalAddr, Rank};
use rupcxx_trace::clock::now_ns;
use rupcxx_trace::waitstate::{classify, pack_wait};
use rupcxx_trace::{EventKind, ProfEvent, ProfKind, RankTrace, WaitConstruct};
use rupcxx_util::Bytes;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// The SPMD context handed to each rank's closure: identifies the rank and
/// gives access to communication, progress, memory and synchronization.
///
/// `Ctx` is cheap to clone (a rank id plus an `Arc`).
#[derive(Clone)]
pub struct Ctx {
    rank: Rank,
    shared: Arc<Shared>,
}

impl Ctx {
    /// Build a context for `rank` (used by the launcher and by incoming-task
    /// trampolines).
    pub fn new(rank: Rank, shared: Arc<Shared>) -> Self {
        assert!(rank < shared.ranks(), "rank {rank} out of range");
        Ctx { rank, shared }
    }

    /// This rank's id — the paper's `MYTHREAD` / `myrank()`.
    #[inline]
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Total number of ranks — the paper's `THREADS` / `ranks()`.
    #[inline]
    pub fn ranks(&self) -> usize {
        self.shared.ranks()
    }

    /// The communication fabric.
    #[inline]
    pub fn fabric(&self) -> &Fabric {
        &self.shared.fabric
    }

    /// The job-wide shared state.
    #[inline]
    pub fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// This rank's trace/metrics state (disabled unless the job was
    /// launched with tracing configured — see `rupcxx-trace`).
    #[inline]
    pub fn trace(&self) -> &RankTrace {
        &self.shared.fabric.endpoint(self.rank).trace
    }

    /// Drive the progress engine: drain this rank's active-message inbox,
    /// executing each incoming task/handler. Returns the number of messages
    /// processed. This is the paper's `advance()` (§IV).
    ///
    /// Under fault injection this also drives the reliable layer for this
    /// rank's incoming links (releasing delayed frames, retransmitting
    /// lost ones); that work counts toward the return value so spinning
    /// waiters see progress. Without a fault plan the pump is a single
    /// early-return branch.
    pub fn advance(&self) -> usize {
        // Force out any partially filled aggregation buffers first (a
        // single relaxed load when nothing is buffered), so a rank that
        // blocks in `wait_until` cannot strand ops a peer is waiting on.
        let flushed = self.shared.fabric.flush_agg(self.rank);
        // With a controlled schedule installed, release every delivery the
        // schedule currently allows (any rank's engine may drive the
        // global order — delivery is just an inbox push); one untaken
        // branch otherwise.
        let scheduled = self.shared.fabric.pump_schedule();
        // Multi-process jobs: decode and dispatch frames the transport
        // conduit delivered (RMA requests, wire AMs, FIN handshakes);
        // one untaken branch on the in-process fabric.
        let arrived = self.shared.fabric.pump_conduit(self.rank);
        let pumped = self.shared.fabric.pump_incoming(self.rank) + flushed + scheduled + arrived;
        let ep = self.shared.fabric.endpoint(self.rank);
        if !ep.trace.enabled() {
            // Untraced fast path: identical to the pre-trace engine.
            let mut n = 0;
            while let Some(msg) = ep.try_recv() {
                self.execute(msg);
                n += 1;
            }
            return n + pumped;
        }
        self.advance_traced() + pumped
    }

    /// Run one incoming active message.
    #[inline]
    fn execute(&self, msg: AmMessage) {
        let AmMessage {
            src,
            payload,
            clock,
            prof,
        } = msg;
        // The checker's AM happens-before edge: everything this rank does
        // from here on is ordered after the sender's send-time snapshot.
        // Barriers, collectives, finish replies and async completions are
        // all built on AM tasks, so this one join covers them all.
        if let (Some(ck), Some(stamp)) = (self.shared.fabric.checker(), &clock) {
            ck.join(self.rank, stamp);
        }
        // The profiler's causal join: this delivery is tied to the span's
        // injection on the sending rank (a batch joins once per batch —
        // the batch is the wire-level causal unit).
        if let (Some(p), Some(span)) = (self.shared.fabric.prof(self.rank), prof) {
            p.record_recv(span);
        }
        match payload {
            AmPayload::Task(task) => task(),
            AmPayload::Handler { id, args } => {
                (self.shared.handlers.get(id).clone())(self, src, args)
            }
            AmPayload::Batch { frames, .. } => {
                // One inbox pop carries many logical ops: apply RMA
                // frames to our segment, dispatch handler frames in the
                // order the sender buffered them.
                for frame in BatchReader::new(&frames) {
                    if let Frame::Handler { id, args } = frame {
                        // Re-window the batch buffer around this frame's
                        // args: the handler sees a shared view, no copy.
                        let bytes = frames.slice_ref(args);
                        (self.shared.handlers.get(id).clone())(self, src, bytes);
                    } else {
                        self.shared
                            .fabric
                            .apply_frame(self.rank, src, clock.as_ref(), &frame);
                    }
                }
            }
        }
    }

    /// The traced progress engine: samples the inbox depth, wraps each
    /// handler in an `am_handle` span and the whole working drain in an
    /// `advance` span (`bytes` = messages processed).
    #[cold]
    fn advance_traced(&self) -> usize {
        let ep = self.shared.fabric.endpoint(self.rank);
        let trace = &ep.trace;
        let depth = ep.pending() as u64;
        let t0 = trace.start();
        let mut n = 0usize;
        while let Some(msg) = ep.try_recv() {
            let src = msg.src;
            let h0 = trace.start();
            self.execute(msg);
            trace.span(EventKind::AmHandle, src as i32, 0, h0);
            n += 1;
        }
        if n > 0 {
            trace.span(EventKind::Advance, -1, n as u64, t0);
        }
        trace.poll(depth, n as u64);
        n
    }

    /// Spin on `cond`, driving progress while waiting. All blocking
    /// operations in the runtime funnel through here so that a waiting rank
    /// keeps serving incoming active messages (required for deadlock
    /// freedom, as in GASNet polling mode).
    ///
    /// Every blocking construct — barriers, events, futures, `finish` —
    /// waits through this loop, so this is also where a fabric failure
    /// surfaces: if fault injection declares a peer unreachable, the wait
    /// panics with the `PeerUnreachable` report instead of spinning on a
    /// condition that can never become true.
    ///
    /// # Panics
    /// Panics when the fabric has recorded a delivery failure (fault
    /// injection only; see `rupcxx_net::PeerUnreachable`).
    /// It is also where the deadlock checker acts: deeply idle waits
    /// trigger its wait-for scan, and a confirmed deadlock panics the
    /// blocked rank with the finding (mirroring `PeerUnreachable`).
    pub fn wait_until(&self, mut cond: impl FnMut() -> bool) {
        let mut idle_spins = 0u32;
        loop {
            if self.shared.fabric.has_failed() {
                // Dump the flight recorder before dying (a no-op if
                // `mark_unreachable` already dumped, or profiling is off).
                self.shared.fabric.prof_dump_flight("peer unreachable");
                match self.shared.fabric.failure() {
                    Some(e) => panic!("{e}"),
                    None => panic!("fabric failed: peer unreachable"),
                }
            }
            if let Some(ck) = self.shared.fabric.checker() {
                if ck.is_aborted() {
                    let m = ck
                        .abort_message()
                        .unwrap_or_else(|| "rupcxx-check: deadlock detected".to_string());
                    self.shared.fabric.prof_dump_flight(&m);
                    panic!("{m}");
                }
            }
            if cond() {
                return;
            }
            if self.advance() > 0 {
                idle_spins = 0;
                continue;
            }
            idle_spins += 1;
            if idle_spins > 16 {
                std::thread::yield_now();
            }
            // Deep idle with the deadlock pass on: run the wait-for scan.
            // `quiet` asserts nothing is queued or in flight anywhere —
            // scans while traffic exists can never confirm a deadlock.
            if idle_spins.is_multiple_of(2048) {
                if let Some(ck) = self.shared.fabric.checker() {
                    if ck.deadlock_on() {
                        let n = self.ranks();
                        let quiet = (0..n).all(|r| {
                            self.shared.fabric.endpoint(r).pending() == 0
                                && self.shared.fabric.links_quiescent(r)
                        });
                        ck.maybe_scan(quiet);
                    }
                }
            }
        }
    }

    /// [`Ctx::wait_until`] with wait-state attribution: when the profiler
    /// is on and the wait actually blocks, the elapsed time is recorded
    /// under `construct` and classified Scalasca-style —
    /// `RetransmitStall` if the fabric retransmitted anything during the
    /// wait, `LateReceiver` for lock acquisition, `LateSender` when the
    /// wait ended because a message injected after the wait started
    /// finally arrived, `ProgressStarved` otherwise. Blocking constructs
    /// other than the barrier (which wraps its whole episode itself)
    /// funnel through here.
    pub(crate) fn wait_profiled(&self, construct: WaitConstruct, mut cond: impl FnMut() -> bool) {
        let fabric = &self.shared.fabric;
        let Some(p) = fabric.prof(self.rank) else {
            return self.wait_until(cond);
        };
        if cond() {
            return; // Satisfied immediately: nothing blocked, no record.
        }
        let t0 = now_ns();
        let retx0 = fabric.total_retransmits();
        let joined0 = p.msgs_joined.load(Ordering::Relaxed);
        self.wait_until(cond);
        let dur = now_ns().saturating_sub(t0);
        let state = classify(
            construct,
            fabric.total_retransmits() - retx0,
            p.msgs_joined.load(Ordering::Relaxed) - joined0,
            p.last_inject_ns.load(Ordering::Relaxed),
            t0,
        );
        p.waits.record(construct, state, dur);
        p.ring.push(ProfEvent {
            seq: 0,
            ts_ns: t0,
            dur_ns: dur,
            span: 0,
            peer: -1,
            a: pack_wait(construct, state),
            kind: ProfKind::Wait,
        });
    }

    /// Send a task to run on rank `dst` the next time it drives progress.
    /// The low-level building block under `rupcxx::async_on`.
    pub fn send_task(&self, dst: Rank, task: impl FnOnce() + Send + 'static) {
        self.trace().instant(EventKind::TaskSpawn, dst as i32, 0);
        self.shared
            .fabric
            .send_am(self.rank, dst, AmPayload::Task(Box::new(task)));
    }

    /// Send a registered-handler active message with packed `args`.
    pub fn send_handler(&self, dst: Rank, id: crate::HandlerId, args: Bytes) {
        debug_assert!(
            (id as usize) < self.shared.handlers.len(),
            "unknown handler {id}"
        );
        self.shared
            .fabric
            .send_am(self.rank, dst, AmPayload::Handler { id, args });
    }

    /// Like [`Ctx::send_handler`], but eligible for per-destination
    /// aggregation: when the job was launched with `RuntimeConfig::agg`
    /// (or `RUPCXX_AGG`), the message is coalesced into `dst`'s batch
    /// buffer and delivered at the next flush point (threshold overflow,
    /// [`Ctx::advance`], [`Ctx::barrier`] or [`Ctx::agg_fence`]).
    /// Without aggregation this is exactly `send_handler`.
    pub fn send_handler_agg(&self, dst: Rank, id: crate::HandlerId, args: &[u8]) {
        debug_assert!(
            (id as usize) < self.shared.handlers.len(),
            "unknown handler {id}"
        );
        self.shared.fabric.am_buffered(self.rank, dst, id, args);
    }

    /// Flush this rank's aggregation buffers: every buffered op is sent
    /// now as one batch per destination. Returns the number of batches
    /// sent (0 when aggregation is off or nothing is buffered).
    pub fn agg_flush(&self) -> usize {
        self.shared.fabric.flush_agg(self.rank)
    }

    /// Completion fence for buffered operations: after this call every
    /// op this rank buffered has been *applied* at its target, on every
    /// fabric (fault-injected ones included).
    ///
    /// Flush, then a barrier (so all ranks have pushed their batches),
    /// then wait until our own links are quiescent and our inbox is
    /// drained, then a closing barrier (so no rank proceeds before all
    /// batches everywhere have executed).
    pub fn agg_fence(&self) {
        self.agg_flush();
        self.barrier();
        self.wait_profiled(WaitConstruct::Fence, || {
            self.shared.fabric.links_quiescent(self.rank)
                && self.shared.fabric.endpoint(self.rank).pending() == 0
        });
        self.barrier();
    }

    /// Allocate `bytes` bytes of globally addressable memory on `rank`
    /// (local or remote — remote allocation is the UPC++ feature absent
    /// from UPC and MPI, §III-C). Returns the global address.
    pub fn alloc_on(&self, rank: Rank, bytes: usize) -> Result<GlobalAddr, OutOfSegmentMemory> {
        if rank != self.rank {
            // In a multi-process job the peer's allocator lives in the
            // peer's address space; the local `allocators` entry is a
            // stub whose book-keeping the owner would never see.
            assert!(
                !self.shared.fabric.is_remote(),
                "alloc_on(rank {rank}) from rank {me}: remote allocation is not \
                 supported over a transport conduit — allocate symmetrically \
                 (every rank allocates its own segment in the same order)",
                me = self.rank,
            );
            // Remote allocation is mediated by the owner in the paper (an
            // AM round trip); account for that message pair.
            let stats = &self.shared.fabric.endpoint(self.rank).stats;
            stats.ams_sent.fetch_add(2, Ordering::Relaxed);
        }
        let offset = self.shared.allocators[rank].lock().alloc(bytes)?;
        Ok(GlobalAddr::new(rank, offset))
    }

    /// Free memory previously obtained from [`Ctx::alloc_on`]. Callable
    /// from any rank, as in the paper's `deallocate`.
    pub fn free(&self, addr: GlobalAddr) {
        if addr.rank() != self.rank {
            assert!(
                !self.shared.fabric.is_remote(),
                "free on rank {} from rank {}: remote allocation is not \
                 supported over a transport conduit",
                addr.rank(),
                self.rank,
            );
            let stats = &self.shared.fabric.endpoint(self.rank).stats;
            stats.ams_sent.fetch_add(2, Ordering::Relaxed);
        }
        self.shared.allocators[addr.rank()]
            .lock()
            .free(addr.offset());
    }

    /// Bytes currently allocated in `rank`'s segment.
    pub fn segment_in_use(&self, rank: Rank) -> usize {
        self.shared.allocators[rank].lock().in_use()
    }

    /// Mark this rank's SPMD closure complete (used by the launcher).
    pub(crate) fn mark_complete(&self) {
        if let Some(ck) = self.shared.fabric.checker() {
            ck.rank_completed(self.rank);
        }
        self.shared.completed.fetch_add(1, Ordering::AcqRel);
        // In-process jobs share one `completed` counter across all rank
        // threads; a multi-process rank must announce its completion to
        // every peer so each process's drain loop sees all N.
        if let Some(b) = self.shared.builtins {
            for dst in 0..self.ranks() {
                if dst != self.rank {
                    self.send_handler(dst, b.complete, Bytes::new());
                }
            }
        }
    }

    /// Serve progress until every rank has completed its SPMD closure —
    /// and, under fault injection or controlled scheduling, until no
    /// frame destined for this rank is still lost/held/buffered/parked.
    /// A rank exiting a barrier does *not* imply its peers stopped
    /// transmitting, so without the quiescence wait, end-of-job
    /// retransmit counts would be racy.
    pub(crate) fn drain_until_all_complete(&self) {
        let n = self.ranks();
        self.wait_until(|| self.shared.completed.load(Ordering::Acquire) >= n);
        // Every closure has returned: no further sends will satisfy an
        // unconsumed schedule pick, so switch the controlled scheduler
        // into drain mode before waiting for quiescence — this is what
        // makes teardown schedule-agnostic (a stale pick can't hang it).
        // No-op without a schedule.
        self.shared.fabric.sched_finish();
        self.wait_until(|| self.shared.fabric.links_quiescent(self.rank));
        // One final drain: tasks may have been enqueued concurrently with
        // the last completion.
        self.advance();
        // Multi-process jobs: run the conduit FIN/FIN_ACK handshake —
        // every peer confirms it received all our data frames and we
        // confirm theirs — then tear the transport down. No-op on the
        // in-process fabric.
        self.shared.fabric.conduit_teardown(self.rank);
    }
}

impl std::fmt::Debug for Ctx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("rank", &self.rank)
            .field("ranks", &self.ranks())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared::HandlerRegistry;
    use std::sync::atomic::AtomicUsize;

    fn two_rank_shared() -> Arc<Shared> {
        Shared::new(2, 1 << 16, HandlerRegistry::new())
    }

    #[test]
    fn send_task_executes_on_advance() {
        let sh = two_rank_shared();
        let c0 = Ctx::new(0, sh.clone());
        let c1 = Ctx::new(1, sh);
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        c0.send_task(1, move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 0);
        assert_eq!(c1.advance(), 1);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn handler_messages_dispatch() {
        let mut reg = HandlerRegistry::new();
        type Seen = rupcxx_util::sync::Mutex<Vec<(Rank, Vec<u8>)>>;
        let seen: Arc<Seen> = Arc::default();
        let s2 = seen.clone();
        reg.register(move |ctx, src, args| {
            assert_eq!(ctx.rank(), 1);
            s2.lock().push((src, args.to_vec()));
        });
        let sh = Shared::new(2, 4096, reg);
        let c0 = Ctx::new(0, sh.clone());
        let c1 = Ctx::new(1, sh);
        c0.send_handler(1, 0, Bytes::from_static(&[9, 8]));
        c1.advance();
        assert_eq!(*seen.lock(), vec![(0usize, vec![9, 8])]);
    }

    #[test]
    fn alloc_local_and_remote() {
        let sh = two_rank_shared();
        let c0 = Ctx::new(0, sh);
        let local = c0.alloc_on(0, 64).unwrap();
        let remote = c0.alloc_on(1, 64).unwrap();
        assert_eq!(local.rank(), 0);
        assert_eq!(remote.rank(), 1);
        assert_eq!(c0.segment_in_use(1), 64);
        c0.free(remote);
        assert_eq!(c0.segment_in_use(1), 0);
        c0.free(local);
    }

    #[test]
    fn wait_until_serves_progress() {
        let sh = two_rank_shared();
        let c0 = Ctx::new(0, sh.clone());
        let flag = Arc::new(AtomicUsize::new(0));
        // Rank 1 sends a task to rank 0; rank 0's wait_until must execute it.
        let c1 = Ctx::new(1, sh);
        let f2 = flag.clone();
        c1.send_task(0, move || {
            f2.store(1, Ordering::SeqCst);
        });
        let f3 = flag.clone();
        c0.wait_until(move || f3.load(Ordering::SeqCst) == 1);
        assert_eq!(flag.load(Ordering::SeqCst), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_rank_panics() {
        let sh = two_rank_shared();
        let _ = Ctx::new(5, sh);
    }
}
