//! Collective operations over active messages.
//!
//! The runtime implements the collectives the paper's benchmarks need:
//! binomial-tree broadcast and reduce (MPICH-style algorithms), allreduce,
//! rooted gather(v), and all-to-all exchange. All are built on a single
//! primitive — *deposit* a byte payload into the destination rank's
//! mailbox under a sequence key — which maps one-to-one onto AM traffic,
//! so the perf model sees realistic message counts.
//!
//! SPMD discipline: every rank must call the same collectives in the same
//! order (the usual MPI rule); sequence numbers are per-rank counters that
//! therefore agree across ranks.

use crate::ctx::Ctx;
use rupcxx_net::{pod, Pod, Rank};

/// Compose a mailbox key from the collective sequence number and a
/// sub-round tag (binomial round / barrier round).
fn coll_key(seq: u64, sub: u64) -> u64 {
    debug_assert!(sub < 1024);
    seq * 1024 + sub
}

/// The world team's mailbox domain.
pub(crate) const WORLD_DOMAIN: u64 = 0;

/// Deposit `bytes` into `dst`'s mailbox under `(domain, key)` (AM when
/// remote).
pub(crate) fn deposit(ctx: &Ctx, domain: u64, dst: Rank, key: u64, bytes: Vec<u8>) {
    let me = ctx.rank();
    if dst == me {
        ctx.shared().mailboxes[me].deposit(domain, key, me, bytes);
        return;
    }
    // Multi-process jobs cannot ship a boxed closure: use the registered
    // builtin deposit handler, whose id + packed args cross the wire.
    if let Some(b) = ctx.shared().builtins {
        let mut args = Vec::with_capacity(16 + bytes.len());
        args.extend_from_slice(&domain.to_le_bytes());
        args.extend_from_slice(&key.to_le_bytes());
        args.extend_from_slice(&bytes);
        ctx.send_handler(dst, b.deposit, rupcxx_util::Bytes::from(args));
        return;
    }
    let shared = ctx.shared().clone();
    ctx.send_task(dst, move || {
        shared.mailboxes[dst].deposit(domain, key, me, bytes);
    });
}

/// Wait for `count` arrivals under `(domain, key)` in this rank's
/// mailbox, then remove and return them.
pub(crate) fn collect(ctx: &Ctx, domain: u64, key: u64, count: usize) -> Vec<(Rank, Vec<u8>)> {
    let me = ctx.rank();
    ctx.wait_until(|| ctx.shared().mailboxes[me].arrived(domain, key) >= count);
    ctx.shared().mailboxes[me].take(domain, key)
}

impl Ctx {
    /// Binomial-tree broadcast of a Pod value from `root` to all ranks.
    pub fn broadcast<T: Pod>(&self, root: Rank, value: T) -> T {
        let bytes = self.broadcast_bytes(root, value.to_bytes());
        T::read_from(&bytes)
    }

    /// Broadcast a byte payload from `root` (binomial tree).
    pub fn broadcast_bytes(&self, root: Rank, value: Vec<u8>) -> Vec<u8> {
        let n = self.ranks();
        let seq = self.shared().next_coll_seq(self.rank());
        if n == 1 {
            return value;
        }
        let rel = (self.rank() + n - root) % n;
        let mut payload = value;
        // Receive phase: wait for the message from the parent.
        let mut mask = 1usize;
        while mask < n {
            if rel & mask != 0 {
                let key = coll_key(seq, mask.trailing_zeros() as u64);
                let mut arrivals = collect(self, WORLD_DOMAIN, key, 1);
                payload = arrivals.pop().expect("broadcast arrival").1;
                break;
            }
            mask <<= 1;
        }
        // Send phase: forward to children at decreasing masks.
        mask >>= 1;
        while mask > 0 {
            if rel & mask == 0 && rel + mask < n {
                let dst = (rel + mask + root) % n;
                let key = coll_key(seq, mask.trailing_zeros() as u64);
                deposit(self, WORLD_DOMAIN, dst, key, payload.clone());
            }
            mask >>= 1;
        }
        payload
    }

    /// Binomial-tree reduction of a Pod value to `root`. Returns
    /// `Some(result)` at the root and `None` elsewhere. `op` must be
    /// associative and commutative.
    pub fn reduce<T: Pod>(&self, root: Rank, value: T, op: impl Fn(T, T) -> T) -> Option<T> {
        let n = self.ranks();
        let seq = self.shared().next_coll_seq(self.rank());
        if n == 1 {
            return Some(value);
        }
        let rel = (self.rank() + n - root) % n;
        let mut acc = value;
        let mut mask = 1usize;
        while mask < n {
            if rel & mask != 0 {
                // Send accumulated value to the parent and stop.
                let dst = (rel - mask + root) % n;
                let key = coll_key(seq, mask.trailing_zeros() as u64);
                deposit(self, WORLD_DOMAIN, dst, key, acc.to_bytes());
                return None;
            }
            if rel + mask < n {
                // Receive the child's contribution and fold it in.
                let key = coll_key(seq, mask.trailing_zeros() as u64);
                let mut arrivals = collect(self, WORLD_DOMAIN, key, 1);
                let contrib = T::read_from(&arrivals.pop().expect("reduce arrival").1);
                acc = op(acc, contrib);
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// Allreduce: binomial reduce to rank 0, then binomial broadcast.
    pub fn allreduce<T: Pod>(&self, value: T, op: impl Fn(T, T) -> T) -> T {
        let reduced = self.reduce(0, value, op);
        // Non-roots pass a placeholder; broadcast overwrites it.
        self.broadcast(0, reduced.unwrap_or(value))
    }

    /// Gather variable-size byte payloads at `root`. Returns
    /// `Some(payloads_by_rank)` at the root, `None` elsewhere — the paper's
    /// `gatherv` (used by the Embree benchmark's final image gather).
    pub fn gatherv(&self, root: Rank, bytes: Vec<u8>) -> Option<Vec<Vec<u8>>> {
        let n = self.ranks();
        let seq = self.shared().next_coll_seq(self.rank());
        let key = coll_key(seq, 0);
        deposit(self, WORLD_DOMAIN, root, key, bytes);
        if self.rank() != root {
            return None;
        }
        let mut arrivals = collect(self, WORLD_DOMAIN, key, n);
        arrivals.sort_by_key(|&(src, _)| src);
        Some(arrivals.into_iter().map(|(_, b)| b).collect())
    }

    /// Gather one Pod value per rank at `root`.
    pub fn gather<T: Pod>(&self, root: Rank, value: T) -> Option<Vec<T>> {
        self.gatherv(root, value.to_bytes())
            .map(|vs| vs.iter().map(|b| T::read_from(b)).collect())
    }

    /// All-to-all exchange of variable-size byte payloads:
    /// `input[d]` is sent to rank `d`; returns `output[s]` = payload from
    /// rank `s`. (Sample sort's splitter/count exchange.)
    pub fn exchange(&self, input: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        let n = self.ranks();
        assert_eq!(input.len(), n, "exchange needs one payload per rank");
        let seq = self.shared().next_coll_seq(self.rank());
        let key = coll_key(seq, 0);
        for (dst, payload) in input.into_iter().enumerate() {
            deposit(self, WORLD_DOMAIN, dst, key, payload);
        }
        let mut arrivals = collect(self, WORLD_DOMAIN, key, n);
        arrivals.sort_by_key(|&(src, _)| src);
        arrivals.into_iter().map(|(_, b)| b).collect()
    }

    /// All-gather a slice of Pod values: every rank contributes `values`,
    /// every rank receives all contributions concatenated in rank order.
    pub fn allgatherv<T: Pod>(&self, values: &[T]) -> Vec<T> {
        let n = self.ranks();
        let payload = pod::pack_slice(values);
        let input = vec![payload; n];
        let out = self.exchange(input);
        let mut all = Vec::new();
        for b in out {
            all.extend(pod::unpack_slice::<T>(&b));
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use crate::spmd::spmd;
    use crate::RuntimeConfig;

    fn cfg(n: usize) -> RuntimeConfig {
        RuntimeConfig::new(n).segment_bytes(4096)
    }

    #[test]
    fn broadcast_from_every_root() {
        for n in [1, 2, 3, 4, 7, 8] {
            for root in [0, n - 1, n / 2] {
                let out = spmd(cfg(n), move |ctx| {
                    let v = if ctx.rank() == root { 4242u64 } else { 0 };
                    ctx.broadcast(root, v)
                });
                assert!(out.iter().all(|&v| v == 4242), "n={n} root={root}");
            }
        }
    }

    #[test]
    fn reduce_sum_to_each_root() {
        for n in [1, 2, 5, 8] {
            for root in [0, n - 1] {
                let out = spmd(cfg(n), move |ctx| {
                    ctx.reduce(root, ctx.rank() as u64 + 1, |a, b| a + b)
                });
                let expect = (n * (n + 1) / 2) as u64;
                for (r, v) in out.iter().enumerate() {
                    if r == root {
                        assert_eq!(*v, Some(expect), "n={n} root={root}");
                    } else {
                        assert_eq!(*v, None);
                    }
                }
            }
        }
    }

    #[test]
    fn allreduce_min_and_max() {
        let out = spmd(cfg(6), |ctx| {
            let lo = ctx.allreduce(ctx.rank() as i64, i64::min);
            let hi = ctx.allreduce(ctx.rank() as i64, i64::max);
            (lo, hi)
        });
        assert!(out.iter().all(|&(lo, hi)| lo == 0 && hi == 5));
    }

    #[test]
    fn allreduce_f64_sum() {
        let out = spmd(cfg(4), |ctx| ctx.allreduce(0.5f64, |a, b| a + b));
        assert!(out.iter().all(|&v| (v - 2.0).abs() < 1e-12));
    }

    #[test]
    fn gatherv_collects_in_rank_order() {
        let out = spmd(cfg(4), |ctx| {
            let payload = vec![ctx.rank() as u8; ctx.rank() + 1];
            ctx.gatherv(2, payload)
        });
        for (r, res) in out.iter().enumerate() {
            if r == 2 {
                let v = res.as_ref().unwrap();
                assert_eq!(v.len(), 4);
                for (src, b) in v.iter().enumerate() {
                    assert_eq!(b.len(), src + 1);
                    assert!(b.iter().all(|&x| x == src as u8));
                }
            } else {
                assert!(res.is_none());
            }
        }
    }

    #[test]
    fn gather_typed() {
        let out = spmd(cfg(3), |ctx| ctx.gather(0, (ctx.rank() * 7) as u64));
        assert_eq!(out[0].as_ref().unwrap(), &vec![0u64, 7, 14]);
        assert!(out[1].is_none());
    }

    #[test]
    fn exchange_routes_payloads() {
        let out = spmd(cfg(4), |ctx| {
            let me = ctx.rank() as u8;
            let input: Vec<Vec<u8>> = (0..4).map(|d| vec![me, d as u8]).collect();
            ctx.exchange(input)
        });
        for (me, received) in out.iter().enumerate() {
            for (src, payload) in received.iter().enumerate() {
                assert_eq!(payload, &vec![src as u8, me as u8]);
            }
        }
    }

    #[test]
    fn allgatherv_concatenates() {
        let out = spmd(cfg(3), |ctx| {
            let vals = vec![ctx.rank() as u64; 2];
            ctx.allgatherv(&vals)
        });
        for v in out {
            assert_eq!(v, vec![0, 0, 1, 1, 2, 2]);
        }
    }
}
