//! Causal span propagation — the profiler's cross-rank backbone.
//!
//! Every AM/RMA/batch frame can carry a compact [`ProfSpan`]: the
//! injecting rank packed into the id's high bits plus the injection
//! timestamp. It piggybacks on `AmMessage` exactly the way the checker's
//! `Stamp` does, so it survives retransmits (the whole message rides the
//! limbo/lost queues) and aggregation (a batch is one sequenced frame).
//! On receipt the consuming rank *joins* the span: the profiler learns
//! when the newest message it absorbed was injected, which is what
//! wait-state classification needs to tell a late sender from a starved
//! progress engine.
//!
//! The per-rank [`ProfState`] owns a bounded seqlock ring of
//! [`ProfEvent`]s — the same stream feeds the offline critical-path pass
//! and the postmortem flight recorder. Everything here is optional
//! (`Option<ProfState>` on the endpoint) and costs one untaken branch
//! when `RUPCXX_PROF` is unset.

use crate::clock::now_ns;
use crate::waitstate::WaitStats;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default per-rank profiler ring capacity (events).
pub const DEFAULT_PROF_RING: usize = 1 << 14;

/// Default critical-path JSON output path.
pub const DEFAULT_PROF_PATH: &str = "rupcxx_prof.json";

/// A causal span id carried on the wire: the injecting rank in the top
/// 16 bits, a per-rank counter below, plus the injection timestamp.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProfSpan {
    /// `(origin rank) << 48 | per-rank counter`.
    pub id: u64,
    /// Injection time, ns since the trace epoch.
    pub inject_ns: u64,
}

impl ProfSpan {
    /// The rank that injected this span.
    pub fn origin(self) -> usize {
        (self.id >> 48) as usize
    }
}

/// What a profiler event records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ProfKind {
    /// AM/RMA frame injected (instant; `peer` = destination).
    Send,
    /// Frame received and joined to its span (instant; `peer` = origin).
    Recv,
    /// A blocking wait ended (span; `a` packs construct and state — see
    /// [`crate::waitstate::pack_wait`]).
    Wait,
    /// A barrier episode completed (`a` = barrier epoch on this rank).
    BarrierExit,
    /// The reliable layer retransmitted a frame (`a` = attempt number).
    Retransmit,
    /// An aggregation buffer was flushed (`a` = frames in the batch).
    Flush,
    /// A peer was declared unreachable (`peer` = the dead destination).
    Unreachable,
}

impl ProfKind {
    /// Stable name used by the flight recorder and exporters.
    pub fn name(self) -> &'static str {
        match self {
            ProfKind::Send => "send",
            ProfKind::Recv => "recv",
            ProfKind::Wait => "wait",
            ProfKind::BarrierExit => "barrier_exit",
            ProfKind::Retransmit => "retransmit",
            ProfKind::Flush => "flush",
            ProfKind::Unreachable => "unreachable",
        }
    }
}

/// One causal event in a rank's profiler stream.
#[derive(Clone, Copy, Debug)]
pub struct ProfEvent {
    /// Monotonic per-rank sequence number (ring claim index).
    pub seq: u64,
    /// Start timestamp, ns since the trace epoch.
    pub ts_ns: u64,
    /// Duration (0 for instants).
    pub dur_ns: u64,
    /// Span id involved (0 = none).
    pub span: u64,
    /// Peer rank, -1 when not applicable.
    pub peer: i32,
    /// Kind-dependent extra word (wait packing, epoch, attempt, frames).
    pub a: u64,
    /// Event kind.
    pub kind: ProfKind,
}

impl ProfEvent {
    const ZERO: ProfEvent = ProfEvent {
        seq: 0,
        ts_ns: 0,
        dur_ns: 0,
        span: 0,
        peer: -1,
        a: 0,
        kind: ProfKind::Send,
    };
}

struct ProfSlot {
    /// Seqlock version: odd while a writer owns the slot.
    version: AtomicU64,
    event: UnsafeCell<ProfEvent>,
}

/// Bounded seqlock ring of [`ProfEvent`]s — same protocol as
/// [`crate::ring::EventRing`], but carrying span ids.
pub struct ProfRing {
    slots: Box<[ProfSlot]>,
    claim: AtomicU64,
    dropped: AtomicU64,
}

// Slots are published via the per-slot seqlock protocol.
unsafe impl Sync for ProfRing {}

impl ProfRing {
    /// A ring holding up to `capacity` events (rounded up to at least 2).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2);
        ProfRing {
            slots: (0..capacity)
                .map(|_| ProfSlot {
                    version: AtomicU64::new(0),
                    event: UnsafeCell::new(ProfEvent::ZERO),
                })
                .collect(),
            claim: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever pushed.
    pub fn pushed(&self) -> u64 {
        self.claim.load(Ordering::Relaxed)
    }

    /// Record an event, stamping its sequence number. Lock-free.
    #[inline]
    pub fn push(&self, mut ev: ProfEvent) {
        let seq = self.claim.fetch_add(1, Ordering::Relaxed);
        ev.seq = seq;
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        let v = slot.version.load(Ordering::Acquire);
        if v & 1 == 1
            || slot
                .version
                .compare_exchange(v, v + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        unsafe { *slot.event.get() = ev };
        slot.version.store(v + 2, Ordering::Release);
    }

    /// Copy out surviving events, oldest first (torn slots skipped).
    pub fn snapshot(&self) -> Vec<ProfEvent> {
        let mut out = Vec::new();
        for slot in self.slots.iter() {
            let v0 = slot.version.load(Ordering::Acquire);
            if v0 == 0 || v0 & 1 == 1 {
                continue;
            }
            let ev = unsafe { *slot.event.get() };
            if slot.version.load(Ordering::Acquire) != v0 {
                continue;
            }
            out.push(ev);
        }
        out.sort_unstable_by_key(|e| e.seq);
        out
    }
}

impl std::fmt::Debug for ProfRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfRing")
            .field("capacity", &self.capacity())
            .field("pushed", &self.pushed())
            .finish()
    }
}

/// Profiler configuration, usually parsed from `RUPCXX_PROF`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfConfig {
    /// Critical-path JSON output path (None = [`DEFAULT_PROF_PATH`]).
    pub json_path: Option<String>,
    /// Per-rank profiler ring capacity (None = [`DEFAULT_PROF_RING`]).
    pub ring_capacity: Option<usize>,
}

impl ProfConfig {
    /// Profiling enabled with defaults.
    pub fn on() -> Self {
        ProfConfig::default()
    }

    /// Set the critical-path JSON output path.
    pub fn with_path(mut self, path: impl Into<String>) -> Self {
        self.json_path = Some(path.into());
        self
    }

    /// Set the per-rank profiler ring capacity.
    pub fn with_ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = Some(capacity);
        self
    }

    /// The JSON output path to use.
    pub fn path(&self) -> &str {
        self.json_path.as_deref().unwrap_or(DEFAULT_PROF_PATH)
    }

    /// Parse a `RUPCXX_PROF` value: `on[,path]` / `off`. `Ok(None)` means
    /// explicitly off; malformed values are `Err`.
    pub fn parse(raw: &str) -> Result<Option<Self>, String> {
        let mut parts = raw.splitn(2, ',');
        match parts.next().unwrap_or("").trim() {
            "on" | "1" | "true" => {}
            "" | "0" | "off" | "false" | "none" => {
                if raw.contains(',') {
                    return Err("output path given but profiling is off".to_string());
                }
                return Ok(None);
            }
            other => return Err(format!("unknown mode {other:?}")),
        }
        let json_path = match parts.next().map(str::trim) {
            Some("") => return Err("empty output path after ','".to_string()),
            p => p.map(String::from),
        };
        Ok(Some(ProfConfig {
            json_path,
            ring_capacity: None,
        }))
    }

    /// Read `RUPCXX_PROF` from the environment. Unset means disabled;
    /// malformed values abort with a clear message.
    pub fn from_env() -> Option<Self> {
        rupcxx_util::env::parse_env("RUPCXX_PROF", "on[,<path>]", ProfConfig::parse)
    }
}

/// Live per-rank profiler state. Owned by the fabric's `Endpoint`; every
/// hook starts with an `Option` check, so the disabled path is one
/// untaken branch.
#[derive(Debug)]
pub struct ProfState {
    /// This rank.
    pub rank: usize,
    /// Next span counter (combined with the rank for the wire id).
    next_span: AtomicU64,
    /// The causal event stream (critical path + flight recorder).
    pub ring: ProfRing,
    /// Injection timestamp of the newest remote span joined here.
    pub last_inject_ns: AtomicU64,
    /// Remote spans joined on this rank (messages absorbed).
    pub msgs_joined: AtomicU64,
    /// Frames this rank has seen retransmitted (as sender or initiator).
    pub retransmits: AtomicU64,
    /// Wait-state histograms, per construct and per state.
    pub waits: WaitStats,
    /// Total barrier episode time, ns (the attribution denominator).
    pub barrier_total_ns: AtomicU64,
    /// Barrier episodes completed on this rank.
    pub barrier_epoch: AtomicU64,
}

impl ProfState {
    /// Fresh state for `rank` per `config`.
    pub fn new(rank: usize, config: &ProfConfig) -> Self {
        crate::clock::init_epoch();
        ProfState {
            rank,
            next_span: AtomicU64::new(1),
            ring: ProfRing::new(config.ring_capacity.unwrap_or(DEFAULT_PROF_RING)),
            last_inject_ns: AtomicU64::new(0),
            msgs_joined: AtomicU64::new(0),
            retransmits: AtomicU64::new(0),
            waits: WaitStats::new(),
            barrier_total_ns: AtomicU64::new(0),
            barrier_epoch: AtomicU64::new(0),
        }
    }

    /// Allocate a wire span for a frame this rank is injecting now.
    #[inline]
    pub fn alloc_span(&self) -> ProfSpan {
        let n = self.next_span.fetch_add(1, Ordering::Relaxed);
        ProfSpan {
            id: ((self.rank as u64) << 48) | (n & ((1u64 << 48) - 1)),
            inject_ns: now_ns(),
        }
    }

    /// Record a frame injection (call with the span from [`alloc_span`]).
    pub fn record_send(&self, span: ProfSpan, dst: i32) {
        self.ring.push(ProfEvent {
            seq: 0,
            ts_ns: span.inject_ns,
            dur_ns: 0,
            span: span.id,
            peer: dst,
            a: 0,
            kind: ProfKind::Send,
        });
    }

    /// Join an arriving span to this rank: the receive is causally tied
    /// to the injection on `span.origin()`.
    pub fn record_recv(&self, span: ProfSpan) {
        self.last_inject_ns
            .fetch_max(span.inject_ns, Ordering::Relaxed);
        self.msgs_joined.fetch_add(1, Ordering::Relaxed);
        self.ring.push(ProfEvent {
            seq: 0,
            ts_ns: now_ns(),
            dur_ns: 0,
            span: span.id,
            peer: span.origin() as i32,
            a: 0,
            kind: ProfKind::Recv,
        });
    }

    /// Record a retransmission of `span` (0 = unknown) towards `dst` on
    /// transmission attempt `attempt`.
    pub fn record_retransmit(&self, span: u64, dst: i32, attempt: u64) {
        self.retransmits.fetch_add(1, Ordering::Relaxed);
        self.ring.push(ProfEvent {
            seq: 0,
            ts_ns: now_ns(),
            dur_ns: 0,
            span,
            peer: dst,
            a: attempt,
            kind: ProfKind::Retransmit,
        });
    }

    /// Record an instantaneous event of any kind.
    pub fn record_instant(&self, kind: ProfKind, peer: i32, a: u64) {
        self.ring.push(ProfEvent {
            seq: 0,
            ts_ns: now_ns(),
            dur_ns: 0,
            span: 0,
            peer,
            a,
            kind,
        });
    }

    /// Record a completed barrier episode and return its epoch.
    pub fn record_barrier_exit(&self, episode_ns: u64) -> u64 {
        self.barrier_total_ns
            .fetch_add(episode_ns, Ordering::Relaxed);
        let epoch = self.barrier_epoch.fetch_add(1, Ordering::Relaxed);
        self.ring.push(ProfEvent {
            seq: 0,
            ts_ns: now_ns(),
            dur_ns: 0,
            span: 0,
            peer: -1,
            a: epoch,
            kind: ProfKind::BarrierExit,
        });
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_id_packs_origin() {
        let cfg = ProfConfig::on();
        let p = ProfState::new(3, &cfg);
        let s = p.alloc_span();
        assert_eq!(s.origin(), 3);
        assert!(s.inject_ns > 0);
        let s2 = p.alloc_span();
        assert_ne!(s.id, s2.id);
        assert_eq!(s2.origin(), 3);
    }

    #[test]
    fn recv_joins_and_updates_inject_watermark() {
        let cfg = ProfConfig::on();
        let a = ProfState::new(0, &cfg);
        let b = ProfState::new(1, &cfg);
        let span = a.alloc_span();
        a.record_send(span, 1);
        b.record_recv(span);
        assert_eq!(b.msgs_joined.load(Ordering::Relaxed), 1);
        assert_eq!(b.last_inject_ns.load(Ordering::Relaxed), span.inject_ns);
        let evs = b.ring.snapshot();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, ProfKind::Recv);
        assert_eq!(evs[0].span, span.id);
        assert_eq!(evs[0].peer, 0);
    }

    #[test]
    fn ring_wraps_keeping_newest() {
        let cfg = ProfConfig::on().with_ring_capacity(8);
        let p = ProfState::new(0, &cfg);
        for i in 0..20u64 {
            p.record_instant(ProfKind::Flush, -1, i);
        }
        let evs = p.ring.snapshot();
        assert_eq!(evs.len(), 8);
        assert_eq!(evs.last().unwrap().a, 19);
        assert_eq!(p.ring.pushed(), 20);
    }

    #[test]
    fn barrier_exit_counts_epochs() {
        let cfg = ProfConfig::on();
        let p = ProfState::new(0, &cfg);
        assert_eq!(p.record_barrier_exit(100), 0);
        assert_eq!(p.record_barrier_exit(50), 1);
        assert_eq!(p.barrier_total_ns.load(Ordering::Relaxed), 150);
    }

    #[test]
    fn config_parser_accepts_and_rejects() {
        assert!(ProfConfig::parse("off").unwrap().is_none());
        assert!(ProfConfig::parse("").unwrap().is_none());
        assert!(ProfConfig::parse("0").unwrap().is_none());
        let c = ProfConfig::parse("on").unwrap().unwrap();
        assert_eq!(c.path(), DEFAULT_PROF_PATH);
        let c = ProfConfig::parse("on,prof.json").unwrap().unwrap();
        assert_eq!(c.path(), "prof.json");
        assert!(ProfConfig::parse("maybe").is_err());
        assert!(ProfConfig::parse("on,").is_err());
        assert!(ProfConfig::parse("off,x.json").is_err());
    }
}
