//! A lock-free, fixed-capacity ring buffer of trace events.
//!
//! One ring per rank. The common case is a single writer (the rank
//! thread), but concurrent mode adds a progress worker with the same rank
//! id, so writes must be thread-safe: a writer claims a slot with a
//! global `fetch_add` (which doubles as the event's monotonic sequence
//! number), flips the slot's version counter odd→even around the write
//! (a seqlock), and *drops* the event — counting it — if it collides with
//! a writer that lags a full ring behind. Readers only run at export time
//! and retry torn slots, so the hot path never blocks.

use crate::clock::now_ns;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// What happened. Spans carry a duration; instants have `dur_ns == 0`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// One-sided remote write (span; `bytes` = payload).
    Put,
    /// One-sided remote read (span; `bytes` = payload).
    Get,
    /// Active message sent (instant; `bytes` = packed args).
    AmSend,
    /// Active message executed by the progress engine (span).
    AmHandle,
    /// Async task enqueued towards `peer` (instant).
    TaskSpawn,
    /// One `advance()` call that did work (span; `bytes` = messages run).
    Advance,
    /// Barrier episode (span).
    Barrier,
    /// `Event::wait` block (span).
    EventWait,
    /// `finish` scope quiescence wait (span).
    FinishWait,
    /// Global lock acquisition, including the spin (span).
    LockAcquire,
    /// Frame retransmitted by the reliable AM layer (instant; fault
    /// injection only).
    AmRetransmit,
    /// Transmission attempt lost on the wire by the fault plan (instant).
    WireDrop,
    /// Duplicate arrival discarded by the dedup window (instant).
    AmDup,
    /// Aggregation buffer flushed as one batch AM (instant; `bytes` =
    /// number of logical frames the batch carries, `peer` = destination).
    BatchFlush,
    /// Software read-cache miss filled a line through the fabric
    /// (instant; `bytes` = line fill size, `peer` = owning rank).
    CacheFill,
    /// Remote get served from the software read cache (instant; `bytes`
    /// = bytes returned, `peer` = owning rank).
    CacheHit,
}

impl EventKind {
    /// Stable name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Put => "put",
            EventKind::Get => "get",
            EventKind::AmSend => "am_send",
            EventKind::AmHandle => "am_handle",
            EventKind::TaskSpawn => "task_spawn",
            EventKind::Advance => "advance",
            EventKind::Barrier => "barrier",
            EventKind::EventWait => "event_wait",
            EventKind::FinishWait => "finish_wait",
            EventKind::LockAcquire => "lock_acquire",
            EventKind::AmRetransmit => "am_retransmit",
            EventKind::WireDrop => "wire_drop",
            EventKind::AmDup => "am_dup",
            EventKind::BatchFlush => "batch_flush",
            EventKind::CacheFill => "cache_fill",
            EventKind::CacheHit => "cache_hit",
        }
    }

    /// Exporter category (Chrome trace `cat` field).
    pub fn category(self) -> &'static str {
        match self {
            EventKind::Put | EventKind::Get => "rma",
            EventKind::AmSend
            | EventKind::AmHandle
            | EventKind::TaskSpawn
            | EventKind::BatchFlush => "am",
            EventKind::Advance => "progress",
            EventKind::Barrier
            | EventKind::EventWait
            | EventKind::FinishWait
            | EventKind::LockAcquire => "sync",
            EventKind::AmRetransmit | EventKind::WireDrop | EventKind::AmDup => "fault",
            EventKind::CacheFill | EventKind::CacheHit => "cache",
        }
    }

    /// True for duration events, false for instants.
    pub fn is_span(self) -> bool {
        !matches!(
            self,
            EventKind::AmSend
                | EventKind::TaskSpawn
                | EventKind::AmRetransmit
                | EventKind::WireDrop
                | EventKind::AmDup
                | EventKind::BatchFlush
                | EventKind::CacheFill
                | EventKind::CacheHit
        )
    }
}

/// One recorded event. `peer` is the other rank involved (-1 = none).
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Monotonic per-rank sequence number (ring claim index).
    pub seq: u64,
    /// Start timestamp, ns since the trace epoch.
    pub ts_ns: u64,
    /// Duration in ns (0 for instants).
    pub dur_ns: u64,
    /// Bytes moved, messages processed, or 0 — kind-dependent.
    pub bytes: u64,
    /// Peer rank, -1 when not applicable.
    pub peer: i32,
    /// Event kind.
    pub kind: EventKind,
}

impl TraceEvent {
    const ZERO: TraceEvent = TraceEvent {
        seq: 0,
        ts_ns: 0,
        dur_ns: 0,
        bytes: 0,
        peer: -1,
        kind: EventKind::Put,
    };
}

struct Slot {
    /// Seqlock version: odd while a writer owns the slot; `version / 2`
    /// is the number of completed writes.
    version: AtomicU64,
    event: UnsafeCell<TraceEvent>,
}

/// The per-rank ring buffer.
pub struct EventRing {
    slots: Box<[Slot]>,
    claim: AtomicU64,
    dropped: AtomicU64,
}

// Slots are published via the per-slot seqlock protocol.
unsafe impl Sync for EventRing {}

impl EventRing {
    /// A ring holding up to `capacity` events (rounded up to at least 2).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2);
        EventRing {
            slots: (0..capacity)
                .map(|_| Slot {
                    version: AtomicU64::new(0),
                    event: UnsafeCell::new(TraceEvent::ZERO),
                })
                .collect(),
            claim: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever pushed (successfully claimed).
    pub fn pushed(&self) -> u64 {
        self.claim.load(Ordering::Relaxed)
    }

    /// Events dropped due to writer collision on a wrapped slot.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events no longer retrievable: writer-collision drops plus events
    /// overwritten by wraparound once `pushed` exceeds the capacity.
    pub fn lost(&self) -> u64 {
        self.dropped() + self.pushed().saturating_sub(self.capacity() as u64)
    }

    /// Record an event, stamping its sequence number. Lock-free.
    #[inline]
    pub fn push(&self, mut ev: TraceEvent) {
        let seq = self.claim.fetch_add(1, Ordering::Relaxed);
        ev.seq = seq;
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        let v = slot.version.load(Ordering::Acquire);
        if v & 1 == 1
            || slot
                .version
                .compare_exchange(v, v + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            // Another writer owns this slot (it lapped us or we lapped
            // it); losing one event beats blocking the hot path.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        unsafe { *slot.event.get() = ev };
        slot.version.store(v + 2, Ordering::Release);
    }

    /// Record a span ending now.
    #[inline]
    pub fn push_span(&self, kind: EventKind, peer: i32, bytes: u64, start_ns: u64) {
        let end = now_ns();
        self.push(TraceEvent {
            seq: 0,
            ts_ns: start_ns,
            dur_ns: end.saturating_sub(start_ns),
            bytes,
            peer,
            kind,
        });
    }

    /// Record an instantaneous event.
    #[inline]
    pub fn push_instant(&self, kind: EventKind, peer: i32, bytes: u64) {
        self.push(TraceEvent {
            seq: 0,
            ts_ns: now_ns(),
            dur_ns: 0,
            bytes,
            peer,
            kind,
        });
    }

    /// Copy out the surviving events, oldest first. Torn slots (a writer
    /// was mid-flight) are skipped. Intended for export at quiescence.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        for slot in self.slots.iter() {
            let v0 = slot.version.load(Ordering::Acquire);
            if v0 == 0 || v0 & 1 == 1 {
                continue; // never written, or write in flight
            }
            let ev = unsafe { *slot.event.get() };
            if slot.version.load(Ordering::Acquire) != v0 {
                continue; // torn read
            }
            out.push(ev);
        }
        out.sort_unstable_by_key(|e| e.seq);
        out
    }
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("capacity", &self.capacity())
            .field("pushed", &self.pushed())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, bytes: u64) -> TraceEvent {
        TraceEvent {
            seq: 0,
            ts_ns: now_ns(),
            dur_ns: 1,
            bytes,
            peer: 1,
            kind,
        }
    }

    #[test]
    fn push_and_snapshot_in_order() {
        let r = EventRing::new(16);
        for i in 0..10 {
            r.push(ev(EventKind::Put, i));
        }
        let s = r.snapshot();
        assert_eq!(s.len(), 10);
        assert_eq!(
            s.iter().map(|e| e.bytes).collect::<Vec<_>>(),
            (0..10).collect::<Vec<_>>()
        );
        assert!(s.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn wraparound_keeps_newest_capacity_events() {
        let cap = 8;
        let r = EventRing::new(cap);
        for i in 0..(3 * cap as u64) {
            r.push(ev(EventKind::Get, i));
        }
        assert_eq!(r.pushed(), 3 * cap as u64);
        let s = r.snapshot();
        assert_eq!(s.len(), cap);
        // Oldest surviving event is exactly `pushed - cap`.
        let bytes: Vec<u64> = s.iter().map(|e| e.bytes).collect();
        assert_eq!(bytes, (2 * cap as u64..3 * cap as u64).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_writers_never_corrupt() {
        let r = std::sync::Arc::new(EventRing::new(64));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        r.push(ev(EventKind::AmHandle, t * 1_000_000 + i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.pushed(), 40_000);
        let s = r.snapshot();
        // Every surviving event is one of the written payloads, intact.
        for e in &s {
            let t = e.bytes / 1_000_000;
            let i = e.bytes % 1_000_000;
            assert!(t < 4 && i < 10_000, "corrupt event {e:?}");
            assert_eq!(e.kind, EventKind::AmHandle);
        }
        assert!(s.len() <= 64);
        assert!(r.dropped() < 40_000);
    }

    #[test]
    fn kind_names_and_categories_are_stable() {
        assert_eq!(EventKind::Put.name(), "put");
        assert_eq!(EventKind::Put.category(), "rma");
        assert!(EventKind::Put.is_span());
        assert!(!EventKind::AmSend.is_span());
        assert_eq!(EventKind::Advance.category(), "progress");
        assert_eq!(EventKind::AmRetransmit.name(), "am_retransmit");
        assert_eq!(EventKind::WireDrop.category(), "fault");
        assert!(!EventKind::AmDup.is_span());
        assert_eq!(EventKind::CacheFill.name(), "cache_fill");
        assert_eq!(EventKind::CacheHit.category(), "cache");
        assert!(!EventKind::CacheFill.is_span());
        assert!(!EventKind::CacheHit.is_span());
    }
}
