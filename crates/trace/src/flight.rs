//! The postmortem flight recorder.
//!
//! When a job dies — a peer declared unreachable, the deadlock/race
//! checker aborting a wait — the profiler formats the tail of every
//! rank's causal event stream into a human-readable dump: the last
//! retransmit attempts, the last frames in flight, the last waits and
//! their states. The dump goes to stderr *and* into a process-global
//! capture buffer so the chaos suite can assert on postmortem contents
//! after catching the panic.

use crate::span::{ProfEvent, ProfKind};
use crate::waitstate::unpack_wait;
use std::fmt::Write as _;
use std::sync::Mutex;

/// How many trailing events per rank a dump includes.
pub const FLIGHT_EVENTS: usize = 64;

static DUMPS: Mutex<Vec<String>> = Mutex::new(Vec::new());

/// Format one event as a flight-recorder line.
fn format_event(rank: usize, e: &ProfEvent) -> String {
    let mut line = format!(
        "  r{rank} +{:>12.3}us {:<12}",
        e.ts_ns as f64 / 1000.0,
        e.kind.name()
    );
    if e.peer >= 0 {
        let _ = write!(line, " peer={}", e.peer);
    }
    if e.span != 0 {
        let _ = write!(line, " span={:#x}", e.span);
    }
    match e.kind {
        ProfKind::Wait => {
            let _ = write!(line, " dur={:.3}us", e.dur_ns as f64 / 1000.0);
            if let Some((c, s)) = unpack_wait(e.a) {
                let _ = write!(line, " {}={}", c.name(), s.name());
            }
        }
        ProfKind::Retransmit => {
            let _ = write!(line, " attempt={}", e.a);
        }
        ProfKind::BarrierExit => {
            let _ = write!(line, " epoch={}", e.a);
        }
        ProfKind::Flush => {
            let _ = write!(line, " frames={}", e.a);
        }
        _ => {}
    }
    line
}

/// Format the tail of every rank's event stream as one dump document.
pub fn format_flight(reason: &str, per_rank: &[(usize, Vec<ProfEvent>)]) -> String {
    let mut out = format!("=== rupcxx flight recorder: {reason} ===\n");
    for (rank, events) in per_rank {
        let tail = &events[events.len().saturating_sub(FLIGHT_EVENTS)..];
        let _ = writeln!(
            out,
            "-- rank {rank}: last {} of {} events --",
            tail.len(),
            events.len()
        );
        for e in tail {
            out.push_str(&format_event(*rank, e));
            out.push('\n');
        }
    }
    out.push_str("=== end flight recorder ===\n");
    out
}

/// Emit a dump: stderr for humans, the capture buffer for tests.
pub fn record_dump(dump: String) {
    eprintln!("{dump}");
    DUMPS.lock().unwrap().push(dump);
}

/// Copy of every dump captured so far in this process.
pub fn dumps() -> Vec<String> {
    DUMPS.lock().unwrap().clone()
}

/// Drain the capture buffer (test isolation).
pub fn take_dumps() -> Vec<String> {
    std::mem::take(&mut *DUMPS.lock().unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waitstate::{pack_wait, WaitConstruct, WaitState};

    fn ev(kind: ProfKind, ts: u64, peer: i32, a: u64) -> ProfEvent {
        ProfEvent {
            seq: ts,
            ts_ns: ts * 1000,
            dur_ns: 500,
            span: if kind == ProfKind::Send { 0xdead } else { 0 },
            peer,
            a,
            kind,
        }
    }

    #[test]
    fn dump_formats_tail_with_kinds() {
        let events = vec![
            ev(ProfKind::Send, 1, 1, 0),
            ev(ProfKind::Retransmit, 2, 1, 3),
            ev(
                ProfKind::Wait,
                3,
                -1,
                pack_wait(WaitConstruct::Barrier, WaitState::RetransmitStall),
            ),
            ev(ProfKind::Unreachable, 4, 1, 0),
        ];
        let dump = format_flight("peer 1 unreachable", &[(0, events)]);
        assert!(dump.contains("flight recorder: peer 1 unreachable"));
        assert!(dump.contains("retransmit"));
        assert!(dump.contains("attempt=3"));
        assert!(dump.contains("barrier=retransmit_stall"));
        assert!(dump.contains("unreachable"));
        assert!(dump.contains("span=0xdead"));
    }

    #[test]
    fn dump_truncates_to_flight_window() {
        let events: Vec<ProfEvent> = (0..200).map(|i| ev(ProfKind::Send, i, 1, 0)).collect();
        let dump = format_flight("x", &[(0, events)]);
        assert!(dump.contains(&format!("last {FLIGHT_EVENTS} of 200 events")));
        assert_eq!(dump.matches("send").count(), FLIGHT_EVENTS);
    }

    #[test]
    fn capture_buffer_records_dumps() {
        take_dumps();
        record_dump("=== test dump ===".to_string());
        let d = dumps();
        assert!(d.iter().any(|s| s.contains("test dump")));
        assert!(!take_dumps().is_empty());
        assert!(dumps().is_empty());
    }
}
