//! `rupcxx-trace` — structured tracing and metrics for the PGAS stack.
//!
//! The paper's evaluation (Figs. 4–8) depends on knowing exactly what
//! communication each construct generates. This crate provides the
//! observability layer the rest of the workspace hooks into:
//!
//! * a lock-free per-rank ring of timestamped [`TraceEvent`]s
//!   ([`EventRing`]) covering puts/gets, active messages, async tasks,
//!   barrier/finish/event waits and lock acquires;
//! * a metrics registry ([`Metrics`]) of log₂-bucketed histograms
//!   ([`Log2Histogram`]) — op latency, message size, `advance()`
//!   poll-to-work ratio, task-queue depth — snapshotted like
//!   `CommStats::snapshot()`;
//! * exporters: Chrome `trace_event` JSON (for `chrome://tracing` /
//!   Perfetto) and a per-rank table summary.
//!
//! Tracing is configured at runtime via `RUPCXX_TRACE=events[,path]`
//! (or `metrics` for histograms without the event ring) and is
//! compile-cost-free when disabled: every recording entry point starts
//! with an inlined `if !enabled { return }` guard, so the disabled hot
//! path costs one predictable branch on an immutable bool.

pub mod clock;
pub mod critpath;
pub mod export;
pub mod flight;
pub mod histogram;
pub mod metrics;
pub mod ring;
pub mod span;
pub mod waitstate;

pub use clock::now_ns;
pub use critpath::{CritPathReport, RankProf};
pub use export::{chrome_trace_json, json_escape, summary_table, write_chrome_trace};
pub use histogram::{HistogramSnapshot, Log2Histogram};
pub use metrics::{Metrics, MetricsSnapshot};
pub use ring::{EventKind, EventRing, TraceEvent};
pub use span::{ProfConfig, ProfEvent, ProfKind, ProfSpan, ProfState};
pub use waitstate::{WaitConstruct, WaitState, WaitStats, WaitStatsSnapshot};

/// What the trace layer records.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceMode {
    /// Nothing (the zero-cost default).
    #[default]
    Off,
    /// Histograms and counters only — no event ring.
    Metrics,
    /// Metrics plus the per-rank event ring.
    Events,
}

/// Default per-rank ring capacity (events). ~12 MiB per rank when active;
/// override with `RUPCXX_TRACE_BUF` or [`TraceConfig::ring_capacity`].
pub const DEFAULT_RING_CAPACITY: usize = 1 << 18;

/// Default Chrome-trace output path for the first traced job in a
/// process; later jobs get a numeric suffix.
pub const DEFAULT_TRACE_PATH: &str = "rupcxx_trace.json";

/// Trace configuration, usually parsed from `RUPCXX_TRACE`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceConfig {
    /// What to record.
    pub mode: TraceMode,
    /// Chrome-trace output path (None = [`DEFAULT_TRACE_PATH`]).
    pub path: Option<String>,
    /// Per-rank event-ring capacity (None = [`DEFAULT_RING_CAPACITY`]).
    pub ring_capacity: Option<usize>,
}

impl TraceConfig {
    /// Tracing disabled.
    pub fn off() -> Self {
        TraceConfig::default()
    }

    /// Metrics histograms only.
    pub fn metrics() -> Self {
        TraceConfig {
            mode: TraceMode::Metrics,
            ..Default::default()
        }
    }

    /// Full event tracing plus metrics.
    pub fn events() -> Self {
        TraceConfig {
            mode: TraceMode::Events,
            ..Default::default()
        }
    }

    /// Set the Chrome-trace output path.
    pub fn with_path(mut self, path: impl Into<String>) -> Self {
        self.path = Some(path.into());
        self
    }

    /// Set the per-rank ring capacity.
    pub fn with_ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = Some(capacity);
        self
    }

    /// True unless the mode is [`TraceMode::Off`].
    pub fn is_enabled(&self) -> bool {
        self.mode != TraceMode::Off
    }

    /// Parse a `RUPCXX_TRACE` value: `events[,path]` / `metrics` / `off`.
    /// `Ok(None)` means explicitly off; malformed values are `Err`.
    pub fn parse(raw: &str) -> Result<Option<Self>, String> {
        let mut parts = raw.splitn(2, ',');
        let mode = match parts.next().unwrap_or("").trim() {
            "events" | "1" | "on" | "true" => TraceMode::Events,
            "metrics" => TraceMode::Metrics,
            "" | "0" | "off" | "false" | "none" => {
                if raw.contains(',') {
                    return Err("output path given but tracing is off".to_string());
                }
                return Ok(None);
            }
            other => return Err(format!("unknown mode {other:?}")),
        };
        let path = match parts.next().map(str::trim) {
            Some("") => return Err("empty output path after ','".to_string()),
            p => p.map(String::from),
        };
        Ok(Some(TraceConfig {
            mode,
            path,
            ring_capacity: None,
        }))
    }

    /// Read `RUPCXX_TRACE` (and `RUPCXX_TRACE_BUF` for the ring size)
    /// from the environment. Unset means disabled; malformed values
    /// abort with a clear message.
    pub fn from_env() -> Self {
        let mut cfg = rupcxx_util::env::parse_env(
            "RUPCXX_TRACE",
            "metrics|events[,<path>]",
            TraceConfig::parse,
        )
        .unwrap_or_default();
        if let Ok(raw) = std::env::var("RUPCXX_TRACE_BUF") {
            match raw.trim().parse::<usize>() {
                Ok(n) if n > 0 => cfg.ring_capacity = Some(n),
                _ => rupcxx_util::env::invalid(
                    "RUPCXX_TRACE_BUF",
                    &raw,
                    "not a positive integer",
                    "<events-per-rank>",
                ),
            }
        }
        cfg
    }

    /// The output path to use for the `n`-th traced job of this process.
    pub fn numbered_path(&self, n: u64) -> String {
        let base = self.path.as_deref().unwrap_or(DEFAULT_TRACE_PATH);
        if n == 0 {
            base.to_string()
        } else {
            match base.rsplit_once('.') {
                Some((stem, ext)) => format!("{stem}.{n}.{ext}"),
                None => format!("{base}.{n}"),
            }
        }
    }
}

/// Per-rank trace state: the mode switch, the optional event ring and the
/// metrics registry. Owned by the fabric's `Endpoint`, shared with the
/// runtime through it.
#[derive(Debug)]
pub struct RankTrace {
    mode: TraceMode,
    ring: Option<EventRing>,
    /// Histograms and progress counters for this rank.
    pub metrics: Metrics,
}

impl Default for RankTrace {
    fn default() -> Self {
        Self::disabled()
    }
}

impl RankTrace {
    /// A disabled trace: every recording call is a single-branch no-op.
    pub fn disabled() -> Self {
        RankTrace {
            mode: TraceMode::Off,
            ring: None,
            metrics: Metrics::default(),
        }
    }

    /// Build per `config`; the ring is only allocated in events mode.
    pub fn new(config: &TraceConfig) -> Self {
        if config.mode == TraceMode::Events {
            clock::init_epoch();
        }
        RankTrace {
            mode: config.mode,
            ring: (config.mode == TraceMode::Events)
                .then(|| EventRing::new(config.ring_capacity.unwrap_or(DEFAULT_RING_CAPACITY))),
            metrics: Metrics::default(),
        }
    }

    /// True when anything is being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.mode != TraceMode::Off
    }

    /// True when the event ring is recording.
    #[inline]
    pub fn events_enabled(&self) -> bool {
        self.ring.is_some()
    }

    /// The event ring, when events are enabled.
    pub fn ring(&self) -> Option<&EventRing> {
        self.ring.as_ref()
    }

    /// Span start timestamp — 0 (no clock read) when disabled.
    #[inline]
    pub fn start(&self) -> u64 {
        if self.mode == TraceMode::Off {
            0
        } else {
            now_ns()
        }
    }

    /// Record a completed span that started at `start_ns` (from
    /// [`RankTrace::start`]). No-op when disabled.
    #[inline]
    pub fn span(&self, kind: EventKind, peer: i32, bytes: u64, start_ns: u64) {
        if self.mode == TraceMode::Off {
            return;
        }
        self.span_slow(kind, peer, bytes, start_ns);
    }

    #[cold]
    fn span_slow(&self, kind: EventKind, peer: i32, bytes: u64, start_ns: u64) {
        let dur = now_ns().saturating_sub(start_ns);
        match kind {
            EventKind::Put => {
                self.metrics.put_ns.record(dur);
                self.metrics.msg_bytes.record(bytes);
            }
            EventKind::Get => {
                self.metrics.get_ns.record(dur);
                self.metrics.msg_bytes.record(bytes);
            }
            EventKind::AmHandle => self.metrics.am_handle_ns.record(dur),
            EventKind::Advance => self.metrics.advance_ns.record(dur),
            EventKind::Barrier => self.metrics.barrier_ns.record(dur),
            EventKind::EventWait | EventKind::FinishWait => self.metrics.wait_ns.record(dur),
            EventKind::LockAcquire => self.metrics.lock_ns.record(dur),
            EventKind::AmSend
            | EventKind::TaskSpawn
            | EventKind::AmRetransmit
            | EventKind::WireDrop
            | EventKind::AmDup
            | EventKind::BatchFlush
            | EventKind::CacheFill
            | EventKind::CacheHit => {}
        }
        if let Some(ring) = &self.ring {
            ring.push(TraceEvent {
                seq: 0,
                ts_ns: start_ns,
                dur_ns: dur,
                bytes,
                peer,
                kind,
            });
        }
    }

    /// Record an instantaneous event (AM send, task spawn). No-op when
    /// disabled.
    #[inline]
    pub fn instant(&self, kind: EventKind, peer: i32, bytes: u64) {
        if self.mode == TraceMode::Off {
            return;
        }
        self.instant_slow(kind, peer, bytes);
    }

    #[cold]
    fn instant_slow(&self, kind: EventKind, peer: i32, bytes: u64) {
        use std::sync::atomic::Ordering;
        match kind {
            EventKind::AmSend => self.metrics.msg_bytes.record(bytes),
            EventKind::AmRetransmit => {
                self.metrics.retransmits.fetch_add(1, Ordering::Relaxed);
            }
            EventKind::WireDrop => {
                self.metrics.wire_drops.fetch_add(1, Ordering::Relaxed);
            }
            EventKind::AmDup => {
                self.metrics.dup_arrivals.fetch_add(1, Ordering::Relaxed);
            }
            // `bytes` carries the batch's frame count (occupancy).
            EventKind::BatchFlush => self.metrics.batch_frames.record(bytes),
            // `bytes` carries the line fill size; each fill is one miss.
            EventKind::CacheFill => {
                self.metrics.cache_fill_bytes.record(bytes);
                self.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
            }
            EventKind::CacheHit => {
                self.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        if let Some(ring) = &self.ring {
            ring.push_instant(kind, peer, bytes);
        }
    }

    /// Record one `advance()` poll: inbox depth before draining, whether
    /// any message was processed, and how many. No-op when disabled.
    #[inline]
    pub fn poll(&self, depth: u64, msgs: u64) {
        if self.mode == TraceMode::Off {
            return;
        }
        self.poll_slow(depth, msgs);
    }

    #[cold]
    fn poll_slow(&self, depth: u64, msgs: u64) {
        use std::sync::atomic::Ordering;
        self.metrics.queue_depth.record(depth);
        self.metrics.advance_polls.fetch_add(1, Ordering::Relaxed);
        if msgs > 0 {
            self.metrics.advance_work.fetch_add(1, Ordering::Relaxed);
            self.metrics.advance_msgs.fetch_add(msgs, Ordering::Relaxed);
        }
    }

    /// Drain the ring (empty when events are off).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring.as_ref().map(|r| r.snapshot()).unwrap_or_default()
    }

    /// Metrics snapshot with the ring's push/loss accounting filled in,
    /// so exporters can surface overflow (`Metrics::snapshot` alone
    /// leaves `ring_pushed`/`ring_lost` at 0 — the ring lives here).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut m = self.metrics.snapshot();
        if let Some(ring) = &self.ring {
            m.ring_pushed = ring.pushed();
            m.ring_lost = ring.lost();
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let t = RankTrace::disabled();
        assert!(!t.enabled());
        let s = t.start();
        assert_eq!(s, 0);
        t.span(EventKind::Put, 1, 8, s);
        t.instant(EventKind::AmSend, 1, 8);
        t.poll(3, 2);
        assert!(t.events().is_empty());
        let m = t.metrics.snapshot();
        assert_eq!(m.put_ns.count, 0);
        assert_eq!(m.msg_bytes.count, 0);
        assert_eq!(m.advance_polls, 0);
    }

    #[test]
    fn metrics_mode_has_no_ring() {
        let t = RankTrace::new(&TraceConfig::metrics());
        assert!(t.enabled());
        assert!(!t.events_enabled());
        let s = t.start();
        t.span(EventKind::Get, 2, 64, s);
        assert!(t.events().is_empty());
        let m = t.metrics.snapshot();
        assert_eq!(m.get_ns.count, 1);
        assert_eq!(m.msg_bytes.count, 1);
    }

    #[test]
    fn events_mode_records_spans_and_instants() {
        let t = RankTrace::new(&TraceConfig::events().with_ring_capacity(64));
        let s = t.start();
        assert!(s > 0);
        t.span(EventKind::Put, 1, 8, s);
        t.instant(EventKind::TaskSpawn, 2, 0);
        t.poll(1, 1);
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        t.instant(EventKind::AmRetransmit, 1, 0);
        t.instant(EventKind::WireDrop, 1, 0);
        t.instant(EventKind::WireDrop, 1, 0);
        t.instant(EventKind::AmDup, 1, 0);
        let m = t.metrics.snapshot();
        assert_eq!(m.retransmits, 1);
        assert_eq!(m.wire_drops, 2);
        assert_eq!(m.dup_arrivals, 1);
        assert_eq!(t.events().len(), 6);
        assert_eq!(evs[0].kind, EventKind::Put);
        assert_eq!(evs[0].peer, 1);
        assert_eq!(evs[1].kind, EventKind::TaskSpawn);
        assert_eq!(t.metrics.snapshot().advance_polls, 1);
    }

    #[test]
    fn batch_flush_instant_feeds_occupancy_histogram() {
        let t = RankTrace::new(&TraceConfig::events().with_ring_capacity(16));
        t.instant(EventKind::BatchFlush, 1, 48);
        t.instant(EventKind::BatchFlush, 2, 64);
        let m = t.metrics.snapshot();
        assert_eq!(m.batch_frames.count, 2);
        assert_eq!(m.batch_frames.max, 64);
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, EventKind::BatchFlush);
        assert_eq!(evs[0].bytes, 48);
        assert_eq!(evs[0].peer, 1);
    }

    #[test]
    fn cache_instants_feed_fill_histogram_and_hit_counters() {
        let t = RankTrace::new(&TraceConfig::events().with_ring_capacity(16));
        t.instant(EventKind::CacheFill, 1, 256);
        t.instant(EventKind::CacheFill, 1, 64);
        t.instant(EventKind::CacheHit, 1, 8);
        t.instant(EventKind::CacheHit, 2, 8);
        t.instant(EventKind::CacheHit, 1, 8);
        let m = t.metrics.snapshot();
        assert_eq!(m.cache_fill_bytes.count, 2);
        assert_eq!(m.cache_fill_bytes.max, 256);
        assert_eq!(m.cache_misses, 2);
        assert_eq!(m.cache_hits, 3);
        assert!((m.cache_hit_ratio() - 0.6).abs() < 1e-9);
        let evs = t.events();
        assert_eq!(evs.len(), 5);
        assert_eq!(evs[0].kind, EventKind::CacheFill);
        assert_eq!(evs[0].bytes, 256);
    }

    #[test]
    fn config_parsing_variants() {
        // from_env reads process-global env; exercise the parser via the
        // pure pieces instead of mutating the environment in tests.
        assert!(!TraceConfig::off().is_enabled());
        assert!(TraceConfig::metrics().is_enabled());
        let c = TraceConfig::events()
            .with_path("x.json")
            .with_ring_capacity(99);
        assert_eq!(c.mode, TraceMode::Events);
        assert_eq!(c.numbered_path(0), "x.json");
        assert_eq!(c.numbered_path(2), "x.2.json");
        let d = TraceConfig::events();
        assert_eq!(d.numbered_path(0), DEFAULT_TRACE_PATH);
        assert_eq!(d.numbered_path(1), "rupcxx_trace.1.json");
    }

    #[test]
    fn pure_parser_accepts_and_rejects() {
        assert!(TraceConfig::parse("off").unwrap().is_none());
        assert!(TraceConfig::parse("").unwrap().is_none());
        let e = TraceConfig::parse("events,t.json").unwrap().unwrap();
        assert_eq!(e.mode, TraceMode::Events);
        assert_eq!(e.path.as_deref(), Some("t.json"));
        let m = TraceConfig::parse("metrics").unwrap().unwrap();
        assert_eq!(m.mode, TraceMode::Metrics);
        assert!(TraceConfig::parse("eventz").is_err());
        assert!(TraceConfig::parse("events,").is_err());
        assert!(TraceConfig::parse("off,x.json").is_err());
    }
}
