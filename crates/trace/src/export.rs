//! Exporters: Chrome `trace_event` JSON and per-rank summary tables.
//!
//! The JSON output loads directly into `chrome://tracing` or
//! <https://ui.perfetto.dev>: one timeline row per rank (`tid` = rank),
//! spans as complete (`"ph":"X"`) events, sends/spawns as instants. The
//! table summary renders with `rupcxx-util`'s [`Table`] like every other
//! reproduction artifact.

use crate::metrics::MetricsSnapshot;
use crate::ring::TraceEvent;
use rupcxx_util::table::fnum;
use rupcxx_util::Table;
use std::fmt::Write as _;

/// Escape a string for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render per-rank event streams as a Chrome trace JSON document.
///
/// Besides the events themselves, the document carries `process_name` /
/// `thread_name` metadata records so Perfetto labels each timeline row
/// with its rank instead of a bare thread id.
pub fn chrome_trace_json(per_rank: &[(usize, Vec<TraceEvent>)]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    if !per_rank.is_empty() {
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{{\"name\":\"rupcxx\"}}}}"
        );
        first = false;
        for (rank, _) in per_rank {
            let _ = write!(
                out,
                ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{rank},\"args\":{{\"name\":\"rank {rank}\"}}}}"
            );
        }
    }
    for (rank, events) in per_rank {
        for e in events {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let ts_us = e.ts_ns as f64 / 1000.0;
            if e.kind.is_span() {
                let dur_us = (e.dur_ns as f64 / 1000.0).max(0.001);
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"peer\":{},\"bytes\":{},\"seq\":{}}}}}",
                    json_escape(e.kind.name()), json_escape(e.kind.category()), rank, ts_us, dur_us,
                    e.peer, e.bytes, e.seq
                );
            } else {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{},\"ts\":{:.3},\"args\":{{\"peer\":{},\"bytes\":{},\"seq\":{}}}}}",
                    json_escape(e.kind.name()), json_escape(e.kind.category()), rank, ts_us,
                    e.peer, e.bytes, e.seq
                );
            }
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
    out
}

/// Write a Chrome trace for the given per-rank event streams.
pub fn write_chrome_trace(
    path: &str,
    per_rank: &[(usize, Vec<TraceEvent>)],
) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace_json(per_rank))
}

/// Build the per-rank metrics summary table (plus an `all` aggregate row
/// when more than one rank is given). Latencies are histogram-bound
/// percentiles in microseconds.
pub fn summary_table(rows: &[(usize, MetricsSnapshot)]) -> Table {
    let mut t = Table::new([
        "rank",
        "puts",
        "put p50us",
        "put p99us",
        "gets",
        "get p50us",
        "ams",
        "am p50us",
        "polls",
        "work%",
        "qdepth p99",
        "bytes p50",
        "retx",
        "drops",
        "dups",
        "batches",
        "occ p50",
        "cfills",
        "hit%",
        "events",
        "evlost",
    ]);
    let mut add_row = |label: String, m: &MetricsSnapshot| {
        t.row([
            label,
            m.put_ns.count.to_string(),
            fnum(m.put_ns.p50() as f64 / 1000.0),
            fnum(m.put_ns.p99() as f64 / 1000.0),
            m.get_ns.count.to_string(),
            fnum(m.get_ns.p50() as f64 / 1000.0),
            m.am_handle_ns.count.to_string(),
            fnum(m.am_handle_ns.p50() as f64 / 1000.0),
            m.advance_polls.to_string(),
            format!("{:.1}", m.poll_work_ratio() * 100.0),
            m.queue_depth.p99().to_string(),
            m.msg_bytes.p50().to_string(),
            m.retransmits.to_string(),
            m.wire_drops.to_string(),
            m.dup_arrivals.to_string(),
            m.batch_frames.count.to_string(),
            m.batch_frames.p50().to_string(),
            m.cache_fill_bytes.count.to_string(),
            format!("{:.1}", m.cache_hit_ratio() * 100.0),
            m.ring_pushed.to_string(),
            m.ring_lost.to_string(),
        ]);
    };
    let mut total = MetricsSnapshot::default();
    for (rank, m) in rows {
        add_row(rank.to_string(), m);
        total = total.merged(m);
    }
    if rows.len() > 1 {
        add_row("all".to_string(), &total);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::EventKind;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                seq: 0,
                ts_ns: 1000,
                dur_ns: 500,
                bytes: 8,
                peer: 1,
                kind: EventKind::Put,
            },
            TraceEvent {
                seq: 1,
                ts_ns: 2000,
                dur_ns: 0,
                bytes: 16,
                peer: 0,
                kind: EventKind::AmSend,
            },
        ]
    }

    #[test]
    fn chrome_json_shape() {
        let json = chrome_trace_json(&[(0, sample_events())]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"put\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"tid\":0"));
        // Balanced braces/brackets — a cheap structural validity check.
        assert_eq!(json.matches('{').count(), json.matches('}').count(),);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_trace_is_valid() {
        let json = chrome_trace_json(&[]);
        assert!(json.contains("\"traceEvents\":[\n\n]"));
    }

    #[test]
    fn chrome_json_labels_ranks_with_metadata() {
        let json = chrome_trace_json(&[(0, sample_events()), (3, vec![])]);
        assert!(json.contains("\"name\":\"process_name\""));
        assert!(json.contains("\"name\":\"rupcxx\""));
        assert!(json.contains("\"name\":\"thread_name\""));
        assert!(json.contains("\"name\":\"rank 0\""));
        assert!(json.contains("\"name\":\"rank 3\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain_name"), "plain_name");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny\tz\r"), "x\\ny\\tz\\r");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn summary_surfaces_ring_overflow() {
        // An overflowed ring must show its loss in the summary so a
        // truncated trace is never mistaken for a complete one.
        let t = crate::RankTrace::new(&crate::TraceConfig::events().with_ring_capacity(4));
        for _ in 0..10 {
            t.instant(EventKind::AmSend, 1, 8);
        }
        let m = t.metrics_snapshot();
        assert_eq!(m.ring_pushed, 10);
        assert_eq!(m.ring_lost, 6);
        let rendered = summary_table(&[(0, m)]).render();
        assert!(rendered.contains("events"));
        assert!(rendered.contains("evlost"));
        let row = rendered.lines().last().unwrap();
        assert!(row.contains("10"), "events column: {row}");
        assert!(row.contains('6'), "evlost column: {row}");
    }

    #[test]
    fn summary_includes_aggregate_row() {
        let m = MetricsSnapshot {
            advance_polls: 10,
            advance_work: 5,
            retransmits: 3,
            wire_drops: 4,
            dup_arrivals: 2,
            ..Default::default()
        };
        let t = summary_table(&[(0, m), (1, m)]);
        assert_eq!(t.len(), 3); // rank 0, rank 1, all
        let rendered = t.render();
        assert!(rendered.contains("all"));
        assert!(rendered.contains("50.0"));
        // Fault columns present, with the aggregate row summing them.
        assert!(rendered.contains("retx"));
        assert!(rendered.contains("drops"));
        assert!(rendered.contains('8'), "aggregate wire_drops 4+4");
        // Aggregation occupancy columns are always present (zero when
        // the feature is off).
        assert!(rendered.contains("batches"));
        assert!(rendered.contains("occ p50"));
        // Read-cache columns are always present (zero when off).
        assert!(rendered.contains("cfills"));
        assert!(rendered.contains("hit%"));
    }

    #[test]
    fn summary_reports_cache_hit_rate() {
        let live = crate::metrics::Metrics::default();
        live.cache_fill_bytes.record(256);
        live.cache_misses
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        live.cache_hits
            .fetch_add(3, std::sync::atomic::Ordering::Relaxed);
        let t = summary_table(&[(0, live.snapshot())]);
        let rendered = t.render();
        let row = rendered.lines().last().unwrap();
        assert!(row.contains("75.0"), "hit%% column: {row}");
    }

    #[test]
    fn summary_reports_batch_occupancy() {
        let live = crate::metrics::Metrics::default();
        for frames in [4u64, 16, 64] {
            live.batch_frames.record(frames);
        }
        let t = summary_table(&[(0, live.snapshot())]);
        let rendered = t.render();
        assert!(rendered.contains("batches"));
        // 3 batches flushed; the p50 bound of {4,16,64} is the upper
        // bound of 16's bucket, 32.
        let row = rendered.lines().last().unwrap();
        assert!(row.contains('3'), "batch count column: {row}");
        assert!(row.contains("32"), "occupancy p50 column: {row}");
    }
}
