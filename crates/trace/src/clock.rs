//! Process-wide monotonic nanosecond clock.
//!
//! All trace timestamps share one `Instant` anchor so events recorded by
//! different rank threads land on a common timeline (Chrome's trace viewer
//! sorts by absolute `ts`). The anchor is created on first use.

use std::sync::OnceLock;
use std::time::Instant;

static ANCHOR: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process's trace epoch (first call wins the epoch).
#[inline]
pub fn now_ns() -> u64 {
    ANCHOR.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Force-initialize the epoch (call early so rank threads agree).
pub fn init_epoch() {
    let _ = ANCHOR.get_or_init(Instant::now);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_and_nonzero_resolution() {
        init_epoch();
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
        // The clock must advance over a real sleep.
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(now_ns() > a);
    }
}
