//! Wait-state attribution: *why* did a blocking construct block?
//!
//! Scalasca-style classification. Each blocking construct (barrier,
//! fence, event/future wait, finish quiescence, lock acquire) is wrapped
//! in a profiled scope; when the wait ends, what the fabric did while we
//! were blocked picks exactly one state:
//!
//! * [`WaitState::RetransmitStall`] — the reliable layer retransmitted
//!   frames anywhere in the fabric during the wait: we were waiting out
//!   packet loss, not the peer.
//! * [`WaitState::LateReceiver`] — a lock acquire spun on a holder who
//!   had not released yet (the classic one-sided late-receiver).
//! * [`WaitState::LateSender`] — messages joined during the wait and the
//!   newest of them was injected *after* we started waiting: the peer
//!   simply had not sent yet.
//! * [`WaitState::ProgressStarved`] — everything we absorbed was already
//!   in flight before we blocked (or nothing arrived at all): the data
//!   was there, the progress engine just had not run.
//!
//! Every blocked wait gets exactly one state for its full duration, so
//! attribution is total by construction; the per-construct × per-state
//! histograms are the input ROADMAP item 3's adaptive knobs need.

use crate::histogram::{HistogramSnapshot, Log2Histogram};

/// Which blocking construct waited.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum WaitConstruct {
    /// `barrier()` episode (dissemination rounds included).
    Barrier,
    /// `agg_fence()` / fence quiescence wait.
    Fence,
    /// `Event::wait`.
    EventWait,
    /// `RtFuture::get` reply wait.
    FutureWait,
    /// `finish` scope quiescence wait.
    FinishWait,
    /// `GlobalLock::acquire` spin.
    LockAcquire,
}

/// All constructs, in discriminant order (for iteration and reports).
pub const CONSTRUCTS: [WaitConstruct; 6] = [
    WaitConstruct::Barrier,
    WaitConstruct::Fence,
    WaitConstruct::EventWait,
    WaitConstruct::FutureWait,
    WaitConstruct::FinishWait,
    WaitConstruct::LockAcquire,
];

impl WaitConstruct {
    /// Stable name used by reports.
    pub fn name(self) -> &'static str {
        match self {
            WaitConstruct::Barrier => "barrier",
            WaitConstruct::Fence => "fence",
            WaitConstruct::EventWait => "event_wait",
            WaitConstruct::FutureWait => "future_wait",
            WaitConstruct::FinishWait => "finish_wait",
            WaitConstruct::LockAcquire => "lock_acquire",
        }
    }
}

/// Why the construct blocked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum WaitState {
    /// The awaited message was injected after we started waiting.
    LateSender,
    /// The peer had not consumed/released what we needed (locks).
    LateReceiver,
    /// Data was already in flight before the wait; progress lagged.
    ProgressStarved,
    /// The fabric was retransmitting lost frames during the wait.
    RetransmitStall,
}

/// All states, in discriminant order.
pub const STATES: [WaitState; 4] = [
    WaitState::LateSender,
    WaitState::LateReceiver,
    WaitState::ProgressStarved,
    WaitState::RetransmitStall,
];

impl WaitState {
    /// Stable name used by reports.
    pub fn name(self) -> &'static str {
        match self {
            WaitState::LateSender => "late_sender",
            WaitState::LateReceiver => "late_receiver",
            WaitState::ProgressStarved => "progress_starved",
            WaitState::RetransmitStall => "retransmit_stall",
        }
    }
}

/// Pack a construct + state into a [`crate::span::ProfEvent::a`] word.
pub fn pack_wait(construct: WaitConstruct, state: WaitState) -> u64 {
    ((construct as u64) << 8) | state as u64
}

/// Unpack a [`pack_wait`] word (None for a corrupt encoding).
pub fn unpack_wait(a: u64) -> Option<(WaitConstruct, WaitState)> {
    let c = *CONSTRUCTS.get((a >> 8) as usize)?;
    let s = *STATES.get((a & 0xff) as usize)?;
    Some((c, s))
}

/// Pick the single state for a finished wait.
///
/// `retx_delta` is the fabric-wide retransmit delta over the wait,
/// `joined_delta` the number of spans this rank joined during it, and
/// `last_inject_ns` the injection watermark after the wait (compare
/// against `wait_start_ns`).
pub fn classify(
    construct: WaitConstruct,
    retx_delta: u64,
    joined_delta: u64,
    last_inject_ns: u64,
    wait_start_ns: u64,
) -> WaitState {
    if retx_delta > 0 {
        WaitState::RetransmitStall
    } else if construct == WaitConstruct::LockAcquire {
        WaitState::LateReceiver
    } else if joined_delta > 0 && last_inject_ns >= wait_start_ns {
        WaitState::LateSender
    } else {
        WaitState::ProgressStarved
    }
}

/// Live per-construct × per-state wait-time histograms (ns).
#[derive(Debug)]
pub struct WaitStats {
    hist: [[Log2Histogram; STATES.len()]; CONSTRUCTS.len()],
}

impl Default for WaitStats {
    fn default() -> Self {
        Self::new()
    }
}

impl WaitStats {
    /// Empty stats.
    pub fn new() -> Self {
        WaitStats {
            hist: std::array::from_fn(|_| std::array::from_fn(|_| Log2Histogram::new())),
        }
    }

    /// Record one classified wait.
    pub fn record(&self, construct: WaitConstruct, state: WaitState, dur_ns: u64) {
        self.hist[construct as usize][state as usize].record(dur_ns);
    }

    /// Point-in-time copy.
    pub fn snapshot(&self) -> WaitStatsSnapshot {
        WaitStatsSnapshot {
            hist: std::array::from_fn(|c| std::array::from_fn(|s| self.hist[c][s].snapshot())),
        }
    }
}

/// A point-in-time copy of [`WaitStats`].
#[derive(Clone, Copy, Debug)]
pub struct WaitStatsSnapshot {
    /// `hist[construct][state]`.
    pub hist: [[HistogramSnapshot; STATES.len()]; CONSTRUCTS.len()],
}

impl Default for WaitStatsSnapshot {
    fn default() -> Self {
        WaitStatsSnapshot {
            hist: [[HistogramSnapshot::default(); STATES.len()]; CONSTRUCTS.len()],
        }
    }
}

impl WaitStatsSnapshot {
    /// One construct × state cell.
    pub fn cell(&self, c: WaitConstruct, s: WaitState) -> &HistogramSnapshot {
        &self.hist[c as usize][s as usize]
    }

    /// Total wait ns attributed to `state` across all constructs.
    pub fn state_ns(&self, s: WaitState) -> u64 {
        CONSTRUCTS.iter().map(|&c| self.cell(c, s).sum).sum()
    }

    /// Total wait ns recorded for `construct` across all states.
    pub fn construct_ns(&self, c: WaitConstruct) -> u64 {
        STATES.iter().map(|&s| self.cell(c, s).sum).sum()
    }

    /// Total attributed wait ns across everything.
    pub fn total_ns(&self) -> u64 {
        CONSTRUCTS.iter().map(|&c| self.construct_ns(c)).sum()
    }

    /// Element-wise merge (for aggregating ranks).
    pub fn merged(&self, other: &WaitStatsSnapshot) -> WaitStatsSnapshot {
        WaitStatsSnapshot {
            hist: std::array::from_fn(|c| {
                std::array::from_fn(|s| self.hist[c][s].merged(&other.hist[c][s]))
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrips() {
        for &c in &CONSTRUCTS {
            for &s in &STATES {
                assert_eq!(unpack_wait(pack_wait(c, s)), Some((c, s)));
            }
        }
        assert_eq!(unpack_wait(0xffff), None);
    }

    #[test]
    fn classification_priorities() {
        use WaitConstruct::*;
        use WaitState::*;
        // Retransmits trump everything: the wire was the problem.
        assert_eq!(classify(Barrier, 3, 5, 100, 50), RetransmitStall);
        assert_eq!(classify(LockAcquire, 1, 0, 0, 50), RetransmitStall);
        // Lock spins are late-receiver by construction.
        assert_eq!(classify(LockAcquire, 0, 2, 100, 50), LateReceiver);
        // A message injected after we blocked = late sender.
        assert_eq!(classify(EventWait, 0, 1, 100, 50), LateSender);
        // Injected before we blocked = the progress engine was behind.
        assert_eq!(classify(EventWait, 0, 1, 40, 50), ProgressStarved);
        // Nothing arrived at all: also starved, not a named peer.
        assert_eq!(classify(Barrier, 0, 0, 0, 50), ProgressStarved);
    }

    #[test]
    fn stats_record_and_total() {
        let w = WaitStats::new();
        w.record(WaitConstruct::Barrier, WaitState::LateSender, 1000);
        w.record(WaitConstruct::Barrier, WaitState::RetransmitStall, 500);
        w.record(WaitConstruct::LockAcquire, WaitState::LateReceiver, 200);
        let s = w.snapshot();
        assert_eq!(s.construct_ns(WaitConstruct::Barrier), 1500);
        assert_eq!(s.state_ns(WaitState::LateSender), 1000);
        assert_eq!(s.state_ns(WaitState::LateReceiver), 200);
        assert_eq!(s.total_ns(), 1700);
        let m = s.merged(&s);
        assert_eq!(m.total_ns(), 3400);
        assert_eq!(
            m.cell(WaitConstruct::Barrier, WaitState::LateSender).count,
            2
        );
    }
}
