//! Offline critical-path analysis over merged per-rank profiler streams.
//!
//! Barrier exits delimit causal intervals: between two consecutive
//! barriers every rank's elapsed time splits into *work* (computing or
//! driving the fabric) and *attributed waiting* (the [`crate::waitstate`]
//! events recorded inside the interval). Within each interval the rank
//! with the most work is the one every other rank ultimately waited for —
//! the interval's critical rank — and the critical path through the run
//! is the chain of those per-interval maxima. The report breaks time down
//! per rank and per wait state, and computes the fraction of total
//! barrier wall time attributed to named wait states (the profiler's
//! headline accuracy number).

use crate::span::{ProfEvent, ProfKind};
use crate::waitstate::{WaitConstruct, WaitState, WaitStatsSnapshot, STATES};
use rupcxx_util::Table;
use std::fmt::Write as _;

/// One rank's raw profiler output, as gathered at teardown.
#[derive(Clone, Debug, Default)]
pub struct RankProf {
    /// The rank.
    pub rank: usize,
    /// Its causal event stream (oldest first).
    pub events: Vec<ProfEvent>,
    /// Its wait-state histograms.
    pub waits: WaitStatsSnapshot,
    /// Total barrier episode time, ns (attribution denominator).
    pub barrier_total_ns: u64,
}

/// Per-rank breakdown in the report.
#[derive(Clone, Copy, Debug, Default)]
pub struct RankBreakdown {
    /// The rank.
    pub rank: usize,
    /// Work time summed over the aligned intervals, ns.
    pub work_ns: u64,
    /// Attributed wait time summed over the aligned intervals, ns.
    pub wait_ns: u64,
    /// Attributed wait ns per state (indexed like [`STATES`]).
    pub state_ns: [u64; STATES.len()],
    /// Barrier wall time on this rank, ns.
    pub barrier_ns: u64,
    /// Intervals in which this rank was the critical one.
    pub crit_intervals: usize,
}

/// The analysis result.
#[derive(Clone, Debug, Default)]
pub struct CritPathReport {
    /// Barrier-aligned intervals analysed (min across ranks).
    pub intervals: usize,
    /// Length of the critical path: per-interval max work, summed, ns.
    pub critical_path_ns: u64,
    /// The critical rank of each interval.
    pub critical_ranks: Vec<usize>,
    /// Per-rank time breakdown.
    pub ranks: Vec<RankBreakdown>,
    /// Total barrier wall time across ranks, ns.
    pub barrier_total_ns: u64,
    /// Barrier wall time attributed to a named wait state, ns.
    pub barrier_attributed_ns: u64,
}

impl CritPathReport {
    /// Fraction of barrier wall time attributed to named wait states
    /// (1.0 when there was no barrier time at all).
    pub fn attributed_fraction(&self) -> f64 {
        if self.barrier_total_ns == 0 {
            1.0
        } else {
            self.barrier_attributed_ns as f64 / self.barrier_total_ns as f64
        }
    }

    /// Render as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"intervals\":{},\"critical_path_ns\":{},\"critical_ranks\":{:?},",
            self.intervals, self.critical_path_ns, self.critical_ranks
        );
        let _ = write!(
            out,
            "\"barrier_attribution\":{{\"total_ns\":{},\"attributed_ns\":{},\"fraction\":{:.4}}},",
            self.barrier_total_ns,
            self.barrier_attributed_ns,
            self.attributed_fraction()
        );
        out.push_str("\"ranks\":[");
        for (i, r) in self.ranks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rank\":{},\"work_ns\":{},\"wait_ns\":{},\"barrier_ns\":{},\"crit_intervals\":{},\"wait_states\":{{",
                r.rank, r.work_ns, r.wait_ns, r.barrier_ns, r.crit_intervals
            );
            for (j, &s) in STATES.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", s.name(), r.state_ns[j]);
            }
            out.push_str("}}");
        }
        out.push_str("]}\n");
        out
    }

    /// Render the per-rank breakdown as a table (times in ms).
    pub fn table(&self) -> Table {
        let ms = |ns: u64| format!("{:.3}", ns as f64 / 1e6);
        let mut t = Table::new([
            "rank",
            "work ms",
            "wait ms",
            "late_send ms",
            "late_recv ms",
            "starved ms",
            "retx_stall ms",
            "barrier ms",
            "crit ints",
        ]);
        for r in &self.ranks {
            t.row([
                r.rank.to_string(),
                ms(r.work_ns),
                ms(r.wait_ns),
                ms(r.state_ns[WaitState::LateSender as usize]),
                ms(r.state_ns[WaitState::LateReceiver as usize]),
                ms(r.state_ns[WaitState::ProgressStarved as usize]),
                ms(r.state_ns[WaitState::RetransmitStall as usize]),
                ms(r.barrier_ns),
                r.crit_intervals.to_string(),
            ]);
        }
        t
    }
}

/// Per-rank, per-interval (len, wait) pairs delimited by barrier exits.
fn rank_intervals(events: &[ProfEvent]) -> Vec<(u64, u64)> {
    let exits: Vec<u64> = events
        .iter()
        .filter(|e| e.kind == ProfKind::BarrierExit)
        .map(|e| e.ts_ns)
        .collect();
    if exits.is_empty() {
        return Vec::new();
    }
    let first_ts = events.first().map(|e| e.ts_ns).unwrap_or(0);
    let mut out = Vec::with_capacity(exits.len());
    let mut start = first_ts;
    for &end in &exits {
        let len = end.saturating_sub(start);
        // A wait belongs to the interval its *end* falls into.
        let wait: u64 = events
            .iter()
            .filter(|e| e.kind == ProfKind::Wait)
            .map(|e| (e.ts_ns + e.dur_ns, e.dur_ns))
            .filter(|&(wend, _)| wend > start && wend <= end)
            .map(|(_, d)| d)
            .sum();
        out.push((len, wait.min(len)));
        start = end;
    }
    out
}

/// Run the analysis over every rank's gathered profiler output.
pub fn analyze(per_rank: &[RankProf]) -> CritPathReport {
    let intervals_by_rank: Vec<Vec<(u64, u64)>> =
        per_rank.iter().map(|r| rank_intervals(&r.events)).collect();
    let intervals = intervals_by_rank.iter().map(|v| v.len()).min().unwrap_or(0);

    let mut critical_ranks = Vec::with_capacity(intervals);
    let mut critical_path_ns = 0u64;
    let mut crit_count = vec![0usize; per_rank.len()];
    for k in 0..intervals {
        let (ci, work) = intervals_by_rank
            .iter()
            .enumerate()
            .map(|(i, v)| (i, v[k].0.saturating_sub(v[k].1)))
            .max_by_key(|&(_, w)| w)
            .unwrap();
        critical_path_ns += work;
        critical_ranks.push(per_rank[ci].rank);
        crit_count[ci] += 1;
    }

    let mut barrier_total_ns = 0u64;
    let mut barrier_attributed_ns = 0u64;
    let ranks = per_rank
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let (len, wait) = intervals_by_rank[i][..intervals]
                .iter()
                .fold((0u64, 0u64), |(l, w), &(il, iw)| (l + il, w + iw));
            let mut state_ns = [0u64; STATES.len()];
            for (j, &s) in STATES.iter().enumerate() {
                state_ns[j] = r.waits.state_ns(s);
            }
            barrier_total_ns += r.barrier_total_ns;
            barrier_attributed_ns += r.waits.construct_ns(WaitConstruct::Barrier);
            RankBreakdown {
                rank: r.rank,
                work_ns: len.saturating_sub(wait),
                wait_ns: wait,
                state_ns,
                barrier_ns: r.barrier_total_ns,
                crit_intervals: crit_count[i],
            }
        })
        .collect();

    CritPathReport {
        intervals,
        critical_path_ns,
        critical_ranks,
        ranks,
        barrier_total_ns,
        barrier_attributed_ns: barrier_attributed_ns.min(barrier_total_ns),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waitstate::{pack_wait, WaitStats};

    fn ev(kind: ProfKind, ts: u64, dur: u64, a: u64) -> ProfEvent {
        ProfEvent {
            seq: ts,
            ts_ns: ts,
            dur_ns: dur,
            span: 0,
            peer: -1,
            a,
            kind,
        }
    }

    fn wait_ev(ts: u64, dur: u64) -> ProfEvent {
        ev(
            ProfKind::Wait,
            ts,
            dur,
            pack_wait(WaitConstruct::Barrier, WaitState::LateSender),
        )
    }

    #[test]
    fn intervals_split_on_barrier_exits() {
        // Stream: start 0, wait [10,40), exit @100; wait [110,120), exit @200.
        let evs = vec![
            ev(ProfKind::Send, 0, 0, 0),
            wait_ev(10, 30),
            ev(ProfKind::BarrierExit, 100, 0, 0),
            wait_ev(110, 10),
            ev(ProfKind::BarrierExit, 200, 0, 1),
        ];
        let iv = rank_intervals(&evs);
        assert_eq!(iv, vec![(100, 30), (100, 10)]);
    }

    #[test]
    fn critical_rank_is_max_work() {
        // Rank 0: interval len 100, waits 80 → work 20.
        // Rank 1: interval len 100, waits 10 → work 90. Critical = rank 1.
        let w0 = WaitStats::new();
        w0.record(WaitConstruct::Barrier, WaitState::LateSender, 80);
        let r0 = RankProf {
            rank: 0,
            events: vec![
                ev(ProfKind::Send, 0, 0, 0),
                wait_ev(10, 80),
                ev(ProfKind::BarrierExit, 100, 0, 0),
            ],
            waits: w0.snapshot(),
            barrier_total_ns: 80,
        };
        let w1 = WaitStats::new();
        w1.record(WaitConstruct::Barrier, WaitState::LateSender, 10);
        let r1 = RankProf {
            rank: 1,
            events: vec![
                ev(ProfKind::Send, 0, 0, 0),
                wait_ev(80, 10),
                ev(ProfKind::BarrierExit, 100, 0, 0),
            ],
            waits: w1.snapshot(),
            barrier_total_ns: 10,
        };
        let rep = analyze(&[r0, r1]);
        assert_eq!(rep.intervals, 1);
        assert_eq!(rep.critical_ranks, vec![1]);
        assert_eq!(rep.critical_path_ns, 90);
        assert_eq!(rep.ranks[0].work_ns, 20);
        assert_eq!(rep.ranks[1].work_ns, 90);
        // Full attribution: every barrier ns carries a named state.
        assert!((rep.attributed_fraction() - 1.0).abs() < 1e-9);
        let json = rep.to_json();
        assert!(json.contains("\"critical_ranks\":[1]"));
        assert!(json.contains("\"late_sender\":80"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let table = rep.table().render();
        assert!(table.contains("late_send ms"));
    }

    #[test]
    fn empty_input_is_empty_report() {
        let rep = analyze(&[]);
        assert_eq!(rep.intervals, 0);
        assert_eq!(rep.critical_path_ns, 0);
        assert!((rep.attributed_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn no_barriers_means_no_intervals() {
        let r = RankProf {
            rank: 0,
            events: vec![ev(ProfKind::Send, 5, 0, 0)],
            ..Default::default()
        };
        let rep = analyze(&[r]);
        assert_eq!(rep.intervals, 0);
        assert_eq!(rep.ranks[0].work_ns, 0);
    }
}
