//! The per-rank metrics registry: histograms + progress-engine counters.
//!
//! Mirrors the way `CommStats` exposes counters — live atomics with a
//! `snapshot()` producing a plain-old-data copy — but for distributions:
//! operation latencies, message sizes, `advance()` behaviour and
//! task-queue depth.

use crate::histogram::{HistogramSnapshot, Log2Histogram};
use std::sync::atomic::{AtomicU64, Ordering};

/// Live per-rank metrics.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Remote put latency, ns (includes any synthetic wire time).
    pub put_ns: Log2Histogram,
    /// Remote get latency, ns.
    pub get_ns: Log2Histogram,
    /// Active-message handler execution time, ns.
    pub am_handle_ns: Log2Histogram,
    /// Duration of `advance()` calls that did work, ns.
    pub advance_ns: Log2Histogram,
    /// Barrier episode duration, ns.
    pub barrier_ns: Log2Histogram,
    /// `Event::wait` / `finish` / future blocking time, ns.
    pub wait_ns: Log2Histogram,
    /// Global lock acquisition time (including the spin), ns.
    pub lock_ns: Log2Histogram,
    /// Message/transfer sizes, bytes (puts, gets and AM payloads).
    pub msg_bytes: Log2Histogram,
    /// AM inbox depth sampled at each `advance()` poll.
    pub queue_depth: Log2Histogram,
    /// Total `advance()` calls (polls).
    pub advance_polls: AtomicU64,
    /// `advance()` calls that processed at least one message.
    pub advance_work: AtomicU64,
    /// Messages processed by `advance()` in total.
    pub advance_msgs: AtomicU64,
    /// Frames retransmitted by the reliable AM layer (fault injection).
    pub retransmits: AtomicU64,
    /// Transmission attempts lost on the wire by the fault plan.
    pub wire_drops: AtomicU64,
    /// Duplicate arrivals discarded by the dedup window.
    pub dup_arrivals: AtomicU64,
    /// Batch occupancy: logical frames per flushed aggregation batch
    /// (count = batches sent; recorded at each `batch_flush`).
    pub batch_frames: Log2Histogram,
    /// Line fill sizes of the software read cache, bytes (count = cache
    /// misses; recorded at each `cache_fill`).
    pub cache_fill_bytes: Log2Histogram,
    /// Remote gets served from the software read cache.
    pub cache_hits: AtomicU64,
    /// Remote gets that missed the read cache and filled a line.
    pub cache_misses: AtomicU64,
}

impl Metrics {
    /// Point-in-time copy of every histogram and counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            put_ns: self.put_ns.snapshot(),
            get_ns: self.get_ns.snapshot(),
            am_handle_ns: self.am_handle_ns.snapshot(),
            advance_ns: self.advance_ns.snapshot(),
            barrier_ns: self.barrier_ns.snapshot(),
            wait_ns: self.wait_ns.snapshot(),
            lock_ns: self.lock_ns.snapshot(),
            msg_bytes: self.msg_bytes.snapshot(),
            queue_depth: self.queue_depth.snapshot(),
            advance_polls: self.advance_polls.load(Ordering::Relaxed),
            advance_work: self.advance_work.load(Ordering::Relaxed),
            advance_msgs: self.advance_msgs.load(Ordering::Relaxed),
            retransmits: self.retransmits.load(Ordering::Relaxed),
            wire_drops: self.wire_drops.load(Ordering::Relaxed),
            dup_arrivals: self.dup_arrivals.load(Ordering::Relaxed),
            batch_frames: self.batch_frames.snapshot(),
            cache_fill_bytes: self.cache_fill_bytes.snapshot(),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            ring_pushed: 0,
            ring_lost: 0,
        }
    }
}

/// A point-in-time copy of [`Metrics`].
#[derive(Clone, Copy, Debug, Default)]
pub struct MetricsSnapshot {
    /// Remote put latency distribution, ns.
    pub put_ns: HistogramSnapshot,
    /// Remote get latency distribution, ns.
    pub get_ns: HistogramSnapshot,
    /// AM handler execution time distribution, ns.
    pub am_handle_ns: HistogramSnapshot,
    /// Working `advance()` duration distribution, ns.
    pub advance_ns: HistogramSnapshot,
    /// Barrier duration distribution, ns.
    pub barrier_ns: HistogramSnapshot,
    /// Blocking-wait duration distribution, ns.
    pub wait_ns: HistogramSnapshot,
    /// Lock acquisition distribution, ns.
    pub lock_ns: HistogramSnapshot,
    /// Transfer size distribution, bytes.
    pub msg_bytes: HistogramSnapshot,
    /// Sampled AM inbox depth distribution.
    pub queue_depth: HistogramSnapshot,
    /// Total `advance()` polls.
    pub advance_polls: u64,
    /// Polls that found work.
    pub advance_work: u64,
    /// Messages processed across all polls.
    pub advance_msgs: u64,
    /// Frames retransmitted by the reliable AM layer.
    pub retransmits: u64,
    /// Transmission attempts lost on the wire by the fault plan.
    pub wire_drops: u64,
    /// Duplicate arrivals discarded by the dedup window.
    pub dup_arrivals: u64,
    /// Batch occupancy distribution (frames per aggregation batch).
    pub batch_frames: HistogramSnapshot,
    /// Line fill size distribution of the software read cache, bytes.
    pub cache_fill_bytes: HistogramSnapshot,
    /// Remote gets served from the software read cache.
    pub cache_hits: u64,
    /// Remote gets that missed the read cache and filled a line.
    pub cache_misses: u64,
    /// Events ever pushed to this rank's trace ring (0 when the ring is
    /// off; filled at export time, not by [`Metrics::snapshot`]).
    pub ring_pushed: u64,
    /// Ring events lost to wraparound or writer collision.
    pub ring_lost: u64,
}

impl MetricsSnapshot {
    /// Fraction of `advance()` polls that found work (the progress
    /// engine's poll-to-work ratio; low values mean wasted spinning).
    pub fn poll_work_ratio(&self) -> f64 {
        if self.advance_polls == 0 {
            0.0
        } else {
            self.advance_work as f64 / self.advance_polls as f64
        }
    }

    /// Fraction of cached remote gets served without touching the fabric
    /// (`hits / (hits + misses)`; 0 when the cache saw no traffic).
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Merge another rank's snapshot into an aggregate.
    pub fn merged(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            put_ns: self.put_ns.merged(&other.put_ns),
            get_ns: self.get_ns.merged(&other.get_ns),
            am_handle_ns: self.am_handle_ns.merged(&other.am_handle_ns),
            advance_ns: self.advance_ns.merged(&other.advance_ns),
            barrier_ns: self.barrier_ns.merged(&other.barrier_ns),
            wait_ns: self.wait_ns.merged(&other.wait_ns),
            lock_ns: self.lock_ns.merged(&other.lock_ns),
            msg_bytes: self.msg_bytes.merged(&other.msg_bytes),
            queue_depth: self.queue_depth.merged(&other.queue_depth),
            advance_polls: self.advance_polls + other.advance_polls,
            advance_work: self.advance_work + other.advance_work,
            advance_msgs: self.advance_msgs + other.advance_msgs,
            retransmits: self.retransmits + other.retransmits,
            wire_drops: self.wire_drops + other.wire_drops,
            dup_arrivals: self.dup_arrivals + other.dup_arrivals,
            batch_frames: self.batch_frames.merged(&other.batch_frames),
            cache_fill_bytes: self.cache_fill_bytes.merged(&other.cache_fill_bytes),
            cache_hits: self.cache_hits + other.cache_hits,
            cache_misses: self.cache_misses + other.cache_misses,
            ring_pushed: self.ring_pushed + other.ring_pushed,
            ring_lost: self.ring_lost + other.ring_lost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters() {
        let m = Metrics::default();
        m.put_ns.record(100);
        m.advance_polls.fetch_add(4, Ordering::Relaxed);
        m.advance_work.fetch_add(1, Ordering::Relaxed);
        let s = m.snapshot();
        assert_eq!(s.put_ns.count, 1);
        assert_eq!(s.advance_polls, 4);
        assert!((s.poll_work_ratio() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn empty_ratio_is_zero() {
        assert_eq!(MetricsSnapshot::default().poll_work_ratio(), 0.0);
    }

    #[test]
    fn cache_hit_ratio() {
        let m = Metrics::default();
        assert_eq!(m.snapshot().cache_hit_ratio(), 0.0);
        m.cache_hits.fetch_add(3, Ordering::Relaxed);
        m.cache_misses.fetch_add(1, Ordering::Relaxed);
        m.cache_fill_bytes.record(256);
        let s = m.snapshot();
        assert!((s.cache_hit_ratio() - 0.75).abs() < 1e-9);
        assert_eq!(s.cache_fill_bytes.count, 1);
        let merged = s.merged(&s);
        assert_eq!(merged.cache_hits, 6);
        assert_eq!(merged.cache_fill_bytes.count, 2);
    }

    #[test]
    fn merged_aggregates_ranks() {
        let a = Metrics::default();
        a.msg_bytes.record(8);
        a.advance_polls.fetch_add(2, Ordering::Relaxed);
        let b = Metrics::default();
        b.msg_bytes.record(1024);
        b.advance_polls.fetch_add(3, Ordering::Relaxed);
        let m = a.snapshot().merged(&b.snapshot());
        assert_eq!(m.msg_bytes.count, 2);
        assert_eq!(m.advance_polls, 5);
    }
}
