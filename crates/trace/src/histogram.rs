//! Log₂-bucketed histograms for latency and size distributions.
//!
//! 64 buckets: bucket `i` holds values whose bit width is `i`, i.e. value
//! `v` lands in bucket `64 - v.leading_zeros()` (0 stays in bucket 0).
//! Bucket `i > 0` therefore covers `[2^(i-1), 2^i)`; the last bucket is
//! the overflow bucket for values `>= 2^62`. Recording is one relaxed
//! atomic increment, cheap enough for per-operation paths.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets (one per possible bit width, plus the zero bucket).
pub const BUCKETS: usize = 64;

/// Bucket index for a value: its bit width (0 for 0).
#[inline]
pub fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_low(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Exclusive upper bound of bucket `i` (saturating for the overflow bucket).
pub fn bucket_high(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << i
    }
}

/// A live, thread-safe log₂ histogram.
#[derive(Debug)]
pub struct Log2Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Log2Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(&self.buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Log2Histogram`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts.
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Mean of observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate `p`-quantile (`0.0..=1.0`): the upper bound of the
    /// bucket containing the quantile rank, so the true value is within a
    /// factor of 2 below the returned bound. The bound is capped at the
    /// observed max, which makes degenerate shapes exact: an empty
    /// histogram reports 0 and a single observation reports itself.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if self.count == 1 {
            return self.max;
        }
        let rank = ((self.count as f64) * p.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i >= BUCKETS - 1 {
                    self.max
                } else {
                    bucket_high(i).min(self.max)
                };
            }
        }
        self.max
    }

    /// Median bound.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 99th-percentile bound.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Element-wise merge (for aggregating ranks).
    pub fn merged(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = *self;
        for (d, s) in out.buckets.iter_mut().zip(&other.buckets) {
            *d += s;
        }
        out.count += other.count;
        out.sum += other.sum;
        out.max = out.max.max(other.max);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // 0 is its own bucket; then each power of two opens a new bucket.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        for i in 1..63 {
            let v = 1u64 << i;
            assert_eq!(bucket_of(v), i + 1, "2^{i}");
            assert_eq!(bucket_of(v - 1), i, "2^{i}-1");
            assert!(bucket_low(bucket_of(v)) <= v && v < bucket_high(bucket_of(v)));
        }
    }

    #[test]
    fn overflow_bucket_catches_huge_values() {
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_of(1u64 << 63), BUCKETS - 1);
        assert_eq!(bucket_high(BUCKETS - 1), u64::MAX);
        let h = Log2Histogram::new();
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.buckets[BUCKETS - 1], 1);
        assert_eq!(s.percentile(1.0), u64::MAX);
    }

    #[test]
    fn count_sum_mean_max() {
        let h = Log2Histogram::new();
        for v in [1u64, 2, 3, 10] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 16);
        assert_eq!(s.max, 10);
        assert!((s.mean() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_bound_true_quantiles() {
        let h = Log2Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // True p50 is 500 → bucket [512,1024) upper bound, capped at max.
        let p50 = s.p50();
        assert!((500..=1000).contains(&p50), "p50 bound {p50}");
        let p99 = s.p99();
        assert!((990..=1024).contains(&p99), "p99 bound {p99}");
        // p=0 lands in the first nonzero bucket [1,2); bound is 2.
        assert_eq!(s.percentile(0.0), 2);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let s = Log2Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.percentile(1.0), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn single_observation_reports_itself() {
        // A single sample must come back exactly, not as its bucket's
        // upper bound (737 lives in [512,1024) — the old bound was 1024).
        for v in [0u64, 1, 737, 1 << 40] {
            let h = Log2Histogram::new();
            h.record(v);
            let s = h.snapshot();
            assert_eq!(s.p50(), v, "p50 of sole value {v}");
            assert_eq!(s.p99(), v, "p99 of sole value {v}");
            assert_eq!(s.percentile(0.0), v);
            assert_eq!(s.percentile(1.0), v);
        }
    }

    #[test]
    fn single_bucket_percentile_caps_at_max() {
        // All samples in one bucket: the bound is the observed max, not
        // the bucket's (larger) upper bound.
        let h = Log2Histogram::new();
        for _ in 0..5 {
            h.record(5);
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), 5);
        assert_eq!(s.p99(), 5);
        // And an all-zero histogram reports 0, never 1.
        let z = Log2Histogram::new();
        z.record(0);
        z.record(0);
        assert_eq!(z.snapshot().p50(), 0);
        assert_eq!(z.snapshot().p99(), 0);
    }

    #[test]
    fn merged_adds_counts() {
        let a = Log2Histogram::new();
        a.record(5);
        let b = Log2Histogram::new();
        b.record(100);
        let m = a.snapshot().merged(&b.snapshot());
        assert_eq!(m.count, 2);
        assert_eq!(m.sum, 105);
        assert_eq!(m.max, 100);
    }
}
