//! Machine descriptions of the paper's two platforms.
//!
//! Parameter values are literature figures for Cray XC30/Aries and IBM
//! BG/Q (microbenchmark papers and vendor documentation); they set the
//! *scale* of network terms, while the software terms come from live
//! calibration on the reproduction host. Only relative shapes are claimed.

use crate::loggp::LogGP;
use crate::topology::{Dragonfly, Topology, Torus};

/// Which topology a machine uses.
#[derive(Clone, Copy, Debug)]
pub enum Interconnect {
    /// Dragonfly (Cray Aries).
    Dragonfly(Dragonfly),
    /// D-dimensional torus (IBM BG/Q).
    Torus(Torus),
}

impl Topology for Interconnect {
    fn mean_hops(&self, nodes: usize) -> f64 {
        match self {
            Interconnect::Dragonfly(d) => d.mean_hops(nodes),
            Interconnect::Torus(t) => t.mean_hops(nodes),
        }
    }

    fn bisection_links(&self, nodes: usize) -> f64 {
        match self {
            Interconnect::Dragonfly(d) => d.bisection_links(nodes),
            Interconnect::Torus(t) => t.bisection_links(nodes),
        }
    }
}

/// One of the paper's machines.
#[derive(Clone, Copy, Debug)]
pub struct Machine {
    /// Display name.
    pub name: &'static str,
    /// Cores per node (Edison 24, Vesta 16).
    pub cores_per_node: usize,
    /// Base LogGP parameters for one-sided RMA (puts/gets).
    pub rma: LogGP,
    /// Extra per-message software overhead of two-sided (matched) messaging
    /// relative to one-sided, in seconds (matching + extra copy).
    pub two_sided_extra_o: f64,
    /// Per-hop router latency in seconds (uncongested).
    pub hop_latency: f64,
    /// Effective extra per-mean-hop cost of a complete fine-grained
    /// random-access transaction under all-to-all load (queueing on the
    /// congested links; transaction-level coefficient used by the GUPS
    /// model).
    pub congested_hop: f64,
    /// Per-access software cost of the machine's PGAS runtime for a
    /// *remote shared-array access* on this machine's cores (the quantity
    /// the Berkeley-UPC-vs-UPC++ comparison is about). The harnesses scale
    /// this by the host-measured proxy/direct cost ratio.
    pub pgas_access_sw: f64,
    /// Interconnect topology.
    pub net: Interconnect,
    /// Peak per-core floating-point rate used for compute scaling (flop/s).
    pub flops_per_core: f64,
}

impl Machine {
    /// Number of nodes hosting `cores` cores.
    pub fn nodes(&self, cores: usize) -> usize {
        cores.div_ceil(self.cores_per_node).max(1)
    }

    /// Modeled one-way latency of a small one-sided operation between two
    /// random cores of a `cores`-core job.
    pub fn remote_latency(&self, cores: usize) -> f64 {
        let nodes = self.nodes(cores);
        self.rma.l + self.net.mean_hops(nodes) * self.hop_latency
    }

    /// Contention multiplier for uniform-random traffic where every core
    /// keeps `msgs_in_flight` small messages outstanding.
    pub fn random_traffic_contention(&self, cores: usize, injection_fraction: f64) -> f64 {
        let nodes = self.nodes(cores);
        self.net.alltoall_contention(nodes, injection_fraction)
    }

    /// Fraction of random accesses that leave the initiating rank in an
    /// `ranks`-rank job (GUPS geometry).
    pub fn remote_fraction(ranks: usize) -> f64 {
        if ranks <= 1 {
            0.0
        } else {
            (ranks as f64 - 1.0) / ranks as f64
        }
    }
}

/// Edison: Cray XC30 at NERSC — Aries dragonfly, 24-core Ivy Bridge nodes.
pub fn edison() -> Machine {
    Machine {
        name: "Edison (Cray XC30, Aries dragonfly)",
        cores_per_node: 24,
        rma: LogGP {
            l: 1.3e-6,        // small RDMA put end-to-end
            o: 0.25e-6,       // initiator software overhead
            g: 0.1e-6,        // ~10 M msg/s injection per core
            cap_g: 1.0 / 8e9, // ~8 GB/s per-node link bandwidth
        },
        two_sided_extra_o: 0.6e-6, // matching + eager copy of MPI
        hop_latency: 0.1e-6,
        congested_hop: 0.25e-6,
        pgas_access_sw: 0.4e-6, // fast OoO cores: thin software stack
        net: Interconnect::Dragonfly(Dragonfly::aries()),
        flops_per_core: 9.6e9, // 2.4 GHz Ivy Bridge × 4-wide FMA-less DP
    }
}

/// Vesta: IBM BG/Q at ALCF — 5-D torus, 16-core A2 nodes.
pub fn vesta() -> Machine {
    Machine {
        name: "Vesta (IBM BG/Q, 5-D torus)",
        cores_per_node: 16,
        rma: LogGP {
            l: 1.2e-6,
            o: 0.3e-6, // per-message CPU overhead on the A2
            g: 0.3e-6,
            cap_g: 1.0 / 1.8e9, // 2 GB/s per link, ~1.8 effective
        },
        two_sided_extra_o: 1.2e-6,
        hop_latency: 0.045e-6,  // ~45 ns per torus hop, uncongested
        congested_hop: 1.1e-6,  // random fine-grained all-to-all queueing
        pgas_access_sw: 2.0e-6, // slow in-order A2: heavy software stack
        net: Interconnect::Torus(Torus::bgq()),
        flops_per_core: 3.2e9, // 1.6 GHz A2 dual-issue DP
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_round_up() {
        let e = edison();
        assert_eq!(e.nodes(1), 1);
        assert_eq!(e.nodes(24), 1);
        assert_eq!(e.nodes(25), 2);
        assert_eq!(e.nodes(6144), 256);
    }

    #[test]
    fn remote_latency_grows_with_scale_on_torus() {
        let v = vesta();
        let l16 = v.remote_latency(16);
        let l8k = v.remote_latency(8192);
        assert!(l8k > l16, "{l16} vs {l8k}");
        // Microsecond regime, not wildly off.
        assert!(l16 > 0.5e-6 && l8k < 50e-6);
    }

    #[test]
    fn dragonfly_latency_nearly_flat() {
        let e = edison();
        let small = e.remote_latency(48);
        let large = e.remote_latency(32768);
        assert!(large < small * 2.0, "dragonfly stays flat: {small} {large}");
    }

    #[test]
    fn remote_fraction_limits() {
        assert_eq!(Machine::remote_fraction(1), 0.0);
        assert!((Machine::remote_fraction(2) - 0.5).abs() < 1e-12);
        assert!(Machine::remote_fraction(8192) > 0.999);
    }

    #[test]
    fn two_sided_costs_more() {
        assert!(edison().two_sided_extra_o > 0.0);
        assert!(vesta().two_sided_extra_o > edison().two_sided_extra_o);
    }
}
