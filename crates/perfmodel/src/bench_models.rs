//! Per-benchmark projection models: combine live-measured software costs
//! with the machine models to produce each figure's paper-scale series.
//!
//! Every function takes the *measured* software terms as inputs (already
//! scaled to the target machine's core speed by the caller, see
//! [`cpu_scale`]) and returns one point per core count. The shapes these
//! formulas produce — who wins, how the gap evolves, where scaling bends —
//! are the reproduction targets recorded in EXPERIMENTS.md.

use crate::machine::Machine;

/// One point of a projected series.
#[derive(Clone, Copy, Debug)]
pub struct SeriesPoint {
    /// Total cores (ranks).
    pub cores: usize,
    /// The figure's metric at this scale (unit depends on the benchmark).
    pub value: f64,
}

/// Scale a host-measured software time to a target machine:
/// `t_machine = t_host × host_core_rate / machine_core_rate`.
pub fn cpu_scale(machine: &Machine, host_flops_per_core: f64) -> f64 {
    host_flops_per_core / machine.flops_per_core
}

/// Fig. 4 / Table IV — GUPS. Returns `(latency_series_us, gups_series)`.
///
/// Per-update time = software cost of the access path — the machine's
/// PGAS per-access constant scaled by the host-measured proxy/direct
/// ratio (`sw_ratio`, 1.0 = the UPC baseline) — plus, for the remote
/// fraction of updates, a dependent read-modify-write transaction: four
/// one-way wire latencies and CPU message overheads plus the congested
/// per-hop queueing that dominates fine-grained random traffic at scale.
pub fn gups_model(
    machine: &Machine,
    cores: &[usize],
    sw_ratio: f64,
) -> (Vec<SeriesPoint>, Vec<SeriesPoint>) {
    use crate::topology::Topology;
    let o_sw_seconds = machine.pgas_access_sw * sw_ratio;
    let mut lat = Vec::with_capacity(cores.len());
    let mut gups = Vec::with_capacity(cores.len());
    for &c in cores {
        let f_remote = Machine::remote_fraction(c);
        let hops = machine.net.mean_hops(machine.nodes(c));
        // get (round trip) + xor + put (injected, acknowledged at fence):
        // 4 one-way latencies' worth of wire plus 4 CPU message overheads,
        // plus transaction-level congestion growing with route length.
        let t_net = 4.0 * (machine.rma.l + machine.rma.o) + hops * machine.congested_hop;
        let t = o_sw_seconds + f_remote * t_net;
        lat.push(SeriesPoint {
            cores: c,
            value: t * 1e6,
        });
        gups.push(SeriesPoint {
            cores: c,
            value: c as f64 / t / 1e9,
        });
    }
    (lat, gups)
}

/// Fig. 5 — Stencil weak scaling (GFLOPS).
///
/// Per iteration each rank computes `pts_per_rank` 7-point updates
/// (8 flops each, paper geometry 256³) at the measured per-point software
/// time, then exchanges 6 ghost faces one-sided.
pub fn stencil_model(
    machine: &Machine,
    cores: &[usize],
    sw_seconds_per_point: f64,
    pts_edge: usize,
) -> Vec<SeriesPoint> {
    let pts_per_rank = (pts_edge * pts_edge * pts_edge) as f64;
    let face_bytes = ((pts_edge + 2) * (pts_edge + 2) * 8) as f64;
    cores
        .iter()
        .map(|&c| {
            let t_comp = pts_per_rank * sw_seconds_per_point;
            let l_eff = machine.remote_latency(c);
            let t_comm = 6.0 * (face_bytes * machine.rma.cap_g + l_eff + 2.0 * machine.rma.o);
            let t = t_comp + t_comm;
            SeriesPoint {
                cores: c,
                value: 8.0 * pts_per_rank * c as f64 / t / 1e9,
            }
        })
        .collect()
}

/// Fig. 6 — Sample sort weak scaling (TB sorted per minute).
///
/// Per rank: sample + local sort (measured per-key software time) and an
/// all-to-all redistribution of the full key volume over the bisection.
pub fn sort_model(
    machine: &Machine,
    cores: &[usize],
    keys_per_rank: usize,
    sw_seconds_per_key: f64,
) -> Vec<SeriesPoint> {
    let bytes_per_rank = keys_per_rank as f64 * 8.0;
    cores
        .iter()
        .map(|&c| {
            let t_local = keys_per_rank as f64 * sw_seconds_per_key;
            let contention = machine.random_traffic_contention(c, 1.0);
            // All ranks of a node share one NIC, so a node drains
            // cores_per_node × bytes_per_rank through one injection port;
            // at large rank counts per-peer messages shrink and endpoint
            // incast serializes delivery (the classic all-to-all wall).
            let nic_share = machine.cores_per_node.min(c) as f64;
            let incast = 1.0 + (c as f64 / 4096.0).sqrt();
            let t_data = Machine::remote_fraction(c)
                * bytes_per_rank
                * nic_share
                * machine.rma.cap_g
                * contention
                * incast;
            // One message per peer, send and receive side.
            let peers = c.saturating_sub(1) as f64;
            let t_msgs = 2.0 * peers * (machine.rma.o + machine.rma.g);
            let t = t_local + t_data + t_msgs + machine.remote_latency(c);
            let total_bytes = bytes_per_rank * c as f64;
            SeriesPoint {
                cores: c,
                value: total_bytes / t / 1e12 * 60.0,
            }
        })
        .collect()
}

/// Fig. 7 — Distributed ray tracing strong scaling (speedup over 1 rank).
///
/// Embarrassingly parallel render of a fixed image (measured single-rank
/// time), a final binomial sum-reduction of the partial images, and a
/// small load-imbalance tail from static cyclic tile distribution.
pub fn raytrace_model(
    machine: &Machine,
    cores: &[usize],
    t1_seconds: f64,
    image_bytes: usize,
    imbalance: f64,
) -> Vec<SeriesPoint> {
    cores
        .iter()
        .map(|&c| {
            let t_comp = t1_seconds / c as f64 * (1.0 + imbalance);
            // Bandwidth-optimal sum-reduction (reduce-scatter + gather):
            // every byte of the image crosses the wire about twice,
            // independent of rank count, plus log-depth latency.
            let rounds = (c as f64).log2().ceil().max(0.0);
            let t_reduce = 2.0 * image_bytes as f64 * machine.rma.cap_g
                + rounds * (machine.remote_latency(c) + 2.0 * machine.rma.o);
            SeriesPoint {
                cores: c,
                value: t1_seconds / (t_comp + t_reduce),
            }
        })
        .collect()
}

/// Communication flavour of the LULESH projection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Exchange {
    /// UPC++ one-sided `async_copy` ghost exchange.
    OneSided,
    /// MPI-style two-sided non-blocking exchange (matching + extra copy,
    /// with matching costs growing with scale as arrival skew lengthens
    /// the unexpected-message queues).
    TwoSided,
}

/// Fig. 8 — LULESH weak scaling (FOM, zones/s).
///
/// Per step: measured per-zone compute time, a 26-neighbour ghost exchange
/// (faces + edges + corners of an `edge³`-zone subdomain), and a dt
/// allreduce. `TwoSided` pays the machine's matching overhead per message,
/// amplified logarithmically with node count (queue-depth/skew growth).
pub fn lulesh_model(
    machine: &Machine,
    cores: &[usize],
    edge: usize,
    sw_seconds_per_zone: f64,
    exchange: Exchange,
) -> Vec<SeriesPoint> {
    let zones = (edge * edge * edge) as f64;
    let face_b = (edge * edge * 8) as f64;
    let edge_b = (edge * 8) as f64;
    let ghost_bytes = 6.0 * face_b + 12.0 * edge_b + 8.0 * 8.0;
    cores
        .iter()
        .map(|&c| {
            let l_eff = machine.remote_latency(c);
            let t_comp = zones * sw_seconds_per_zone;
            let mut t_msg = 26.0 * (machine.rma.o + machine.rma.g) + l_eff;
            if exchange == Exchange::TwoSided {
                // Matching cost grows with scale: arrival skew lengthens
                // the posted/unexpected queues every message must scan,
                // and skew itself compounds with machine depth.
                let log_nodes = (machine.nodes(c) as f64).log2().max(0.0);
                let skew = 1.0 + 0.04 * log_nodes * log_nodes;
                t_msg += 26.0 * machine.two_sided_extra_o * skew;
            }
            let t_data = ghost_bytes * machine.rma.cap_g;
            // dt reduction: binomial allreduce.
            let t_reduce = (c as f64).log2().ceil() * (l_eff + 2.0 * machine.rma.o);
            let t_step = t_comp + t_msg + t_data + t_reduce;
            SeriesPoint {
                cores: c,
                value: zones * c as f64 / t_step,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{edison, vesta};

    const FIG4_CORES: [usize; 14] = [
        1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192,
    ];

    #[test]
    fn gups_latency_rises_and_gap_shrinks() {
        let m = vesta();
        // sw_ratio 1.0 = the UPC direct baseline; a host-measured
        // proxy/direct ratio > 1 is the UPC++ curve.
        let (lat_upc, gups_upc) = gups_model(&m, &FIG4_CORES, 1.0);
        let (lat_upcxx, gups_upcxx) = gups_model(&m, &FIG4_CORES, 1.3);
        // Latency per update rises with scale.
        assert!(lat_upcxx.last().unwrap().value > lat_upcxx[4].value);
        // UPC wins everywhere, but the *relative* gap shrinks with scale
        // (paper: 10% at 128 cores, a very small % at 8192).
        let ratio_small = lat_upcxx[4].value / lat_upc[4].value; // 16 cores
        let ratio_large = lat_upcxx.last().unwrap().value / lat_upc.last().unwrap().value;
        assert!(ratio_small > ratio_large, "{ratio_small} vs {ratio_large}");
        assert!(ratio_large < 1.1);
        // Aggregate GUPS grows with cores.
        assert!(gups_upc.last().unwrap().value > gups_upc[4].value * 100.0);
        assert!(gups_upcxx.last().unwrap().value < gups_upc.last().unwrap().value);
    }

    #[test]
    fn gups_absolute_values_near_table_iv() {
        // With the documented machine constants the UPC curve should land
        // in the neighbourhood of the paper's Table IV values.
        let m = vesta();
        let (lat, gups) = gups_model(&m, &FIG4_CORES, 1.0);
        let at = |c: usize| gups[FIG4_CORES.iter().position(|&x| x == c).unwrap()].value;
        assert!((0.0008..0.004).contains(&at(16)), "16: {}", at(16));
        assert!((0.3..1.4).contains(&at(8192)), "8192: {}", at(8192));
        // Latency per update in the paper's 6–14 µs band at scale.
        let l8k = lat.last().unwrap().value;
        assert!((6.0..16.0).contains(&l8k), "latency at 8192: {l8k}");
    }

    #[test]
    fn stencil_scales_nearly_linearly() {
        let m = edison();
        let cores = [24, 48, 96, 192, 384, 768, 1536, 3072, 6144];
        let s = stencil_model(&m, &cores, 1.0e-9, 256);
        // Weak scaling: GFLOPS ≈ proportional to cores.
        let eff = (s.last().unwrap().value / s[0].value) / (6144.0 / 24.0);
        assert!(eff > 0.9, "weak-scaling efficiency {eff}");
    }

    #[test]
    fn stencil_variants_close_when_sw_close() {
        let m = edison();
        let cores = [24, 6144];
        let a = stencil_model(&m, &cores, 1.00e-9, 256);
        let b = stencil_model(&m, &cores, 1.05e-9, 256);
        for (x, y) in a.iter().zip(&b) {
            let ratio = x.value / y.value;
            assert!((0.9..1.1).contains(&ratio));
        }
    }

    #[test]
    fn sort_throughput_grows_sublinearly() {
        let m = edison();
        let cores = [1, 12, 96, 768, 6144, 12288];
        // Per-key software time from the paper's own 1-core point:
        // ~1e-3 TB/min on one core → ≈480 ns per 8-byte key end to end.
        let s = sort_model(&m, &cores, 1 << 20, 480e-9);
        for w in s.windows(2) {
            assert!(w[1].value > w[0].value, "throughput keeps growing");
        }
        // Communication-bound: efficiency at 12288 cores well below 1.
        let eff = (s.last().unwrap().value / s[0].value) / 12288.0;
        assert!(eff < 0.9);
        // Order of magnitude: paper reports ~3.4 TB/min at 12288 cores.
        let v = s.last().unwrap().value;
        assert!(v > 0.5 && v < 50.0, "TB/min {v}");
    }

    #[test]
    fn raytrace_near_perfect_strong_scaling() {
        let m = edison();
        let cores = [24, 48, 96, 192, 384, 768, 1536, 3072, 6144];
        // A production-scale frame: ~30 min single-core render.
        let s = raytrace_model(&m, &cores, 1800.0, 3 * 8 * 1024 * 1024, 0.02);
        let eff = s.last().unwrap().value / 6144.0 * 24.0; // speedup normalized to 24-core base
        assert!(eff > 0.8, "strong-scaling efficiency {eff}");
    }

    #[test]
    fn lulesh_one_sided_beats_two_sided_and_gap_grows() {
        let m = edison();
        let cores = [64, 512, 4096, 32768];
        let one = lulesh_model(&m, &cores, 30, 40e-9, Exchange::OneSided);
        let two = lulesh_model(&m, &cores, 30, 40e-9, Exchange::TwoSided);
        let mut last_gap = 0.0;
        for (o, t) in one.iter().zip(&two) {
            let gap = o.value / t.value - 1.0;
            assert!(gap > 0.0, "one-sided must win at {} cores", o.cores);
            assert!(gap >= last_gap - 1e-9, "gap grows with scale");
            last_gap = gap;
        }
        // Paper: ~10% at 32K ranks.
        assert!((0.02..0.35).contains(&last_gap), "gap at 32K: {last_gap}");
    }

    #[test]
    fn lulesh_fom_grows_with_cores() {
        let m = edison();
        let cores = [64, 216, 512, 1000, 4096, 8000, 13824, 32768];
        let s = lulesh_model(&m, &cores, 30, 40e-9, Exchange::OneSided);
        for w in s.windows(2) {
            assert!(w[1].value > w[0].value);
        }
    }

    #[test]
    fn cpu_scale_ratio() {
        let m = vesta();
        let s = cpu_scale(&m, 6.4e9);
        assert!((s - 2.0).abs() < 1e-9);
    }
}
