//! The LogGP communication model (Alexandrov et al.):
//! latency `L`, per-message CPU overhead `o`, per-message gap `g`
//! (inverse message rate), and per-byte gap `G` (inverse bandwidth).

/// LogGP parameters, all in seconds (G in seconds/byte).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogGP {
    /// Wire latency for a minimum-size message.
    pub l: f64,
    /// CPU overhead per message end (send or receive side).
    pub o: f64,
    /// Gap between consecutive message injections (1 / message rate).
    pub g: f64,
    /// Gap per byte (1 / bandwidth).
    pub cap_g: f64,
}

impl LogGP {
    /// End-to-end time of a single `bytes`-byte message:
    /// `o + L + (bytes-1)·G + o`.
    pub fn message_time(&self, bytes: usize) -> f64 {
        2.0 * self.o + self.l + (bytes.saturating_sub(1)) as f64 * self.cap_g
    }

    /// Time for one rank to inject `n` messages of `bytes` bytes,
    /// pipelined: the injections are gap-limited, plus one trailing
    /// latency for the last message to land.
    pub fn pipelined_time(&self, n: usize, bytes: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let per_msg = (self.o + self.g).max(bytes as f64 * self.cap_g);
        n as f64 * per_msg + self.l
    }

    /// Effective bandwidth (bytes/s) for large transfers.
    pub fn bandwidth(&self) -> f64 {
        1.0 / self.cap_g
    }

    /// Half-performance message size `n_half`: the size where half the
    /// asymptotic bandwidth is achieved (a classic network metric).
    pub fn n_half(&self) -> f64 {
        (2.0 * self.o + self.l) / self.cap_g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LogGP {
        LogGP {
            l: 1e-6,
            o: 0.5e-6,
            g: 0.2e-6,
            cap_g: 1.0 / 8e9, // 8 GB/s
        }
    }

    #[test]
    fn message_time_small_dominated_by_latency() {
        let m = sample();
        let t8 = m.message_time(8);
        assert!((t8 - (2.0 * 0.5e-6 + 1e-6 + 7.0 / 8e9)).abs() < 1e-15);
        // Doubling a tiny message barely changes the time.
        assert!(m.message_time(16) / t8 < 1.01);
    }

    #[test]
    fn message_time_large_dominated_by_bandwidth() {
        let m = sample();
        let t = m.message_time(8 << 20);
        let bw_term = (8 << 20) as f64 / 8e9;
        assert!(t > bw_term && t < bw_term * 1.01);
    }

    #[test]
    fn pipelining_amortizes_latency() {
        let m = sample();
        let serial = 100.0 * m.message_time(8);
        let piped = m.pipelined_time(100, 8);
        assert!(piped < serial / 2.0, "pipelined {piped} vs serial {serial}");
        assert_eq!(m.pipelined_time(0, 8), 0.0);
    }

    #[test]
    fn n_half_is_positive_and_sane() {
        let m = sample();
        let n = m.n_half();
        assert!(n > 0.0);
        // At n_half bytes, transfer time ≈ 2 × (pure bandwidth time).
        let t = m.message_time(n as usize);
        let bw_t = n / 8e9;
        assert!((t / bw_t - 2.0).abs() < 0.1);
    }

    #[test]
    fn bandwidth_inverse_of_gap() {
        assert!((sample().bandwidth() - 8e9).abs() < 1.0);
    }
}
