//! `rupcxx-perfmodel` — analytic machine models used to project measured
//! software costs onto the paper's machines and scales.
//!
//! The paper evaluates on two supercomputers we do not have:
//! **Edison** (Cray XC30: Aries interconnect, dragonfly topology, 24-core
//! Ivy Bridge nodes) and **Vesta** (IBM BG/Q: 5-D torus, 16-core A2
//! nodes), at up to 32 K cores. This crate is the documented substitution
//! (DESIGN.md): a LogGP-style communication model combined with
//! topology-aware hop and bisection-contention terms.
//!
//! The workflow of every `repro-*` harness is:
//!
//! 1. **measure** the per-operation *software* costs of both code paths on
//!    this host (e.g. `SharedArray` proxy access vs. UPC-mode direct
//!    access) — these are the quantities the paper's comparison is about;
//! 2. **model** the *network* term with [`Machine`]'s LogGP + topology
//!    parameters (literature values for Aries and BG/Q);
//! 3. **combine** them per benchmark ([`bench_models`]) to produce the
//!    paper-scale series. Relative shapes (who wins, how gaps evolve with
//!    scale) come out of measured software deltas and modeled network
//!    time; absolute numbers are explicitly not the goal.

pub mod bench_models;
pub mod loggp;
pub mod machine;
pub mod topology;

pub use loggp::LogGP;
pub use machine::{edison, vesta, Machine};
pub use topology::{Dragonfly, Topology, Torus};
