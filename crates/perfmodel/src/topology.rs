//! Interconnect topology models: mean hop counts and bisection capacity.
//!
//! Two topologies, matching the paper's machines:
//! * [`Dragonfly`] — Cray Aries (Edison): all-to-all connected groups of
//!   routers; small, nearly scale-free diameter.
//! * [`Torus`] — IBM BG/Q (Vesta): 5-D torus; average distance and
//!   bisection grow/shrink polynomially with node count.

/// A network topology: enough structure to model latency growth and
/// all-to-all contention at scale.
pub trait Topology {
    /// Mean router-to-router hop count between two random nodes in an
    /// `nodes`-node machine.
    fn mean_hops(&self, nodes: usize) -> f64;

    /// Bisection capacity in links for an `nodes`-node machine (each link
    /// carrying `link_bandwidth` bytes/s).
    fn bisection_links(&self, nodes: usize) -> f64;

    /// Contention multiplier for uniform-random (all-to-all) traffic:
    /// how many times the injection demand exceeds bisection capacity.
    /// ≥ 1; 1 means contention-free.
    fn alltoall_contention(&self, nodes: usize, injection_links_per_node: f64) -> f64 {
        // Half the traffic crosses the bisection under uniform random.
        let demand = nodes as f64 * injection_links_per_node / 2.0;
        (demand / self.bisection_links(nodes)).max(1.0)
    }
}

/// Dragonfly (Aries-like): groups of `routers_per_group` routers, each
/// router serving `nodes_per_router` nodes; groups fully connected.
#[derive(Clone, Copy, Debug)]
pub struct Dragonfly {
    /// Routers per group (Aries: 96).
    pub routers_per_group: usize,
    /// Nodes per router (Aries: 4).
    pub nodes_per_router: usize,
    /// Global (inter-group) links per router.
    pub global_links_per_router: f64,
}

impl Dragonfly {
    /// Cray Aries geometry.
    pub fn aries() -> Self {
        Dragonfly {
            routers_per_group: 96,
            nodes_per_router: 4,
            global_links_per_router: 10.0 / 4.0,
        }
    }

    fn nodes_per_group(&self) -> usize {
        self.routers_per_group * self.nodes_per_router
    }
}

impl Topology for Dragonfly {
    fn mean_hops(&self, nodes: usize) -> f64 {
        let npg = self.nodes_per_group();
        if nodes <= self.nodes_per_router {
            1.0
        } else if nodes <= npg {
            // Same group: router → router (2-level all-to-all inside a
            // group costs ≤ 2 hops; average ≈ 1.6).
            1.6
        } else {
            // Minimal inter-group route: local → global → local ≈ 3 hops,
            // plus a small adaptive-routing detour that grows slowly with
            // group count (Valiant routes on congested paths).
            let groups = (nodes as f64 / npg as f64).max(1.0);
            3.0 + 0.5 * groups.ln().max(0.0)
        }
    }

    fn bisection_links(&self, nodes: usize) -> f64 {
        let npg = self.nodes_per_group() as f64;
        let groups = (nodes as f64 / npg).max(1.0);
        if groups <= 1.0 {
            // Intra-group bisection: half the routers' local links.
            (self.routers_per_group as f64 / 2.0) * (self.routers_per_group as f64 / 2.0) / 4.0
        } else {
            // Global links crossing the bisection: each router contributes
            // its global links; half of the groups' links cross.
            let routers = groups * self.routers_per_group as f64;
            routers * self.global_links_per_router / 2.0
        }
    }
}

/// A D-dimensional torus with (approximately) equal extents.
#[derive(Clone, Copy, Debug)]
pub struct Torus {
    /// Dimensionality (BG/Q: 5).
    pub dims: usize,
}

impl Torus {
    /// IBM BG/Q 5-D torus.
    pub fn bgq() -> Self {
        Torus { dims: 5 }
    }

    /// Per-dimension extent for an `nodes`-node machine.
    fn extent(&self, nodes: usize) -> f64 {
        (nodes as f64).powf(1.0 / self.dims as f64).max(1.0)
    }
}

impl Topology for Torus {
    fn mean_hops(&self, nodes: usize) -> f64 {
        // Average distance along one torus dimension of extent k is k/4;
        // sum over dimensions.
        let k = self.extent(nodes);
        (self.dims as f64 * k / 4.0).max(1.0)
    }

    fn bisection_links(&self, nodes: usize) -> f64 {
        // Cutting one dimension: 2 (wraparound) × the cross-section.
        let k = self.extent(nodes);
        2.0 * (nodes as f64 / k).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dragonfly_hops_nearly_flat() {
        let d = Dragonfly::aries();
        let small = d.mean_hops(384);
        let large = d.mean_hops(100_000);
        assert!(small >= 1.0);
        assert!(large < small * 4.0, "dragonfly diameter must stay small");
    }

    #[test]
    fn torus_hops_grow_polynomially() {
        let t = Torus::bgq();
        let h1k = t.mean_hops(1024);
        let h32k = t.mean_hops(32 * 1024);
        assert!(h32k > h1k, "longer average routes on a bigger torus");
        // Extent ratio (32x nodes) is 32^(1/5) = 2 → hops double.
        assert!((h32k / h1k - 2.0).abs() < 0.2);
    }

    #[test]
    fn contention_at_least_one() {
        let d = Dragonfly::aries();
        assert!(d.alltoall_contention(64, 1.0) >= 1.0);
        let t = Torus::bgq();
        assert!(t.alltoall_contention(2, 0.001) >= 1.0);
    }

    #[test]
    fn torus_contention_grows_with_scale() {
        let t = Torus::bgq();
        let c1k = t.alltoall_contention(1024, 1.0);
        let c32k = t.alltoall_contention(32768, 1.0);
        assert!(
            c32k > c1k,
            "bisection shrinks relative to injection: {c1k} vs {c32k}"
        );
    }

    #[test]
    fn bisection_positive_even_tiny() {
        assert!(Dragonfly::aries().bisection_links(1) > 0.0);
        assert!(Torus::bgq().bisection_links(1) > 0.0);
    }
}
