//! Report helpers: print a measured/modeled table and mirror it to CSV
//! under `results/` so EXPERIMENTS.md can reference stable artifacts.

use crate::harness::BenchResult;
use rupcxx_perfmodel::bench_models::SeriesPoint;
use rupcxx_util::{table::fnum, Table};
use std::fmt::Write as _;

/// Where harness CSVs land (relative to the workspace root).
pub const RESULTS_DIR: &str = "results";

/// Where `emit_bench_trace` accumulates bench summaries.
pub const BENCH_TRACE_PATH: &str = "results/BENCH_trace.json";

/// Render bench results as a JSON array of per-benchmark summaries.
pub fn bench_trace_json(results: &[BenchResult]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "  {{\"name\":\"{}\",\"p50_ns\":{:.1},\"p99_ns\":{:.1},\"mean_ns\":{:.1},\"ops_per_s\":{:.1}}}",
            r.name.replace('"', "'"),
            r.p50_ns,
            r.p99_ns,
            r.mean_ns,
            r.ops_per_s
        );
    }
    out.push_str("\n]\n");
    out
}

fn parse_bench_trace(json: &str) -> Vec<BenchResult> {
    // Minimal parser for the exact shape `bench_trace_json` writes: one
    // object per line, fields in a fixed order. Unparseable lines are
    // dropped (the file is regenerated on every merge anyway).
    let mut out = Vec::new();
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') {
            continue;
        }
        let field = |key: &str| -> Option<String> {
            let tag = format!("\"{key}\":");
            let rest = &line[line.find(&tag)? + tag.len()..];
            let rest = rest.strip_prefix('"').unwrap_or(rest);
            let end = rest.find(['"', ',', '}']).unwrap_or(rest.len());
            Some(rest[..end].to_string())
        };
        let (Some(name), Some(p50), Some(p99), Some(mean), Some(ops)) = (
            field("name"),
            field("p50_ns"),
            field("p99_ns"),
            field("mean_ns"),
            field("ops_per_s"),
        ) else {
            continue;
        };
        let num = |s: String| s.parse::<f64>().unwrap_or(0.0);
        out.push(BenchResult {
            name,
            p50_ns: num(p50),
            p99_ns: num(p99),
            mean_ns: num(mean),
            ops_per_s: num(ops),
        });
    }
    out
}

/// Merge `results` into `results/BENCH_trace.json` (by benchmark name —
/// a re-run of one bench binary replaces its own rows and keeps the
/// rest), so the file accumulates a full perf summary across binaries.
pub fn emit_bench_trace(results: &[BenchResult]) {
    if results.is_empty() {
        return;
    }
    let mut merged = std::fs::read_to_string(BENCH_TRACE_PATH)
        .map(|s| parse_bench_trace(&s))
        .unwrap_or_default();
    for r in results {
        merged.retain(|m| m.name != r.name);
        merged.push(r.clone());
    }
    merged.sort_by(|a, b| a.name.cmp(&b.name));
    let json = bench_trace_json(&merged);
    if let Err(e) =
        std::fs::create_dir_all(RESULTS_DIR).and_then(|_| std::fs::write(BENCH_TRACE_PATH, &json))
    {
        eprintln!("(could not write {BENCH_TRACE_PATH}: {e})");
    } else {
        println!("[written {BENCH_TRACE_PATH}: {} benchmarks]", merged.len());
    }
}

/// Print a titled table and write it as CSV to `results/<name>.csv`.
pub fn emit(name: &str, title: &str, table: &Table) {
    println!("\n== {title} ==");
    print!("{}", table.render());
    if let Err(e) = std::fs::create_dir_all(RESULTS_DIR)
        .and_then(|_| std::fs::write(format!("{RESULTS_DIR}/{name}.csv"), table.to_csv()))
    {
        eprintln!("(could not write {RESULTS_DIR}/{name}.csv: {e})");
    } else {
        println!("[written {RESULTS_DIR}/{name}.csv]");
    }
}

/// Build a two-series comparison table from model outputs.
pub fn two_series_table(
    cores_header: &str,
    a_name: &str,
    a: &[SeriesPoint],
    b_name: &str,
    b: &[SeriesPoint],
) -> Table {
    assert_eq!(a.len(), b.len());
    let mut t = Table::new([cores_header, a_name, b_name, "ratio"]);
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.cores, y.cores);
        t.row([
            x.cores.to_string(),
            fnum(x.value),
            fnum(y.value),
            format!("{:.3}", x.value / y.value),
        ]);
    }
    t
}

/// Build a single-series table from model output.
pub fn one_series_table(cores_header: &str, name: &str, s: &[SeriesPoint]) -> Table {
    let mut t = Table::new([cores_header, name]);
    for p in s {
        t.row([p.cores.to_string(), fnum(p.value)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_trace_roundtrips() {
        let rows = vec![
            BenchResult {
                name: "g/a".into(),
                p50_ns: 10.5,
                p99_ns: 20.0,
                mean_ns: 11.0,
                ops_per_s: 95238095.2,
            },
            BenchResult {
                name: "g/b".into(),
                p50_ns: 1.0,
                p99_ns: 2.0,
                mean_ns: 1.5,
                ops_per_s: 1e9,
            },
        ];
        let json = bench_trace_json(&rows);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let back = parse_bench_trace(&json);
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].name, "g/a");
        assert!((back[0].p50_ns - 10.5).abs() < 1e-6);
        assert!((back[1].ops_per_s - 1e9).abs() < 1.0);
    }

    #[test]
    fn tables_build() {
        let s = vec![
            SeriesPoint {
                cores: 1,
                value: 1.0,
            },
            SeriesPoint {
                cores: 2,
                value: 2.0,
            },
        ];
        let t = two_series_table("cores", "a", &s, "b", &s);
        assert_eq!(t.len(), 2);
        let u = one_series_table("cores", "x", &s);
        assert_eq!(u.len(), 2);
    }
}
