//! Report helpers: print a measured/modeled table and mirror it to CSV
//! under `results/` so EXPERIMENTS.md can reference stable artifacts.

use rupcxx_perfmodel::bench_models::SeriesPoint;
use rupcxx_util::{table::fnum, Table};

/// Where harness CSVs land (relative to the workspace root).
pub const RESULTS_DIR: &str = "results";

/// Print a titled table and write it as CSV to `results/<name>.csv`.
pub fn emit(name: &str, title: &str, table: &Table) {
    println!("\n== {title} ==");
    print!("{}", table.render());
    if let Err(e) = std::fs::create_dir_all(RESULTS_DIR)
        .and_then(|_| std::fs::write(format!("{RESULTS_DIR}/{name}.csv"), table.to_csv()))
    {
        eprintln!("(could not write {RESULTS_DIR}/{name}.csv: {e})");
    } else {
        println!("[written {RESULTS_DIR}/{name}.csv]");
    }
}

/// Build a two-series comparison table from model outputs.
pub fn two_series_table(
    cores_header: &str,
    a_name: &str,
    a: &[SeriesPoint],
    b_name: &str,
    b: &[SeriesPoint],
) -> Table {
    assert_eq!(a.len(), b.len());
    let mut t = Table::new([cores_header, a_name, b_name, "ratio"]);
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.cores, y.cores);
        t.row([
            x.cores.to_string(),
            fnum(x.value),
            fnum(y.value),
            format!("{:.3}", x.value / y.value),
        ]);
    }
    t
}

/// Build a single-series table from model output.
pub fn one_series_table(cores_header: &str, name: &str, s: &[SeriesPoint]) -> Table {
    let mut t = Table::new([cores_header, name]);
    for p in s {
        t.row([p.cores.to_string(), fnum(p.value)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_build() {
        let s = vec![
            SeriesPoint { cores: 1, value: 1.0 },
            SeriesPoint { cores: 2, value: 2.0 },
        ];
        let t = two_series_table("cores", "a", &s, "b", &s);
        assert_eq!(t.len(), 2);
        let u = one_series_table("cores", "x", &s);
        assert_eq!(u.len(), 2);
    }
}
