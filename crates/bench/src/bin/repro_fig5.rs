//! Reproduce **Fig. 5** (Stencil weak scaling, Titanium vs UPC++,
//! GFLOPS on Cray XC30) — measured host series plus modeled Edison series.

use rupcxx_apps::stencil::{run, StencilConfig, Variant};
use rupcxx_bench::calibrate::{stencil_software_costs, Calibration};
use rupcxx_bench::report::{emit, two_series_table};
use rupcxx_perfmodel::bench_models::stencil_model;
use rupcxx_perfmodel::edison;
use rupcxx_runtime::{spmd, RuntimeConfig};
use rupcxx_util::{table::fnum, Table};

fn measured_point(grid: (usize, usize, usize), edge: usize, variant: Variant) -> f64 {
    let ranks = grid.0 * grid.1 * grid.2;
    let out = spmd(RuntimeConfig::new(ranks).segment_mib(32), move |ctx| {
        run(
            ctx,
            &StencilConfig {
                local_edge: edge,
                grid,
                iters: 4,
                variant,
                c: 0.1,
            },
        )
    });
    out[0].gflops
}

fn main() {
    println!("UPC++ reproduction: Fig. 5 (3-D 7-point stencil weak scaling)");

    // --- Measured host series (weak scaling over 1..8 ranks). ---
    let mut m = Table::new(["ranks", "grid", "Titanium-path GF", "UPC++-generic GF"]);
    for &(grid, label) in &[
        ((1usize, 1usize, 1usize), "1x1x1"),
        ((2, 1, 1), "2x1x1"),
        ((2, 2, 1), "2x2x1"),
        ((2, 2, 2), "2x2x2"),
    ] {
        let opt = measured_point(grid, 24, Variant::Optimized);
        let gen = measured_point(grid, 24, Variant::Generic);
        m.row([
            (grid.0 * grid.1 * grid.2).to_string(),
            label.to_string(),
            fnum(opt),
            fnum(gen),
        ]);
    }
    emit(
        "fig5_measured",
        "MEASURED on this host (24^3 per rank; Optimized = Titanium-style path)",
        &m,
    );

    // --- Calibrate per-point software time, model Edison. ---
    let cal = Calibration::measure();
    let (generic_host, optimized_host) = stencil_software_costs(48, 3);
    let machine = edison();
    println!(
        "\ncalibration: per-point host: generic {:.1} ns, optimized {:.1} ns",
        generic_host * 1e9,
        optimized_host * 1e9
    );
    // Titanium = compiled, equivalent to our optimized path; the paper's
    // UPC++ port uses the same optimizations, landing within a few percent.
    let sw_titanium = cal.scale_to(&machine, optimized_host);
    let sw_upcxx = cal.scale_to(&machine, optimized_host * 1.03);
    let cores = [24usize, 48, 96, 192, 384, 768, 1536, 3072, 6144];
    let titanium = stencil_model(&machine, &cores, sw_titanium, 256);
    let upcxx = stencil_model(&machine, &cores, sw_upcxx, 256);
    let t = two_series_table(
        "cores",
        "Titanium GFLOPS",
        &titanium,
        "UPC++ GFLOPS",
        &upcxx,
    );
    emit(
        "fig5_model",
        "MODELED Fig. 5: weak-scaling GFLOPS on Edison (256^3 per rank)",
        &t,
    );
    println!(
        "\nshape check: UPC++/Titanium at 6144 cores = {:.3} (paper: nearly equivalent); weak-scaling efficiency {:.2}",
        upcxx.last().unwrap().value / titanium.last().unwrap().value,
        (titanium.last().unwrap().value / titanium[0].value) / (6144.0 / 24.0)
    );
}
