//! Reproduce **Fig. 8** (LULESH weak scaling, MPI vs UPC++, FOM z/s on
//! Cray XC30; perfect-cube rank counts) — measured host series plus
//! modeled Edison series.

use rupcxx_apps::lulesh::{run, LuleshConfig, Transport};
use rupcxx_bench::calibrate::{lulesh_software_cost, Calibration};
use rupcxx_bench::report::{emit, two_series_table};
use rupcxx_mpi::MpiWorld;
use rupcxx_perfmodel::bench_models::{lulesh_model, Exchange};
use rupcxx_perfmodel::edison;
use rupcxx_runtime::{spmd, RuntimeConfig};
use rupcxx_util::{table::fnum, Table};

fn measured_point(q: usize, edge: usize, transport: Transport) -> (f64, f64) {
    let ranks = q * q * q;
    let world = (transport == Transport::TwoSided).then(|| MpiWorld::new(ranks));
    let out = spmd(RuntimeConfig::new(ranks).segment_mib(8), move |ctx| {
        run(
            ctx,
            &LuleshConfig {
                edge,
                q,
                steps: 4,
                transport,
            },
            world.as_ref(),
        )
    });
    (out[0].fom_zps, out[0].total_energy)
}

fn main() {
    println!("UPC++ reproduction: Fig. 8 (LULESH weak scaling, perfect cubes)");

    // --- Measured host series (q^3 ranks); includes the pack-free
    // multidimensional-array variant (the paper's §V-E future work). ---
    let mut m = Table::new([
        "ranks",
        "MPI FOM z/s",
        "UPC++ FOM z/s",
        "PGAS-arrays FOM z/s",
        "energy equal",
    ]);
    for q in [1usize, 2] {
        let (fom_mpi, e_mpi) = measured_point(q, 8, Transport::TwoSided);
        let (fom_upcxx, e_upcxx) = measured_point(q, 8, Transport::OneSided);
        let (fom_arr, e_arr) = measured_point(q, 8, Transport::PgasArrays);
        m.row([
            (q * q * q).to_string(),
            fnum(fom_mpi),
            fnum(fom_upcxx),
            fnum(fom_arr),
            (e_mpi == e_upcxx && e_upcxx == e_arr).to_string(),
        ]);
    }
    emit(
        "fig8_measured",
        "MEASURED on this host (8^3 zones/rank, 4 steps)",
        &m,
    );

    // --- Calibrate and model Edison. ---
    let cal = Calibration::measure();
    let host_per_zone = lulesh_software_cost(16, 4);
    let machine = edison();
    println!(
        "\ncalibration: host software {:.1} ns per zone-step",
        host_per_zone * 1e9
    );
    let sw = cal.scale_to(&machine, host_per_zone);
    let cores = [64usize, 216, 512, 1000, 4096, 8000, 13824, 32768];
    let mpi = lulesh_model(&machine, &cores, 30, sw, Exchange::TwoSided);
    let upcxx = lulesh_model(&machine, &cores, 30, sw, Exchange::OneSided);
    let t = two_series_table("cores", "UPC++ FOM z/s", &upcxx, "MPI FOM z/s", &mpi);
    emit(
        "fig8_model",
        "MODELED Fig. 8: weak-scaling FOM on Edison (30^3 zones/rank)",
        &t,
    );
    println!(
        "\nshape check: UPC++/MPI at 64 cores = {:.3}, at 32768 cores = {:.3} (paper: ~10% faster at 32K)",
        upcxx[0].value / mpi[0].value,
        upcxx.last().unwrap().value / mpi.last().unwrap().value
    );
}
