//! Run every `repro-*` harness in sequence (Fig. 4 + Table IV, Fig. 5,
//! Fig. 6, Fig. 7, Fig. 8). Equivalent to invoking each binary by hand;
//! results land in `results/*.csv`.

use std::process::Command;

fn main() {
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin dir");
    let mut failures = 0;
    for fig in [
        "repro-fig4",
        "repro-fig5",
        "repro-fig6",
        "repro-fig7",
        "repro-fig8",
    ] {
        println!("\n################ {fig} ################");
        let status = Command::new(dir.join(fig))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {fig}: {e}"));
        if !status.success() {
            eprintln!("{fig} FAILED ({status})");
            failures += 1;
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
    println!("\nAll reproduction harnesses completed; CSVs in results/.");
}
