//! Reproduce **Fig. 7** (Embree/MiniRay strong scaling speedups on Cray
//! XC30) — measured host series plus modeled Edison series.

use rupcxx_apps::ray::{run, RayConfig};
use rupcxx_bench::calibrate::{ray_single_rank_seconds, Calibration};
use rupcxx_bench::report::{emit, one_series_table};
use rupcxx_perfmodel::bench_models::raytrace_model;
use rupcxx_perfmodel::edison;
use rupcxx_runtime::{spmd, RuntimeConfig};
use rupcxx_util::{table::fnum, Table};

fn cfg() -> RayConfig {
    RayConfig {
        width: 160,
        height: 120,
        spp: 4,
        tile: 16,
        threads_per_rank: 1,
        nspheres: 8,
        seed: 5,
    }
}

fn main() {
    println!("UPC++ reproduction: Fig. 7 (distributed ray tracing strong scaling)");

    // --- Measured host series (fixed image, more ranks). ---
    let base = spmd(RuntimeConfig::new(1).segment_mib(16), |ctx| {
        run(ctx, &cfg())
    })[0]
        .clone();
    let mut m = Table::new(["ranks", "seconds", "speedup", "checksum==1rank"]);
    m.row([
        "1".to_string(),
        fnum(base.seconds),
        "1.000".to_string(),
        "true".to_string(),
    ]);
    for ranks in [2usize, 4] {
        let r = spmd(RuntimeConfig::new(ranks).segment_mib(16), |ctx| {
            run(ctx, &cfg())
        })[0]
            .clone();
        m.row([
            ranks.to_string(),
            fnum(r.seconds),
            format!("{:.3}", base.seconds / r.seconds),
            (r.checksum == base.checksum).to_string(),
        ]);
    }
    emit(
        "fig7_measured",
        "MEASURED on this host (160x120, 4 spp)",
        &m,
    );

    // --- Model Edison strong scaling of the paper-size render. ---
    let cal = Calibration::measure();
    let host_t1 = ray_single_rank_seconds(160, 120, 2);
    let machine = edison();
    // Paper-scale workload: a 2048² production frame at 256 spp of a
    // BVH-scale scene. `SCENE_COMPLEXITY` maps our toy scene's per-sample
    // cost to a ~10⁶-primitive Embree scene (documented substitution:
    // only the compute/communicate ratio matters for the scaling shape).
    const SCENE_COMPLEXITY: f64 = 40.0;
    let per_sample = host_t1 / (160.0 * 120.0 * 2.0);
    let t1_paper = cal.scale_to(&machine, per_sample) * 2048.0 * 2048.0 * 256.0 * SCENE_COMPLEXITY;
    println!(
        "\ncalibration: host per-pixel-sample {:.2} us → modeled 1-core render {:.0} s",
        per_sample * 1e6,
        t1_paper
    );
    let cores = [24usize, 48, 96, 192, 384, 768, 1536, 3072, 6144];
    let s = raytrace_model(&machine, &cores, t1_paper, 2048 * 2048 * 3 * 8, 0.02);
    // Normalize speedups to the 24-core point, as the paper plots.
    let norm: Vec<_> = s
        .iter()
        .map(|p| rupcxx_perfmodel::bench_models::SeriesPoint {
            cores: p.cores,
            value: p.value / s[0].value * 24.0,
        })
        .collect();
    let t = one_series_table("cores", "speedup (24-core base)", &norm);
    emit(
        "fig7_model",
        "MODELED Fig. 7: strong-scaling speedup on Edison (2048^2 production frame)",
        &t,
    );
    println!(
        "\nshape check: speedup at 6144 cores = {:.0} of ideal 6144 (paper: nearly perfect)",
        norm.last().unwrap().value
    );
}
