//! Reproduce **Fig. 6** (Sample Sort weak scaling, UPC vs UPC++,
//! TB/min on Cray XC30) — measured host series plus modeled Edison series.

use rupcxx_apps::sample_sort::{run, SortConfig, Variant};
use rupcxx_bench::calibrate::{sort_software_cost, Calibration};
use rupcxx_bench::report::{emit, two_series_table};
use rupcxx_perfmodel::bench_models::sort_model;
use rupcxx_perfmodel::edison;
use rupcxx_runtime::{spmd, RuntimeConfig};
use rupcxx_util::{table::fnum, Table};

fn measured_point(ranks: usize, variant: Variant) -> (f64, bool) {
    let out = spmd(RuntimeConfig::new(ranks).segment_mib(16), move |ctx| {
        run(
            ctx,
            &SortConfig {
                keys_per_rank: 100_000,
                oversample: 64,
                variant,
                seed: 12345,
            },
        )
    });
    (out[0].tb_per_min, out.iter().all(|r| r.verified))
}

fn main() {
    println!("UPC++ reproduction: Fig. 6 (sample sort weak scaling)");

    // --- Measured host series (100k keys per rank). ---
    let mut m = Table::new(["ranks", "UPC TB/min", "UPC++ TB/min", "verified"]);
    for ranks in [1usize, 2, 4, 8] {
        let (upc, v1) = measured_point(ranks, Variant::UpcDirect);
        let (upcxx, v2) = measured_point(ranks, Variant::Upcxx);
        m.row([
            ranks.to_string(),
            fnum(upc),
            fnum(upcxx),
            (v1 && v2).to_string(),
        ]);
    }
    emit(
        "fig6_measured",
        "MEASURED on this host (100k keys/rank)",
        &m,
    );

    // --- Calibrate and model Edison. ---
    let cal = Calibration::measure();
    let host_per_key = sort_software_cost(400_000);
    let machine = edison();
    println!(
        "\ncalibration: host software cost {:.1} ns/key end-to-end",
        host_per_key * 1e9
    );
    let sw = cal.scale_to(&machine, host_per_key);
    // The UPC++ proxy accesses only touch the sampling phase (p·oversample
    // reads out of millions of keys), so the software difference between
    // the variants is far below 1% — the paper's "nearly identical".
    let cores = [
        1usize, 2, 4, 8, 12, 24, 48, 96, 192, 384, 768, 1536, 3072, 6144, 12288,
    ];
    let upc = sort_model(&machine, &cores, 1 << 20, sw);
    let upcxx = sort_model(&machine, &cores, 1 << 20, sw * 1.002);
    let t = two_series_table("cores", "UPC TB/min", &upc, "UPC++ TB/min", &upcxx);
    emit(
        "fig6_model",
        "MODELED Fig. 6: weak-scaling TB/min on Edison (1M keys/rank)",
        &t,
    );
    println!(
        "\nshape check: UPC++/UPC at 12288 cores = {:.4} (paper: nearly identical); TB/min at 12288 = {:.2} (paper: 3.39)",
        upcxx.last().unwrap().value / upc.last().unwrap().value,
        upcxx.last().unwrap().value
    );
}
