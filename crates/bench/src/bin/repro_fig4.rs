//! Reproduce **Fig. 4** (Random Access latency per update, UPC vs UPC++)
//! and **Table IV** (GUPS at 16/128/1024/8192 threads) on the modeled
//! Vesta (IBM BG/Q), plus the measured host-scale series.

use rupcxx_apps::gups::{run, GupsConfig, Variant};
use rupcxx_bench::calibrate::{gups_software_costs, Calibration};
use rupcxx_bench::report::{emit, two_series_table};
use rupcxx_perfmodel::bench_models::gups_model;
use rupcxx_perfmodel::vesta;
use rupcxx_runtime::SimNet;
use rupcxx_runtime::{spmd, RuntimeConfig};
use rupcxx_util::{table::fnum, Table};

fn measured_point(ranks: usize, variant: Variant) -> (f64, f64) {
    let updates = 60_000 / ranks;
    let out = spmd(RuntimeConfig::new(ranks).segment_mib(16), move |ctx| {
        run(
            ctx,
            &GupsConfig {
                table_size: 1 << 16,
                updates_per_rank: updates,
                variant,
                verify: false,
            },
        )
    });
    let us_per_update = out[0].seconds / out[0].updates as f64 * 1e6;
    (us_per_update, out[0].gups)
}

fn main() {
    println!("UPC++ reproduction: Fig. 4 + Table IV (Random Access / GUPS)");

    // --- Measured on this host (real runs, ranks are threads). ---
    let mut m = Table::new([
        "ranks",
        "UPC us/up",
        "UPC++ us/up",
        "UPC GUPS",
        "UPC++ GUPS",
    ]);
    for ranks in [1usize, 2, 4] {
        let (upc_us, upc_gups) = measured_point(ranks, Variant::UpcDirect);
        let (upcxx_us, upcxx_gups) = measured_point(ranks, Variant::Upcxx);
        m.row([
            ranks.to_string(),
            fnum(upc_us),
            fnum(upcxx_us),
            fnum(upc_gups),
            fnum(upcxx_gups),
        ]);
    }
    emit(
        "fig4_measured",
        "MEASURED on this host (shared-memory fabric)",
        &m,
    );

    // --- Measured with a synthetic wire (SimNet): remote ops pay a
    // BG/Q-like per-op latency, so the host run itself becomes
    // latency-bound and the two access paths converge — the paper's core
    // claim, observed end-to-end rather than modeled. ---
    let simnet = SimNet {
        latency_ns: 1200,
        bytes_per_us: 1800,
    };
    // Only as many ranks as physical cores: the busy-wait wire makes
    // oversubscribed ranks steal each other's spin time.
    let phys = std::thread::available_parallelism().map_or(2, |n| n.get());
    let mut sm = Table::new(["ranks", "UPC us/up", "UPC++ us/up", "ratio"]);
    let ranks = phys.min(2);
    let updates = 30_000 / ranks;
    // Min-of-3 runs per variant: the injected latency makes runs
    // short, so scheduler noise must be filtered out.
    let point = |variant: Variant| {
        (0..3)
            .map(|_| {
                let out = spmd(
                    RuntimeConfig::new(ranks)
                        .segment_mib(16)
                        .with_simnet(simnet),
                    move |ctx| {
                        run(
                            ctx,
                            &GupsConfig {
                                table_size: 1 << 16,
                                updates_per_rank: updates,
                                variant,
                                verify: false,
                            },
                        )
                    },
                );
                out[0].seconds / out[0].updates as f64 * 1e6
            })
            .fold(f64::INFINITY, f64::min)
    };
    let upc = point(Variant::UpcDirect);
    let upcxx = point(Variant::Upcxx);
    sm.row([
        ranks.to_string(),
        fnum(upc),
        fnum(upcxx),
        format!("{:.3}", upcxx / upc),
    ]);
    emit(
        "fig4_measured_simnet",
        "MEASURED with synthetic 1.2us wire: the gap closes when latency dominates",
        &sm,
    );

    // --- Calibrate software costs and project onto Vesta. ---
    let cal = Calibration::measure();
    let (proxy_host, direct_host) = gups_software_costs(16, 300_000);
    let machine = vesta();
    // The measured *code-path-length* ratio of the two address
    // resolutions (div/mod/bounds vs mask/shift) scales the
    // layout-dependent fraction of the machine's PGAS per-access software
    // constant. BUPC's shared-array specialization removes only the
    // layout math — the rest of the access path (call, dispatch, fence
    // bookkeeping) is common to both, hence the damping factor.
    const LAYOUT_FRACTION: f64 = 0.2;
    let layout_ratio = rupcxx_bench::calibrate::layout_path_ratio(2_000_000);
    let sw_ratio = 1.0 + LAYOUT_FRACTION * (layout_ratio - 1.0);
    println!(
        "\ncalibration: host {:.2} Gflop/s; full access host: proxy {:.1} ns, direct {:.1} ns; layout path-length ratio {:.3} → access software ratio {:.3}",
        cal.host_flops / 1e9,
        proxy_host * 1e9,
        direct_host * 1e9,
        layout_ratio,
        sw_ratio
    );
    println!(
        "PGAS access software on {}: UPC {:.2} us, UPC++ {:.2} us",
        machine.name,
        machine.pgas_access_sw * 1e6,
        machine.pgas_access_sw * sw_ratio * 1e6
    );

    let cores: Vec<usize> = (0..14).map(|i| 1usize << i).collect();
    let (lat_upc, gups_upc) = gups_model(&machine, &cores, 1.0);
    let (lat_upcxx, gups_upcxx) = gups_model(&machine, &cores, sw_ratio.max(1.0));

    let t = two_series_table("cores", "UPC us/up", &lat_upc, "UPC++ us/up", &lat_upcxx);
    emit(
        "fig4_model",
        "MODELED Fig. 4: latency per update on Vesta (BG/Q)",
        &t,
    );

    // Table IV rows.
    let mut t4 = Table::new([
        "THREADS",
        "UPC (GUPS)",
        "UPC++ (GUPS)",
        "paper UPC",
        "paper UPC++",
    ]);
    let paper = [
        (16, 0.0017, 0.0014),
        (128, 0.012, 0.0108),
        (1024, 0.094, 0.084),
        (8192, 0.69, 0.64),
    ];
    for &(threads, p_upc, p_upcxx) in &paper {
        let i = cores.iter().position(|&c| c == threads).expect("in series");
        t4.row([
            threads.to_string(),
            fnum(gups_upc[i].value),
            fnum(gups_upcxx[i].value),
            fnum(p_upc),
            fnum(p_upcxx),
        ]);
    }
    emit(
        "table4_model",
        "MODELED Table IV: GUPS (paper values alongside)",
        &t4,
    );

    println!(
        "\nshape check: UPC++/UPC latency ratio at 128 cores = {:.3}, at 8192 cores = {:.3} (paper: gap shrinks from ~10% to a few %)",
        lat_upcxx[7].value / lat_upc[7].value,
        lat_upcxx[13].value / lat_upc[13].value
    );
}
