//! Host calibration: measure the per-operation software costs that the
//! performance model combines with the paper machines' network terms.

use rupcxx::prelude::*;
use rupcxx::UpcDirectTable;
use rupcxx_util::{GupsRng, Timer};

/// Calibrated host quantities.
#[derive(Clone, Copy, Debug)]
pub struct Calibration {
    /// Estimated host scalar flop rate (flop/s) — used to scale host
    /// software times onto the paper machines' slower cores.
    pub host_flops: f64,
}

impl Calibration {
    /// Measure the host's scalar floating-point *throughput* with four
    /// independent multiply-add chains (comparable to the peak-ish
    /// `flops_per_core` rates in the machine descriptions).
    pub fn measure() -> Self {
        let n = 10_000_000u64;
        let t = Timer::start();
        let (mut a, mut b, mut c, mut d) = (1.0f64, 1.1f64, 1.2f64, 1.3f64);
        for _ in 0..n {
            a = a * 1.000_000_01 + 1e-12;
            b = b * 0.999_999_99 + 1e-12;
            c = c * 1.000_000_02 + 1e-12;
            d = d * 0.999_999_98 + 1e-12;
        }
        let secs = t.seconds();
        std::hint::black_box(a + b + c + d);
        Calibration {
            host_flops: 8.0 * n as f64 / secs,
        }
    }

    /// Scale a host-measured software time onto `machine`'s cores.
    pub fn scale_to(&self, machine: &rupcxx_perfmodel::Machine, host_seconds: f64) -> f64 {
        host_seconds * rupcxx_perfmodel::bench_models::cpu_scale(machine, self.host_flops)
    }
}

/// Measure the local (no-network) per-update software cost of the two
/// GUPS access paths, in seconds per update: `(upcxx_proxy, upc_direct)`.
///
/// Runs single-rank so every access is local: the measured difference is
/// exactly the proxy-vs-direct software gap the paper attributes to the
/// Berkeley UPC compiler's optimized accesses.
pub fn gups_software_costs(table_bits: u32, updates: usize) -> (f64, f64) {
    let out = spmd(RuntimeConfig::new(1).segment_mib(64), move |ctx| {
        let size = 1usize << table_bits;
        let table = SharedArray::<u64>::new(ctx, size, 1);
        let direct = UpcDirectTable::new(ctx, &table).expect("1 rank is a power of two");
        let mask = size - 1;
        // Warm up.
        let mut rng = GupsRng::new();
        for _ in 0..updates / 10 {
            let r = rng.next_u64();
            table.xor(ctx, r as usize & mask, r);
        }
        // Proxy path.
        let mut rng = GupsRng::new();
        let t = Timer::start();
        for _ in 0..updates {
            let r = rng.next_u64();
            table.xor(ctx, r as usize & mask, r);
        }
        let proxy = t.seconds() / updates as f64;
        // Direct path.
        let mut rng = GupsRng::new();
        let t = Timer::start();
        for _ in 0..updates {
            let r = rng.next_u64();
            direct.xor(ctx, r as usize & mask, r);
        }
        let direct_t = t.seconds() / updates as f64;
        table.destroy(ctx);
        (proxy, direct_t)
    });
    out[0]
}

/// Measure the pure *code-path-length* ratio of the two shared-array
/// address resolutions, excluding the memory operation itself:
/// the proxy path (bounds check + runtime block-cyclic division +
/// directory lookup, what `SharedArray::ptr` executes) against the
/// UPC-direct path (mask + shift). On a wide out-of-order host the
/// full-access ratio hides behind the memory op; on the paper's slow
/// in-order cores every instruction of the longer path serializes, so the
/// path-length ratio is the right multiplier for the PGAS software
/// constant (see DESIGN.md).
pub fn layout_path_ratio(samples: usize) -> f64 {
    use std::hint::black_box;
    let ranks = black_box(1024usize);
    let block = black_box(1usize);
    let size = black_box(1usize << 20);
    let bases: Vec<usize> = (0..ranks).map(|r| black_box(r * 0x10000)).collect();
    let mask = ranks - 1;
    let shift = ranks.trailing_zeros();
    let mut rng = GupsRng::new();
    let idxs: Vec<usize> = (0..samples)
        .map(|_| rng.next_u64() as usize % size)
        .collect();

    // Proxy path: what SharedArray::ptr computes per access.
    let proxy_once = || {
        let t = Timer::start();
        let mut acc = 0usize;
        for &i in &idxs {
            assert!(i < size, "bounds check is part of the path");
            let blk = i / block;
            let rank = blk % ranks;
            let slot = (blk / ranks) * block + (i % block);
            acc = acc.wrapping_add(bases[rank] + slot * 8);
        }
        black_box(acc);
        t.seconds()
    };
    // Direct path: mask + shift, no bounds check, no division.
    let direct_once = || {
        let t = Timer::start();
        let mut acc = 0usize;
        for &i in &idxs {
            let rank = i & mask;
            let slot = i >> shift;
            acc = acc.wrapping_add(bases[rank] + slot * 8);
        }
        black_box(acc);
        t.seconds()
    };
    // Min-of-trials suppresses scheduler noise on busy hosts: the fastest
    // observation is the closest to the true code-path cost.
    let mut proxy = f64::INFINITY;
    let mut direct = f64::INFINITY;
    for _ in 0..7 {
        proxy = proxy.min(proxy_once());
        direct = direct.min(direct_once());
    }
    (proxy / direct).max(1.0)
}

/// Measure per-point software cost of the stencil compute paths, in
/// seconds per point: `(generic, optimized)`.
pub fn stencil_software_costs(edge: usize, iters: usize) -> (f64, f64) {
    use rupcxx_apps::stencil::{run, StencilConfig, Variant};
    let cfgs = move |variant| StencilConfig {
        local_edge: edge,
        grid: (1, 1, 1),
        iters,
        variant,
        c: 0.1,
    };
    let pts = (edge * edge * edge * iters) as f64;
    let generic = spmd(RuntimeConfig::new(1).segment_mib(64), move |ctx| {
        run(ctx, &cfgs(Variant::Generic)).seconds
    })[0]
        / pts;
    let optimized = spmd(RuntimeConfig::new(1).segment_mib(64), move |ctx| {
        run(ctx, &cfgs(Variant::Optimized)).seconds
    })[0]
        / pts;
    (generic, optimized)
}

/// Measure the end-to-end per-key software cost of a single-rank sample
/// sort (generation + sampling + partition + local sort), seconds/key.
pub fn sort_software_cost(keys: usize) -> f64 {
    use rupcxx_apps::sample_sort::{run, SortConfig, Variant};
    let secs = spmd(RuntimeConfig::new(1).segment_mib(64), move |ctx| {
        run(
            ctx,
            &SortConfig {
                keys_per_rank: keys,
                oversample: 32,
                variant: Variant::Upcxx,
                seed: 3,
            },
        )
        .seconds
    })[0];
    secs / keys as f64
}

/// Measure the single-rank render time of the benchmark scene (seconds)
/// for the given image size and sampling rate.
pub fn ray_single_rank_seconds(width: usize, height: usize, spp: usize) -> f64 {
    use rupcxx_apps::ray::{run, RayConfig};
    spmd(RuntimeConfig::new(1).segment_mib(16), move |ctx| {
        run(
            ctx,
            &RayConfig {
                width,
                height,
                spp,
                tile: 16,
                threads_per_rank: 1,
                nspheres: 8,
                seed: 5,
            },
        )
        .seconds
    })[0]
}

/// Measure per-zone-step software cost of MiniLulesh (seconds).
pub fn lulesh_software_cost(edge: usize, steps: usize) -> f64 {
    use rupcxx_apps::lulesh::{run, LuleshConfig, Transport};
    let secs = spmd(RuntimeConfig::new(1).segment_mib(64), move |ctx| {
        run(
            ctx,
            &LuleshConfig {
                edge,
                q: 1,
                steps,
                transport: Transport::OneSided,
            },
            None,
        )
        .seconds
    })[0];
    secs / (edge * edge * edge * steps) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_flops_plausible() {
        let c = Calibration::measure();
        assert!(
            c.host_flops > 1e8 && c.host_flops < 1e11,
            "host flops {:.3e}",
            c.host_flops
        );
    }

    #[test]
    fn gups_costs_positive_and_direct_not_slower_by_much() {
        let (proxy, direct) = gups_software_costs(14, 200_000);
        assert!(proxy > 0.0 && direct > 0.0);
        // The direct path must not be significantly slower than the proxy
        // path (it is the strictly-less-work baseline).
        assert!(
            direct < proxy * 1.5,
            "proxy {proxy:.2e} direct {direct:.2e}"
        );
    }

    #[test]
    fn stencil_optimized_faster() {
        let (generic, optimized) = stencil_software_costs(24, 2);
        assert!(
            optimized < generic,
            "generic {generic:.2e} vs optimized {optimized:.2e}"
        );
    }
}
