//! `rupcxx-bench` — harness library for the paper-reproduction binaries.
//!
//! The `repro-fig4` … `repro-fig8` binaries each regenerate one evaluation
//! artifact of the paper. Every harness follows the same recipe
//! (documented in DESIGN.md):
//!
//! 1. run the real benchmark at host scale (1–8 ranks on this machine)
//!    and print the **measured** series;
//! 2. calibrate the per-operation *software* costs of the compared code
//!    paths from those runs;
//! 3. feed the calibrated costs into `rupcxx-perfmodel` and print the
//!    **modeled** series at the paper's scales on the paper's machine.

pub mod calibrate;
pub mod harness;
pub mod report;

pub use calibrate::Calibration;
