//! A miniature Criterion-compatible bench harness.
//!
//! The ablation benches under `benches/` were written against `criterion`;
//! this module provides the same surface (`Criterion`, `benchmark_group`,
//! `bench_function`, `iter`/`iter_custom`, the `criterion_group!` /
//! `criterion_main!` macros) without external dependencies, so
//! `cargo bench` works offline. Each benchmark is calibrated to a target
//! sample duration, run for `sample_size` samples, and its per-iteration
//! latencies are folded into a [`Log2Histogram`] — the same histogram type
//! the tracing layer uses — from which the p50/p99 in `BENCH_trace.json`
//! are taken.

use rupcxx_trace::Log2Histogram;
use rupcxx_util::sync::Mutex;
use std::time::{Duration, Instant};

/// One finished benchmark: latency percentiles and throughput.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// `group/function` name.
    pub name: String,
    /// Median per-iteration latency, nanoseconds.
    pub p50_ns: f64,
    /// 99th-percentile per-iteration latency, nanoseconds.
    pub p99_ns: f64,
    /// Mean per-iteration latency, nanoseconds.
    pub mean_ns: f64,
    /// Iterations per second at the median latency.
    pub ops_per_s: f64,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// All results recorded by this process so far.
pub fn take_results() -> Vec<BenchResult> {
    std::mem::take(&mut *RESULTS.lock())
}

/// Entry point object handed to each bench function.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 30,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let mut g = self.benchmark_group("");
        g.bench_function(name, f);
    }
}

/// A named group of benchmarks sharing a sample count.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Ignored (kept for criterion API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Calibrate, measure and report one benchmark.
    pub fn bench_function(&mut self, name: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let name = name.into();
        let full = if self.name.is_empty() {
            name.clone()
        } else {
            format!("{}/{}", self.name, name)
        };

        // Calibrate: grow the per-sample iteration count until one sample
        // takes at least ~2 ms (bounded so pathological cases terminate).
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 22 {
                break;
            }
            // Jump straight towards the target when we undershot a lot.
            let per_iter = b.elapsed.as_nanos().max(1) as u64 / iters;
            iters = (2_000_000 / per_iter.max(1)).clamp(iters * 2, iters * 16);
        }

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        let hist = Log2Histogram::new();
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            let ns = b.elapsed.as_nanos() as f64 / iters as f64;
            per_iter_ns.push(ns);
            hist.record(ns as u64);
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let pct = |p: f64| per_iter_ns[((per_iter_ns.len() - 1) as f64 * p) as usize];
        let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
        let result = BenchResult {
            name: full.clone(),
            p50_ns: pct(0.50),
            p99_ns: pct(0.99),
            mean_ns: mean,
            ops_per_s: if pct(0.50) > 0.0 {
                1e9 / pct(0.50)
            } else {
                0.0
            },
        };
        println!(
            "bench {full:<44} {:>12.1} ns/iter  (p50 {:.1}, p99 {:.1}, {} samples x {} iters)",
            result.mean_ns, result.p50_ns, result.p99_ns, self.sample_size, iters
        );
        RESULTS.lock().push(result);
    }

    /// End the group (criterion API compatibility).
    pub fn finish(self) {}
}

/// Timing context passed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `f`.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let t = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = t.elapsed();
    }

    /// Let the closure time `iters` iterations itself and return the total.
    pub fn iter_custom(&mut self, mut f: impl FnMut(u64) -> Duration) {
        self.elapsed = f(self.iters);
    }
}

/// Prevent the optimizer from discarding a value (criterion's `black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define the bench entry function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::harness::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define `main`: run the groups, then append results to `BENCH_trace.json`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::report::emit_bench_trace(&$crate::harness::take_results());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_result() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
        let results = take_results();
        let r = results
            .iter()
            .find(|r| r.name == "t/noop")
            .expect("recorded");
        assert!(r.p50_ns >= 0.0 && r.p99_ns >= r.p50_ns);
        assert!(r.ops_per_s > 0.0);
    }

    #[test]
    fn iter_custom_uses_reported_duration() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t2");
        g.sample_size(2);
        g.bench_function("custom", |b| {
            b.iter_custom(|iters| Duration::from_micros(100 * iters.max(1)))
        });
        let results = take_results();
        let r = results
            .iter()
            .find(|r| r.name == "t2/custom")
            .expect("recorded");
        // 100 µs per iteration, within float tolerance.
        assert!((r.p50_ns - 100_000.0).abs() < 1.0, "p50 {}", r.p50_ns);
    }
}
