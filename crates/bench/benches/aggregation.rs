//! Ablation: per-destination aggregation of fine-grained traffic —
//! per-op remote xors (one wire frame each, a round trip on real
//! hardware) vs conveyor-style batching (`xor_u64_buffered` + flush).
//!
//! Two latency benchmarks time a GUPS-style update stream end to end
//! (aggregated timing includes the flush and the receiver's drain), then
//! a fixed-size counted run compares wire frames via `CommStats` and
//! writes `results/BENCH_aggregation.json`. The counted run asserts the
//! batched path used no more wire frames than the per-op path and
//! produced a bit-for-bit identical segment — `make bench-smoke` runs
//! this with `RUPCXX_BENCH_SMOKE=1` as a CI gate.

use rupcxx_bench::criterion_group;
use rupcxx_bench::harness::Criterion;
use rupcxx_bench::report;
use rupcxx_net::{AggConfig, AmPayload, BatchReader, Fabric, FabricConfig, GlobalAddr};
use rupcxx_trace::TraceConfig;
use rupcxx_util::SplitMix64;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Words of table state on the target rank.
const WORDS: usize = 1024;

fn smoke() -> bool {
    std::env::var_os("RUPCXX_BENCH_SMOKE").is_some_and(|v| v != "0")
}

fn fabric(agg: Option<AggConfig>) -> Arc<Fabric> {
    Fabric::new(FabricConfig {
        ranks: 2,
        segment_bytes: WORDS * 8,
        simnet: None,
        trace: TraceConfig::off(),
        faults: None,
        agg,
        check: None,
        cache: None,
        prof: None,
        schedule: None,
        remote: None,
    })
}

/// Target address of the `i`-th update (rank 0 → rank 1's table).
fn addr(rng: &mut SplitMix64) -> GlobalAddr {
    GlobalAddr::new(1, (rng.next_u64() as usize % WORDS) * 8)
}

/// Deliver everything queued at rank 1, applying batched RMA frames.
fn drain(f: &Fabric) {
    while {
        f.pump_incoming(1);
        for m in f.endpoint(1).drain() {
            let src = m.src;
            if let AmPayload::Batch { frames, .. } = m.payload {
                for frame in BatchReader::new(&frames) {
                    f.apply_frame(1, src, None, &frame);
                }
            }
        }
        !f.links_quiescent(1) || f.endpoint(1).pending() != 0
    } {}
}

fn bench_aggregation(c: &mut Criterion) {
    let mut g = c.benchmark_group("fine_grained_xor");
    g.sample_size(if smoke() { 5 } else { 20 });

    g.bench_function("per_op", |b| {
        b.iter_custom(|iters| {
            let f = fabric(None);
            let mut rng = SplitMix64::new(7);
            let t = Instant::now();
            for _ in 0..iters {
                f.xor_u64(0, addr(&mut rng), 0xfeed);
            }
            t.elapsed()
        })
    });

    g.bench_function("aggregated", |b| {
        b.iter_custom(|iters| {
            let f = fabric(Some(AggConfig::new()));
            let mut rng = SplitMix64::new(7);
            let t = Instant::now();
            for _ in 0..iters {
                f.xor_u64_buffered(0, addr(&mut rng), 0xfeed);
            }
            f.flush_agg(0);
            drain(&f);
            t.elapsed()
        })
    });

    g.finish();
}

/// Wire-frame accounting of one fixed update stream on both paths.
struct FrameComparison {
    updates: u64,
    per_op_wire_frames: u64,
    aggregated_wire_frames: u64,
    aggregated_batches: u64,
    logical_ops: u64,
}

fn frame_comparison() -> FrameComparison {
    let updates: u64 = if smoke() { 4096 } else { 65536 };
    let per_op = fabric(None);
    let agg = fabric(Some(AggConfig::new()));
    let mut rng_a = SplitMix64::new(11);
    let mut rng_b = SplitMix64::new(11);
    for i in 0..updates {
        per_op.xor_u64(0, addr(&mut rng_a), i | 1);
        agg.xor_u64_buffered(0, addr(&mut rng_b), i | 1);
    }
    agg.flush_agg(0);
    drain(&agg);

    // Both paths must leave the target's table bit-for-bit identical.
    for w in 0..WORDS {
        let a = GlobalAddr::new(1, w * 8);
        assert_eq!(
            per_op.get_u64(1, a),
            agg.get_u64(1, a),
            "aggregated delivery diverged at word {w}"
        );
    }

    let p = per_op.endpoint(0).stats.snapshot();
    let b = agg.endpoint(0).stats.snapshot();
    // Per-op remote atomics are counted as puts; every batch is one AM.
    FrameComparison {
        updates,
        per_op_wire_frames: p.puts,
        aggregated_wire_frames: b.ams_sent,
        aggregated_batches: b.agg_batches,
        logical_ops: b.agg_ops,
    }
}

/// One row of the GUPS-vs-batch-size sweep.
struct SweepRow {
    flush_count: usize,
    wire_frames: u64,
    ns_per_update: f64,
}

/// Sweep the count threshold over a fixed update stream: wire frames
/// fall as ~updates/flush_count while the end-to-end time per update
/// stays roughly flat on this in-process fabric (the wire win is what
/// the performance model charges per-message overhead for).
fn sweep() -> Vec<SweepRow> {
    let updates: u64 = if smoke() { 4096 } else { 65536 };
    [1usize, 4, 16, 64, 256]
        .into_iter()
        .map(|flush_count| {
            let f = fabric(Some(AggConfig::new().flush_count(flush_count)));
            let mut rng = SplitMix64::new(11);
            let t = Instant::now();
            for i in 0..updates {
                f.xor_u64_buffered(0, addr(&mut rng), i | 1);
            }
            f.flush_agg(0);
            drain(&f);
            let ns = t.elapsed().as_nanos() as f64 / updates as f64;
            let s = f.endpoint(0).stats.snapshot();
            SweepRow {
                flush_count,
                wire_frames: s.ams_sent,
                ns_per_update: ns,
            }
        })
        .collect()
}

fn write_json(
    fc: &FrameComparison,
    rows: &[SweepRow],
    results: &[rupcxx_bench::harness::BenchResult],
) {
    let ns_of = |name: &str| {
        results
            .iter()
            .find(|r| r.name == format!("fine_grained_xor/{name}"))
            .map_or(0.0, |r| r.mean_ns)
    };
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"updates\": {},", fc.updates);
    let _ = writeln!(out, "  \"per_op_wire_frames\": {},", fc.per_op_wire_frames);
    let _ = writeln!(
        out,
        "  \"aggregated_wire_frames\": {},",
        fc.aggregated_wire_frames
    );
    let _ = writeln!(out, "  \"aggregated_batches\": {},", fc.aggregated_batches);
    let _ = writeln!(out, "  \"logical_ops\": {},", fc.logical_ops);
    let _ = writeln!(
        out,
        "  \"wire_frame_reduction\": {:.2},",
        fc.per_op_wire_frames as f64 / fc.aggregated_wire_frames.max(1) as f64
    );
    let _ = writeln!(out, "  \"per_op_mean_ns\": {:.1},", ns_of("per_op"));
    let _ = writeln!(out, "  \"aggregated_mean_ns\": {:.1},", ns_of("aggregated"));
    out.push_str("  \"sweep\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"flush_count\": {}, \"wire_frames\": {}, \"ns_per_update\": {:.1}}}{}",
            r.flush_count,
            r.wire_frames,
            r.ns_per_update,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"smoke\": {}", smoke());
    out.push_str("}\n");
    let path = format!("{}/BENCH_aggregation.json", report::RESULTS_DIR);
    if let Err(e) =
        std::fs::create_dir_all(report::RESULTS_DIR).and_then(|_| std::fs::write(&path, &out))
    {
        eprintln!("(could not write {path}: {e})");
    } else {
        println!("[written {path}]");
    }
}

criterion_group!(benches, bench_aggregation);

fn main() {
    // Land results/ at the workspace root regardless of cargo's bench CWD
    // (the package directory).
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let _ = std::env::set_current_dir(root);

    benches();
    let results = rupcxx_bench::harness::take_results();
    let fc = frame_comparison();
    println!(
        "frames: {} logical updates -> {} per-op wire frames vs {} batched ({} batches, {:.1}x reduction)",
        fc.updates,
        fc.per_op_wire_frames,
        fc.aggregated_wire_frames,
        fc.aggregated_batches,
        fc.per_op_wire_frames as f64 / fc.aggregated_wire_frames.max(1) as f64
    );
    let rows = sweep();
    println!("sweep: flush_count -> wire frames, ns/update");
    for r in &rows {
        println!(
            "  {:>5} -> {:>6} frames  {:>7.1} ns",
            r.flush_count, r.wire_frames, r.ns_per_update
        );
    }
    write_json(&fc, &rows, &results);
    report::emit_bench_trace(&results);

    // The smoke gate: batching must never cost extra wire frames, and on
    // this stream (default thresholds, 64 logical ops per batch) it must
    // coalesce by at least the tentpole's 8x.
    assert_eq!(fc.per_op_wire_frames, fc.updates);
    assert_eq!(fc.logical_ops, fc.updates);
    assert!(
        fc.aggregated_wire_frames <= fc.per_op_wire_frames,
        "batched path used more wire frames than per-op"
    );
    assert!(
        fc.logical_ops >= 8 * fc.aggregated_wire_frames,
        "under 8x coalescing: {} ops in {} frames",
        fc.logical_ops,
        fc.aggregated_wire_frames
    );
}
