//! Ablation: ghost-exchange transports (the Fig. 8 software difference) —
//! one-sided puts vs two-sided eager vs two-sided rendezvous.

use rupcxx::{allocate, deallocate};
use rupcxx_bench::harness::Criterion;
use rupcxx_bench::{criterion_group, criterion_main};
use rupcxx_mpi::MpiWorld;
use rupcxx_runtime::{spmd, RuntimeConfig};
use std::time::{Duration, Instant};

const MSG: usize = 64 * 1024;

fn bench_transports(c: &mut Criterion) {
    let mut g = c.benchmark_group("exchange_64k");
    g.sample_size(10);

    g.bench_function("one_sided_rput", |b| {
        b.iter_custom(|iters| {
            let out = spmd(RuntimeConfig::new(2).segment_mib(8), move |ctx| {
                let landing = allocate::<f64>(ctx, ctx.rank(), MSG / 8).expect("landing");
                let dirs = ctx.allgatherv(&[landing]);
                let data = vec![1.25f64; MSG / 8];
                ctx.barrier();
                let t = Instant::now();
                if ctx.rank() == 0 {
                    for _ in 0..iters {
                        dirs[1].rput_slice(ctx, &data);
                    }
                    ctx.fence();
                }
                let dt = t.elapsed();
                ctx.barrier();
                deallocate(ctx, landing);
                dt
            });
            out[0]
        })
    });

    for (name, eager_limit) in [("two_sided_eager", usize::MAX), ("two_sided_rendezvous", 0)] {
        g.bench_function(name, |b| {
            b.iter_custom(|iters| {
                let world = MpiWorld::with_eager_limit(2, eager_limit);
                let out = spmd(RuntimeConfig::new(2).segment_mib(32), move |ctx| {
                    let comm = world.comm(ctx);
                    let data = vec![1.25f64; MSG / 8];
                    ctx.barrier();
                    let t = Instant::now();
                    if ctx.rank() == 0 {
                        for i in 0..iters {
                            let r = comm.isend_slice(1, i, &data);
                            comm.wait_send(&r);
                        }
                    } else {
                        for i in 0..iters {
                            let _ = comm.recv(0, i);
                        }
                    }
                    t.elapsed()
                });
                out.into_iter().max().unwrap_or(Duration::ZERO)
            })
        });
    }

    g.finish();
}

criterion_group!(benches, bench_transports);
criterion_main!(benches);
