//! Transport-conduit microbenchmarks: per-link round-trip latency and
//! injection throughput for the three backends (in-process loopback,
//! mmap'd shared-memory rings, Unix-domain sockets) at 8 B and 1 KiB
//! frames, plus the allocation delta of the reusable wire-encode scratch
//! buffer (the conduit send path encodes into a per-link buffer instead
//! of a fresh `Vec` per frame). Results land in
//! `results/BENCH_conduit.json`; `RUPCXX_BENCH_SMOKE=1` shrinks the
//! counts and keeps only the deterministic assertions.
//!
//! The loopback/shm/uds meshes here are driven from threads of this one
//! process — that holds the workload identical across backends, so the
//! measured spread is the transport cost alone (queue push vs ring copy
//! + drain thread vs socket write + reader thread).

use rupcxx_bench::report;
use rupcxx_net::conduit::wire;
use rupcxx_net::{Conduit, ConduitEvent, LoopbackConduit, ShmConduit, SocketConduit};
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Counting allocator: measures bytes allocated by the encode paths.
struct CountingAlloc;

static ALLOCATED: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATED.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocated() -> u64 {
    ALLOCATED.load(Ordering::Relaxed)
}

fn smoke() -> bool {
    std::env::var_os("RUPCXX_BENCH_SMOKE").is_some_and(|v| v != "0")
}

fn scratch_path(tag: &str) -> String {
    format!(
        "{}/rupcxx-bench-{tag}-{}",
        std::env::temp_dir().display(),
        std::process::id()
    )
}

/// Build a 2-rank mesh of the named backend.
fn mesh(backend: &str) -> Vec<Box<dyn Conduit>> {
    match backend {
        "loopback" => LoopbackConduit::mesh(2)
            .into_iter()
            .map(|c| Box::new(c) as Box<dyn Conduit>)
            .collect(),
        "shm" => {
            let seg = scratch_path("conduit-shm.seg");
            let _ = std::fs::remove_file(&seg);
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..2)
                    .map(|r| {
                        let seg = seg.clone();
                        s.spawn(move || {
                            Box::new(ShmConduit::attach(&seg, r, 2)) as Box<dyn Conduit>
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
        }
        "uds" => {
            let dir = scratch_path("conduit-uds");
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..2)
                    .map(|r| {
                        let dir = dir.clone();
                        s.spawn(move || {
                            Box::new(SocketConduit::uds(&dir, r, 2)) as Box<dyn Conduit>
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
        }
        other => panic!("unknown backend {other}"),
    }
}

fn cleanup(backend: &str) {
    match backend {
        "shm" => {
            let _ = std::fs::remove_file(scratch_path("conduit-shm.seg"));
        }
        "uds" => {
            let _ = std::fs::remove_dir_all(scratch_path("conduit-uds"));
        }
        _ => {}
    }
}

fn recv_frame(c: &dyn Conduit) -> Vec<u8> {
    loop {
        match c.try_recv() {
            Some(ConduitEvent::Frame(_, f)) => return f,
            Some(ConduitEvent::Closed(src)) => panic!("unexpected Closed({src})"),
            None => std::thread::yield_now(),
        }
    }
}

/// Ping-pong round-trip: rank 0 sends `frame`, rank 1 echoes it back;
/// returns mean ns per round trip.
fn rtt(mesh: &[Box<dyn Conduit>], frame_bytes: usize, rounds: usize) -> f64 {
    let frame = vec![0x5Au8; frame_bytes];
    let stop = AtomicBool::new(false);
    let echo_stop = &stop;
    std::thread::scope(|s| {
        let responder = &mesh[1];
        let echo = s.spawn(move || {
            let mut served = 0usize;
            while !echo_stop.load(Ordering::Acquire) {
                match responder.try_recv() {
                    Some(ConduitEvent::Frame(src, f)) => {
                        responder.send(src, &f);
                        served += 1;
                    }
                    Some(ConduitEvent::Closed(_)) => break,
                    None => std::thread::yield_now(),
                }
            }
            served
        });
        // Warmup round so connection setup is not measured.
        mesh[0].send(1, &frame);
        let _ = recv_frame(mesh[0].as_ref());
        let t = Instant::now();
        for _ in 0..rounds {
            mesh[0].send(1, &frame);
            let back = recv_frame(mesh[0].as_ref());
            assert_eq!(back.len(), frame_bytes);
        }
        let ns = t.elapsed().as_nanos() as f64 / rounds as f64;
        echo_stop.store(true, Ordering::Release);
        let served = echo.join().unwrap();
        assert!(served >= rounds, "echo thread served {served}/{rounds}");
        ns
    })
}

/// One-way injection: rank 0 pushes `count` frames; the receiver thread
/// drains them all. Returns (send-side ns/frame, end-to-end Mframes/s).
fn inject(mesh: &[Box<dyn Conduit>], frame_bytes: usize, count: usize) -> (f64, f64) {
    let frame = vec![0xC3u8; frame_bytes];
    std::thread::scope(|s| {
        let receiver = &mesh[1];
        let rx = s.spawn(move || {
            for _ in 0..count {
                let f = recv_frame(receiver.as_ref());
                assert_eq!(f.len(), frame_bytes);
            }
        });
        let t = Instant::now();
        for _ in 0..count {
            mesh[0].send(1, &frame);
        }
        let send_ns = t.elapsed().as_nanos() as f64 / count as f64;
        mesh[0].flush(1);
        rx.join().unwrap();
        let total = t.elapsed().as_secs_f64();
        (send_ns, count as f64 / total / 1e6)
    })
}

/// The satellite's allocation delta: encoding `frames` put-frames into a
/// reused scratch buffer vs a fresh `Vec` each time. Returns bytes
/// allocated per frame on each path (scratch settles to ~0 after the
/// first growth).
fn encode_alloc_delta(frames: usize, payload: usize) -> (f64, f64) {
    let data = vec![7u8; payload];
    let mut scratch = Vec::new();
    wire::encode_put(&mut scratch, None, 0, 0, &data); // pre-grow once
    let a0 = allocated();
    for i in 0..frames {
        wire::encode_put(&mut scratch, None, i as u64, 0, &data);
        std::hint::black_box(scratch.len());
    }
    let scratch_bytes = (allocated() - a0) as f64 / frames as f64;
    let a1 = allocated();
    for i in 0..frames {
        let mut fresh = Vec::new();
        wire::encode_put(&mut fresh, None, i as u64, 0, &data);
        std::hint::black_box(fresh.len());
    }
    let fresh_bytes = (allocated() - a1) as f64 / frames as f64;
    (scratch_bytes, fresh_bytes)
}

struct Row {
    backend: &'static str,
    frame_bytes: usize,
    rtt_ns: f64,
    send_ns: f64,
    mframes_s: f64,
}

fn main() {
    // Land results/ at the workspace root regardless of cargo's bench
    // CWD (the package directory).
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let _ = std::env::set_current_dir(root);

    let (rounds, count) = if smoke() {
        (200, 2_000)
    } else {
        (5_000, 100_000)
    };
    let mut rows = Vec::new();
    for backend in ["loopback", "shm", "uds"] {
        for frame_bytes in [8usize, 1024] {
            let m = mesh(backend);
            let rtt_ns = rtt(&m, frame_bytes, rounds);
            let (send_ns, mframes_s) = inject(&m, frame_bytes, count);
            for c in &m {
                c.shutdown();
            }
            drop(m);
            cleanup(backend);
            println!(
                "{backend:>8} {frame_bytes:>5}B: rtt {rtt_ns:>9.0} ns  send {send_ns:>7.0} ns/frame  {mframes_s:>7.2} Mframes/s"
            );
            rows.push(Row {
                backend,
                frame_bytes,
                rtt_ns,
                send_ns,
                mframes_s,
            });
        }
    }

    let alloc_frames = if smoke() { 10_000 } else { 200_000 };
    let (scratch_bpf, fresh_bpf) = encode_alloc_delta(alloc_frames, 256);
    println!(
        "encode alloc: {scratch_bpf:.1} B/frame reused scratch vs {fresh_bpf:.1} B/frame fresh Vec"
    );

    let mut out = String::from("{\n  \"links\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"backend\": \"{}\", \"frame_bytes\": {}, \"rtt_ns\": {:.0}, \"send_ns_per_frame\": {:.0}, \"mframes_per_s\": {:.3}}}{}",
            r.backend,
            r.frame_bytes,
            r.rtt_ns,
            r.send_ns,
            r.mframes_s,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"alloc_frames\": {alloc_frames},");
    let _ = writeln!(
        out,
        "  \"scratch_alloc_bytes_per_frame\": {scratch_bpf:.2},"
    );
    let _ = writeln!(out, "  \"fresh_alloc_bytes_per_frame\": {fresh_bpf:.2},");
    let _ = writeln!(out, "  \"smoke\": {}", smoke());
    out.push_str("}\n");
    let path = format!("{}/BENCH_conduit.json", report::RESULTS_DIR);
    if let Err(e) =
        std::fs::create_dir_all(report::RESULTS_DIR).and_then(|_| std::fs::write(&path, &out))
    {
        eprintln!("(could not write {path}: {e})");
    } else {
        println!("[written {path}]");
    }

    // Deterministic gates: the reused scratch path must allocate
    // essentially nothing per frame (a fresh Vec allocates at least the
    // frame), and every backend must have moved every frame (asserted in
    // rtt/inject); loopback should be the latency floor.
    assert!(
        fresh_bpf >= 256.0,
        "fresh-Vec path allocated {fresh_bpf} B/frame, expected >= payload"
    );
    assert!(
        scratch_bpf * 100.0 < fresh_bpf,
        "scratch path not allocation-free: {scratch_bpf} vs {fresh_bpf} B/frame"
    );
    let floor = rows
        .iter()
        .filter(|r| r.backend == "loopback" && r.frame_bytes == 8)
        .map(|r| r.rtt_ns)
        .next()
        .unwrap();
    assert!(floor > 0.0);
}
