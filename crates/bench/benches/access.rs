//! Access-path microbenchmarks for the packed-pointer / zero-copy /
//! sharded-progress work: per-op cost of the three ways a word reaches a
//! remote segment —
//!
//! * **direct**: `put_u64`/`get_u64`/`xor_u64` through the fabric fast
//!   path (packed `GlobalAddr`, one feature-flag load, straight to the
//!   target's atomics);
//! * **aggregated pack**: `xor_u64_buffered` into the per-shard arena
//!   slabs, amortizing threshold flushes and the receiver's drain;
//! * **multi-producer injection**: N threads all packing into one rank's
//!   sharded agg buffers concurrently (the sharded-inbox/sharded-buffer
//!   scaling story).
//!
//! A counting global allocator reports bytes allocated per packed op —
//! the zero-copy claim made measurable. Results land in
//! `results/BENCH_access.json`; `RUPCXX_BENCH_SMOKE=1` shrinks counts and
//! keeps the deterministic gates: the aggregated pack path must not cost
//! more than the direct per-op path, and its steady-state allocation rate
//! must stay a small fraction of the old fresh-`Vec`-per-frame regime.

use rupcxx_bench::report;
use rupcxx_net::{AggConfig, AmPayload, BatchReader, Fabric, FabricConfig, GlobalAddr};
use rupcxx_trace::TraceConfig;
use rupcxx_util::SplitMix64;
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Counting allocator: measures bytes allocated by the pack path.
struct CountingAlloc;

static ALLOCATED: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATED.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocated() -> u64 {
    ALLOCATED.load(Ordering::Relaxed)
}

fn smoke() -> bool {
    std::env::var_os("RUPCXX_BENCH_SMOKE").is_some_and(|v| v != "0")
}

/// Words of table state on the target rank.
const WORDS: usize = 1024;

fn fabric(agg: Option<AggConfig>) -> Arc<Fabric> {
    Fabric::new(FabricConfig {
        ranks: 2,
        segment_bytes: WORDS * 8,
        simnet: None,
        trace: TraceConfig::off(),
        faults: None,
        agg,
        check: None,
        cache: None,
        prof: None,
        schedule: None,
        remote: None,
    })
}

/// Target address of the next update (into rank 1's table).
#[inline]
fn addr(rng: &mut SplitMix64) -> GlobalAddr {
    GlobalAddr::new(1, (rng.next_u64() as usize % WORDS) * 8)
}

/// Deliver everything queued at rank 1, applying batched RMA frames.
fn drain(f: &Fabric) {
    while {
        f.pump_incoming(1);
        for m in f.endpoint(1).drain() {
            let src = m.src;
            if let AmPayload::Batch { frames, .. } = m.payload {
                for frame in BatchReader::new(&frames) {
                    f.apply_frame(1, src, None, &frame);
                }
            }
        }
        !f.links_quiescent(1) || f.endpoint(1).pending() != 0
    } {}
}

/// p50 of per-op time over `samples` batches of `batch` ops each. Timing
/// whole batches keeps the clock read out of the measured op.
fn p50_ns(samples: usize, batch: usize, mut op: impl FnMut(usize)) -> f64 {
    let mut means: Vec<f64> = (0..samples)
        .map(|s| {
            let t = Instant::now();
            for i in 0..batch {
                op(s * batch + i);
            }
            t.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    means.sort_by(|a, b| a.total_cmp(b));
    means[means.len() / 2]
}

struct DirectNumbers {
    put_p50_ns: f64,
    get_p50_ns: f64,
    xor_mean_ns: f64,
}

/// Direct word access: the packed-pointer fast path, p50 per op.
fn bench_direct(samples: usize, batch: usize) -> DirectNumbers {
    let f = fabric(None);
    let mut rng = SplitMix64::new(21);
    // Warmup: touch every word, fault in the segment.
    for w in 0..WORDS {
        f.put_u64(0, GlobalAddr::new(1, w * 8), w as u64);
    }
    let put_p50_ns = p50_ns(samples, batch, |i| {
        f.put_u64(0, addr(&mut rng), i as u64);
    });
    let mut rng = SplitMix64::new(22);
    let mut sink = 0u64;
    let get_p50_ns = p50_ns(samples, batch, |_| {
        sink ^= f.get_u64(0, addr(&mut rng));
    });
    std::hint::black_box(sink);
    let mut rng = SplitMix64::new(23);
    let t = Instant::now();
    let xors = (samples * batch) as u64;
    for i in 0..xors {
        f.xor_u64(0, addr(&mut rng), i | 1);
    }
    let xor_mean_ns = t.elapsed().as_nanos() as f64 / xors as f64;
    DirectNumbers {
        put_p50_ns,
        get_p50_ns,
        xor_mean_ns,
    }
}

struct PackNumbers {
    pack_ns: f64,
    deliver_ns: f64,
    alloc_bytes_per_op: f64,
}

/// Aggregated pack path: `xor_u64_buffered` into the arena slabs with the
/// default thresholds. The initiator-side cost (pack + threshold flush
/// sends — what the injecting thread pays per op) is timed in chunks,
/// with the receiver's drain between chunks timed separately: the slabs
/// recycle through the pool each chunk, so both the timing and the
/// allocator delta see the steady state. The pre-refactor baseline
/// charged this path 84 ns/op.
fn bench_pack(ops: u64) -> PackNumbers {
    let f = fabric(Some(AggConfig::new()));
    let mut rng = SplitMix64::new(31);
    // Warmup: one full flush cycle faults in slabs and queue capacity.
    for i in 0..2048u64 {
        f.xor_u64_buffered(0, addr(&mut rng), i | 1);
    }
    f.flush_agg(0);
    drain(&f);
    // Chunk size keeps the in-flight batch count (CHUNK / flush_count =
    // 16) under the pool's idle-slab cap, so every flushed slab finds its
    // way back — the same bound a live receiver's continuous drain
    // enforces. The allocator delta spans the whole pack+drain cycle:
    // that is where recycling does (or does not) engage.
    const CHUNK: u64 = 1024;
    let chunks = ops / CHUNK;
    let mut pack = std::time::Duration::ZERO;
    let mut deliver = std::time::Duration::ZERO;
    let mut alloc = 0u64;
    for c in 0..chunks {
        let a0 = allocated();
        let t = Instant::now();
        for i in 0..CHUNK {
            f.xor_u64_buffered(0, addr(&mut rng), (c * CHUNK + i) | 1);
        }
        f.flush_agg(0);
        pack += t.elapsed();
        let t = Instant::now();
        drain(&f);
        deliver += t.elapsed();
        alloc += allocated() - a0;
    }
    let n = (chunks * CHUNK) as f64;
    PackNumbers {
        pack_ns: pack.as_nanos() as f64 / n,
        deliver_ns: deliver.as_nanos() as f64 / n,
        alloc_bytes_per_op: alloc as f64 / n,
    }
}

struct InjectRow {
    threads: usize,
    mops_per_s: f64,
    scaling: f64,
}

/// Multi-producer injection: `threads` producers all packing into rank
/// 0's sharded agg buffers concurrently (each thread lands on its own
/// shard; flushes touch only the flusher's shard). Returns end-to-end
/// Mops/s including the final flush + receiver drain.
fn bench_multi_producer(total_ops: u64) -> Vec<InjectRow> {
    let mut rows: Vec<InjectRow> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let f = fabric(Some(AggConfig::new()));
        // Warmup flush cycle so no row pays one-time allocation costs.
        let mut rng = SplitMix64::new(40);
        for i in 0..2048u64 {
            f.xor_u64_buffered(0, addr(&mut rng), i | 1);
        }
        f.flush_agg(0);
        drain(&f);
        let per = total_ops / threads as u64;
        let t = Instant::now();
        std::thread::scope(|s| {
            for tid in 0..threads {
                let f = &f;
                s.spawn(move || {
                    let mut rng = SplitMix64::new(41 + tid as u64);
                    for i in 0..per {
                        f.xor_u64_buffered(0, addr(&mut rng), i | 1);
                    }
                });
            }
        });
        f.flush_agg(0);
        drain(&f);
        let secs = t.elapsed().as_secs_f64();
        let mops = (per * threads as u64) as f64 / secs / 1e6;
        let base = rows.first().map_or(mops, |r| r.mops_per_s);
        rows.push(InjectRow {
            threads,
            mops_per_s: mops,
            scaling: mops / base,
        });
    }
    rows
}

fn write_json(d: &DirectNumbers, p: &PackNumbers, inject: &[InjectRow], host_cores: usize) {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"direct_word_put_p50_ns\": {:.1},", d.put_p50_ns);
    let _ = writeln!(out, "  \"direct_word_get_p50_ns\": {:.1},", d.get_p50_ns);
    let _ = writeln!(out, "  \"direct_xor_mean_ns\": {:.1},", d.xor_mean_ns);
    let _ = writeln!(out, "  \"agg_pack_ns_per_op\": {:.1},", p.pack_ns);
    let _ = writeln!(out, "  \"agg_deliver_ns_per_op\": {:.1},", p.deliver_ns);
    let _ = writeln!(
        out,
        "  \"agg_pack_alloc_bytes_per_op\": {:.2},",
        p.alloc_bytes_per_op
    );
    out.push_str("  \"multi_producer\": [\n");
    for (i, r) in inject.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"threads\": {}, \"mops_per_s\": {:.3}, \"scaling\": {:.2}}}{}",
            r.threads,
            r.mops_per_s,
            r.scaling,
            if i + 1 < inject.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"host_cores\": {host_cores},");
    let _ = writeln!(out, "  \"smoke\": {}", smoke());
    out.push_str("}\n");
    let path = format!("{}/BENCH_access.json", report::RESULTS_DIR);
    if let Err(e) =
        std::fs::create_dir_all(report::RESULTS_DIR).and_then(|_| std::fs::write(&path, &out))
    {
        eprintln!("(could not write {path}: {e})");
    } else {
        println!("[written {path}]");
    }
}

fn main() {
    // Land results/ at the workspace root regardless of cargo's bench CWD
    // (the package directory).
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let _ = std::env::set_current_dir(root);

    let (samples, batch, pack_ops, inject_ops) = if smoke() {
        (31, 2_048, 65_536, 65_536)
    } else {
        (101, 8_192, 1 << 20, 1 << 20)
    };
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let d = bench_direct(samples, batch);
    println!(
        "direct word: put {:.1} ns p50, get {:.1} ns p50, xor {:.1} ns mean",
        d.put_p50_ns, d.get_p50_ns, d.xor_mean_ns
    );
    let p = bench_pack(pack_ops);
    println!(
        "agg pack:    {:.1} ns/op inject, {:.1} ns/op deliver, {:.2} B allocated/op",
        p.pack_ns, p.deliver_ns, p.alloc_bytes_per_op
    );
    let inject = bench_multi_producer(inject_ops);
    for r in &inject {
        println!(
            "inject x{}: {:>8.3} Mops/s  ({:.2}x vs 1 thread)",
            r.threads, r.mops_per_s, r.scaling
        );
    }
    write_json(&d, &p, &inject, host_cores);

    // Deterministic gates (`make access-smoke`):
    // 1. The aggregated pack path must not regress above the direct
    //    per-op path — packing into a slab has to beat a full fabric op.
    assert!(
        p.pack_ns <= d.xor_mean_ns,
        "aggregated pack path ({:.1} ns/op) regressed above the direct path ({:.1} ns/op)",
        p.pack_ns,
        d.xor_mean_ns
    );
    // 2. Steady-state packing must be allocation-light: the slab is
    //    recycled, so only the per-batch envelope (one Arc + AM message
    //    per ~64 ops) may allocate — a small fraction of the old
    //    fresh-Vec-per-frame regime (>= 24 B/op payload alone).
    assert!(
        p.alloc_bytes_per_op < 24.0,
        "pack path allocates {:.1} B/op — slab recycling is not engaging",
        p.alloc_bytes_per_op
    );
    // Scaling to 8 producers is only observable with the cores to run
    // them; report it always, gate it only where it can be true.
    if host_cores >= 8 {
        let x8 = inject.iter().find(|r| r.threads == 8).unwrap();
        assert!(
            x8.scaling >= 2.0,
            "8-producer injection scaled only {:.2}x on {host_cores} cores",
            x8.scaling
        );
    }
}
