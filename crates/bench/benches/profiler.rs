//! Observability: the causal cross-rank profiler (`RUPCXX_PROF`) run on
//! the paper workloads. Two latency benchmarks measure the barrier
//! overhead the profiler adds (its whole-episode instrumentation is the
//! hot-path cost), then a fixed-size counted section runs profiled GUPS
//! and stencil jobs, checks the critical-path report and barrier
//! wait-state attribution, provokes a flight-recorder dump over a
//! planted dead link, verifies the profiler-off path moves identical
//! wire traffic, and writes `results/BENCH_profiler.json`. `make
//! prof-smoke` runs this with `RUPCXX_BENCH_SMOKE=1` as a CI gate on the
//! deterministic criteria: non-empty critical path, ≥90% barrier
//! attribution, a flight dump carrying the final retransmit attempts,
//! and bit-for-bit identical frame counts with the profiler off.

use rupcxx_apps::{gups, stencil};
use rupcxx_bench::criterion_group;
use rupcxx_bench::harness::Criterion;
use rupcxx_bench::report;
use rupcxx_net::{CommCounts, Fabric, FaultPlan, LinkRule, ProfConfig};
use rupcxx_runtime::{spmd, Ctx, RuntimeConfig};
use rupcxx_trace::{critpath, flight, CritPathReport, RankProf};
use rupcxx_util::sync::Mutex;
use std::fmt::Write as _;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn smoke() -> bool {
    std::env::var_os("RUPCXX_BENCH_SMOKE").is_some_and(|v| v != "0")
}

fn prof_path(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!(
            "rupcxx_bench_prof_{}_{}.json",
            tag,
            std::process::id()
        ))
        .to_str()
        .unwrap()
        .to_string()
}

/// Run an SPMD job and capture its fabric for postmortem inspection.
fn spmd_capturing<R: Send>(
    cfg: RuntimeConfig,
    body: impl Fn(&Ctx) -> R + Send + Sync,
) -> (Vec<R>, Arc<Fabric>) {
    let fabric: Mutex<Option<Arc<Fabric>>> = Mutex::new(None);
    let out = spmd(cfg, |ctx| {
        if ctx.rank() == 0 {
            *fabric.lock() = Some(ctx.shared().fabric.clone());
        }
        body(ctx)
    });
    let fabric = fabric.lock().take().expect("rank 0 captured the fabric");
    (out, fabric)
}

/// Gather every rank's profiler output, as the teardown exporter does.
fn gather(fabric: &Fabric, ranks: usize) -> Vec<RankProf> {
    (0..ranks)
        .map(|r| {
            let p = fabric.prof(r).expect("profiler enabled");
            RankProf {
                rank: r,
                events: p.ring.snapshot(),
                waits: p.waits.snapshot(),
                barrier_total_ns: p.barrier_total_ns.load(Ordering::Relaxed),
            }
        })
        .collect()
}

/// Time `iters` barrier episodes across 4 ranks (max over ranks), with
/// the profiler on or off.
fn timed_barriers(prof: bool, iters: u64, tag: &str) -> Duration {
    let mut cfg = RuntimeConfig::new(4).segment_bytes(4096);
    if prof {
        cfg = cfg.with_prof(ProfConfig::on().with_path(prof_path(tag)));
    }
    let out = spmd(cfg, |ctx| {
        ctx.barrier();
        let t = Instant::now();
        for _ in 0..iters {
            ctx.barrier();
        }
        t.elapsed()
    });
    out.into_iter().max().unwrap()
}

fn bench_profiler(c: &mut Criterion) {
    let mut g = c.benchmark_group("barrier_episode");
    g.sample_size(if smoke() { 3 } else { 10 });
    g.bench_function("prof_off", |b| {
        b.iter_custom(|iters| timed_barriers(false, iters.max(1), "off"))
    });
    g.bench_function("prof_on", |b| {
        b.iter_custom(|iters| timed_barriers(true, iters.max(1), "on"))
    });
    g.finish();
}

fn run_gups(prof: Option<ProfConfig>) -> (Vec<gups::GupsResult>, Arc<Fabric>) {
    let mut cfg = RuntimeConfig::new(4).segment_mib(4);
    if let Some(p) = prof {
        cfg = cfg.with_prof(p);
    }
    spmd_capturing(cfg, |ctx| {
        gups::run(
            ctx,
            &gups::GupsConfig {
                table_size: 1 << 10,
                updates_per_rank: if smoke() { 2_000 } else { 10_000 },
                variant: gups::Variant::Upcxx,
                verify: true,
            },
        )
    })
}

/// Profiled stencil: the barrier-attribution acceptance workload.
fn run_stencil() -> CritPathReport {
    let (results, fabric) = spmd_capturing(
        RuntimeConfig::new(2)
            .segment_mib(4)
            .with_prof(ProfConfig::on().with_path(prof_path("stencil"))),
        |ctx| {
            stencil::run(
                ctx,
                &stencil::StencilConfig {
                    local_edge: if smoke() { 8 } else { 16 },
                    grid: (2, 1, 1),
                    iters: if smoke() { 4 } else { 10 },
                    variant: stencil::Variant::Generic,
                    c: 0.5,
                },
            )
        },
    );
    assert!(
        (results[0].checksum - results[1].checksum).abs() < 1e-9,
        "profiled stencil checksum diverged across ranks"
    );
    critpath::analyze(&gather(&fabric, 2))
}

/// Planted dead link: the job must die with a flight-recorder dump whose
/// tail shows the doomed frame's final retransmit attempts.
fn provoke_flight_dump() -> String {
    let _ = flight::take_dumps();
    let dead = LinkRule {
        drop_ppm: 1_000_000,
        ..Default::default()
    };
    let plan = FaultPlan::new(43).link(0, 1, dead).max_attempts(4);
    let cfg = RuntimeConfig::new(2)
        .segment_bytes(4096)
        .with_faults(plan)
        .with_prof(ProfConfig::on().with_path(prof_path("flight")));
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        spmd(cfg, |ctx| ctx.barrier());
    }));
    assert!(outcome.is_err(), "the dead link must surface as a panic");
    flight::take_dumps().join("\n")
}

struct ProfSummary {
    gups: CritPathReport,
    stencil: CritPathReport,
    counts_off: CommCounts,
    counts_on: CommCounts,
    flight_dump: String,
}

fn report_json_section(out: &mut String, name: &str, r: &CritPathReport) {
    let _ = writeln!(
        out,
        "  \"{name}\": {{\"intervals\": {}, \"critical_path_ns\": {}, \"attributed_fraction\": {:.4}}},",
        r.intervals,
        r.critical_path_ns,
        r.attributed_fraction()
    );
}

fn write_json(s: &ProfSummary, results: &[rupcxx_bench::harness::BenchResult]) {
    let ns_of = |name: &str| {
        results
            .iter()
            .find(|r| r.name == format!("barrier_episode/{name}"))
            .map_or(0.0, |r| r.mean_ns)
    };
    let mut out = String::from("{\n");
    report_json_section(&mut out, "gups", &s.gups);
    report_json_section(&mut out, "stencil", &s.stencil);
    let _ = writeln!(
        out,
        "  \"prof_off_frames_equal_prof_on\": {},",
        s.counts_off == s.counts_on
    );
    let _ = writeln!(
        out,
        "  \"flight_dump_has_retransmits\": {},",
        s.flight_dump.contains("attempt=")
    );
    let _ = writeln!(
        out,
        "  \"barrier_prof_off_mean_ns\": {:.1},",
        ns_of("prof_off")
    );
    let _ = writeln!(
        out,
        "  \"barrier_prof_on_mean_ns\": {:.1},",
        ns_of("prof_on")
    );
    let _ = writeln!(out, "  \"smoke\": {}", smoke());
    out.push_str("}\n");
    let path = format!("{}/BENCH_profiler.json", report::RESULTS_DIR);
    if let Err(e) =
        std::fs::create_dir_all(report::RESULTS_DIR).and_then(|_| std::fs::write(&path, &out))
    {
        eprintln!("(could not write {path}: {e})");
    } else {
        println!("[written {path}]");
    }
}

criterion_group!(benches, bench_profiler);

fn main() {
    // Land results/ at the workspace root regardless of cargo's bench CWD
    // (the package directory).
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let _ = std::env::set_current_dir(root);

    benches();
    let results = rupcxx_bench::harness::take_results();

    let (gups_results, gups_fabric) = run_gups(Some(ProfConfig::on().with_path(prof_path("gups"))));
    assert!(gups_results.iter().all(|r| r.verified));
    let gups_report = critpath::analyze(&gather(&gups_fabric, 4));
    let stencil_report = run_stencil();

    let (off, off_fabric) = run_gups(None);
    let (on, on_fabric) = run_gups(Some(ProfConfig::on().with_path(prof_path("inv"))));
    for (a, b) in off.iter().zip(on.iter()) {
        assert_eq!(a.checksum, b.checksum, "profiling perturbed the result");
    }
    let flight_dump = provoke_flight_dump();

    let summary = ProfSummary {
        gups: gups_report,
        stencil: stencil_report,
        counts_off: off_fabric.total_counts(),
        counts_on: on_fabric.total_counts(),
        flight_dump,
    };
    println!(
        "critical path: GUPS {:.3} ms over {} interval(s); stencil barrier attribution {:.1}%",
        summary.gups.critical_path_ns as f64 / 1e6,
        summary.gups.intervals,
        summary.stencil.attributed_fraction() * 100.0
    );
    print!("{}", summary.stencil.table().render());
    write_json(&summary, &results);
    report::emit_bench_trace(&results);

    // The smoke gate: a non-empty critical path, ≥90% of barrier wall
    // time attributed to named wait states, a flight dump carrying the
    // final retransmit attempts, and a profiler-off path that moves
    // exactly the same wire traffic.
    assert!(summary.gups.intervals >= 1, "GUPS produced no intervals");
    assert!(
        summary.gups.critical_path_ns > 0,
        "empty critical path on profiled GUPS"
    );
    assert!(
        summary.stencil.attributed_fraction() >= 0.9,
        "only {:.1}% of stencil barrier wall time attributed",
        summary.stencil.attributed_fraction() * 100.0
    );
    assert!(
        summary.flight_dump.contains("retransmit") && summary.flight_dump.contains("attempt="),
        "flight dump missing the final retransmits:\n{}",
        summary.flight_dump
    );
    assert_eq!(
        summary.counts_off, summary.counts_on,
        "profiler on/off must move identical wire traffic"
    );
}
