//! Ablation: async RPC dispatch — boxed-closure tasks (the in-process
//! shortcut) vs registered-handler messages with packed arguments (the
//! paper's "pack fn pointer + args into a contiguous buffer" path).

use rupcxx::async_on;
use rupcxx::remote_fn::FnRegistry;
use rupcxx::spmd_registered;
use rupcxx_bench::harness::Criterion;
use rupcxx_bench::{criterion_group, criterion_main};
use rupcxx_runtime::shared::HandlerRegistry;
use rupcxx_runtime::{spmd, spmd_with_handlers, RuntimeConfig};
use rupcxx_util::Bytes;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn bench_rpc(c: &mut Criterion) {
    let mut g = c.benchmark_group("rpc");
    g.sample_size(10);

    g.bench_function("closure_async_roundtrip", |b| {
        b.iter_custom(|iters| {
            let out = spmd(RuntimeConfig::new(2).segment_mib(1), move |ctx| {
                if ctx.rank() != 0 {
                    return std::time::Duration::ZERO;
                }
                let t = Instant::now();
                for i in 0..iters {
                    let f = async_on(ctx, 1, move |_| i * 2);
                    assert_eq!(f.get(ctx), i * 2);
                }
                t.elapsed()
            });
            out[0]
        })
    });

    g.bench_function("registered_handler_oneway", |b| {
        b.iter_custom(|iters| {
            let sink = Arc::new(AtomicU64::new(0));
            let sink2 = sink.clone();
            let mut reg = HandlerRegistry::new();
            let id = reg.register(move |_, _, args| {
                let mut buf = [0u8; 8];
                buf.copy_from_slice(&args);
                sink2.fetch_add(u64::from_le_bytes(buf), Ordering::Relaxed);
            });
            let out = spmd_with_handlers(RuntimeConfig::new(2).segment_mib(1), reg, move |ctx| {
                if ctx.rank() != 0 {
                    ctx.barrier();
                    return std::time::Duration::ZERO;
                }
                let t = Instant::now();
                for i in 0..iters {
                    ctx.send_handler(1, id, Bytes::copy_from_slice(&i.to_le_bytes()));
                }
                ctx.barrier();
                t.elapsed()
            });
            out[0]
        })
    });

    g.bench_function("typed_remote_fn_roundtrip", |b| {
        b.iter_custom(|iters| {
            let mut reg = FnRegistry::new();
            let double = reg.register(|_ctx: &rupcxx_runtime::Ctx, x: u64| x * 2);
            let out = spmd_registered(RuntimeConfig::new(2).segment_mib(1), reg, move |ctx| {
                if ctx.rank() != 0 {
                    return std::time::Duration::ZERO;
                }
                let t = Instant::now();
                for i in 0..iters {
                    assert_eq!(double.call_blocking(ctx, 1, i), i * 2);
                }
                t.elapsed()
            });
            out[0]
        })
    });

    g.finish();
}

criterion_group!(benches, bench_rpc);
criterion_main!(benches);
