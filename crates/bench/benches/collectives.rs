//! Collective-operation scaling on the AM fabric: barrier, broadcast,
//! reduce and exchange at increasing rank counts. The dissemination
//! barrier's N·⌈log₂N⌉ message count and the binomial trees' log-depth
//! are what the perf model charges for synchronization at paper scale.

use rupcxx_bench::harness::Criterion;
use rupcxx_bench::{criterion_group, criterion_main};
use rupcxx_runtime::{spmd, RuntimeConfig};
use std::time::{Duration, Instant};

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives");
    g.sample_size(10);

    for ranks in [2usize, 4, 8] {
        g.bench_function(format!("allreduce_f64_{ranks}ranks"), |b| {
            b.iter_custom(|iters| {
                let out = spmd(RuntimeConfig::new(ranks).segment_mib(1), move |ctx| {
                    ctx.barrier();
                    let t = Instant::now();
                    let mut acc = ctx.rank() as f64;
                    for _ in 0..iters {
                        acc = ctx.allreduce(acc, f64::max);
                    }
                    std::hint::black_box(acc);
                    t.elapsed()
                });
                out.into_iter().max().unwrap_or(Duration::ZERO)
            })
        });
    }

    g.bench_function("broadcast_1kib_4ranks", |b| {
        b.iter_custom(|iters| {
            let out = spmd(RuntimeConfig::new(4).segment_mib(1), move |ctx| {
                let payload = vec![7u8; 1024];
                ctx.barrier();
                let t = Instant::now();
                for _ in 0..iters {
                    let got = ctx.broadcast_bytes(0, payload.clone());
                    std::hint::black_box(got.len());
                }
                t.elapsed()
            });
            out.into_iter().max().unwrap_or(Duration::ZERO)
        })
    });

    g.bench_function("exchange_256b_4ranks", |b| {
        b.iter_custom(|iters| {
            let out = spmd(RuntimeConfig::new(4).segment_mib(1), move |ctx| {
                ctx.barrier();
                let t = Instant::now();
                for _ in 0..iters {
                    let input: Vec<Vec<u8>> = (0..4).map(|d| vec![d as u8; 256]).collect();
                    let got = ctx.exchange(input);
                    std::hint::black_box(got.len());
                }
                t.elapsed()
            });
            out.into_iter().max().unwrap_or(Duration::ZERO)
        })
    });

    // Team collectives: a sub-team allreduce vs the world allreduce at the
    // same member count (domain isolation overhead check).
    g.bench_function("team_allreduce_half_of_8", |b| {
        b.iter_custom(|iters| {
            let out = spmd(RuntimeConfig::new(8).segment_mib(1), move |ctx| {
                let w = ctx.team_world();
                let t_half = w.split(ctx, (ctx.rank() % 2) as u64, ctx.rank() as u64);
                ctx.barrier();
                let timer = Instant::now();
                let mut acc = ctx.rank() as u64;
                for _ in 0..iters {
                    acc = t_half.allreduce(ctx, acc, u64::max);
                }
                std::hint::black_box(acc);
                timer.elapsed()
            });
            out.into_iter().max().unwrap_or(Duration::ZERO)
        })
    });

    g.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
