//! Ablation: multidimensional array indexing paths (the Titanium-port
//! optimizations of §V-B) and ghost-copy layouts.

use rupcxx_bench::harness::Criterion;
use rupcxx_bench::{criterion_group, criterion_main};
use rupcxx_ndarray::{pt, rd, LocalGrid, NdArray};
use rupcxx_runtime::shared::{HandlerRegistry, Shared};
use rupcxx_runtime::Ctx;

fn bench_ndarray(c: &mut Criterion) {
    let shared = Shared::new(1, 64 << 20, HandlerRegistry::new());
    let ctx = Ctx::new(0, shared);
    let e = 32i64;
    let dom = rd!([0, 0, 0]..[e, e, e]);
    let arr = NdArray::<f64, 3>::new(&ctx, dom);
    arr.fill_with(&ctx, |p| (p[0] + p[1] + p[2]) as f64);
    let grid = LocalGrid::new(&ctx, &arr);

    let mut g = c.benchmark_group("ndarray_indexing");
    g.sample_size(20);
    g.bench_function("generic_point_get_plane", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for j in 0..e {
                for k in 0..e {
                    acc += arr.get(&ctx, pt![7, j, k]);
                }
            }
            acc
        })
    });
    g.bench_function("localgrid_at_plane", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for j in 0..e {
                for k in 0..e {
                    acc += grid.at(7, j, k);
                }
            }
            acc
        })
    });
    g.finish();

    // Ghost-copy layouts: a contiguous face (one strided RMA op) vs a
    // scattered face (per-element ops).
    let src = NdArray::<f64, 3>::new(&ctx, dom);
    src.fill(&ctx, 1.0);
    let dst = NdArray::<f64, 3>::new(&ctx, dom);
    dst.fill(&ctx, 0.0);
    let face_fast = rd!([0, 0, 0]..[1, e, e]); // rows contiguous
    let face_slow = rd!([0, 0, 0]..[e, e, 1]); // rows of length 1
    let mut g2 = c.benchmark_group("ghost_copy_layout");
    g2.sample_size(20);
    g2.bench_function("plane_contiguous_rows", |b| {
        b.iter(|| dst.restrict(face_fast).copy_from(&ctx, &src))
    });
    g2.bench_function("plane_unit_rows", |b| {
        b.iter(|| dst.restrict(face_slow).copy_from(&ctx, &src))
    });
    g2.finish();
}

criterion_group!(benches, bench_ndarray);
criterion_main!(benches);
