//! Ablation: shared-array access paths (the software gap behind Fig. 4).
//!
//! Compares the per-update cost of (a) the `SharedArray` proxy path
//! (runtime block-cyclic layout + bounds check), (b) the UPC-direct
//! mask/shift path, and (c) a raw segment word op (lower bound).

use rupcxx::{SharedArray, UpcDirectTable};
use rupcxx_bench::harness::Criterion;
use rupcxx_bench::{criterion_group, criterion_main};
use rupcxx_runtime::shared::{HandlerRegistry, Shared};
use rupcxx_runtime::Ctx;
use rupcxx_util::GupsRng;

fn bench_access(c: &mut Criterion) {
    let shared = Shared::new(1, 32 << 20, HandlerRegistry::new());
    let ctx = Ctx::new(0, shared);
    let bits = 16usize;
    let size = 1usize << bits;
    let mask = size - 1;
    let table = SharedArray::<u64>::new(&ctx, size, 1);
    let direct = UpcDirectTable::new(&ctx, &table).expect("pow2");
    let base = table.base_of(0).addr();

    let mut g = c.benchmark_group("gups_access_path");
    g.sample_size(20);
    let mut rng = GupsRng::new();
    g.bench_function("shared_array_proxy", |b| {
        b.iter(|| {
            let r = rng.next_u64();
            table.xor(&ctx, r as usize & mask, r);
        })
    });
    let mut rng2 = GupsRng::new();
    g.bench_function("upc_direct", |b| {
        b.iter(|| {
            let r = rng2.next_u64();
            direct.xor(&ctx, r as usize & mask, r);
        })
    });
    let mut rng3 = GupsRng::new();
    g.bench_function("raw_segment_word", |b| {
        b.iter(|| {
            let r = rng3.next_u64();
            ctx.fabric()
                .xor_u64(0, base.add((r as usize & mask) * 8), r);
        })
    });
    g.finish();
}

criterion_group!(benches, bench_access);
criterion_main!(benches);
