//! Ablation: software read cache for fine-grained remote gets
//! (`RUPCXX_CACHE`) — per-word fabric gets vs line-granular fills served
//! from the initiator-side cache.
//!
//! The workload is a ghost-zone-consumer pattern: repeated sequential
//! sweeps over a remote rank's table, one 8-byte get per word. Uncached,
//! every read is a fabric op (a full round trip on real hardware);
//! cached, the first sweep fills whole lines and later sweeps hit. Two
//! latency benchmarks time the sweep under synthetic NIC timing
//! (`SimNet::hpc_nic`), then a fixed-size counted run compares fabric
//! get counts via `CommStats`, checks bit-for-bit equality of every word
//! read (including after a write-through update), and writes
//! `results/BENCH_caching.json`. `make bench-smoke` runs this with
//! `RUPCXX_BENCH_SMOKE=1` as a CI gate on the deterministic criteria:
//! ≥5x fewer remote get fabric ops, hit rate > 0, identical data.

use rupcxx_bench::criterion_group;
use rupcxx_bench::harness::Criterion;
use rupcxx_bench::report;
use rupcxx_net::{CacheConfig, Fabric, FabricConfig, GlobalAddr, SimNet};
use rupcxx_trace::TraceConfig;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Words of table state on the target rank.
const WORDS: usize = 4096;
/// Sweeps over the table in the counted run (re-reads hit the cache).
const PASSES: usize = 4;

fn smoke() -> bool {
    std::env::var_os("RUPCXX_BENCH_SMOKE").is_some_and(|v| v != "0")
}

fn fabric(cache: Option<CacheConfig>, simnet: Option<SimNet>) -> Arc<Fabric> {
    Fabric::new(FabricConfig {
        ranks: 2,
        segment_bytes: WORDS * 8,
        simnet,
        trace: TraceConfig::off(),
        faults: None,
        agg: None,
        check: None,
        cache,
        prof: None,
        schedule: None,
        remote: None,
    })
}

/// Deterministic table contents (written by the owner, so the writes
/// never touch the reader's cache).
fn seed_table(f: &Fabric) {
    for w in 0..WORDS {
        let v = (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA5A5;
        f.put_u64(1, GlobalAddr::new(1, w * 8), v);
    }
}

/// One sequential sweep: rank 0 reads every word of rank 1's table.
fn sweep(f: &Fabric) -> u64 {
    let mut sum = 0u64;
    for w in 0..WORDS {
        sum = sum.wrapping_add(f.get_u64(0, GlobalAddr::new(1, w * 8)));
    }
    sum
}

fn bench_caching(c: &mut Criterion) {
    let mut g = c.benchmark_group("remote_get_sweep");
    g.sample_size(if smoke() { 3 } else { 10 });

    // Both variants run under the same synthetic NIC timing, so the
    // measured gap is the fabric ops the cache removed.
    g.bench_function("uncached", |b| {
        let f = fabric(None, Some(SimNet::hpc_nic()));
        seed_table(&f);
        b.iter_custom(|iters| {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(sweep(&f));
            }
            t.elapsed()
        })
    });

    g.bench_function("cached_default_line", |b| {
        let f = fabric(Some(CacheConfig::default()), Some(SimNet::hpc_nic()));
        seed_table(&f);
        b.iter_custom(|iters| {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(sweep(&f));
            }
            t.elapsed()
        })
    });

    g.finish();
}

/// Fabric-op accounting of one fixed read stream on both paths.
struct FillComparison {
    reads: u64,
    uncached_gets: u64,
    cached_gets: u64,
    cache_hits: u64,
    cache_misses: u64,
    uncached_cache_hits: u64,
    hit_rate: f64,
}

fn fill_comparison() -> FillComparison {
    let plain = fabric(None, None);
    let cached = fabric(Some(CacheConfig::default()), None);
    seed_table(&plain);
    seed_table(&cached);
    plain.reset_counts();
    cached.reset_counts();

    let mut a = 0u64;
    let mut b = 0u64;
    for _ in 0..PASSES {
        a = a.wrapping_add(sweep(&plain));
        b = b.wrapping_add(sweep(&cached));
    }
    assert_eq!(a, b, "cached sweep checksum diverged");

    let p = plain.endpoint(0).stats.snapshot();
    let c = cached.endpoint(0).stats.snapshot();

    // Both paths must return every word bit-for-bit identical — also
    // after a write-through update from the reading rank.
    for w in 0..WORDS {
        let addr = GlobalAddr::new(1, w * 8);
        assert_eq!(
            plain.get_u64(0, addr),
            cached.get_u64(0, addr),
            "cached read diverged at word {w}"
        );
    }
    let touched = GlobalAddr::new(1, 8);
    plain.put_u64(0, touched, 0xDEAD_BEEF);
    cached.put_u64(0, touched, 0xDEAD_BEEF);
    assert_eq!(
        plain.get_u64(0, touched),
        cached.get_u64(0, touched),
        "read-your-own-write diverged"
    );

    FillComparison {
        reads: (WORDS * PASSES) as u64,
        uncached_gets: p.gets,
        cached_gets: c.gets,
        cache_hits: c.cache_hits,
        cache_misses: c.cache_misses,
        uncached_cache_hits: p.cache_hits,
        hit_rate: c.cache_hits as f64 / (c.cache_hits + c.cache_misses).max(1) as f64,
    }
}

/// One row of the line-size sweep.
struct SweepRow {
    line_bytes: usize,
    fills: u64,
    hit_rate: f64,
    ns_per_read: f64,
}

/// Sweep the line size over the fixed read stream: fills fall as
/// ~words/(line/8) while the in-process time per read stays roughly flat
/// (the fill win is what the performance model charges per-op latency
/// for).
fn line_sweep() -> Vec<SweepRow> {
    [64usize, 256, 1024, 4096]
        .into_iter()
        .map(|line_bytes| {
            let f = fabric(
                Some(CacheConfig {
                    capacity_bytes: 1 << 20,
                    line_bytes,
                }),
                None,
            );
            seed_table(&f);
            f.reset_counts();
            let t = Instant::now();
            let mut sum = 0u64;
            for _ in 0..PASSES {
                sum = sum.wrapping_add(sweep(&f));
            }
            std::hint::black_box(sum);
            let ns = t.elapsed().as_nanos() as f64 / (WORDS * PASSES) as f64;
            let s = f.endpoint(0).stats.snapshot();
            SweepRow {
                line_bytes,
                fills: s.gets,
                hit_rate: s.cache_hits as f64 / (s.cache_hits + s.cache_misses).max(1) as f64,
                ns_per_read: ns,
            }
        })
        .collect()
}

fn write_json(
    fc: &FillComparison,
    rows: &[SweepRow],
    results: &[rupcxx_bench::harness::BenchResult],
) {
    let ns_of = |name: &str| {
        results
            .iter()
            .find(|r| r.name == format!("remote_get_sweep/{name}"))
            .map_or(0.0, |r| r.mean_ns)
    };
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"reads\": {},", fc.reads);
    let _ = writeln!(out, "  \"uncached_fabric_gets\": {},", fc.uncached_gets);
    let _ = writeln!(out, "  \"cached_fabric_gets\": {},", fc.cached_gets);
    let _ = writeln!(out, "  \"cache_hits\": {},", fc.cache_hits);
    let _ = writeln!(out, "  \"cache_misses\": {},", fc.cache_misses);
    let _ = writeln!(
        out,
        "  \"fabric_get_reduction\": {:.2},",
        fc.uncached_gets as f64 / fc.cached_gets.max(1) as f64
    );
    let _ = writeln!(out, "  \"hit_rate\": {:.4},", fc.hit_rate);
    let _ = writeln!(
        out,
        "  \"uncached_sweep_mean_ns\": {:.1},",
        ns_of("uncached")
    );
    let _ = writeln!(
        out,
        "  \"cached_sweep_mean_ns\": {:.1},",
        ns_of("cached_default_line")
    );
    out.push_str("  \"line_sweep\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"line_bytes\": {}, \"fills\": {}, \"hit_rate\": {:.4}, \"ns_per_read\": {:.1}}}{}",
            r.line_bytes,
            r.fills,
            r.hit_rate,
            r.ns_per_read,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"smoke\": {}", smoke());
    out.push_str("}\n");
    let path = format!("{}/BENCH_caching.json", report::RESULTS_DIR);
    if let Err(e) =
        std::fs::create_dir_all(report::RESULTS_DIR).and_then(|_| std::fs::write(&path, &out))
    {
        eprintln!("(could not write {path}: {e})");
    } else {
        println!("[written {path}]");
    }
}

criterion_group!(benches, bench_caching);

fn main() {
    // Land results/ at the workspace root regardless of cargo's bench CWD
    // (the package directory).
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let _ = std::env::set_current_dir(root);

    benches();
    let results = rupcxx_bench::harness::take_results();
    let fc = fill_comparison();
    println!(
        "fills: {} reads -> {} uncached fabric gets vs {} line fills ({:.1}x reduction, {:.1}% hit rate)",
        fc.reads,
        fc.uncached_gets,
        fc.cached_gets,
        fc.uncached_gets as f64 / fc.cached_gets.max(1) as f64,
        fc.hit_rate * 100.0
    );
    let rows = line_sweep();
    println!("line sweep: line_bytes -> fills, hit rate, ns/read");
    for r in &rows {
        println!(
            "  {:>5} -> {:>5} fills  {:>6.1}% hits  {:>7.1} ns",
            r.line_bytes,
            r.fills,
            r.hit_rate * 100.0,
            r.ns_per_read
        );
    }
    write_json(&fc, &rows, &results);
    report::emit_bench_trace(&results);

    // The smoke gate: the uncached path must not have touched the cache
    // at all, and the cached path must cut remote get fabric ops by at
    // least the tentpole's 5x while returning identical data (asserted
    // word-for-word in `fill_comparison`).
    assert_eq!(fc.uncached_gets, fc.reads);
    assert_eq!(
        fc.uncached_cache_hits, 0,
        "cache-off path touched the cache"
    );
    assert!(fc.cache_hits > 0, "cached sweep never hit");
    assert!(
        5 * fc.cached_gets <= fc.uncached_gets,
        "under 5x fabric-get reduction: {} cached vs {} uncached",
        fc.cached_gets,
        fc.uncached_gets
    );
}
