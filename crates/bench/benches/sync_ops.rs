//! Synchronization primitives (paper §III-F: "no observable performance
//! difference between UPC and UPC++ synchronization operations" — both
//! call the same runtime, so we bench the single shared implementation).

use rupcxx::GlobalLock;
use rupcxx_bench::harness::Criterion;
use rupcxx_bench::{criterion_group, criterion_main};
use rupcxx_runtime::{spmd, RuntimeConfig};
use std::time::{Duration, Instant};

fn bench_sync(c: &mut Criterion) {
    let mut g = c.benchmark_group("sync");
    g.sample_size(10);

    for ranks in [2usize, 4] {
        g.bench_function(format!("barrier_{ranks}ranks"), |b| {
            b.iter_custom(|iters| {
                let out = spmd(RuntimeConfig::new(ranks).segment_mib(1), move |ctx| {
                    ctx.barrier();
                    let t = Instant::now();
                    for _ in 0..iters {
                        ctx.barrier();
                    }
                    t.elapsed()
                });
                out.into_iter().max().unwrap_or(Duration::ZERO)
            })
        });
    }

    g.bench_function("fence_1rank", |b| {
        b.iter_custom(|iters| {
            let out = spmd(RuntimeConfig::new(1).segment_mib(1), move |ctx| {
                let t = Instant::now();
                for _ in 0..iters {
                    ctx.fence();
                }
                t.elapsed()
            });
            out[0]
        })
    });

    g.bench_function("lock_uncontended", |b| {
        b.iter_custom(|iters| {
            let out = spmd(RuntimeConfig::new(1).segment_mib(1), move |ctx| {
                let lock = GlobalLock::new(ctx, 0);
                let t = Instant::now();
                for _ in 0..iters {
                    lock.acquire(ctx);
                    lock.release(ctx);
                }
                let dt = t.elapsed();
                lock.destroy(ctx);
                dt
            });
            out[0]
        })
    });

    g.finish();
}

criterion_group!(benches, bench_sync);
criterion_main!(benches);
