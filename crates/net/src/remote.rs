//! Multi-process fabric: the glue between the in-process [`Fabric`] API
//! and a [`Conduit`](crate::conduit::Conduit).
//!
//! With `FabricConfig::remote` set, this OS process hosts exactly one
//! rank; the other endpoints are zero-sized stubs (any accidental direct
//! access to a stub segment panics — a built-in detector for layering
//! violations). Every public fabric operation keeps its full prologue —
//! counters, trace spans, checker hooks, the fault gate, aggregation —
//! bit-for-bit identical to the loopback path, and only the final
//! "touch the peer's memory / push to the peer's inbox" step is swapped
//! for wire frames (see [`crate::conduit::wire`]):
//!
//! * puts/gets/atomics become synchronous token-matched request/reply
//!   round trips, preserving the blocking RMA semantics;
//! * AMs are re-assembled on the receiving side and then fed through
//!   *exactly* the same delivery tail as a local send — including the
//!   reliable layer's fate draw (`am_transmit`), so fault injection and
//!   retransmission wrap any conduit unchanged;
//! * teardown quiescence is an explicit FIN/ack handshake per link,
//!   carrying the sender's data-frame count (per-link FIFO makes the
//!   count checkable on arrival).
//!
//! A [`ConduitEvent::Closed`] for a peer that has not completed its FIN
//! handshake is a genuine failure domain: it is classified through the
//! same `mark_unreachable` funnel the reliable layer uses, so killing a
//! real process surfaces as a [`PeerUnreachable`] panic with a flight-
//! recorder dump instead of a hang.

use crate::conduit::wire::{self, RmwOp, WireFrame};
use crate::conduit::{self, Conduit, ConduitEvent, RemoteConfig};
use crate::fabric::{AmMessage, AmPayload, Fabric, GlobalAddr};
use crate::reliable::PeerUnreachable;
use crate::Rank;
use rupcxx_check::{AccessKind, Stamp};
use rupcxx_util::sync::Mutex;
use rupcxx_util::Bytes;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Abandon a blocked reply wait after this long with no conduit progress
/// (backstop against protocol bugs; genuine peer death is classified via
/// `Closed` events or the reliable layer long before this fires).
const REPLY_STALL_TIMEOUT: Duration = Duration::from_secs(120);

/// A reply matched back to a waiting request by token.
#[derive(Debug)]
enum Reply {
    /// Put / strided-put completion.
    Ack,
    /// Get / strided-get data.
    Data(Vec<u8>),
    /// RMW result: (cas ok, previous value).
    Word(bool, u64),
}

/// Per-process state for a conduit-backed fabric.
pub(crate) struct RemoteFabric {
    pub(crate) conduit: Box<dyn Conduit>,
    /// The one rank this process hosts.
    pub(crate) me: Rank,
    next_token: AtomicU64,
    replies: Mutex<HashMap<u64, Reply>>,
    /// Per-destination encode scratch: reused across frames so the
    /// steady-state send path performs no allocation.
    scratch: Box<[Mutex<Vec<u8>>]>,
    /// Data frames sent per link (carried by our FIN).
    data_sent: Box<[AtomicU64]>,
    /// Data frames received per link (checked against the peer's FIN).
    data_recvd: Box<[AtomicU64]>,
    fin_recvd: Box<[AtomicBool]>,
    fin_acked: Box<[AtomicBool]>,
    /// Serializes frame dispatch: per-link FIFO must survive the rank
    /// thread and a progress thread pumping concurrently.
    pump_lock: Mutex<()>,
}

impl RemoteFabric {
    pub(crate) fn new(cfg: &RemoteConfig, ranks: usize) -> RemoteFabric {
        let conduit = conduit::build(&cfg.conduit, cfg.my_rank, ranks);
        RemoteFabric {
            conduit,
            me: cfg.my_rank,
            next_token: AtomicU64::new(1),
            replies: Mutex::new(HashMap::new()),
            scratch: (0..ranks).map(|_| Mutex::new(Vec::new())).collect(),
            data_sent: (0..ranks).map(|_| AtomicU64::new(0)).collect(),
            data_recvd: (0..ranks).map(|_| AtomicU64::new(0)).collect(),
            fin_recvd: (0..ranks).map(|_| AtomicBool::new(false)).collect(),
            fin_acked: (0..ranks).map(|_| AtomicBool::new(false)).collect(),
            pump_lock: Mutex::new(()),
        }
    }

    /// Encode one frame into the link's scratch buffer and send it.
    fn send_encoded(&self, dst: Rank, enc: impl FnOnce(&mut Vec<u8>)) {
        let mut buf = self.scratch[dst].lock();
        enc(&mut buf);
        if wire::is_data_frame(&buf) {
            self.data_sent[dst].fetch_add(1, Ordering::Relaxed);
        }
        self.conduit.send(dst, &buf);
    }

    fn fresh_token(&self) -> u64 {
        self.next_token.fetch_add(1, Ordering::Relaxed)
    }
}

impl Fabric {
    /// True when this fabric reaches its peers through a conduit (one
    /// rank per OS process) rather than in-process endpoints.
    pub fn is_remote(&self) -> bool {
        self.remote.is_some()
    }

    /// The conduit backend name, if a conduit is installed.
    pub fn conduit_name(&self) -> Option<&'static str> {
        self.remote.as_ref().map(|r| r.conduit.name())
    }

    /// The remote state when `target` lives in another process.
    #[inline]
    pub(crate) fn remote_to(&self, target: Rank) -> Option<&RemoteFabric> {
        match &self.remote {
            Some(r) if r.me != target => Some(r),
            _ => None,
        }
    }

    /// The initiator's clock stamp for an outgoing RMA frame, so the
    /// receiving process can run the same `frame_access` race check the
    /// aggregation layer runs for batched frames.
    fn rma_stamp(&self, initiator: Rank) -> Option<Stamp> {
        self.check.as_ref().map(|ck| ck.send_stamp(initiator))
    }

    /// Bounds check mirroring the segment's own panic for local ops: the
    /// initiator should fail, not the (innocent) target process.
    fn check_remote_bounds(&self, addr: GlobalAddr, len: usize, op: &str) {
        assert!(
            addr.offset() + len <= self.seg_bytes,
            "{op}: out of bounds: offset {} + len {len} > segment {}",
            addr.offset(),
            self.seg_bytes
        );
    }

    /// Block until the reply for `token` arrives, serving incoming
    /// conduit traffic while spinning (two ranks mid-RMA into each other
    /// must each answer the other's request).
    fn wait_reply(&self, r: &RemoteFabric, token: u64) -> Reply {
        let mut last_progress = Instant::now();
        let mut spins = 0u32;
        loop {
            if let Some(rep) = r.replies.lock().remove(&token) {
                return rep;
            }
            if self.pump_conduit(r.me) > 0 {
                last_progress = Instant::now();
                continue;
            }
            if self.has_failed() {
                let detail = self.failure().expect("failed without detail");
                panic!("{detail}");
            }
            assert!(
                last_progress.elapsed() < REPLY_STALL_TIMEOUT,
                "conduit reply stalled: rank {} waiting on token {token}",
                r.me
            );
            spins += 1;
            if spins >= 64 {
                spins = 0;
                std::thread::yield_now();
            }
        }
    }

    /// Remote put tail (prologue already ran): PUT frame + ack.
    pub(crate) fn remote_put(&self, r: &RemoteFabric, dst: GlobalAddr, data: &[u8]) {
        self.check_remote_bounds(dst, data.len(), "put");
        let token = r.fresh_token();
        let stamp = self.rma_stamp(r.me);
        r.send_encoded(dst.rank(), |b| {
            wire::encode_put(b, stamp.as_ref(), token, dst.offset() as u64, data)
        });
        match self.wait_reply(r, token) {
            Reply::Ack => {}
            other => panic!("put reply mismatch: {other:?}"),
        }
    }

    /// Remote get tail: GET_REQ frame + data reply.
    pub(crate) fn remote_get(&self, r: &RemoteFabric, src: GlobalAddr, buf: &mut [u8]) {
        self.check_remote_bounds(src, buf.len(), "get");
        let token = r.fresh_token();
        let stamp = self.rma_stamp(r.me);
        r.send_encoded(src.rank(), |b| {
            wire::encode_get_req(
                b,
                stamp.as_ref(),
                token,
                src.offset() as u64,
                buf.len() as u32,
            )
        });
        match self.wait_reply(r, token) {
            Reply::Data(d) => buf.copy_from_slice(&d),
            other => panic!("get reply mismatch: {other:?}"),
        }
    }

    /// Remote atomic tail: RMW_REQ frame + word reply `(ok, previous)`.
    pub(crate) fn remote_rmw(
        &self,
        r: &RemoteFabric,
        op: RmwOp,
        dst: GlobalAddr,
        a: u64,
        b: u64,
    ) -> (bool, u64) {
        self.check_remote_bounds(dst, 8, "rmw");
        let token = r.fresh_token();
        let stamp = self.rma_stamp(r.me);
        r.send_encoded(dst.rank(), |buf| {
            wire::encode_rmw_req(buf, stamp.as_ref(), token, op, dst.offset() as u64, a, b)
        });
        match self.wait_reply(r, token) {
            Reply::Word(ok, val) => (ok, val),
            other => panic!("rmw reply mismatch: {other:?}"),
        }
    }

    /// Remote strided-put tail.
    pub(crate) fn remote_put_strided(
        &self,
        r: &RemoteFabric,
        dst: GlobalAddr,
        dst_stride: usize,
        src: &[u8],
        block: usize,
        nblocks: usize,
    ) {
        if nblocks > 0 {
            self.check_remote_bounds(dst, (nblocks - 1) * dst_stride + block, "put_strided");
        }
        let token = r.fresh_token();
        let stamp = self.rma_stamp(r.me);
        r.send_encoded(dst.rank(), |b| {
            wire::encode_put_strided(
                b,
                stamp.as_ref(),
                token,
                dst.offset() as u64,
                dst_stride as u64,
                block as u32,
                nblocks as u32,
                src,
            )
        });
        match self.wait_reply(r, token) {
            Reply::Ack => {}
            other => panic!("put_strided reply mismatch: {other:?}"),
        }
    }

    /// Remote strided-get tail.
    pub(crate) fn remote_get_strided(
        &self,
        r: &RemoteFabric,
        src: GlobalAddr,
        src_stride: usize,
        buf: &mut [u8],
        block: usize,
        nblocks: usize,
    ) {
        if nblocks > 0 {
            self.check_remote_bounds(src, (nblocks - 1) * src_stride + block, "get_strided");
        }
        let token = r.fresh_token();
        let stamp = self.rma_stamp(r.me);
        r.send_encoded(src.rank(), |b| {
            wire::encode_get_strided_req(
                b,
                stamp.as_ref(),
                token,
                src.offset() as u64,
                src_stride as u64,
                block as u32,
                nblocks as u32,
            )
        });
        match self.wait_reply(r, token) {
            Reply::Data(d) => buf.copy_from_slice(&d),
            other => panic!("get_strided reply mismatch: {other:?}"),
        }
    }

    /// Remote AM tail (all of `send_am`'s prologue — aggregation
    /// pre-flush, counters, trace, clock/span attach — already ran).
    pub(crate) fn remote_send_am(&self, r: &RemoteFabric, dst: Rank, msg: AmMessage) {
        match &msg.payload {
            AmPayload::Handler { id, args } => {
                r.send_encoded(dst, |b| {
                    wire::encode_am_handler(b, msg.clock.as_ref(), msg.prof.as_ref(), *id, args)
                });
            }
            AmPayload::Batch { frames, count } => {
                r.send_encoded(dst, |b| {
                    wire::encode_am_batch(b, msg.clock.as_ref(), msg.prof.as_ref(), *count, frames)
                });
            }
            AmPayload::Task(_) => panic!(
                "closure AMs cannot cross process boundaries: register a handler \
                 (send_handler) instead of sending a boxed task to rank {dst}"
            ),
        }
    }

    /// Drain and dispatch pending conduit events. Returns the number of
    /// events processed (0 without a conduit, or when another thread is
    /// already pumping — dispatch is serialized to keep per-link FIFO).
    pub fn pump_conduit(&self, me: Rank) -> usize {
        let Some(r) = &self.remote else { return 0 };
        debug_assert_eq!(me, r.me, "pump_conduit from a stub rank");
        let Some(_guard) = r.pump_lock.try_lock() else {
            return 0;
        };
        let mut work = 0;
        while let Some(ev) = r.conduit.try_recv() {
            work += 1;
            match ev {
                ConduitEvent::Frame(src, frame) => self.dispatch_frame(r, src, &frame),
                ConduitEvent::Closed(src) => {
                    // A closure after the peer's FIN is a clean goodbye;
                    // before it, the peer died mid-job.
                    if !r.fin_recvd[src].load(Ordering::Acquire) {
                        self.mark_unreachable(PeerUnreachable {
                            src: r.me,
                            dst: src,
                            seq: 0,
                            attempts: 0,
                        });
                    }
                    // Either way the peer can no longer ack our FIN.
                    r.fin_acked[src].store(true, Ordering::Release);
                }
            }
        }
        work
    }

    /// Receiver-side checker hook for wire RMA frames: the same
    /// stamp-carrying `frame_access` the aggregation layer uses.
    #[allow(clippy::too_many_arguments)]
    fn frame_check(
        &self,
        src: Rank,
        me: Rank,
        offset: usize,
        len: usize,
        kind: AccessKind,
        stamp: Option<&Stamp>,
        op: &'static str,
    ) {
        if let (Some(ck), Some(stamp)) = (&self.check, stamp) {
            ck.frame_access(src, me, offset, len, kind, stamp, op);
        }
    }

    /// Decode and execute one data frame from `src`.
    fn dispatch_frame(&self, r: &RemoteFabric, src: Rank, frame: &[u8]) {
        let me = r.me;
        if wire::is_data_frame(frame) {
            r.data_recvd[src].fetch_add(1, Ordering::Relaxed);
        }
        match wire::decode(frame) {
            WireFrame::AmHandler {
                clock,
                prof,
                id,
                args,
            } => {
                let msg = AmMessage {
                    src,
                    payload: AmPayload::Handler {
                        id,
                        args: Bytes::from(args.to_vec()),
                    },
                    clock,
                    prof,
                };
                self.deliver_arrival(src, me, msg);
            }
            WireFrame::AmBatch {
                clock,
                prof,
                count,
                frames,
            } => {
                let msg = AmMessage {
                    src,
                    payload: AmPayload::Batch {
                        frames: Bytes::from(frames.to_vec()),
                        count,
                    },
                    clock,
                    prof,
                };
                self.deliver_arrival(src, me, msg);
            }
            WireFrame::Put {
                stamp,
                token,
                offset,
                data,
            } => {
                let offset = offset as usize;
                self.frame_check(
                    src,
                    me,
                    offset,
                    data.len(),
                    AccessKind::Write,
                    stamp.as_ref(),
                    "put",
                );
                let seg = &self.endpoints[me].segment;
                if data.len() == 8 && offset.is_multiple_of(8) {
                    seg.store_u64(offset, u64::from_le_bytes(data.try_into().unwrap()));
                } else {
                    seg.write_bytes(offset, data);
                }
                r.send_encoded(src, |b| wire::encode_ack(b, token));
            }
            WireFrame::PutStrided {
                stamp,
                token,
                offset,
                stride,
                block,
                nblocks,
                data,
            } => {
                let (offset, stride) = (offset as usize, stride as usize);
                let (block, nblocks) = (block as usize, nblocks as usize);
                let seg = &self.endpoints[me].segment;
                for bi in 0..nblocks {
                    self.frame_check(
                        src,
                        me,
                        offset + bi * stride,
                        block,
                        AccessKind::Write,
                        stamp.as_ref(),
                        "put-strided",
                    );
                    seg.write_bytes(offset + bi * stride, &data[bi * block..(bi + 1) * block]);
                }
                r.send_encoded(src, |b| wire::encode_ack(b, token));
            }
            WireFrame::GetReq {
                stamp,
                token,
                offset,
                len,
            } => {
                let (offset, len) = (offset as usize, len as usize);
                self.frame_check(
                    src,
                    me,
                    offset,
                    len,
                    AccessKind::Read,
                    stamp.as_ref(),
                    "get",
                );
                let mut data = vec![0u8; len];
                self.endpoints[me].segment.read_bytes(offset, &mut data);
                r.send_encoded(src, |b| wire::encode_resp_data(b, token, &data));
            }
            WireFrame::GetStridedReq {
                stamp,
                token,
                offset,
                stride,
                block,
                nblocks,
            } => {
                let (offset, stride) = (offset as usize, stride as usize);
                let (block, nblocks) = (block as usize, nblocks as usize);
                let mut data = vec![0u8; block * nblocks];
                let seg = &self.endpoints[me].segment;
                for bi in 0..nblocks {
                    self.frame_check(
                        src,
                        me,
                        offset + bi * stride,
                        block,
                        AccessKind::Read,
                        stamp.as_ref(),
                        "get-strided",
                    );
                    seg.read_bytes(
                        offset + bi * stride,
                        &mut data[bi * block..(bi + 1) * block],
                    );
                }
                r.send_encoded(src, |b| wire::encode_resp_data(b, token, &data));
            }
            WireFrame::RmwReq {
                stamp,
                token,
                op,
                offset,
                a,
                b,
            } => {
                let offset = offset as usize;
                self.frame_check(
                    src,
                    me,
                    offset,
                    8,
                    AccessKind::Atomic,
                    stamp.as_ref(),
                    "rmw",
                );
                let seg = &self.endpoints[me].segment;
                let (ok, val) = match op {
                    RmwOp::Xor => (true, seg.fetch_xor_u64(offset, a)),
                    RmwOp::Add => (true, seg.fetch_add_u64(offset, a)),
                    RmwOp::Cas => match seg.cas_u64(offset, a, b) {
                        Ok(prev) => (true, prev),
                        Err(prev) => (false, prev),
                    },
                };
                r.send_encoded(src, |buf| wire::encode_resp_word(buf, token, ok, val));
            }
            WireFrame::RespData { token, data } => {
                r.replies.lock().insert(token, Reply::Data(data.to_vec()));
            }
            WireFrame::RespWord { token, ok, val } => {
                r.replies.lock().insert(token, Reply::Word(ok, val));
            }
            WireFrame::Ack { token } => {
                r.replies.lock().insert(token, Reply::Ack);
            }
            WireFrame::Fin { frames } => {
                let got = r.data_recvd[src].load(Ordering::Relaxed);
                assert_eq!(
                    got, frames,
                    "conduit FIN from rank {src}: it sent {frames} data frames, \
                     rank {me} received {got} — per-link FIFO violated"
                );
                r.fin_recvd[src].store(true, Ordering::Release);
                r.send_encoded(src, wire::encode_fin_ack);
            }
            WireFrame::FinAck => {
                r.fin_acked[src].store(true, Ordering::Release);
            }
        }
    }

    /// The delivery tail shared by local sends and conduit arrivals: the
    /// reliable layer's fate draw, the controlled scheduler, or a direct
    /// inbox push. Feeding decoded arrivals through `am_transmit` is what
    /// lets simulated faults wrap a *real* transport unchanged — per-link
    /// FIFO on the conduit means arrival order equals send order, so the
    /// deterministic fate sequence matches the loopback run exactly.
    pub(crate) fn deliver_arrival(&self, src: Rank, me: Rank, msg: AmMessage) {
        if self.faults.is_some() && src != me {
            self.am_transmit(src, me, msg);
        } else if self.sched.is_some() && src != me {
            self.sched_park(src, me, msg);
        } else {
            self.endpoints[me].inbox.push(msg);
        }
    }

    /// Conduit-level teardown handshake (the out-of-process replacement
    /// for "peek at every peer's queue depth"): flush each link, announce
    /// our per-link data-frame count with a FIN, serve incoming traffic
    /// until every peer has both FIN'd us and acked our FIN, then shut
    /// the transport down. Call only after global completion (all
    /// application sends done and links quiescent).
    pub fn conduit_teardown(&self, me: Rank) {
        let Some(r) = &self.remote else { return };
        debug_assert_eq!(me, r.me);
        for dst in 0..self.ranks() {
            if dst == me {
                continue;
            }
            r.conduit.flush(dst);
            let sent = r.data_sent[dst].load(Ordering::Relaxed);
            r.send_encoded(dst, |b| wire::encode_fin(b, sent));
        }
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            self.pump_conduit(me);
            let done = (0..self.ranks()).filter(|&p| p != me).all(|p| {
                r.fin_recvd[p].load(Ordering::Acquire) && r.fin_acked[p].load(Ordering::Acquire)
            });
            if done || self.has_failed() {
                break;
            }
            if Instant::now() > deadline {
                eprintln!("rupcxx: conduit teardown timed out waiting for FIN handshake");
                break;
            }
            std::thread::yield_now();
        }
        r.conduit.shutdown();
    }
}
