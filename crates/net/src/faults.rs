//! Deterministic fault injection for the fabric.
//!
//! A [`FaultPlan`] describes a *seeded, replayable* chaos schedule: for
//! every link (ordered source → destination rank pair) a [`LinkRule`]
//! gives the probability that a frame is dropped, duplicated, reordered
//! or delayed on the wire. The fate of a frame is a **pure function** of
//! `(seed, src, dst, seq, attempt)` — no RNG state, no wall clock — so a
//! chaos run with a given seed injects byte-identical faults every time,
//! and the reliable-delivery layer (`crate::reliable`) performs an
//! identical number of retransmissions. That is what makes a failing
//! chaos seed replayable: re-run with the same `RUPCXX_FAULTS` string and
//! the same frames are lost in the same order.
//!
//! Plans come from [`FaultPlan::from_env`] (`RUPCXX_FAULTS=…`) or are
//! built programmatically for tests. Syntax:
//!
//! ```text
//! RUPCXX_FAULTS=seed=42,drop=0.10,dup=0.02,reorder=0.05,delay=0.01
//! RUPCXX_FAULTS=seed=7,drop=0.05;link=0->1,drop=1.0   # per-link override
//! ```
//!
//! Segments are separated by `;`. The first segment sets the seed, the
//! default link rule and the protocol knobs (`max_attempts=`, `hold=`);
//! each later segment starts with `link=SRC->DST` and overrides the rule
//! for that one directed link (e.g. `drop=1.0` simulates a dead peer,
//! which the runtime surfaces as a `PeerUnreachable` failure).

use crate::Rank;

/// Probability knobs for one directed link, in parts per million.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkRule {
    /// Probability a transmission attempt is lost on the wire.
    pub drop_ppm: u32,
    /// Probability a delivered frame arrives twice.
    pub dup_ppm: u32,
    /// Probability a delivered frame is held back behind later traffic
    /// (a short hold, exercising the receiver's reorder buffer).
    pub reorder_ppm: u32,
    /// Probability a delivered frame is delayed (a longer hold).
    pub delay_ppm: u32,
}

impl LinkRule {
    /// True when every probability is zero (the link is fault-free).
    pub fn is_clean(&self) -> bool {
        self.drop_ppm == 0 && self.dup_ppm == 0 && self.reorder_ppm == 0 && self.delay_ppm == 0
    }
}

/// Convert a probability in `[0, 1]` to parts per million.
fn to_ppm(p: f64) -> u32 {
    (p.clamp(0.0, 1.0) * 1e6).round() as u32
}

/// A complete, seeded chaos schedule for a job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed mixed into every fate decision.
    pub seed: u64,
    /// Rule applied to every link without an override.
    pub base: LinkRule,
    /// Per-link overrides, keyed by `(src, dst)`.
    pub overrides: Vec<((Rank, Rank), LinkRule)>,
    /// Total transmission attempts per frame before the link is declared
    /// dead and the job fails with `PeerUnreachable` instead of hanging.
    pub max_attempts: u32,
    /// Upper bound on how many progress-engine ticks a reordered or
    /// delayed frame is held in limbo (reorder holds `1..=hold/4`,
    /// delay holds `1..=hold`).
    pub max_hold_ticks: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::new(0)
    }
}

impl FaultPlan {
    /// A plan with clean links — faults are opted into via the builders.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            base: LinkRule::default(),
            overrides: Vec::new(),
            max_attempts: 32,
            max_hold_ticks: 16,
        }
    }

    /// Set the default drop probability (0.0–1.0).
    pub fn drop(mut self, p: f64) -> Self {
        self.base.drop_ppm = to_ppm(p);
        self
    }

    /// Set the default duplication probability.
    pub fn dup(mut self, p: f64) -> Self {
        self.base.dup_ppm = to_ppm(p);
        self
    }

    /// Set the default reorder probability.
    pub fn reorder(mut self, p: f64) -> Self {
        self.base.reorder_ppm = to_ppm(p);
        self
    }

    /// Set the default delay probability.
    pub fn delay(mut self, p: f64) -> Self {
        self.base.delay_ppm = to_ppm(p);
        self
    }

    /// Override the rule for the directed link `src -> dst`.
    pub fn link(mut self, src: Rank, dst: Rank, rule: LinkRule) -> Self {
        self.overrides.retain(|(l, _)| *l != (src, dst));
        self.overrides.push(((src, dst), rule));
        self
    }

    /// Set the per-frame attempt budget.
    pub fn max_attempts(mut self, n: u32) -> Self {
        assert!(n > 0, "max_attempts must be at least 1");
        self.max_attempts = n;
        self
    }

    /// Set the limbo-hold bound for reordered/delayed frames.
    pub fn max_hold_ticks(mut self, n: u32) -> Self {
        assert!(n > 0, "max_hold_ticks must be at least 1");
        self.max_hold_ticks = n;
        self
    }

    /// The rule in effect for `src -> dst`.
    pub fn rule(&self, src: Rank, dst: Rank) -> &LinkRule {
        self.overrides
            .iter()
            .find(|(l, _)| *l == (src, dst))
            .map(|(_, r)| r)
            .unwrap_or(&self.base)
    }

    /// True when no link can experience a fault (the plan is a no-op).
    pub fn is_noop(&self) -> bool {
        self.base.is_clean() && self.overrides.iter().all(|(_, r)| r.is_clean())
    }

    /// Parse the `RUPCXX_FAULTS` environment variable. Unset, empty or
    /// `off` mean no fault injection; a malformed value aborts with a
    /// clear message (chaos must be opted into explicitly — a typo must
    /// never silently turn a chaos run into a clean one).
    pub fn from_env() -> Option<FaultPlan> {
        rupcxx_util::env::parse_env(
            "RUPCXX_FAULTS",
            "seed=N[,drop=P][,dup=P][,reorder=P][,delay=P][;link=SRC->DST,...]",
            Self::parse,
        )
    }

    /// Parse a plan string (the `RUPCXX_FAULTS` syntax). `Ok(None)` means
    /// explicitly disabled.
    pub fn parse(s: &str) -> Result<Option<FaultPlan>, String> {
        let s = s.trim();
        if s.is_empty() || s == "off" || s == "0" || s == "none" {
            return Ok(None);
        }
        let mut plan = FaultPlan::new(0);
        for (i, segment) in s.split(';').enumerate() {
            // Every segment starts from the base rule: overrides *replace*
            // a link's probabilities, they don't compose with later edits
            // to the base.
            let mut rule = plan.base;
            let mut link: Option<(Rank, Rank)> = None;
            for kv in segment.split(',') {
                let kv = kv.trim();
                if kv.is_empty() {
                    continue;
                }
                let (key, val) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("expected key=value, got {kv:?}"))?;
                let (key, val) = (key.trim(), val.trim());
                let prob = |v: &str| -> Result<u32, String> {
                    let p: f64 = v
                        .parse()
                        .map_err(|_| format!("bad probability {v:?} for {key}"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("{key}={v} outside [0, 1]"));
                    }
                    Ok(to_ppm(p))
                };
                match key {
                    "seed" => {
                        plan.seed = val.parse().map_err(|_| format!("bad seed {val:?}"))?;
                    }
                    "drop" => rule.drop_ppm = prob(val)?,
                    "dup" => rule.dup_ppm = prob(val)?,
                    "reorder" => rule.reorder_ppm = prob(val)?,
                    "delay" => rule.delay_ppm = prob(val)?,
                    "max_attempts" => {
                        plan.max_attempts = val
                            .parse()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or_else(|| format!("bad max_attempts {val:?}"))?;
                    }
                    "hold" => {
                        plan.max_hold_ticks = val
                            .parse()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or_else(|| format!("bad hold {val:?}"))?;
                    }
                    "link" => {
                        let (a, b) = val
                            .split_once("->")
                            .ok_or_else(|| format!("bad link {val:?}, expected SRC->DST"))?;
                        let src = a.trim().parse().map_err(|_| format!("bad rank {a:?}"))?;
                        let dst = b.trim().parse().map_err(|_| format!("bad rank {b:?}"))?;
                        link = Some((src, dst));
                    }
                    other => return Err(format!("unknown key {other:?}")),
                }
            }
            match link {
                None if i == 0 => plan.base = rule,
                None => return Err("link segments must start with link=SRC->DST".to_string()),
                Some((src, dst)) => plan = plan.link(src, dst, rule),
            }
        }
        if plan.is_noop() {
            return Ok(None);
        }
        Ok(Some(plan))
    }
}

/// What the wire does with one transmission attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fate {
    /// The frame is lost; the reliable layer will retransmit it.
    Drop,
    /// The frame arrives. `hold_ticks > 0` parks it in the receiver's
    /// limbo for that many progress ticks (reorder/delay); `duplicate`
    /// makes a second copy arrive, to be discarded by the dedup window.
    Deliver {
        /// A second copy of the frame also arrives.
        duplicate: bool,
        /// Progress-engine ticks the frame is held before delivery.
        hold_ticks: u32,
    },
}

/// Decision salts — distinct streams per question asked about a frame.
const SALT_DROP: u64 = 0xD0;
const SALT_DUP: u64 = 0xD1;
const SALT_HOLD: u64 = 0xD2;
const SALT_HOLD_LEN: u64 = 0xD3;

/// Stateless mixer: a SplitMix64-style finalizer folded over the
/// identifying words of a decision. Pure, so every fate is replayable.
fn mix(seed: u64, src: u64, dst: u64, seq: u64, attempt: u64, salt: u64) -> u64 {
    let mut z = seed ^ 0x9E37_79B9_7F4A_7C15;
    for w in [src, dst, seq, attempt, salt] {
        z = z.wrapping_add(w).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
    }
    z
}

/// Draw in `[0, 1_000_000)` for one decision.
fn draw(plan: &FaultPlan, src: Rank, dst: Rank, seq: u64, attempt: u32, salt: u64) -> u64 {
    mix(plan.seed, src as u64, dst as u64, seq, attempt as u64, salt) % 1_000_000
}

/// Decide the fate of transmission `attempt` of frame `seq` on link
/// `src -> dst`. Pure: the same inputs always yield the same fate, which
/// is what makes retransmit/dup/drop counts reproducible across runs.
pub fn decide(plan: &FaultPlan, src: Rank, dst: Rank, seq: u64, attempt: u32) -> Fate {
    let rule = plan.rule(src, dst);
    if rule.is_clean() {
        return Fate::Deliver {
            duplicate: false,
            hold_ticks: 0,
        };
    }
    if draw(plan, src, dst, seq, attempt, SALT_DROP) < rule.drop_ppm as u64 {
        return Fate::Drop;
    }
    let duplicate = draw(plan, src, dst, seq, attempt, SALT_DUP) < rule.dup_ppm as u64;
    let hold_draw = draw(plan, src, dst, seq, attempt, SALT_HOLD);
    let hold_ticks = if hold_draw < rule.reorder_ppm as u64 {
        // Short hold: just enough to slip behind later traffic.
        1 + (draw(plan, src, dst, seq, attempt, SALT_HOLD_LEN)
            % (plan.max_hold_ticks as u64 / 4).max(1)) as u32
    } else if hold_draw < (rule.reorder_ppm + rule.delay_ppm) as u64 {
        1 + (draw(plan, src, dst, seq, attempt, SALT_HOLD_LEN) % plan.max_hold_ticks as u64) as u32
    } else {
        0
    };
    Fate::Deliver {
        duplicate,
        hold_ticks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fates_are_deterministic() {
        let plan = FaultPlan::new(42).drop(0.3).dup(0.1).reorder(0.2);
        for seq in 0..200 {
            for attempt in 0..4 {
                assert_eq!(
                    decide(&plan, 0, 1, seq, attempt),
                    decide(&plan, 0, 1, seq, attempt),
                );
            }
        }
    }

    #[test]
    fn distinct_links_and_seeds_get_distinct_streams() {
        let a = FaultPlan::new(1).drop(0.5);
        let b = FaultPlan::new(2).drop(0.5);
        let fates_a: Vec<_> = (0..64).map(|s| decide(&a, 0, 1, s, 0)).collect();
        let fates_b: Vec<_> = (0..64).map(|s| decide(&b, 0, 1, s, 0)).collect();
        let fates_rev: Vec<_> = (0..64).map(|s| decide(&a, 1, 0, s, 0)).collect();
        assert_ne!(fates_a, fates_b, "seed must change the stream");
        assert_ne!(fates_a, fates_rev, "link direction must change the stream");
    }

    #[test]
    fn drop_rate_roughly_matches_probability() {
        let plan = FaultPlan::new(7).drop(0.25);
        let drops = (0..10_000)
            .filter(|&s| decide(&plan, 0, 1, s, 0) == Fate::Drop)
            .count();
        assert!((2000..3000).contains(&drops), "drops={drops}");
    }

    #[test]
    fn clean_rule_always_delivers() {
        let plan = FaultPlan::new(3).link(0, 1, LinkRule::default()).drop(1.0);
        // Link 0->1 is overridden clean; 1->0 inherits drop=1.0.
        for s in 0..50 {
            assert_eq!(
                decide(&plan, 0, 1, s, 0),
                Fate::Deliver {
                    duplicate: false,
                    hold_ticks: 0
                }
            );
            assert_eq!(decide(&plan, 1, 0, s, 0), Fate::Drop);
        }
    }

    #[test]
    fn attempts_redraw_the_fate() {
        // With drop=0.5, some frame must fail attempt 0 and pass attempt 1.
        let plan = FaultPlan::new(11).drop(0.5);
        let recovered = (0..200).any(|s| {
            decide(&plan, 0, 1, s, 0) == Fate::Drop && decide(&plan, 0, 1, s, 1) != Fate::Drop
        });
        assert!(recovered);
    }

    #[test]
    fn hold_ticks_bounded() {
        let plan = FaultPlan::new(5).delay(1.0).max_hold_ticks(8);
        for s in 0..500 {
            match decide(&plan, 0, 1, s, 0) {
                Fate::Deliver { hold_ticks, .. } => {
                    assert!((1..=8).contains(&hold_ticks), "hold={hold_ticks}")
                }
                Fate::Drop => panic!("drop with drop_ppm=0"),
            }
        }
    }

    #[test]
    fn parse_full_syntax() {
        let plan = FaultPlan::parse(
            "seed=42,drop=0.10,dup=0.02,reorder=0.05,delay=0.01,max_attempts=16,hold=32;\
             link=0->1,drop=1.0",
        )
        .unwrap()
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.base.drop_ppm, 100_000);
        assert_eq!(plan.base.dup_ppm, 20_000);
        assert_eq!(plan.base.reorder_ppm, 50_000);
        assert_eq!(plan.base.delay_ppm, 10_000);
        assert_eq!(plan.max_attempts, 16);
        assert_eq!(plan.max_hold_ticks, 32);
        assert_eq!(plan.rule(0, 1).drop_ppm, 1_000_000);
        // The override replaces the whole rule for that link.
        assert_eq!(plan.rule(0, 1).dup_ppm, plan.base.dup_ppm);
        assert_eq!(plan.rule(1, 0).drop_ppm, 100_000);
    }

    #[test]
    fn parse_disabled_and_noop_forms() {
        assert_eq!(FaultPlan::parse("").unwrap(), None);
        assert_eq!(FaultPlan::parse("off").unwrap(), None);
        assert_eq!(FaultPlan::parse("seed=9").unwrap(), None, "no-op plan");
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(FaultPlan::parse("drop").is_err());
        assert!(FaultPlan::parse("drop=2.0").is_err());
        assert!(FaultPlan::parse("drop=x").is_err());
        assert!(FaultPlan::parse("frob=1").is_err());
        assert!(
            FaultPlan::parse("drop=0.1;dup=0.5").is_err(),
            "missing link="
        );
        assert!(FaultPlan::parse("drop=0.1;link=0-1,dup=0.5").is_err());
        assert!(FaultPlan::parse("max_attempts=0").is_err());
    }

    #[test]
    fn link_override_replaces_previous() {
        let plan = FaultPlan::new(1)
            .link(
                0,
                1,
                LinkRule {
                    drop_ppm: 5,
                    ..Default::default()
                },
            )
            .link(
                0,
                1,
                LinkRule {
                    drop_ppm: 9,
                    ..Default::default()
                },
            );
        assert_eq!(plan.overrides.len(), 1);
        assert_eq!(plan.rule(0, 1).drop_ppm, 9);
    }
}
