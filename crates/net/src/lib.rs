//! `rupcxx-net` — the communication substrate of the `rupcxx` PGAS library.
//!
//! This crate plays the role GASNet plays under UPC++ (paper Fig. 2): it
//! provides a *fabric* of N endpoints (one per SPMD rank) supporting
//!
//! * **active messages** (von Eicken et al., ISCA '92): small control
//!   messages carrying a registered handler id + payload, or an opaque
//!   boxed task, delivered FIFO per (source, destination) pair and executed
//!   by the destination's progress engine;
//! * **one-sided RMA**: `put`/`get` of byte ranges into a remote rank's
//!   *segment* with **no involvement of the target CPU**, exactly the
//!   property RDMA hardware provides. Strided (vector) transfers are
//!   supported for multidimensional-array ghost copies;
//! * **traffic counters** per endpoint, consumed by `rupcxx-perfmodel` to
//!   project measured runs onto paper-scale machines.
//!
//! The "network" is the host's shared memory: ranks are OS threads of one
//! process. Each rank's globally addressable memory is a [`Segment`] — an
//! arena of `AtomicU64` words accessed with `Relaxed` ordering. This makes
//! concurrent conflicting accesses *defined behaviour* (you observe some
//! written value), which is a faithful, safe-Rust rendering of the paper's
//! relaxed memory-consistency model (§III-F).

pub mod aggregate;
pub mod cache;
pub mod conduit;
pub mod fabric;
pub mod faults;
pub mod inbox;
pub mod pod;
pub mod reliable;
pub(crate) mod remote;
pub mod schedule;
pub mod segment;
pub mod stats;

pub use aggregate::{AggConfig, BatchReader, Frame};
pub use cache::{CacheConfig, CacheState};
pub use conduit::{
    Conduit, ConduitEvent, ConduitSel, LoopbackConduit, RemoteConfig, ShmConduit, SocketConduit,
    CONDUIT_SYNTAX,
};
pub use fabric::{AmMessage, AmPayload, Endpoint, Fabric, FabricConfig, GlobalAddr, SimNet};
pub use faults::{Fate, FaultPlan, LinkRule};
pub use inbox::{ShardedInbox, INBOX_SHARDS};
pub use pod::Pod;
pub use reliable::PeerUnreachable;
pub use rupcxx_check::{CheckConfig, Checker};
pub use rupcxx_trace::{ProfConfig, ProfState};
pub use schedule::{
    new_recorder, DeliveryRecord, RecordLog, SchedCounts, Schedule, ScheduleConfig,
    ScheduleRecorder,
};
pub use segment::Segment;
pub use stats::{CommCounts, CommStats, PerDestStats};

/// A rank id (SPMD execution-unit index), `0..ranks()`.
pub type Rank = usize;
