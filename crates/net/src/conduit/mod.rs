//! Pluggable transport conduits (the role GASNet's conduit layer plays
//! under UPC++, paper Fig. 2).
//!
//! A [`Conduit`] moves **sequenced byte frames** between ranks: delivery
//! is reliable and FIFO per directed `(src, dst)` link, and a frame
//! arrives exactly once. Everything above the conduit boundary — the
//! reliable layer's *simulated* faults, aggregation, the read cache, the
//! checker, the profiler — is transport-agnostic: it manipulates
//! [`AmMessage`](crate::AmMessage)s and segment bytes, never a socket or
//! a ring. The fabric encodes those into wire frames (see [`wire`]) only
//! when a conduit is installed.
//!
//! Three implementations:
//!
//! * [`LoopbackConduit`] — conduit #0: per-link in-process queues. The
//!   default fabric does not even construct it (all ranks share one
//!   address space, AMs go straight to the destination inbox), but the
//!   type exists so conformance tests and benches can drive the same
//!   trait surface the out-of-process backends implement.
//! * [`ShmConduit`] — co-located OS processes over an `mmap`'d segment
//!   file: one lock-free SPSC byte ring per directed link, bootstrap via
//!   the segment header.
//! * [`SocketConduit`] — TCP or Unix-domain sockets: length-prefixed
//!   frames, a connect/accept mesh at startup, one writer thread per
//!   link.
//!
//! Selection threads through `RUPCXX_CONDUIT` (see [`ConduitSel`]) and
//! `FabricConfig::remote` / `RuntimeConfig::conduit`.

pub mod loopback;
pub mod shm;
pub mod socket;
pub mod wire;

pub use loopback::LoopbackConduit;
pub use shm::ShmConduit;
pub use socket::SocketConduit;

use crate::Rank;

/// Something a conduit hands to the receiving process.
#[derive(Debug)]
pub enum ConduitEvent {
    /// A data frame from `src`, in per-link FIFO order.
    Frame(Rank, Vec<u8>),
    /// The link to/from `src` is down: the peer's process closed its end
    /// or a write failed. The fabric classifies this as a genuine
    /// failure domain (`PeerUnreachable`) unless the peer already
    /// completed the FIN handshake.
    Closed(Rank),
}

/// A frame transport between the ranks of one SPMD job.
///
/// Contract:
/// * [`Conduit::send`] delivers `frame` to `dst` reliably, exactly once,
///   in FIFO order per directed link. It may block on backpressure.
/// * [`Conduit::try_recv`] is non-blocking and may be called from any
///   thread of the process; events for one `src` come out in send order.
/// * [`Conduit::flush`] is the link-quiescence probe: it returns once
///   every frame previously handed to `send(dst, ..)` has left this
///   process (on the wire or in the shared ring).
/// * [`Conduit::shutdown`] tears the transport down; idempotent.
pub trait Conduit: Send + Sync {
    /// Total ranks in the job.
    fn ranks(&self) -> usize;
    /// The rank this process hosts.
    fn my_rank(&self) -> Rank;
    /// Backend name for diagnostics ("loopback" | "shm" | "tcp" | "uds").
    fn name(&self) -> &'static str;
    /// Send one frame to `dst` (FIFO per link, reliable, exactly once).
    fn send(&self, dst: Rank, frame: &[u8]);
    /// Poll for the next inbound event.
    fn try_recv(&self) -> Option<ConduitEvent>;
    /// Block until everything sent to `dst` has left this process.
    fn flush(&self, dst: Rank);
    /// Tear down the transport (flushes outbound links first).
    fn shutdown(&self);
}

/// Which conduit a job uses — parsed from `RUPCXX_CONDUIT`.
///
/// Syntax: `loopback` | `shm:PATH` | `tcp:HOST:BASE_PORT` | `uds:DIR`.
/// TCP rank *r* listens on `BASE_PORT + r` at `HOST`; UDS rank *r*
/// listens on `DIR/rupcxx-r.sock`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConduitSel {
    /// All ranks in one process (the default fabric; no wire frames).
    Loopback,
    /// Shared-memory segment file at this path.
    Shm(String),
    /// TCP mesh: (host, base port).
    Tcp(String, u16),
    /// Unix-domain-socket mesh rooted at this directory.
    Uds(String),
}

/// The `RUPCXX_CONDUIT` syntax string (error messages, docs).
pub const CONDUIT_SYNTAX: &str = "loopback|shm:PATH|tcp:HOST:BASE_PORT|uds:DIR";

impl ConduitSel {
    /// Parse a `RUPCXX_CONDUIT` value. `Ok(None)` means explicitly off
    /// (empty or `loopback` maps to the in-process fabric... loopback is
    /// returned as a value so launchers can distinguish "unset" from
    /// "explicitly loopback").
    pub fn parse(raw: &str) -> Result<Option<ConduitSel>, String> {
        if raw.is_empty() {
            return Ok(None);
        }
        if raw == "loopback" {
            return Ok(Some(ConduitSel::Loopback));
        }
        if let Some(path) = raw.strip_prefix("shm:") {
            if path.is_empty() {
                return Err("shm conduit needs a segment file path".into());
            }
            return Ok(Some(ConduitSel::Shm(path.to_string())));
        }
        if let Some(rest) = raw.strip_prefix("tcp:") {
            let (host, port) = rest
                .rsplit_once(':')
                .ok_or_else(|| "tcp conduit needs HOST:BASE_PORT".to_string())?;
            if host.is_empty() {
                return Err("tcp conduit needs a host".into());
            }
            let port: u16 = port
                .parse()
                .map_err(|_| format!("bad base port {port:?}"))?;
            return Ok(Some(ConduitSel::Tcp(host.to_string(), port)));
        }
        if let Some(dir) = raw.strip_prefix("uds:") {
            if dir.is_empty() {
                return Err("uds conduit needs a socket directory".into());
            }
            return Ok(Some(ConduitSel::Uds(dir.to_string())));
        }
        Err(format!("unknown conduit {raw:?}"))
    }

    /// Read `RUPCXX_CONDUIT` (aborts on a malformed value).
    pub fn from_env() -> Option<ConduitSel> {
        rupcxx_util::env::parse_env("RUPCXX_CONDUIT", CONDUIT_SYNTAX, ConduitSel::parse)
    }

    /// Backend name ("loopback" | "shm" | "tcp" | "uds").
    pub fn kind(&self) -> &'static str {
        match self {
            ConduitSel::Loopback => "loopback",
            ConduitSel::Shm(_) => "shm",
            ConduitSel::Tcp(..) => "tcp",
            ConduitSel::Uds(_) => "uds",
        }
    }
}

impl std::fmt::Display for ConduitSel {
    /// Round-trips through [`ConduitSel::parse`] — launchers re-export
    /// the selection to child processes via `RUPCXX_CONDUIT`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConduitSel::Loopback => write!(f, "loopback"),
            ConduitSel::Shm(path) => write!(f, "shm:{path}"),
            ConduitSel::Tcp(host, port) => write!(f, "tcp:{host}:{port}"),
            ConduitSel::Uds(dir) => write!(f, "uds:{dir}"),
        }
    }
}

/// Multi-process fabric parameters: this process hosts `my_rank` and
/// reaches the other ranks through `conduit`.
#[derive(Clone, Debug)]
pub struct RemoteConfig {
    /// The single rank this OS process hosts.
    pub my_rank: Rank,
    /// The transport to the other processes.
    pub conduit: ConduitSel,
}

/// Build the selected conduit for `my_rank` of `ranks`, blocking until
/// the mesh is up (all peers attached / connected).
///
/// # Panics
/// Panics for [`ConduitSel::Loopback`]: the loopback "conduit" is the
/// in-process fabric itself (`FabricConfig::remote = None`), not a
/// boxed transport.
pub fn build(sel: &ConduitSel, my_rank: Rank, ranks: usize) -> Box<dyn Conduit> {
    match sel {
        ConduitSel::Loopback => {
            panic!("loopback is the in-process fabric, not a remote conduit")
        }
        ConduitSel::Shm(path) => Box::new(ShmConduit::attach(path, my_rank, ranks)),
        ConduitSel::Tcp(host, base) => Box::new(SocketConduit::tcp(host, *base, my_rank, ranks)),
        ConduitSel::Uds(dir) => Box::new(SocketConduit::uds(dir, my_rank, ranks)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_parses_and_displays() {
        assert_eq!(ConduitSel::parse("").unwrap(), None);
        assert_eq!(
            ConduitSel::parse("loopback").unwrap(),
            Some(ConduitSel::Loopback)
        );
        assert_eq!(
            ConduitSel::parse("shm:/tmp/seg").unwrap(),
            Some(ConduitSel::Shm("/tmp/seg".into()))
        );
        assert_eq!(
            ConduitSel::parse("tcp:127.0.0.1:9200").unwrap(),
            Some(ConduitSel::Tcp("127.0.0.1".into(), 9200))
        );
        assert_eq!(
            ConduitSel::parse("uds:/tmp/socks").unwrap(),
            Some(ConduitSel::Uds("/tmp/socks".into()))
        );
        for s in ["shm:/a/b", "tcp:h:1", "uds:/d", "loopback"] {
            let sel = ConduitSel::parse(s).unwrap().unwrap();
            assert_eq!(
                ConduitSel::parse(&sel.to_string()).unwrap().unwrap(),
                sel,
                "display round-trip"
            );
        }
    }

    #[test]
    fn selector_rejects_malformed() {
        assert!(ConduitSel::parse("bogus").is_err());
        assert!(ConduitSel::parse("shm:").is_err());
        assert!(ConduitSel::parse("tcp:hostonly").is_err());
        assert!(ConduitSel::parse("tcp::9").is_err());
        assert!(ConduitSel::parse("tcp:h:notaport").is_err());
        assert!(ConduitSel::parse("uds:").is_err());
    }
}
