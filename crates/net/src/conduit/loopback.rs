//! Conduit #0: in-process loopback.
//!
//! All "processes" share one address space; a link is a lock-free queue.
//! The default fabric never constructs this — in-process jobs deliver
//! `AmMessage`s directly, with no wire encoding — but the loopback
//! conduit gives conformance tests and benches a baseline implementation
//! of the exact trait contract the shm and socket backends must match.

use super::{Conduit, ConduitEvent};
use crate::Rank;
use rupcxx_util::sync::SegQueue;
use std::sync::Arc;

struct Mesh {
    /// One inbound event queue per rank.
    inbound: Vec<SegQueue<ConduitEvent>>,
}

/// One rank's attach point to an in-process loopback mesh.
pub struct LoopbackConduit {
    mesh: Arc<Mesh>,
    me: Rank,
}

impl LoopbackConduit {
    /// Build a fully-connected `n`-rank mesh; element `r` is rank `r`'s
    /// conduit.
    pub fn mesh(n: usize) -> Vec<LoopbackConduit> {
        let mesh = Arc::new(Mesh {
            inbound: (0..n).map(|_| SegQueue::new()).collect(),
        });
        (0..n)
            .map(|me| LoopbackConduit {
                mesh: Arc::clone(&mesh),
                me,
            })
            .collect()
    }
}

impl Conduit for LoopbackConduit {
    fn ranks(&self) -> usize {
        self.mesh.inbound.len()
    }

    fn my_rank(&self) -> Rank {
        self.me
    }

    fn name(&self) -> &'static str {
        "loopback"
    }

    fn send(&self, dst: Rank, frame: &[u8]) {
        self.mesh.inbound[dst].push(ConduitEvent::Frame(self.me, frame.to_vec()));
    }

    fn try_recv(&self) -> Option<ConduitEvent> {
        self.mesh.inbound[self.me].pop()
    }

    fn flush(&self, _dst: Rank) {
        // A send lands in the destination queue before `send` returns;
        // every frame has already "left this process".
    }

    fn shutdown(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_arrive_in_order_exactly_once() {
        let mesh = LoopbackConduit::mesh(3);
        for i in 0..10u8 {
            mesh[0].send(2, &[i]);
            mesh[1].send(2, &[100 + i]);
        }
        let mut from0 = Vec::new();
        let mut from1 = Vec::new();
        while let Some(ev) = mesh[2].try_recv() {
            match ev {
                ConduitEvent::Frame(0, f) => from0.push(f[0]),
                ConduitEvent::Frame(1, f) => from1.push(f[0]),
                other => panic!("unexpected event {other:?}"),
            }
        }
        assert_eq!(from0, (0..10).collect::<Vec<u8>>());
        assert_eq!(from1, (100..110).collect::<Vec<u8>>());
        assert!(mesh[2].try_recv().is_none(), "exactly once");
        assert!(mesh[0].try_recv().is_none(), "no self-delivery");
    }
}
