//! Socket conduit: TCP or Unix-domain stream sockets.
//!
//! Rank *r* listens (TCP: `base_port + r`; UDS: `DIR/rupcxx-r.sock`) and
//! dials one outbound connection per peer, so each directed link is its
//! own stream — per-link FIFO comes from the stream, exactly-once from
//! never resending. Frames are `u32`-length-prefixed byte blobs. A hello
//! word (magic + rank) identifies the dialing rank on accept.
//!
//! Send path: `send` copies the frame into a pooled buffer and hands it
//! to the link's writer thread; buffers cycle through a free pool so the
//! steady state allocates nothing. A failed write surfaces as a
//! [`ConduitEvent::Closed`] for that peer — this is the genuine failure
//! domain the chaos suite kills: a dead process resets its streams and
//! the fabric classifies the closure as `PeerUnreachable`.

use super::{Conduit, ConduitEvent};
use crate::Rank;
use rupcxx_util::sync::SegQueue;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

const HELLO_MAGIC: u32 = 0x5255_5043; // "RUPC"
const CONNECT_TIMEOUT: Duration = Duration::from_secs(30);
/// Pooled send buffers above this size are dropped instead of recycled.
const POOL_BUF_MAX: usize = 1 << 20;

enum Listener {
    Tcp(TcpListener),
    Uds(UnixListener),
}

enum Conn {
    Tcp(TcpStream),
    Uds(UnixStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Uds(s) => s.flush(),
        }
    }
}

/// Outbound queue feeding one link's writer thread.
struct OutState {
    queue: VecDeque<Vec<u8>>,
    /// Recycled buffers (length-prefix + frame layout).
    pool: Vec<Vec<u8>>,
    /// The buffer currently being written, if any.
    in_flight: bool,
    closed: bool,
}

struct OutQueue {
    state: Mutex<OutState>,
    cv: Condvar,
}

impl OutQueue {
    fn new() -> OutQueue {
        OutQueue {
            state: Mutex::new(OutState {
                queue: VecDeque::new(),
                pool: Vec::new(),
                in_flight: false,
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Enqueue a length-prefixed copy of `frame` in a pooled buffer.
    fn push(&self, frame: &[u8]) {
        let mut st = self.state.lock().unwrap();
        if st.closed {
            // The peer is gone and a Closed event is already queued;
            // later sends are black-holed, mirroring a dead NIC.
            return;
        }
        let mut buf = st.pool.pop().unwrap_or_default();
        buf.clear();
        buf.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        buf.extend_from_slice(frame);
        st.queue.push_back(buf);
        drop(st);
        self.cv.notify_all();
    }

    /// Block until the writer drained everything enqueued so far (or the
    /// link died).
    fn wait_empty(&self) {
        let mut st = self.state.lock().unwrap();
        while !st.closed && (st.in_flight || !st.queue.is_empty()) {
            st = self.cv.wait(st).unwrap();
        }
    }

    fn close(&self) {
        let mut st = self.state.lock().unwrap();
        st.closed = true;
        st.queue.clear();
        drop(st);
        self.cv.notify_all();
    }
}

struct LinkOut {
    q: Arc<OutQueue>,
    writer: Mutex<Option<std::thread::JoinHandle<()>>>,
}

/// Writer thread: pop buffers, `write_all`, recycle into the pool.
fn writer_loop(q: &OutQueue, mut conn: Conn, dst: Rank, inbound: &SegQueue<ConduitEvent>) {
    loop {
        let buf = {
            let mut st = q.state.lock().unwrap();
            loop {
                if let Some(buf) = st.queue.pop_front() {
                    st.in_flight = true;
                    break buf;
                }
                if st.closed {
                    return;
                }
                st = q.cv.wait(st).unwrap();
            }
        };
        let result = conn.write_all(&buf);
        let mut st = q.state.lock().unwrap();
        st.in_flight = false;
        if result.is_err() {
            st.closed = true;
            st.queue.clear();
            drop(st);
            q.cv.notify_all();
            inbound.push(ConduitEvent::Closed(dst));
            return;
        }
        if buf.capacity() <= POOL_BUF_MAX {
            st.pool.push(buf);
        }
        drop(st);
        q.cv.notify_all();
    }
}

/// Reader thread: length-prefixed frames from one accepted peer.
fn reader_loop(mut conn: Conn, src: Rank, inbound: &SegQueue<ConduitEvent>) {
    loop {
        let mut len_bytes = [0u8; 4];
        if conn.read_exact(&mut len_bytes).is_err() {
            inbound.push(ConduitEvent::Closed(src));
            return;
        }
        let len = u32::from_le_bytes(len_bytes) as usize;
        let mut frame = vec![0u8; len];
        if conn.read_exact(&mut frame).is_err() {
            inbound.push(ConduitEvent::Closed(src));
            return;
        }
        inbound.push(ConduitEvent::Frame(src, frame));
    }
}

/// TCP / Unix-domain-socket conduit for one rank of an SPMD job.
pub struct SocketConduit {
    me: Rank,
    n: usize,
    kind: &'static str,
    links: Vec<Option<LinkOut>>,
    inbound: Arc<SegQueue<ConduitEvent>>,
    accept_stop: Arc<AtomicBool>,
    accept_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    down: AtomicBool,
}

impl SocketConduit {
    /// TCP mesh: rank `r` listens on `base_port + r` at `host`.
    pub fn tcp(host: &str, base_port: u16, me: Rank, n: usize) -> SocketConduit {
        let addr = |r: Rank| format!("{host}:{}", base_port + r as u16);
        let listener = Listener::Tcp(
            TcpListener::bind(addr(me))
                .unwrap_or_else(|e| panic!("tcp conduit: bind {}: {e}", addr(me))),
        );
        let dial = move |r: Rank| TcpStream::connect(addr(r)).map(Conn::Tcp);
        SocketConduit::mesh("tcp", listener, &dial, me, n)
    }

    /// UDS mesh: rank `r` listens on `dir/rupcxx-r.sock`. The directory
    /// is created if missing (like the shm backend's segment file), so
    /// `RUPCXX_CONDUIT=uds:/tmp/job` works without prior setup.
    pub fn uds(dir: &str, me: Rank, n: usize) -> SocketConduit {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| panic!("uds conduit: create dir {dir}: {e}"));
        let sock = |r: Rank| format!("{dir}/rupcxx-{r}.sock");
        let my_sock = sock(me);
        let _ = std::fs::remove_file(&my_sock);
        let listener = Listener::Uds(
            UnixListener::bind(&my_sock)
                .unwrap_or_else(|e| panic!("uds conduit: bind {my_sock}: {e}")),
        );
        let dial = move |r: Rank| UnixStream::connect(sock(r)).map(Conn::Uds);
        SocketConduit::mesh("uds", listener, &dial, me, n)
    }

    fn mesh(
        kind: &'static str,
        listener: Listener,
        dial: &dyn Fn(Rank) -> std::io::Result<Conn>,
        me: Rank,
        n: usize,
    ) -> SocketConduit {
        assert!(me < n, "rank {me} out of range for {n} ranks");
        let inbound = Arc::new(SegQueue::new());
        let accept_stop = Arc::new(AtomicBool::new(false));

        // Accept inbound links in the background while we dial out (the
        // mesh comes up in arbitrary order across processes).
        let accept_thread = {
            let inbound = Arc::clone(&inbound);
            let stop = Arc::clone(&accept_stop);
            match &listener {
                Listener::Tcp(l) => l.set_nonblocking(true).expect("nonblocking listener"),
                Listener::Uds(l) => l.set_nonblocking(true).expect("nonblocking listener"),
            }
            std::thread::Builder::new()
                .name(format!("rupcxx-{kind}-accept-{me}"))
                .spawn(move || accept_loop(listener, n, &inbound, &stop))
                .expect("spawn accept thread")
        };

        // Dial every peer; retry while their listener comes up.
        let mut links: Vec<Option<LinkOut>> = Vec::with_capacity(n);
        for dst in 0..n {
            if dst == me {
                links.push(None);
                continue;
            }
            let deadline = Instant::now() + CONNECT_TIMEOUT;
            let mut conn = loop {
                match dial(dst) {
                    Ok(c) => break c,
                    Err(e) => {
                        assert!(
                            Instant::now() < deadline,
                            "{kind} conduit: rank {me} cannot reach rank {dst}: {e}"
                        );
                        std::thread::sleep(Duration::from_millis(2));
                    }
                }
            };
            if let Conn::Tcp(s) = &conn {
                let _ = s.set_nodelay(true);
            }
            let mut hello = [0u8; 8];
            hello[..4].copy_from_slice(&HELLO_MAGIC.to_le_bytes());
            hello[4..].copy_from_slice(&(me as u32).to_le_bytes());
            conn.write_all(&hello)
                .unwrap_or_else(|e| panic!("{kind} conduit: hello to rank {dst}: {e}"));

            let q = Arc::new(OutQueue::new());
            let writer = {
                let q = Arc::clone(&q);
                let inbound = Arc::clone(&inbound);
                std::thread::Builder::new()
                    .name(format!("rupcxx-{kind}-tx-{me}-{dst}"))
                    .spawn(move || writer_loop(&q, conn, dst, &inbound))
                    .expect("spawn writer thread")
            };
            links.push(Some(LinkOut {
                q,
                writer: Mutex::new(Some(writer)),
            }));
        }

        SocketConduit {
            me,
            n,
            kind,
            links,
            inbound,
            accept_stop,
            accept_thread: Mutex::new(Some(accept_thread)),
            down: AtomicBool::new(false),
        }
    }
}

fn accept_loop(
    listener: Listener,
    n: usize,
    inbound: &Arc<SegQueue<ConduitEvent>>,
    stop: &AtomicBool,
) {
    let mut accepted = 0usize;
    while !stop.load(Ordering::Acquire) && accepted < n {
        let conn = match &listener {
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    let _ = s.set_nodelay(true);
                    Some(Conn::Tcp(s))
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => None,
                Err(_) => None,
            },
            Listener::Uds(l) => match l.accept() {
                Ok((s, _)) => Some(Conn::Uds(s)),
                Err(e) if e.kind() == ErrorKind::WouldBlock => None,
                Err(_) => None,
            },
        };
        let Some(mut conn) = conn else {
            std::thread::sleep(Duration::from_millis(1));
            continue;
        };
        accepted += 1;
        // Blocking from here on: the reader thread owns this stream.
        match &conn {
            Conn::Tcp(s) => s.set_nonblocking(false).expect("blocking stream"),
            Conn::Uds(s) => s.set_nonblocking(false).expect("blocking stream"),
        }
        let mut hello = [0u8; 8];
        if conn.read_exact(&mut hello).is_err() {
            continue;
        }
        let magic = u32::from_le_bytes(hello[..4].try_into().unwrap());
        let src = u32::from_le_bytes(hello[4..].try_into().unwrap()) as Rank;
        if magic != HELLO_MAGIC || src >= n {
            continue; // Not one of ours; drop it.
        }
        let inbound = Arc::clone(inbound);
        let _ = std::thread::Builder::new()
            .name(format!("rupcxx-rx-{src}"))
            .spawn(move || reader_loop(conn, src, &inbound));
    }
}

impl Conduit for SocketConduit {
    fn ranks(&self) -> usize {
        self.n
    }

    fn my_rank(&self) -> Rank {
        self.me
    }

    fn name(&self) -> &'static str {
        self.kind
    }

    fn send(&self, dst: Rank, frame: &[u8]) {
        let link = self.links[dst]
            .as_ref()
            .unwrap_or_else(|| panic!("{} conduit: self-send", self.kind));
        link.q.push(frame);
    }

    fn try_recv(&self) -> Option<ConduitEvent> {
        self.inbound.pop()
    }

    fn flush(&self, dst: Rank) {
        if let Some(link) = self.links[dst].as_ref() {
            link.q.wait_empty();
        }
    }

    fn shutdown(&self) {
        if self.down.swap(true, Ordering::AcqRel) {
            return;
        }
        for link in self.links.iter().flatten() {
            link.q.wait_empty();
            link.q.close();
            if let Some(w) = link.writer.lock().unwrap().take() {
                let _ = w.join();
            }
        }
        self.accept_stop.store(true, Ordering::Release);
        if let Some(a) = self.accept_thread.lock().unwrap().take() {
            let _ = a.join();
        }
        // Reader threads exit on peer EOF as the mesh tears down.
    }
}

impl Drop for SocketConduit {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uds_dir(tag: &str) -> String {
        let dir = format!(
            "{}/rupcxx-uds-test-{}-{tag}",
            std::env::temp_dir().display(),
            std::process::id()
        );
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn mesh_uds(dir: &str, n: usize) -> Vec<SocketConduit> {
        let handles: Vec<_> = (0..n)
            .map(|r| {
                let dir = dir.to_string();
                std::thread::spawn(move || SocketConduit::uds(&dir, r, n))
            })
            .collect();
        let mut v: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        v.sort_by_key(|c| c.my_rank());
        v
    }

    #[test]
    fn uds_mesh_delivers_in_order() {
        let dir = uds_dir("order");
        let mesh = mesh_uds(&dir, 3);
        for i in 0..50u32 {
            mesh[0].send(2, &i.to_le_bytes());
            mesh[1].send(2, &(1000 + i).to_le_bytes());
        }
        mesh[0].flush(2);
        mesh[1].flush(2);
        let mut from0 = Vec::new();
        let mut from1 = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(10);
        while from0.len() + from1.len() < 100 {
            match mesh[2].try_recv() {
                Some(ConduitEvent::Frame(0, f)) => {
                    from0.push(u32::from_le_bytes(f.try_into().unwrap()))
                }
                Some(ConduitEvent::Frame(1, f)) => {
                    from1.push(u32::from_le_bytes(f.try_into().unwrap()))
                }
                Some(other) => panic!("unexpected {other:?}"),
                None => {
                    assert!(Instant::now() < deadline, "frames lost");
                    std::thread::yield_now();
                }
            }
        }
        assert_eq!(from0, (0..50).collect::<Vec<u32>>());
        assert_eq!(from1, (1000..1050).collect::<Vec<u32>>());
        for c in &mesh {
            c.shutdown();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn peer_shutdown_surfaces_closed_event() {
        let dir = uds_dir("closed");
        let mesh = mesh_uds(&dir, 2);
        mesh[1].send(0, b"bye");
        mesh[1].flush(0);
        // Tearing rank 1 down closes its dialed stream into rank 0; rank
        // 0's reader sees EOF and reports the link down.
        mesh[1].shutdown();
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut saw_frame = false;
        loop {
            match mesh[0].try_recv() {
                Some(ConduitEvent::Frame(1, f)) => {
                    assert_eq!(&f, b"bye");
                    saw_frame = true;
                }
                Some(ConduitEvent::Closed(1)) => break,
                Some(other) => panic!("unexpected {other:?}"),
                None => {
                    assert!(Instant::now() < deadline, "no Closed event");
                    std::thread::yield_now();
                }
            }
        }
        assert!(saw_frame, "frame must precede Closed");
        mesh[0].shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
