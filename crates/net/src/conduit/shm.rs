//! Shared-memory conduit for co-located OS processes.
//!
//! All ranks mmap one segment file. The file starts with a bootstrap
//! header (magic, rank count, ring size, per-rank ready flags) followed
//! by an `n × n` matrix of SPSC byte rings, one per directed link. A
//! frame on the ring is a `u32` length prefix plus payload, wrapping
//! around the ring end byte-wise. Each ring has exactly one producer
//! process (serialized in-process by a per-link mutex) and one consumer
//! thread, so `head`/`tail` are a classic single-producer single-consumer
//! pair: monotonic byte counters with release/acquire pairing and no CAS
//! on the data path.
//!
//! Bootstrap: the first process to `create_new` the file wins, sizes it,
//! writes the geometry, and publishes the magic word *last* (release).
//! Everyone else polls for the magic, then all ranks set their ready
//! flag and wait for the full roster — rank count and ids are exchanged
//! purely through the segment header.
//!
//! The crate links no FFI bindings, so `mmap`/`munmap` are invoked as
//! raw Linux syscalls (x86-64). A dead peer cannot be *detected* here
//! (nobody closes a ring); process-death classification is the socket
//! conduits' job — see the conduit matrix in the README.

use super::{Conduit, ConduitEvent};
use crate::Rank;
use rupcxx_util::sync::{Mutex, SegQueue};
use std::fs::OpenOptions;
use std::io::ErrorKind;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const MAGIC: u64 = 0x7275_7063_7878_3031; // "rupcxx01"
const HEADER_BYTES: usize = 4096;
const RING_HEADER_BYTES: usize = 64;
/// Per-link ring capacity. A frame (4-byte length prefix + payload) must
/// fit in one ring; the fabric's aggregation flush thresholds sit far
/// below this.
pub const RING_BYTES: usize = 1 << 20;

const BOOTSTRAP_TIMEOUT: Duration = Duration::from_secs(60);
const DRAIN_TIMEOUT: Duration = Duration::from_secs(30);

// --- raw mmap/munmap (no FFI bindings in the workspace) ----------------

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
unsafe fn sys_mmap(len: usize, fd: i32) -> *mut u8 {
    const SYS_MMAP: isize = 9;
    const PROT_READ_WRITE: usize = 0x3;
    const MAP_SHARED: usize = 0x1;
    let ret: isize;
    std::arch::asm!(
        "syscall",
        inlateout("rax") SYS_MMAP => ret,
        in("rdi") 0usize,
        in("rsi") len,
        in("rdx") PROT_READ_WRITE,
        in("r10") MAP_SHARED,
        in("r8") fd as isize,
        in("r9") 0usize,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack)
    );
    assert!(
        !(-4095..0).contains(&ret),
        "shm conduit: mmap failed (errno {})",
        -ret
    );
    ret as *mut u8
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
unsafe fn sys_munmap(ptr: *mut u8, len: usize) {
    const SYS_MUNMAP: isize = 11;
    let ret: isize;
    std::arch::asm!(
        "syscall",
        inlateout("rax") SYS_MUNMAP => ret,
        in("rdi") ptr,
        in("rsi") len,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack)
    );
    debug_assert_eq!(ret, 0, "shm conduit: munmap failed (errno {})", -ret);
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
unsafe fn sys_mmap(_len: usize, _fd: i32) -> *mut u8 {
    panic!("shm conduit requires x86-64 Linux (raw mmap syscall)")
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
unsafe fn sys_munmap(_ptr: *mut u8, _len: usize) {}

/// An mmap'd region; unmapped on drop.
struct Map {
    base: *mut u8,
    len: usize,
}

// The mapping is plain shared memory; all mutation goes through atomics
// or producer/consumer-exclusive ranges.
unsafe impl Send for Map {}
unsafe impl Sync for Map {}

impl Drop for Map {
    fn drop(&mut self) {
        unsafe { sys_munmap(self.base, self.len) };
    }
}

impl Map {
    /// The `AtomicU64` at byte offset `off`.
    fn word(&self, off: usize) -> &AtomicU64 {
        assert!(off + 8 <= self.len && off.is_multiple_of(8));
        unsafe { &*(self.base.add(off) as *const AtomicU64) }
    }
}

// --- ring geometry -----------------------------------------------------

fn file_len(n: usize, ring_bytes: usize) -> usize {
    HEADER_BYTES + n * n * (RING_HEADER_BYTES + ring_bytes)
}

fn ring_off(n: usize, src: Rank, dst: Rank, ring_bytes: usize) -> usize {
    HEADER_BYTES + (src * n + dst) * (RING_HEADER_BYTES + ring_bytes)
}

fn ready_off(rank: Rank) -> usize {
    24 + rank * 8
}

/// One directed SPSC byte ring inside the mapping.
///
/// `head`/`tail` are monotonic byte counters (they never wrap); the byte
/// at logical position `p` lives at `data[p % cap]`.
struct Ring<'m> {
    map: &'m Map,
    /// Byte offset of the ring header inside the mapping.
    off: usize,
    cap: usize,
}

impl<'m> Ring<'m> {
    fn new(map: &'m Map, n: usize, src: Rank, dst: Rank, cap: usize) -> Ring<'m> {
        Ring {
            map,
            off: ring_off(n, src, dst, cap),
            cap,
        }
    }

    fn head(&self) -> &AtomicU64 {
        self.map.word(self.off)
    }

    fn tail(&self) -> &AtomicU64 {
        self.map.word(self.off + 8)
    }

    fn copy_in(&self, pos: u64, bytes: &[u8]) {
        let idx = (pos % self.cap as u64) as usize;
        let first = bytes.len().min(self.cap - idx);
        let data = unsafe { self.map.base.add(self.off + RING_HEADER_BYTES) };
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), data.add(idx), first);
            std::ptr::copy_nonoverlapping(bytes.as_ptr().add(first), data, bytes.len() - first);
        }
    }

    fn copy_out(&self, pos: u64, out: &mut [u8]) {
        let idx = (pos % self.cap as u64) as usize;
        let first = out.len().min(self.cap - idx);
        let data = unsafe { self.map.base.add(self.off + RING_HEADER_BYTES) };
        unsafe {
            std::ptr::copy_nonoverlapping(data.add(idx), out.as_mut_ptr(), first);
            std::ptr::copy_nonoverlapping(data, out.as_mut_ptr().add(first), out.len() - first);
        }
    }

    /// Producer side (caller must serialize producers of one ring).
    fn push(&self, frame: &[u8]) {
        let need = 4 + frame.len() as u64;
        assert!(
            need <= self.cap as u64,
            "shm conduit: frame of {} bytes exceeds ring capacity {}",
            frame.len(),
            self.cap
        );
        let head = self.head().load(Ordering::Relaxed);
        let deadline = Instant::now() + DRAIN_TIMEOUT;
        loop {
            let tail = self.tail().load(Ordering::Acquire);
            if self.cap as u64 - (head - tail) >= need {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "shm conduit: peer not draining (ring full for {DRAIN_TIMEOUT:?})"
            );
            std::thread::yield_now();
        }
        self.copy_in(head, &(frame.len() as u32).to_le_bytes());
        self.copy_in(head + 4, frame);
        self.head().store(head + need, Ordering::Release);
    }

    /// Consumer side (single drain thread per ring).
    fn pop(&self) -> Option<Vec<u8>> {
        let tail = self.tail().load(Ordering::Relaxed);
        let head = self.head().load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let mut len_bytes = [0u8; 4];
        self.copy_out(tail, &mut len_bytes);
        let len = u32::from_le_bytes(len_bytes) as usize;
        debug_assert!(head - tail >= 4 + len as u64, "shm ring: torn frame");
        let mut frame = vec![0u8; len];
        self.copy_out(tail + 4, &mut frame);
        self.tail().store(tail + 4 + len as u64, Ordering::Release);
        Some(frame)
    }
}

// --- the conduit -------------------------------------------------------

/// Shared-memory conduit: one attach point per co-located OS process.
pub struct ShmConduit {
    me: Rank,
    n: usize,
    ring_bytes: usize,
    map: Arc<Map>,
    /// Serializes in-process senders per outgoing link (the ring itself
    /// is strictly single-producer).
    out_locks: Vec<Mutex<()>>,
    inbound: Arc<SegQueue<ConduitEvent>>,
    stop: Arc<AtomicBool>,
    rx: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl ShmConduit {
    /// Attach rank `me` of `n` to the segment file at `path`, creating
    /// it if this process gets there first. Blocks until all `n` ranks
    /// have attached (bootstrap roster in the header).
    pub fn attach(path: &str, me: Rank, n: usize) -> ShmConduit {
        assert!(me < n, "rank {me} out of range for {n} ranks");
        let total = file_len(n, RING_BYTES);
        let deadline = Instant::now() + BOOTSTRAP_TIMEOUT;

        let (file, created) = loop {
            match OpenOptions::new()
                .read(true)
                .write(true)
                .create_new(true)
                .open(path)
            {
                Ok(f) => break (f, true),
                Err(e) if e.kind() == ErrorKind::AlreadyExists => {
                    match OpenOptions::new().read(true).write(true).open(path) {
                        Ok(f) => break (f, false),
                        // The creator may remove a stale file and
                        // recreate it; retry the whole dance.
                        Err(e) if e.kind() == ErrorKind::NotFound => {}
                        Err(e) => panic!("shm conduit: cannot open {path}: {e}"),
                    }
                }
                Err(e) => panic!("shm conduit: cannot create {path}: {e}"),
            }
            assert!(
                Instant::now() < deadline,
                "shm conduit: bootstrap timed out opening {path}"
            );
            std::thread::sleep(Duration::from_millis(1));
        };

        if created {
            file.set_len(total as u64)
                .unwrap_or_else(|e| panic!("shm conduit: cannot size {path}: {e}"));
        } else {
            // Wait for the creator to finish sizing before mapping.
            loop {
                let len = file
                    .metadata()
                    .unwrap_or_else(|e| panic!("shm conduit: stat {path}: {e}"))
                    .len();
                if len == total as u64 {
                    break;
                }
                assert!(
                    len == 0,
                    "shm conduit: {path} has size {len}, expected {total} — \
                     stale segment from a different job? remove it first"
                );
                assert!(
                    Instant::now() < deadline,
                    "shm conduit: bootstrap timed out waiting for {path} to be sized"
                );
                std::thread::sleep(Duration::from_millis(1));
            }
        }

        use std::os::fd::AsRawFd;
        let map = Map {
            base: unsafe { sys_mmap(total, file.as_raw_fd()) },
            len: total,
        };
        drop(file); // The mapping outlives the descriptor.

        if created {
            map.word(8).store(n as u64, Ordering::Relaxed);
            map.word(16).store(RING_BYTES as u64, Ordering::Relaxed);
            // Publish geometry before the magic: attachers acquire the
            // magic, so they see the fields above.
            map.word(0).store(MAGIC, Ordering::Release);
        } else {
            while map.word(0).load(Ordering::Acquire) != MAGIC {
                assert!(
                    Instant::now() < deadline,
                    "shm conduit: bootstrap timed out waiting for segment magic"
                );
                std::thread::yield_now();
            }
            let seg_ranks = map.word(8).load(Ordering::Relaxed) as usize;
            assert_eq!(
                seg_ranks, n,
                "shm conduit: segment {path} was created for {seg_ranks} ranks, not {n}"
            );
            assert_eq!(
                map.word(16).load(Ordering::Relaxed) as usize,
                RING_BYTES,
                "shm conduit: ring geometry mismatch in {path}"
            );
        }

        // Roster: announce ourselves, then wait for the full rank set.
        let prev = map.word(ready_off(me)).swap(1, Ordering::AcqRel);
        assert_eq!(prev, 0, "shm conduit: rank {me} attached twice to {path}");
        'roster: loop {
            for r in 0..n {
                if map.word(ready_off(r)).load(Ordering::Acquire) == 0 {
                    assert!(
                        Instant::now() < deadline,
                        "shm conduit: bootstrap timed out waiting for rank {r}"
                    );
                    std::thread::sleep(Duration::from_micros(100));
                    continue 'roster;
                }
            }
            break;
        }

        let map = Arc::new(map);
        let inbound = Arc::new(SegQueue::new());
        let stop = Arc::new(AtomicBool::new(false));
        let rx = {
            let map = Arc::clone(&map);
            let inbound = Arc::clone(&inbound);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(format!("rupcxx-shm-rx-{me}"))
                .spawn(move || drain_loop(&map, me, n, RING_BYTES, &inbound, &stop))
                .expect("spawn shm rx thread")
        };

        ShmConduit {
            me,
            n,
            ring_bytes: RING_BYTES,
            map,
            out_locks: (0..n).map(|_| Mutex::new(())).collect(),
            inbound,
            stop,
            rx: Mutex::new(Some(rx)),
        }
    }
}

/// Consumer thread: drain every inbound ring into the event queue.
fn drain_loop(
    map: &Map,
    me: Rank,
    n: usize,
    ring_bytes: usize,
    inbound: &SegQueue<ConduitEvent>,
    stop: &AtomicBool,
) {
    let rings: Vec<Ring<'_>> = (0..n)
        .map(|src| Ring::new(map, n, src, me, ring_bytes))
        .collect();
    let mut idle = 0u32;
    while !stop.load(Ordering::Acquire) {
        let mut moved = false;
        for (src, ring) in rings.iter().enumerate() {
            if src == me {
                continue;
            }
            while let Some(frame) = ring.pop() {
                inbound.push(ConduitEvent::Frame(src, frame));
                moved = true;
            }
        }
        if moved {
            idle = 0;
        } else {
            idle += 1;
            if idle < 64 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(50));
            }
        }
    }
}

impl Conduit for ShmConduit {
    fn ranks(&self) -> usize {
        self.n
    }

    fn my_rank(&self) -> Rank {
        self.me
    }

    fn name(&self) -> &'static str {
        "shm"
    }

    fn send(&self, dst: Rank, frame: &[u8]) {
        assert_ne!(dst, self.me, "shm conduit: self-send");
        let _guard = self.out_locks[dst].lock();
        Ring::new(&self.map, self.n, self.me, dst, self.ring_bytes).push(frame);
    }

    fn try_recv(&self) -> Option<ConduitEvent> {
        self.inbound.pop()
    }

    fn flush(&self, _dst: Rank) {
        // `send` returns only after the frame is in the shared ring —
        // already out of this process.
    }

    fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(rx) = self.rx.lock().take() {
            let _ = rx.join();
        }
    }
}

impl Drop for ShmConduit {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> String {
        format!(
            "{}/rupcxx-shm-test-{}-{tag}.seg",
            std::env::temp_dir().display(),
            std::process::id()
        )
    }

    /// Attach all ranks of an in-process mesh (attach blocks on the
    /// roster, so each attach runs on its own thread).
    fn mesh(path: &str, n: usize) -> Vec<ShmConduit> {
        let handles: Vec<_> = (0..n)
            .map(|r| {
                let path = path.to_string();
                std::thread::spawn(move || ShmConduit::attach(&path, r, n))
            })
            .collect();
        let mut v: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        v.sort_by_key(|c| c.my_rank());
        v
    }

    #[test]
    fn two_ranks_exchange_frames_in_order() {
        let path = tmp_path("pair");
        let _ = std::fs::remove_file(&path);
        let mesh = mesh(&path, 2);
        for i in 0..100u32 {
            mesh[0].send(1, &i.to_le_bytes());
        }
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(10);
        while got.len() < 100 {
            if let Some(ConduitEvent::Frame(src, f)) = mesh[1].try_recv() {
                assert_eq!(src, 0);
                got.push(u32::from_le_bytes(f.try_into().unwrap()));
            } else {
                assert!(Instant::now() < deadline, "frames lost");
                std::thread::yield_now();
            }
        }
        assert_eq!(got, (0..100).collect::<Vec<u32>>());
        for c in &mesh {
            c.shutdown();
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn ring_wraps_and_backpressures() {
        let path = tmp_path("wrap");
        let _ = std::fs::remove_file(&path);
        let mesh = mesh(&path, 2);
        // Push far more bytes than one ring holds; the consumer thread
        // drains concurrently, exercising wrap-around and backpressure.
        let frame = vec![0xABu8; 64 << 10];
        let total = 4 * RING_BYTES / frame.len();
        let sender = {
            let frame = frame.clone();
            let c0 = &mesh[0];
            std::thread::scope(|s| {
                s.spawn(|| {
                    for _ in 0..total {
                        c0.send(1, &frame);
                    }
                });
                let mut got = 0;
                let deadline = Instant::now() + Duration::from_secs(30);
                while got < total {
                    if let Some(ConduitEvent::Frame(_, f)) = mesh[1].try_recv() {
                        assert_eq!(f.len(), frame.len());
                        assert!(f.iter().all(|&b| b == 0xAB), "payload corrupted on wrap");
                        got += 1;
                    } else {
                        assert!(Instant::now() < deadline, "stalled at {got}/{total}");
                        std::thread::yield_now();
                    }
                }
                got
            })
        };
        assert_eq!(sender, total);
        for c in &mesh {
            c.shutdown();
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stale_segment_of_wrong_size_is_rejected() {
        let path = tmp_path("stale");
        std::fs::write(&path, b"not a segment").unwrap();
        let err = match std::panic::catch_unwind(|| drop(ShmConduit::attach(&path, 0, 2))) {
            Err(e) => e,
            Ok(()) => panic!("stale segment was accepted"),
        };
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("stale segment"), "got: {msg}");
        let _ = std::fs::remove_file(&path);
    }
}
