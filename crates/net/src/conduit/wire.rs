//! Wire format for conduit frames.
//!
//! Every cross-process interaction — AM delivery, one-sided RMA, the
//! FIN/ack teardown handshake — is one of the frames below, encoded
//! little-endian into a conduit byte frame. The format is deliberately
//! dumb: a tag byte, then fixed-width fields, then length-prefixed
//! payloads. Encoders write into a caller-supplied scratch `Vec` (the
//! fabric keeps one per link, so steady-state sends allocate nothing);
//! the decoder borrows from the received frame.
//!
//! AM frames carry the optional checker clock stamp and profiler span so
//! the happens-before checker and the causal profiler work unchanged
//! across process boundaries. RMA *request* frames carry the initiator's
//! stamp so the receiver can run the same `frame_access` race check that
//! `apply_frame` runs for aggregated frames in-process.

use rupcxx_check::Stamp;
use rupcxx_trace::ProfSpan;

const TAG_AM_HANDLER: u8 = 1;
const TAG_AM_BATCH: u8 = 2;
const TAG_PUT: u8 = 3;
const TAG_PUT_STRIDED: u8 = 4;
const TAG_GET_REQ: u8 = 5;
const TAG_GET_STRIDED_REQ: u8 = 6;
const TAG_RMW_REQ: u8 = 7;
const TAG_RESP_DATA: u8 = 8;
const TAG_RESP_WORD: u8 = 9;
const TAG_ACK: u8 = 10;
const TAG_FIN: u8 = 11;
const TAG_FIN_ACK: u8 = 12;

/// Read-modify-write opcodes carried by [`WireFrame::RmwReq`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RmwOp {
    /// `fetch_xor(a)` — returns the previous value.
    Xor,
    /// `fetch_add(a)` — returns the previous value.
    Add,
    /// `compare_exchange(a, b)` — returns (ok, previous value).
    Cas,
}

impl RmwOp {
    fn code(self) -> u8 {
        match self {
            RmwOp::Xor => 0,
            RmwOp::Add => 1,
            RmwOp::Cas => 2,
        }
    }

    fn from_code(c: u8) -> RmwOp {
        match c {
            0 => RmwOp::Xor,
            1 => RmwOp::Add,
            2 => RmwOp::Cas,
            _ => panic!("conduit wire: bad rmw opcode {c}"),
        }
    }
}

/// A decoded conduit frame; payload slices borrow from the raw frame.
#[derive(Debug)]
pub enum WireFrame<'a> {
    /// Registered-handler AM: id + argument bytes.
    AmHandler {
        /// Checker clock stamp, if the checker is on.
        clock: Option<Stamp>,
        /// Profiler span, if the profiler is on.
        prof: Option<ProfSpan>,
        /// Handler registry id.
        id: u16,
        /// Argument bytes.
        args: &'a [u8],
    },
    /// Aggregated batch AM: `count` frames in `aggregate` encoding.
    AmBatch {
        /// Checker clock stamp, if the checker is on.
        clock: Option<Stamp>,
        /// Profiler span, if the profiler is on.
        prof: Option<ProfSpan>,
        /// Number of aggregated frames.
        count: u32,
        /// The packed frames.
        frames: &'a [u8],
    },
    /// One-sided put into the receiver's segment; acked by token.
    Put {
        /// Initiator's clock stamp for the receiver-side race check.
        stamp: Option<Stamp>,
        /// Reply-matching token.
        token: u64,
        /// Destination segment offset.
        offset: u64,
        /// Bytes to store.
        data: &'a [u8],
    },
    /// Strided put: `nblocks` blocks of `block` bytes, `stride` apart.
    PutStrided {
        /// Initiator's clock stamp for the receiver-side race check.
        stamp: Option<Stamp>,
        /// Reply-matching token.
        token: u64,
        /// Destination offset of block 0.
        offset: u64,
        /// Byte distance between consecutive block starts.
        stride: u64,
        /// Bytes per block.
        block: u32,
        /// Number of blocks.
        nblocks: u32,
        /// Packed block data (`block * nblocks` bytes).
        data: &'a [u8],
    },
    /// One-sided get request; answered with [`WireFrame::RespData`].
    GetReq {
        /// Initiator's clock stamp for the receiver-side race check.
        stamp: Option<Stamp>,
        /// Reply-matching token.
        token: u64,
        /// Source segment offset.
        offset: u64,
        /// Bytes wanted.
        len: u32,
    },
    /// Strided get request; answered with [`WireFrame::RespData`].
    GetStridedReq {
        /// Initiator's clock stamp for the receiver-side race check.
        stamp: Option<Stamp>,
        /// Reply-matching token.
        token: u64,
        /// Source offset of block 0.
        offset: u64,
        /// Byte distance between consecutive block starts.
        stride: u64,
        /// Bytes per block.
        block: u32,
        /// Number of blocks.
        nblocks: u32,
    },
    /// Atomic read-modify-write request; answered with
    /// [`WireFrame::RespWord`].
    RmwReq {
        /// Initiator's clock stamp for the receiver-side race check.
        stamp: Option<Stamp>,
        /// Reply-matching token.
        token: u64,
        /// Opcode.
        op: RmwOp,
        /// Target segment offset (8-byte aligned).
        offset: u64,
        /// First operand (xor/add operand, cas expected value).
        a: u64,
        /// Second operand (cas new value).
        b: u64,
    },
    /// Data reply to a get request.
    RespData {
        /// Token of the request this answers.
        token: u64,
        /// The fetched bytes.
        data: &'a [u8],
    },
    /// Word reply to an RMW request.
    RespWord {
        /// Token of the request this answers.
        token: u64,
        /// CAS success flag (always true for xor/add).
        ok: bool,
        /// Previous value at the target word.
        val: u64,
    },
    /// Completion ack for a put.
    Ack {
        /// Token of the put this acknowledges.
        token: u64,
    },
    /// Link teardown: "I sent you exactly `frames` data frames; I will
    /// send no more." FIFO ordering makes the count checkable on arrival.
    Fin {
        /// Data frames (everything except FIN/FIN_ACK) sent on this link.
        frames: u64,
    },
    /// Acknowledges a FIN; after this the sender may drop the link.
    FinAck,
}

// --- primitive writers -------------------------------------------------

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_u32(buf, u32::try_from(b.len()).expect("frame payload > 4 GiB"));
    buf.extend_from_slice(b);
}

fn put_stamp(buf: &mut Vec<u8>, stamp: Option<&Stamp>) {
    match stamp {
        None => put_u16(buf, 0),
        Some(s) => {
            let words = &s.0;
            assert!(!words.is_empty(), "empty clock stamp on the wire");
            put_u16(
                buf,
                u16::try_from(words.len()).expect("stamp > 65535 ranks"),
            );
            for w in words.iter() {
                put_u64(buf, *w);
            }
        }
    }
}

fn put_prof(buf: &mut Vec<u8>, prof: Option<&ProfSpan>) {
    match prof {
        None => buf.push(0),
        Some(p) => {
            buf.push(1);
            put_u64(buf, p.id);
            put_u64(buf, p.inject_ns);
        }
    }
}

// --- encoders (into a reusable scratch buffer) -------------------------

/// Encode a handler AM. Clears `buf` first.
pub fn encode_am_handler(
    buf: &mut Vec<u8>,
    clock: Option<&Stamp>,
    prof: Option<&ProfSpan>,
    id: u16,
    args: &[u8],
) {
    buf.clear();
    buf.push(TAG_AM_HANDLER);
    put_stamp(buf, clock);
    put_prof(buf, prof);
    put_u16(buf, id);
    put_bytes(buf, args);
}

/// Encode a batch AM. Clears `buf` first.
pub fn encode_am_batch(
    buf: &mut Vec<u8>,
    clock: Option<&Stamp>,
    prof: Option<&ProfSpan>,
    count: u32,
    frames: &[u8],
) {
    buf.clear();
    buf.push(TAG_AM_BATCH);
    put_stamp(buf, clock);
    put_prof(buf, prof);
    put_u32(buf, count);
    put_bytes(buf, frames);
}

/// Encode a put request. Clears `buf` first.
pub fn encode_put(buf: &mut Vec<u8>, stamp: Option<&Stamp>, token: u64, offset: u64, data: &[u8]) {
    buf.clear();
    buf.push(TAG_PUT);
    put_stamp(buf, stamp);
    put_u64(buf, token);
    put_u64(buf, offset);
    put_bytes(buf, data);
}

/// Encode a strided-put request. Clears `buf` first.
#[allow(clippy::too_many_arguments)]
pub fn encode_put_strided(
    buf: &mut Vec<u8>,
    stamp: Option<&Stamp>,
    token: u64,
    offset: u64,
    stride: u64,
    block: u32,
    nblocks: u32,
    data: &[u8],
) {
    buf.clear();
    buf.push(TAG_PUT_STRIDED);
    put_stamp(buf, stamp);
    put_u64(buf, token);
    put_u64(buf, offset);
    put_u64(buf, stride);
    put_u32(buf, block);
    put_u32(buf, nblocks);
    put_bytes(buf, data);
}

/// Encode a get request. Clears `buf` first.
pub fn encode_get_req(buf: &mut Vec<u8>, stamp: Option<&Stamp>, token: u64, offset: u64, len: u32) {
    buf.clear();
    buf.push(TAG_GET_REQ);
    put_stamp(buf, stamp);
    put_u64(buf, token);
    put_u64(buf, offset);
    put_u32(buf, len);
}

/// Encode a strided-get request. Clears `buf` first.
pub fn encode_get_strided_req(
    buf: &mut Vec<u8>,
    stamp: Option<&Stamp>,
    token: u64,
    offset: u64,
    stride: u64,
    block: u32,
    nblocks: u32,
) {
    buf.clear();
    buf.push(TAG_GET_STRIDED_REQ);
    put_stamp(buf, stamp);
    put_u64(buf, token);
    put_u64(buf, offset);
    put_u64(buf, stride);
    put_u32(buf, block);
    put_u32(buf, nblocks);
}

/// Encode an RMW request. Clears `buf` first.
#[allow(clippy::too_many_arguments)]
pub fn encode_rmw_req(
    buf: &mut Vec<u8>,
    stamp: Option<&Stamp>,
    token: u64,
    op: RmwOp,
    offset: u64,
    a: u64,
    b: u64,
) {
    buf.clear();
    buf.push(TAG_RMW_REQ);
    put_stamp(buf, stamp);
    put_u64(buf, token);
    buf.push(op.code());
    put_u64(buf, offset);
    put_u64(buf, a);
    put_u64(buf, b);
}

/// Encode a data reply. Clears `buf` first.
pub fn encode_resp_data(buf: &mut Vec<u8>, token: u64, data: &[u8]) {
    buf.clear();
    buf.push(TAG_RESP_DATA);
    put_u64(buf, token);
    put_bytes(buf, data);
}

/// Encode a word reply. Clears `buf` first.
pub fn encode_resp_word(buf: &mut Vec<u8>, token: u64, ok: bool, val: u64) {
    buf.clear();
    buf.push(TAG_RESP_WORD);
    put_u64(buf, token);
    buf.push(ok as u8);
    put_u64(buf, val);
}

/// Encode a put ack. Clears `buf` first.
pub fn encode_ack(buf: &mut Vec<u8>, token: u64) {
    buf.clear();
    buf.push(TAG_ACK);
    put_u64(buf, token);
}

/// Encode a link FIN carrying the data-frame count. Clears `buf` first.
pub fn encode_fin(buf: &mut Vec<u8>, frames: u64) {
    buf.clear();
    buf.push(TAG_FIN);
    put_u64(buf, frames);
}

/// Encode a FIN ack. Clears `buf` first.
pub fn encode_fin_ack(buf: &mut Vec<u8>) {
    buf.clear();
    buf.push(TAG_FIN_ACK);
}

/// True for frames counted by the FIN handshake (everything except the
/// handshake itself).
pub fn is_data_frame(frame: &[u8]) -> bool {
    !matches!(frame.first(), Some(&TAG_FIN) | Some(&TAG_FIN_ACK))
}

// --- decoder -----------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> &'a [u8] {
        let s = self
            .buf
            .get(self.pos..self.pos + n)
            .expect("conduit wire: truncated frame");
        self.pos += n;
        s
    }

    fn u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn u16(&mut self) -> u16 {
        u16::from_le_bytes(self.take(2).try_into().unwrap())
    }

    fn u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    fn u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    fn bytes(&mut self) -> &'a [u8] {
        let n = self.u32() as usize;
        self.take(n)
    }

    fn stamp(&mut self) -> Option<Stamp> {
        let words = self.u16() as usize;
        if words == 0 {
            return None;
        }
        let mut v = Vec::with_capacity(words);
        for _ in 0..words {
            v.push(self.u64());
        }
        Some(Stamp(v.into_boxed_slice()))
    }

    fn prof(&mut self) -> Option<ProfSpan> {
        if self.u8() == 0 {
            return None;
        }
        Some(ProfSpan {
            id: self.u64(),
            inject_ns: self.u64(),
        })
    }

    fn done(&self) {
        assert_eq!(
            self.pos,
            self.buf.len(),
            "conduit wire: trailing bytes in frame"
        );
    }
}

/// Decode one conduit frame.
///
/// # Panics
/// Panics on a malformed frame: the conduit contract is reliable ordered
/// byte delivery, so corruption here is a codec bug, not a network
/// condition.
pub fn decode(frame: &[u8]) -> WireFrame<'_> {
    let mut c = Cursor { buf: frame, pos: 0 };
    let tag = c.u8();
    let out = match tag {
        TAG_AM_HANDLER => {
            let clock = c.stamp();
            let prof = c.prof();
            let id = c.u16();
            let args = c.bytes();
            WireFrame::AmHandler {
                clock,
                prof,
                id,
                args,
            }
        }
        TAG_AM_BATCH => {
            let clock = c.stamp();
            let prof = c.prof();
            let count = c.u32();
            let frames = c.bytes();
            WireFrame::AmBatch {
                clock,
                prof,
                count,
                frames,
            }
        }
        TAG_PUT => {
            let stamp = c.stamp();
            let token = c.u64();
            let offset = c.u64();
            let data = c.bytes();
            WireFrame::Put {
                stamp,
                token,
                offset,
                data,
            }
        }
        TAG_PUT_STRIDED => {
            let stamp = c.stamp();
            let token = c.u64();
            let offset = c.u64();
            let stride = c.u64();
            let block = c.u32();
            let nblocks = c.u32();
            let data = c.bytes();
            WireFrame::PutStrided {
                stamp,
                token,
                offset,
                stride,
                block,
                nblocks,
                data,
            }
        }
        TAG_GET_REQ => {
            let stamp = c.stamp();
            let token = c.u64();
            let offset = c.u64();
            let len = c.u32();
            WireFrame::GetReq {
                stamp,
                token,
                offset,
                len,
            }
        }
        TAG_GET_STRIDED_REQ => {
            let stamp = c.stamp();
            let token = c.u64();
            let offset = c.u64();
            let stride = c.u64();
            let block = c.u32();
            let nblocks = c.u32();
            WireFrame::GetStridedReq {
                stamp,
                token,
                offset,
                stride,
                block,
                nblocks,
            }
        }
        TAG_RMW_REQ => {
            let stamp = c.stamp();
            let token = c.u64();
            let op = RmwOp::from_code(c.u8());
            let offset = c.u64();
            let a = c.u64();
            let b = c.u64();
            WireFrame::RmwReq {
                stamp,
                token,
                op,
                offset,
                a,
                b,
            }
        }
        TAG_RESP_DATA => {
            let token = c.u64();
            let data = c.bytes();
            WireFrame::RespData { token, data }
        }
        TAG_RESP_WORD => {
            let token = c.u64();
            let ok = c.u8() != 0;
            let val = c.u64();
            WireFrame::RespWord { token, ok, val }
        }
        TAG_ACK => WireFrame::Ack { token: c.u64() },
        TAG_FIN => WireFrame::Fin { frames: c.u64() },
        TAG_FIN_ACK => WireFrame::FinAck,
        other => panic!("conduit wire: unknown frame tag {other}"),
    };
    c.done();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamp(words: &[u64]) -> Stamp {
        Stamp(words.to_vec().into_boxed_slice())
    }

    #[test]
    fn am_handler_roundtrip() {
        let mut buf = Vec::new();
        let ck = stamp(&[3, 1, 4, 1]);
        let span = ProfSpan {
            id: 0xdead_beef,
            inject_ns: 777,
        };
        encode_am_handler(&mut buf, Some(&ck), Some(&span), 42, b"payload");
        match decode(&buf) {
            WireFrame::AmHandler {
                clock,
                prof,
                id,
                args,
            } => {
                assert_eq!(&*clock.unwrap().0, &[3, 1, 4, 1]);
                let p = prof.unwrap();
                assert_eq!(p.id, 0xdead_beef);
                assert_eq!(p.inject_ns, 777);
                assert_eq!(id, 42);
                assert_eq!(args, b"payload");
            }
            other => panic!("wrong frame {other:?}"),
        }
    }

    #[test]
    fn am_handler_without_meta() {
        let mut buf = Vec::new();
        encode_am_handler(&mut buf, None, None, 7, b"");
        match decode(&buf) {
            WireFrame::AmHandler {
                clock,
                prof,
                id,
                args,
            } => {
                assert!(clock.is_none());
                assert!(prof.is_none());
                assert_eq!(id, 7);
                assert!(args.is_empty());
            }
            other => panic!("wrong frame {other:?}"),
        }
    }

    #[test]
    fn batch_roundtrip() {
        let mut buf = Vec::new();
        encode_am_batch(&mut buf, None, None, 9, &[1, 2, 3, 4]);
        match decode(&buf) {
            WireFrame::AmBatch { count, frames, .. } => {
                assert_eq!(count, 9);
                assert_eq!(frames, &[1, 2, 3, 4]);
            }
            other => panic!("wrong frame {other:?}"),
        }
    }

    #[test]
    fn rma_roundtrips() {
        let mut buf = Vec::new();
        let ck = stamp(&[9, 9]);

        encode_put(&mut buf, Some(&ck), 11, 4096, &[0xAA; 16]);
        match decode(&buf) {
            WireFrame::Put {
                stamp,
                token,
                offset,
                data,
            } => {
                assert_eq!(&*stamp.unwrap().0, &[9, 9]);
                assert_eq!((token, offset), (11, 4096));
                assert_eq!(data, &[0xAA; 16]);
            }
            other => panic!("wrong frame {other:?}"),
        }

        encode_put_strided(&mut buf, None, 12, 64, 256, 8, 3, &[1; 24]);
        match decode(&buf) {
            WireFrame::PutStrided {
                token,
                offset,
                stride,
                block,
                nblocks,
                data,
                ..
            } => {
                assert_eq!((token, offset, stride), (12, 64, 256));
                assert_eq!((block, nblocks), (8, 3));
                assert_eq!(data.len(), 24);
            }
            other => panic!("wrong frame {other:?}"),
        }

        encode_get_req(&mut buf, None, 13, 128, 32);
        match decode(&buf) {
            WireFrame::GetReq {
                token, offset, len, ..
            } => assert_eq!((token, offset, len), (13, 128, 32)),
            other => panic!("wrong frame {other:?}"),
        }

        encode_get_strided_req(&mut buf, None, 14, 0, 512, 16, 4);
        match decode(&buf) {
            WireFrame::GetStridedReq {
                token,
                stride,
                block,
                nblocks,
                ..
            } => assert_eq!((token, stride, block, nblocks), (14, 512, 16, 4)),
            other => panic!("wrong frame {other:?}"),
        }

        encode_rmw_req(&mut buf, Some(&ck), 15, RmwOp::Cas, 8, 100, 200);
        match decode(&buf) {
            WireFrame::RmwReq {
                token,
                op,
                offset,
                a,
                b,
                ..
            } => {
                assert_eq!((token, offset, a, b), (15, 8, 100, 200));
                assert_eq!(op, RmwOp::Cas);
            }
            other => panic!("wrong frame {other:?}"),
        }
    }

    #[test]
    fn reply_and_teardown_roundtrips() {
        let mut buf = Vec::new();

        encode_resp_data(&mut buf, 21, b"hello");
        match decode(&buf) {
            WireFrame::RespData { token, data } => {
                assert_eq!(token, 21);
                assert_eq!(data, b"hello");
            }
            other => panic!("wrong frame {other:?}"),
        }

        encode_resp_word(&mut buf, 22, true, u64::MAX);
        match decode(&buf) {
            WireFrame::RespWord { token, ok, val } => {
                assert_eq!((token, ok, val), (22, true, u64::MAX));
            }
            other => panic!("wrong frame {other:?}"),
        }

        encode_ack(&mut buf, 23);
        assert!(matches!(decode(&buf), WireFrame::Ack { token: 23 }));
        assert!(is_data_frame(&buf));

        encode_fin(&mut buf, 9001);
        assert!(matches!(decode(&buf), WireFrame::Fin { frames: 9001 }));
        assert!(!is_data_frame(&buf));

        encode_fin_ack(&mut buf);
        assert!(matches!(decode(&buf), WireFrame::FinAck));
        assert!(!is_data_frame(&buf));
    }

    #[test]
    fn scratch_buffer_is_reused_not_grown() {
        let mut buf = Vec::with_capacity(256);
        encode_put(&mut buf, None, 1, 0, &[0u8; 64]);
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        for t in 0..100 {
            encode_put(&mut buf, None, t, 0, &[0u8; 64]);
        }
        assert_eq!(buf.capacity(), cap, "encode must not grow a warm scratch");
        assert_eq!(buf.as_ptr(), ptr, "encode must not reallocate");
    }

    #[test]
    #[should_panic(expected = "truncated frame")]
    fn truncated_frame_panics() {
        let mut buf = Vec::new();
        encode_put(&mut buf, None, 1, 0, &[1, 2, 3]);
        buf.truncate(buf.len() - 1);
        decode(&buf);
    }

    #[test]
    #[should_panic(expected = "unknown frame tag")]
    fn unknown_tag_panics() {
        decode(&[0xFF]);
    }
}
