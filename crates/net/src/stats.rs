//! Per-endpoint communication counters.
//!
//! Every fabric operation is counted at the initiating endpoint. The
//! reproduction harnesses read these counts to (a) sanity-check benchmark
//! communication volumes and (b) feed the `rupcxx-perfmodel` projections
//! (message counts × modeled per-message cost at paper-scale machines).

use std::sync::atomic::{AtomicU64, Ordering};

/// Live, thread-safe counters for one endpoint.
#[derive(Debug, Default)]
pub struct CommStats {
    /// Remote puts initiated.
    pub puts: AtomicU64,
    /// Bytes written by remote puts.
    pub put_bytes: AtomicU64,
    /// Remote gets initiated.
    pub gets: AtomicU64,
    /// Bytes read by remote gets.
    pub get_bytes: AtomicU64,
    /// Active messages sent.
    pub ams_sent: AtomicU64,
    /// Payload bytes in active messages sent.
    pub am_bytes: AtomicU64,
    /// Active messages executed locally (received + handled).
    pub ams_handled: AtomicU64,
    /// Operations that resolved to local memory (no communication).
    pub local_ops: AtomicU64,
}

impl CommStats {
    /// Snapshot the counters.
    pub fn snapshot(&self) -> CommCounts {
        CommCounts {
            puts: self.puts.load(Ordering::Relaxed),
            put_bytes: self.put_bytes.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            get_bytes: self.get_bytes.load(Ordering::Relaxed),
            ams_sent: self.ams_sent.load(Ordering::Relaxed),
            am_bytes: self.am_bytes.load(Ordering::Relaxed),
            ams_handled: self.ams_handled.load(Ordering::Relaxed),
            local_ops: self.local_ops.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.puts.store(0, Ordering::Relaxed);
        self.put_bytes.store(0, Ordering::Relaxed);
        self.gets.store(0, Ordering::Relaxed);
        self.get_bytes.store(0, Ordering::Relaxed);
        self.ams_sent.store(0, Ordering::Relaxed);
        self.am_bytes.store(0, Ordering::Relaxed);
        self.ams_handled.store(0, Ordering::Relaxed);
        self.local_ops.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`CommStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommCounts {
    /// Remote puts initiated.
    pub puts: u64,
    /// Bytes written by remote puts.
    pub put_bytes: u64,
    /// Remote gets initiated.
    pub gets: u64,
    /// Bytes read by remote gets.
    pub get_bytes: u64,
    /// Active messages sent.
    pub ams_sent: u64,
    /// Payload bytes in active messages sent.
    pub am_bytes: u64,
    /// Active messages executed locally.
    pub ams_handled: u64,
    /// Operations resolved locally.
    pub local_ops: u64,
}

impl CommCounts {
    /// Total remote operations initiated (puts + gets + AMs).
    pub fn remote_ops(&self) -> u64 {
        self.puts + self.gets + self.ams_sent
    }

    /// Total bytes moved by this endpoint's initiated operations.
    pub fn total_bytes(&self) -> u64 {
        self.put_bytes + self.get_bytes + self.am_bytes
    }

    /// Element-wise difference (`self - earlier`), for measuring a phase.
    pub fn since(&self, earlier: &CommCounts) -> CommCounts {
        CommCounts {
            puts: self.puts - earlier.puts,
            put_bytes: self.put_bytes - earlier.put_bytes,
            gets: self.gets - earlier.gets,
            get_bytes: self.get_bytes - earlier.get_bytes,
            ams_sent: self.ams_sent - earlier.ams_sent,
            am_bytes: self.am_bytes - earlier.am_bytes,
            ams_handled: self.ams_handled - earlier.ams_handled,
            local_ops: self.local_ops - earlier.local_ops,
        }
    }

    /// Element-wise sum, for aggregating over ranks.
    pub fn merged(&self, other: &CommCounts) -> CommCounts {
        CommCounts {
            puts: self.puts + other.puts,
            put_bytes: self.put_bytes + other.put_bytes,
            gets: self.gets + other.gets,
            get_bytes: self.get_bytes + other.get_bytes,
            ams_sent: self.ams_sent + other.ams_sent,
            am_bytes: self.am_bytes + other.am_bytes,
            ams_handled: self.ams_handled + other.ams_handled,
            local_ops: self.local_ops + other.local_ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_reset() {
        let s = CommStats::default();
        s.puts.fetch_add(3, Ordering::Relaxed);
        s.put_bytes.fetch_add(24, Ordering::Relaxed);
        let c = s.snapshot();
        assert_eq!(c.puts, 3);
        assert_eq!(c.put_bytes, 24);
        s.reset();
        assert_eq!(s.snapshot(), CommCounts::default());
    }

    #[test]
    fn since_and_merged() {
        let a = CommCounts {
            puts: 5,
            put_bytes: 40,
            ..Default::default()
        };
        let b = CommCounts {
            puts: 2,
            put_bytes: 16,
            ..Default::default()
        };
        let d = a.since(&b);
        assert_eq!(d.puts, 3);
        assert_eq!(d.put_bytes, 24);
        let m = a.merged(&b);
        assert_eq!(m.puts, 7);
        assert_eq!(m.total_bytes(), 56);
        assert_eq!(m.remote_ops(), 7);
    }
}
