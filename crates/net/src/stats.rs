//! Per-endpoint communication counters.
//!
//! Every fabric operation is counted at the initiating endpoint. The
//! reproduction harnesses read these counts to (a) sanity-check benchmark
//! communication volumes and (b) feed the `rupcxx-perfmodel` projections
//! (message counts × modeled per-message cost at paper-scale machines).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Per-destination op/byte counters. Allocated only when the profiler is
/// on (`RUPCXX_PROF`) — the per-dest traffic shape is what an adaptive
/// aggregation policy needs, but it is ranks × 16 bytes of atomics per
/// endpoint, so the default path never pays for it.
#[derive(Debug)]
pub struct PerDestStats {
    ops: Box<[AtomicU64]>,
    bytes: Box<[AtomicU64]>,
}

impl PerDestStats {
    fn new(ranks: usize) -> Self {
        PerDestStats {
            ops: (0..ranks).map(|_| AtomicU64::new(0)).collect(),
            bytes: (0..ranks).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// Live, thread-safe counters for one endpoint.
#[derive(Debug, Default)]
pub struct CommStats {
    /// Remote puts initiated.
    pub puts: AtomicU64,
    /// Bytes written by remote puts.
    pub put_bytes: AtomicU64,
    /// Remote gets initiated.
    pub gets: AtomicU64,
    /// Bytes read by remote gets.
    pub get_bytes: AtomicU64,
    /// Active messages sent.
    pub ams_sent: AtomicU64,
    /// Payload bytes in active messages sent.
    pub am_bytes: AtomicU64,
    /// Active messages executed locally (received + handled).
    pub ams_handled: AtomicU64,
    /// Operations that resolved to local memory (no communication).
    pub local_ops: AtomicU64,
    /// Frames retransmitted by the reliable AM layer (initiator side).
    /// Nonzero only under fault injection (`RUPCXX_FAULTS`).
    pub retransmits: AtomicU64,
    /// Transmission attempts lost on the wire by the fault plan
    /// (initiator side). Every wire drop costs one retransmit, so at
    /// quiescence `retransmits == wire_drops` unless a peer was declared
    /// unreachable.
    pub wire_drops: AtomicU64,
    /// Duplicate frame arrivals discarded by the dedup window (receiver
    /// side).
    pub dup_arrivals: AtomicU64,
    /// Frames that arrived ahead of a predecessor and were parked in the
    /// receiver's reorder buffer before in-order release (receiver side).
    pub reorders: AtomicU64,
    /// Logical fine-grained operations absorbed by the per-destination
    /// aggregation layer (initiator side). Nonzero only when aggregation
    /// is enabled (`RUPCXX_AGG`) *and* the op was remote.
    pub agg_ops: AtomicU64,
    /// Wire frames (batches) the aggregation layer actually injected;
    /// each batch is one active message carrying `agg_ops / agg_batches`
    /// logical operations on average (initiator side).
    pub agg_batches: AtomicU64,
    /// Remote gets served from this rank's software read cache without
    /// touching the fabric. Nonzero only with `RUPCXX_CACHE` enabled.
    pub cache_hits: AtomicU64,
    /// Remote gets that missed the read cache and filled a whole line
    /// through one fabric get.
    pub cache_misses: AtomicU64,
    /// Cached lines dropped by write-through or sync-point invalidation.
    pub cache_invalidations: AtomicU64,
    /// Completed [`CommStats::reset`] calls (see that method's caveats).
    epoch: AtomicU64,
    /// Per-destination accounting (unset unless the profiler enabled it).
    per_dest: OnceLock<PerDestStats>,
}

impl CommStats {
    /// Snapshot the counters (including the reset epoch, so the snapshot
    /// can later serve as a [`CommStats::delta_since`] baseline).
    pub fn snapshot(&self) -> CommCounts {
        CommCounts {
            puts: self.puts.load(Ordering::Relaxed),
            put_bytes: self.put_bytes.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            get_bytes: self.get_bytes.load(Ordering::Relaxed),
            ams_sent: self.ams_sent.load(Ordering::Relaxed),
            am_bytes: self.am_bytes.load(Ordering::Relaxed),
            ams_handled: self.ams_handled.load(Ordering::Relaxed),
            local_ops: self.local_ops.load(Ordering::Relaxed),
            retransmits: self.retransmits.load(Ordering::Relaxed),
            wire_drops: self.wire_drops.load(Ordering::Relaxed),
            dup_arrivals: self.dup_arrivals.load(Ordering::Relaxed),
            reorders: self.reorders.load(Ordering::Relaxed),
            agg_ops: self.agg_ops.load(Ordering::Relaxed),
            agg_batches: self.agg_batches.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_invalidations: self.cache_invalidations.load(Ordering::Relaxed),
            epoch: self.epoch.load(Ordering::Acquire),
        }
    }

    /// Reset all counters to zero.
    ///
    /// **Semantics:** the counters are cleared one at a time with relaxed
    /// stores — the reset is *not* atomic as a whole. An operation racing
    /// with `reset()` may land some of its increments before the clear and
    /// some after, so counts taken around a concurrent reset can be off by
    /// the in-flight operations. Call it only at quiescent points (e.g.
    /// between benchmark phases, after a barrier). To measure a phase
    /// *without* resetting — immune to this race by construction — take a
    /// baseline [`CommStats::snapshot`] and use [`CommStats::delta_since`].
    pub fn reset(&self) {
        self.puts.store(0, Ordering::Relaxed);
        self.put_bytes.store(0, Ordering::Relaxed);
        self.gets.store(0, Ordering::Relaxed);
        self.get_bytes.store(0, Ordering::Relaxed);
        self.ams_sent.store(0, Ordering::Relaxed);
        self.am_bytes.store(0, Ordering::Relaxed);
        self.ams_handled.store(0, Ordering::Relaxed);
        self.local_ops.store(0, Ordering::Relaxed);
        self.retransmits.store(0, Ordering::Relaxed);
        self.wire_drops.store(0, Ordering::Relaxed);
        self.dup_arrivals.store(0, Ordering::Relaxed);
        self.reorders.store(0, Ordering::Relaxed);
        self.agg_ops.store(0, Ordering::Relaxed);
        self.agg_batches.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.cache_invalidations.store(0, Ordering::Relaxed);
        if let Some(pd) = self.per_dest.get() {
            for d in pd.ops.iter().chain(pd.bytes.iter()) {
                d.store(0, Ordering::Relaxed);
            }
        }
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Switch on per-destination accounting for `ranks` destinations.
    /// Idempotent; called by the endpoint constructor when the profiler
    /// is enabled.
    pub fn enable_per_dest(&self, ranks: usize) {
        let _ = self.per_dest.set(PerDestStats::new(ranks));
    }

    /// Count one initiated operation of `bytes` towards `dst`. One
    /// untaken branch when per-destination accounting is off.
    #[inline]
    pub fn count_dest(&self, dst: usize, bytes: u64) {
        if let Some(pd) = self.per_dest.get() {
            pd.ops[dst].fetch_add(1, Ordering::Relaxed);
            pd.bytes[dst].fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Per-destination `(ops, bytes)` snapshot, indexed by destination
    /// rank. `None` unless [`CommStats::enable_per_dest`] ran.
    pub fn per_dest(&self) -> Option<Vec<(u64, u64)>> {
        self.per_dest.get().map(|pd| {
            pd.ops
                .iter()
                .zip(pd.bytes.iter())
                .map(|(o, b)| (o.load(Ordering::Relaxed), b.load(Ordering::Relaxed)))
                .collect()
        })
    }

    /// Number of completed [`CommStats::reset`] calls. A phase measurement
    /// is only valid if the epoch is unchanged between its two snapshots.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Counters accumulated since `baseline` (an earlier
    /// [`CommStats::snapshot`] of this endpoint): the epoch-based way to
    /// measure a phase without resetting.
    ///
    /// # Panics
    /// Panics if the counters were `reset()` after `baseline` was taken
    /// (the subtraction would underflow and the delta would be garbage).
    pub fn delta_since(&self, baseline: &CommCounts) -> CommCounts {
        assert_eq!(
            self.epoch(),
            baseline.epoch,
            "CommStats::delta_since: counters were reset after the baseline snapshot"
        );
        self.snapshot().since(baseline)
    }
}

/// A point-in-time copy of [`CommStats`].
///
/// Equality compares the traffic counters only — the bookkeeping `epoch`
/// is excluded, so snapshots of identical traffic compare equal across
/// resets.
#[derive(Clone, Copy, Debug, Default)]
pub struct CommCounts {
    /// Remote puts initiated.
    pub puts: u64,
    /// Bytes written by remote puts.
    pub put_bytes: u64,
    /// Remote gets initiated.
    pub gets: u64,
    /// Bytes read by remote gets.
    pub get_bytes: u64,
    /// Active messages sent.
    pub ams_sent: u64,
    /// Payload bytes in active messages sent.
    pub am_bytes: u64,
    /// Active messages executed locally.
    pub ams_handled: u64,
    /// Operations resolved locally.
    pub local_ops: u64,
    /// Frames retransmitted by the reliable AM layer.
    pub retransmits: u64,
    /// Transmission attempts lost on the wire by the fault plan.
    pub wire_drops: u64,
    /// Duplicate arrivals discarded by the dedup window.
    pub dup_arrivals: u64,
    /// Out-of-order arrivals parked before in-order release.
    pub reorders: u64,
    /// Logical fine-grained operations absorbed by the aggregation layer.
    pub agg_ops: u64,
    /// Wire frames (batches) the aggregation layer injected for them.
    pub agg_batches: u64,
    /// Remote gets served from the software read cache.
    pub cache_hits: u64,
    /// Remote gets that missed the read cache and filled a line.
    pub cache_misses: u64,
    /// Cached lines dropped by write-through or sync-point invalidation.
    pub cache_invalidations: u64,
    /// Reset epoch of the endpoint at snapshot time (see
    /// [`CommStats::epoch`]). Not part of equality.
    pub epoch: u64,
}

impl PartialEq for CommCounts {
    fn eq(&self, other: &Self) -> bool {
        self.puts == other.puts
            && self.put_bytes == other.put_bytes
            && self.gets == other.gets
            && self.get_bytes == other.get_bytes
            && self.ams_sent == other.ams_sent
            && self.am_bytes == other.am_bytes
            && self.ams_handled == other.ams_handled
            && self.local_ops == other.local_ops
            && self.retransmits == other.retransmits
            && self.wire_drops == other.wire_drops
            && self.dup_arrivals == other.dup_arrivals
            && self.reorders == other.reorders
            && self.agg_ops == other.agg_ops
            && self.agg_batches == other.agg_batches
            && self.cache_hits == other.cache_hits
            && self.cache_misses == other.cache_misses
            && self.cache_invalidations == other.cache_invalidations
    }
}

impl Eq for CommCounts {}

impl CommCounts {
    /// Total remote operations initiated (puts + gets + AMs).
    pub fn remote_ops(&self) -> u64 {
        self.puts + self.gets + self.ams_sent
    }

    /// Total bytes moved by this endpoint's initiated operations.
    pub fn total_bytes(&self) -> u64 {
        self.put_bytes + self.get_bytes + self.am_bytes
    }

    /// Element-wise difference (`self - earlier`), for measuring a phase.
    /// Both snapshots must come from the same epoch (no intervening
    /// `reset()`), otherwise the subtraction underflows.
    pub fn since(&self, earlier: &CommCounts) -> CommCounts {
        CommCounts {
            epoch: self.epoch,
            puts: self.puts - earlier.puts,
            put_bytes: self.put_bytes - earlier.put_bytes,
            gets: self.gets - earlier.gets,
            get_bytes: self.get_bytes - earlier.get_bytes,
            ams_sent: self.ams_sent - earlier.ams_sent,
            am_bytes: self.am_bytes - earlier.am_bytes,
            ams_handled: self.ams_handled - earlier.ams_handled,
            local_ops: self.local_ops - earlier.local_ops,
            retransmits: self.retransmits - earlier.retransmits,
            wire_drops: self.wire_drops - earlier.wire_drops,
            dup_arrivals: self.dup_arrivals - earlier.dup_arrivals,
            reorders: self.reorders - earlier.reorders,
            agg_ops: self.agg_ops - earlier.agg_ops,
            agg_batches: self.agg_batches - earlier.agg_batches,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
            cache_invalidations: self.cache_invalidations - earlier.cache_invalidations,
        }
    }

    /// Element-wise sum, for aggregating over ranks (the result's `epoch`
    /// is the max of the inputs' — bookkeeping only).
    pub fn merged(&self, other: &CommCounts) -> CommCounts {
        CommCounts {
            epoch: self.epoch.max(other.epoch),
            puts: self.puts + other.puts,
            put_bytes: self.put_bytes + other.put_bytes,
            gets: self.gets + other.gets,
            get_bytes: self.get_bytes + other.get_bytes,
            ams_sent: self.ams_sent + other.ams_sent,
            am_bytes: self.am_bytes + other.am_bytes,
            ams_handled: self.ams_handled + other.ams_handled,
            local_ops: self.local_ops + other.local_ops,
            retransmits: self.retransmits + other.retransmits,
            wire_drops: self.wire_drops + other.wire_drops,
            dup_arrivals: self.dup_arrivals + other.dup_arrivals,
            reorders: self.reorders + other.reorders,
            agg_ops: self.agg_ops + other.agg_ops,
            agg_batches: self.agg_batches + other.agg_batches,
            cache_hits: self.cache_hits + other.cache_hits,
            cache_misses: self.cache_misses + other.cache_misses,
            cache_invalidations: self.cache_invalidations + other.cache_invalidations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_reset() {
        let s = CommStats::default();
        s.puts.fetch_add(3, Ordering::Relaxed);
        s.put_bytes.fetch_add(24, Ordering::Relaxed);
        let c = s.snapshot();
        assert_eq!(c.puts, 3);
        assert_eq!(c.put_bytes, 24);
        s.reset();
        assert_eq!(s.snapshot(), CommCounts::default());
    }

    #[test]
    fn epoch_and_delta_since() {
        let s = CommStats::default();
        s.puts.fetch_add(2, Ordering::Relaxed);
        let base = s.snapshot();
        s.puts.fetch_add(5, Ordering::Relaxed);
        s.gets.fetch_add(1, Ordering::Relaxed);
        let d = s.delta_since(&base);
        assert_eq!(d.puts, 5);
        assert_eq!(d.gets, 1);
        assert_eq!(s.epoch(), 0);
        s.reset();
        assert_eq!(s.epoch(), 1);
        // Snapshots of identical traffic compare equal across resets.
        assert_eq!(s.snapshot(), CommCounts::default());
    }

    #[test]
    #[should_panic(expected = "reset after the baseline")]
    fn delta_since_detects_reset() {
        let s = CommStats::default();
        s.puts.fetch_add(2, Ordering::Relaxed);
        let base = s.snapshot();
        s.reset();
        let _ = s.delta_since(&base);
    }

    #[test]
    fn delta_since_valid_again_after_fresh_baseline_in_new_epoch() {
        // A reset invalidates old baselines, but a baseline taken *after*
        // the reset measures the new epoch normally.
        let s = CommStats::default();
        s.puts.fetch_add(9, Ordering::Relaxed);
        s.reset();
        s.reset();
        assert_eq!(s.epoch(), 2);
        let base = s.snapshot();
        assert_eq!(base.epoch, 2);
        s.puts.fetch_add(4, Ordering::Relaxed);
        s.retransmits.fetch_add(3, Ordering::Relaxed);
        let d = s.delta_since(&base);
        assert_eq!(d.puts, 4);
        assert_eq!(d.retransmits, 3);
        assert_eq!(d.epoch, 2);
    }

    #[test]
    fn fault_counters_round_trip_snapshot_reset_delta() {
        let s = CommStats::default();
        s.retransmits.fetch_add(5, Ordering::Relaxed);
        s.wire_drops.fetch_add(5, Ordering::Relaxed);
        s.dup_arrivals.fetch_add(2, Ordering::Relaxed);
        s.reorders.fetch_add(1, Ordering::Relaxed);
        let base = s.snapshot();
        assert_eq!(base.retransmits, 5);
        assert_eq!(base.wire_drops, 5);
        assert_eq!(base.dup_arrivals, 2);
        assert_eq!(base.reorders, 1);
        s.wire_drops.fetch_add(2, Ordering::Relaxed);
        assert_eq!(s.delta_since(&base).wire_drops, 2);
        s.reset();
        assert_eq!(s.snapshot(), CommCounts::default());
        // Fault counters participate in equality: same traffic but a
        // different drop count must not compare equal.
        let a = CommCounts {
            wire_drops: 1,
            ..Default::default()
        };
        assert_ne!(a, CommCounts::default());
    }

    #[test]
    fn fault_counters_in_since_and_merged() {
        let a = CommCounts {
            retransmits: 7,
            wire_drops: 7,
            dup_arrivals: 3,
            reorders: 2,
            ..Default::default()
        };
        let b = CommCounts {
            retransmits: 2,
            wire_drops: 2,
            dup_arrivals: 1,
            reorders: 2,
            ..Default::default()
        };
        let d = a.since(&b);
        assert_eq!(d.retransmits, 5);
        assert_eq!(d.wire_drops, 5);
        assert_eq!(d.dup_arrivals, 2);
        assert_eq!(d.reorders, 0);
        let m = a.merged(&b);
        assert_eq!(m.retransmits, 9);
        assert_eq!(m.wire_drops, 9);
        assert_eq!(m.dup_arrivals, 4);
        assert_eq!(m.reorders, 4);
    }

    #[test]
    fn aggregation_counters_round_trip() {
        let s = CommStats::default();
        s.agg_ops.fetch_add(128, Ordering::Relaxed);
        s.agg_batches.fetch_add(2, Ordering::Relaxed);
        let base = s.snapshot();
        assert_eq!(base.agg_ops, 128);
        assert_eq!(base.agg_batches, 2);
        s.agg_ops.fetch_add(64, Ordering::Relaxed);
        s.agg_batches.fetch_add(1, Ordering::Relaxed);
        let d = s.delta_since(&base);
        assert_eq!((d.agg_ops, d.agg_batches), (64, 1));
        let m = base.merged(&s.snapshot());
        assert_eq!((m.agg_ops, m.agg_batches), (320, 5));
        s.reset();
        assert_eq!(s.snapshot(), CommCounts::default());
        // The aggregation counters participate in equality: coalescing the
        // same logical traffic into a different number of wire frames must
        // not compare equal.
        let a = CommCounts {
            agg_batches: 1,
            ..Default::default()
        };
        assert_ne!(a, CommCounts::default());
    }

    #[test]
    fn cache_counters_round_trip() {
        let s = CommStats::default();
        s.cache_hits.fetch_add(90, Ordering::Relaxed);
        s.cache_misses.fetch_add(10, Ordering::Relaxed);
        s.cache_invalidations.fetch_add(4, Ordering::Relaxed);
        let base = s.snapshot();
        assert_eq!(base.cache_hits, 90);
        assert_eq!(base.cache_misses, 10);
        assert_eq!(base.cache_invalidations, 4);
        s.cache_hits.fetch_add(10, Ordering::Relaxed);
        s.cache_invalidations.fetch_add(1, Ordering::Relaxed);
        let d = s.delta_since(&base);
        assert_eq!(
            (d.cache_hits, d.cache_misses, d.cache_invalidations),
            (10, 0, 1)
        );
        let m = base.merged(&s.snapshot());
        assert_eq!(
            (m.cache_hits, m.cache_misses, m.cache_invalidations),
            (190, 20, 9)
        );
        s.reset();
        assert_eq!(s.snapshot(), CommCounts::default());
        // Cache counters participate in equality: the same logical reads
        // served with a different hit pattern must not compare equal.
        let a = CommCounts {
            cache_hits: 1,
            ..Default::default()
        };
        assert_ne!(a, CommCounts::default());
    }

    #[test]
    fn per_dest_off_by_default_and_counts_when_enabled() {
        let s = CommStats::default();
        assert!(s.per_dest().is_none());
        s.count_dest(0, 8); // no-op while disabled
        s.enable_per_dest(3);
        assert_eq!(s.per_dest().unwrap(), vec![(0, 0); 3]);
        s.count_dest(1, 8);
        s.count_dest(1, 16);
        s.count_dest(2, 64);
        let pd = s.per_dest().unwrap();
        assert_eq!(pd, vec![(0, 0), (2, 24), (1, 64)]);
        s.reset();
        assert_eq!(s.per_dest().unwrap(), vec![(0, 0); 3]);
        // enable is idempotent — counters survive a second call.
        s.count_dest(0, 1);
        s.enable_per_dest(3);
        assert_eq!(s.per_dest().unwrap()[0], (1, 1));
    }

    #[test]
    fn since_and_merged() {
        let a = CommCounts {
            puts: 5,
            put_bytes: 40,
            ..Default::default()
        };
        let b = CommCounts {
            puts: 2,
            put_bytes: 16,
            ..Default::default()
        };
        let d = a.since(&b);
        assert_eq!(d.puts, 3);
        assert_eq!(d.put_bytes, 24);
        let m = a.merged(&b);
        assert_eq!(m.puts, 7);
        assert_eq!(m.total_bytes(), 56);
        assert_eq!(m.remote_ops(), 7);
    }
}
