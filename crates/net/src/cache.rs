//! Software read cache for remote global-memory gets.
//!
//! The canonical PGAS runtime optimization (Titanium/UPC software caches):
//! a per-rank, line-granular cache of *remote* segment data, filled on get
//! misses through the normal fabric path and kept coherent by
//!
//! * **write-through invalidation** — every put/atomic the rank itself
//!   issues drops the lines it covers, so a rank always reads its own
//!   writes;
//! * **sync-point invalidation** — `barrier()`/`fence()` (and the fences
//!   built on them) discard the whole cache, so anything another rank
//!   wrote before the synchronization is re-fetched after it.
//!
//! Between synchronization points a cached read may return a value that
//! is *stale* with respect to another rank's un-synchronized write — but
//! under the paper's relaxed memory-consistency model (§III-F) such a
//! pair of accesses is unordered anyway, so any value the uncached fabric
//! could have returned remains a legal outcome. The cache therefore never
//! changes the set of admissible results of a data-race-free program.
//!
//! Enable with `RUPCXX_CACHE=capacity_bytes,line_bytes` (or `on` for the
//! defaults) or `RuntimeConfig::with_cache`. When off the fabric pays one
//! untaken branch per get and nothing else — the same zero-cost pattern
//! as aggregation, fault injection and the checker.

use crate::fabric::GlobalAddr;
use rupcxx_check::Stamp;
use rupcxx_util::sync::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};

/// Read-cache configuration, normally parsed from `RUPCXX_CACHE`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total cache capacity per rank in bytes.
    pub capacity_bytes: usize,
    /// Cache line size in bytes (power of two, ≥ 8).
    pub line_bytes: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity_bytes: 1 << 20,
            line_bytes: 256,
        }
    }
}

impl CacheConfig {
    /// Default capacity and line size.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the total per-rank capacity in bytes.
    pub fn capacity_bytes(mut self, bytes: usize) -> Self {
        self.capacity_bytes = bytes;
        self
    }

    /// Set the line size in bytes (power of two, ≥ 8).
    pub fn line_bytes(mut self, bytes: usize) -> Self {
        self.line_bytes = bytes;
        self
    }

    /// Parse a `RUPCXX_CACHE` value. `Ok(None)` means explicitly off;
    /// `Err` carries a description of what was wrong.
    pub fn parse(raw: &str) -> Result<Option<Self>, String> {
        let raw = raw.trim();
        match raw {
            "" | "off" | "0" => return Ok(None),
            "on" | "1" => return Ok(Some(CacheConfig::default())),
            _ => {}
        }
        let (cap, line) = raw
            .split_once(',')
            .ok_or_else(|| "expected two comma-separated fields".to_string())?;
        let capacity_bytes: usize = cap
            .trim()
            .parse()
            .map_err(|_| format!("bad capacity {:?}", cap.trim()))?;
        let line_bytes: usize = line
            .trim()
            .parse()
            .map_err(|_| format!("bad line size {:?}", line.trim()))?;
        if !line_bytes.is_power_of_two() || line_bytes < 8 {
            return Err(format!("line size {line_bytes} must be a power of two ≥ 8"));
        }
        if capacity_bytes < line_bytes {
            return Err(format!(
                "capacity {capacity_bytes} smaller than one line ({line_bytes})"
            ));
        }
        Ok(Some(CacheConfig {
            capacity_bytes,
            line_bytes,
        }))
    }

    /// Read `RUPCXX_CACHE` from the environment; malformed values abort
    /// with a clear message.
    pub fn from_env() -> Option<Self> {
        rupcxx_util::env::parse_env(
            "RUPCXX_CACHE",
            "off | on | CAPACITY_BYTES,LINE_BYTES",
            CacheConfig::parse,
        )
    }
}

/// One cached line: `data.len()` bytes of the owning rank's segment
/// starting at the line-aligned base `addr` (shorter than a full line only
/// at the end of the segment). The key is the packed `rank:offset` word,
/// so the tag compare on a lookup is a single 64-bit equality instead of
/// two field compares.
struct Line {
    addr: GlobalAddr,
    data: Box<[u8]>,
    /// The filling get's happens-before snapshot, kept only when the
    /// race checker was on at fill time; cached hits replay it so the
    /// checker can flag reads of lines made stale by a synchronized
    /// writer (see `Checker::cache_read`).
    fill: Option<Stamp>,
}

struct Inner {
    slots: Vec<Option<Line>>,
    occupied: usize,
}

/// A rank's read cache: a direct-mapped array of line slots behind one
/// mutex. Only the owning rank's thread (and its progress thread) touch
/// it, so the lock is effectively uncontended; direct mapping keeps the
/// lookup a handful of arithmetic ops instead of a SipHash per get.
pub struct CacheState {
    cfg: CacheConfig,
    line_shift: u32,
    nslots: usize,
    inner: Mutex<Inner>,
    /// Test-only knob: when set, sync-point invalidation is skipped (the
    /// write-through path still runs). Used to plant a stale-read bug the
    /// checker must catch; never set outside tests.
    bypass_sync_invalidation: AtomicBool,
}

impl CacheState {
    /// Build a cache with `cfg.capacity_bytes / cfg.line_bytes` slots.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(
            cfg.line_bytes.is_power_of_two() && cfg.line_bytes >= 8,
            "cache line size must be a power of two ≥ 8"
        );
        let nslots = (cfg.capacity_bytes / cfg.line_bytes).max(1);
        let line_shift = cfg.line_bytes.trailing_zeros();
        CacheState {
            cfg,
            line_shift,
            nslots,
            inner: Mutex::new(Inner {
                slots: (0..nslots).map(|_| None).collect(),
                occupied: 0,
            }),
            bypass_sync_invalidation: AtomicBool::new(false),
        }
    }

    /// Line size in bytes.
    #[inline]
    pub fn line_bytes(&self) -> usize {
        self.cfg.line_bytes
    }

    /// The line-aligned base of the line containing `offset`.
    #[inline]
    #[must_use]
    pub fn line_base(&self, offset: usize) -> usize {
        offset & !(self.cfg.line_bytes - 1)
    }

    /// The line-aligned base address of the line containing `addr` — one
    /// mask on the packed word (line sizes are powers of two smaller than
    /// the offset field, so the mask never touches the rank bits).
    #[inline]
    #[must_use]
    pub fn line_base_addr(&self, addr: GlobalAddr) -> GlobalAddr {
        GlobalAddr::from_packed(addr.packed() & !(self.cfg.line_bytes as u64 - 1))
    }

    /// Slot index for a line-aligned base address: xor-fold the packed
    /// `rank:offset` word (a multiply only propagates input bits *upward*,
    /// so the rank field in the high bits must first be folded down to
    /// reach every slot bit), then one Fibonacci multiply, high half into
    /// the modulo. Shifting out the (zero) low line bits keeps consecutive
    /// lines in distinct slots.
    #[inline]
    fn slot_of(&self, base: GlobalAddr) -> usize {
        let x = base.packed() >> self.line_shift;
        let h = (x ^ (x >> 32)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) % self.nslots as u64) as usize
    }

    /// Look up `out.len()` bytes of the global address space starting at
    /// `addr`; the span must not cross a line boundary. On a hit the bytes
    /// are copied into `out` and the line's fill stamp (if any) is
    /// returned; `None` is a miss.
    pub fn lookup(&self, addr: GlobalAddr, out: &mut [u8]) -> Option<Option<Stamp>> {
        let base = self.line_base_addr(addr);
        debug_assert!(addr.offset() + out.len() <= base.offset() + self.cfg.line_bytes);
        let inner = self.inner.lock();
        let line = inner.slots[self.slot_of(base)].as_ref()?;
        if line.addr != base {
            return None;
        }
        let start = addr.offset() - base.offset();
        if start + out.len() > line.data.len() {
            return None;
        }
        out.copy_from_slice(&line.data[start..start + out.len()]);
        Some(line.fill.clone())
    }

    /// Install a freshly fetched line (replacing any conflicting line in
    /// its slot). `base` must be line-aligned; `data` is the whole line
    /// (possibly short at the segment end).
    pub fn insert(&self, base: GlobalAddr, data: Box<[u8]>, fill: Option<Stamp>) {
        debug_assert_eq!(base, self.line_base_addr(base));
        debug_assert!(data.len() <= self.cfg.line_bytes);
        let slot = self.slot_of(base);
        let mut inner = self.inner.lock();
        if inner.slots[slot].is_none() {
            inner.occupied += 1;
        }
        inner.slots[slot] = Some(Line {
            addr: base,
            data,
            fill,
        });
    }

    /// Drop every cached line overlapping `[addr, addr+len)`; returns how
    /// many lines were removed. Used by the write-through path —
    /// invalidating a covering span is always safe (a dropped line only
    /// costs a refill).
    pub fn invalidate_span(&self, addr: GlobalAddr, len: usize) -> u64 {
        if len == 0 {
            return 0;
        }
        let mut inner = self.inner.lock();
        if inner.occupied == 0 {
            return 0;
        }
        let first = self.line_base_addr(addr);
        let last = self.line_base_addr(addr.add(len - 1));
        let mut removed = 0;
        let mut base = first;
        loop {
            let slot = self.slot_of(base);
            if let Some(line) = &inner.slots[slot] {
                if line.addr == base {
                    inner.slots[slot] = None;
                    inner.occupied -= 1;
                    removed += 1;
                }
            }
            if base == last {
                break;
            }
            base = base.add(self.cfg.line_bytes);
        }
        removed
    }

    /// Drop every cached line; returns how many were removed.
    pub fn invalidate_all(&self) -> u64 {
        let mut inner = self.inner.lock();
        if inner.occupied == 0 {
            return 0;
        }
        let removed = inner.occupied as u64;
        for slot in inner.slots.iter_mut() {
            *slot = None;
        }
        inner.occupied = 0;
        removed
    }

    /// Sync-point invalidation (`barrier()`/`fence()`): like
    /// [`CacheState::invalidate_all`], but respects the test-only bypass
    /// knob used to plant stale-read bugs for the checker.
    pub fn invalidate_sync(&self) -> u64 {
        if self.bypass_sync_invalidation.load(Ordering::Relaxed) {
            return 0;
        }
        self.invalidate_all()
    }

    /// Test-only: disable sync-point invalidation, leaving stale lines
    /// visible across barriers — a planted memory-model bug the checker
    /// must report as a stale cached read.
    pub fn set_bypass_sync_invalidation(&self, bypass: bool) {
        self.bypass_sync_invalidation
            .store(bypass, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for CacheState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("CacheState")
            .field("capacity_bytes", &self.cfg.capacity_bytes)
            .field("line_bytes", &self.cfg.line_bytes)
            .field("nslots", &self.nslots)
            .field("occupied", &inner.occupied)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ga(rank: usize, offset: usize) -> GlobalAddr {
        GlobalAddr::new(rank, offset)
    }

    fn cache(capacity: usize, line: usize) -> CacheState {
        CacheState::new(CacheConfig {
            capacity_bytes: capacity,
            line_bytes: line,
        })
    }

    #[test]
    fn parse_env_forms() {
        assert!(CacheConfig::parse("off").unwrap().is_none());
        assert!(CacheConfig::parse("").unwrap().is_none());
        assert!(CacheConfig::parse("0").unwrap().is_none());
        assert_eq!(
            CacheConfig::parse("on").unwrap().unwrap(),
            CacheConfig::default()
        );
        let c = CacheConfig::parse("4096,64").unwrap().unwrap();
        assert_eq!(c.capacity_bytes, 4096);
        assert_eq!(c.line_bytes, 64);
        assert!(CacheConfig::parse("4096").is_err());
        assert!(CacheConfig::parse("x,64").is_err());
        assert!(CacheConfig::parse("4096,100").is_err(), "non-power-of-two");
        assert!(CacheConfig::parse("4096,4").is_err(), "line < 8");
        assert!(CacheConfig::parse("32,64").is_err(), "capacity < line");
    }

    #[test]
    fn miss_fill_hit_roundtrip() {
        let c = cache(1024, 64);
        let mut out = [0u8; 8];
        assert!(c.lookup(ga(1, 64), &mut out).is_none(), "cold cache misses");
        let data: Box<[u8]> = (0..64u8).collect();
        c.insert(ga(1, 64), data, None);
        assert!(c.lookup(ga(1, 64), &mut out).is_some());
        assert_eq!(out, [0, 1, 2, 3, 4, 5, 6, 7]);
        assert!(
            c.lookup(ga(1, 100), &mut out).is_some(),
            "same line, later span"
        );
        assert_eq!(out, [36, 37, 38, 39, 40, 41, 42, 43]);
        assert!(c.lookup(ga(2, 64), &mut out).is_none(), "other rank misses");
        assert!(
            c.lookup(ga(1, 128), &mut out).is_none(),
            "other line misses"
        );
    }

    #[test]
    fn short_line_at_segment_end_bounds_hits() {
        let c = cache(1024, 64);
        // Segment ends mid-line: only 16 bytes of the line exist.
        c.insert(ga(0, 64), vec![7u8; 16].into_boxed_slice(), None);
        let mut out = [0u8; 8];
        assert!(c.lookup(ga(0, 64), &mut out).is_some());
        assert!(
            c.lookup(ga(0, 80), &mut out).is_none(),
            "span past the short line's data misses"
        );
    }

    #[test]
    fn invalidate_span_drops_covered_lines_only() {
        let c = cache(4096, 64);
        c.insert(ga(0, 0), vec![1; 64].into_boxed_slice(), None);
        c.insert(ga(0, 64), vec![2; 64].into_boxed_slice(), None);
        c.insert(ga(0, 128), vec![3; 64].into_boxed_slice(), None);
        c.insert(ga(1, 64), vec![4; 64].into_boxed_slice(), None);
        // A write covering [60, 70) touches lines 0 and 64 of rank 0.
        assert_eq!(c.invalidate_span(ga(0, 60), 10), 2);
        let mut out = [0u8; 8];
        assert!(c.lookup(ga(0, 0), &mut out).is_none());
        assert!(c.lookup(ga(0, 64), &mut out).is_none());
        assert!(
            c.lookup(ga(0, 128), &mut out).is_some(),
            "uncovered line stays"
        );
        assert!(
            c.lookup(ga(1, 64), &mut out).is_some(),
            "other rank's line stays"
        );
        assert_eq!(c.invalidate_span(ga(0, 60), 10), 0, "already gone");
        assert_eq!(c.invalidate_span(ga(0, 0), 0), 0, "empty span");
    }

    #[test]
    fn invalidate_all_counts_and_empties() {
        let c = cache(1024, 64);
        assert_eq!(c.invalidate_all(), 0);
        c.insert(ga(0, 0), vec![0; 64].into_boxed_slice(), None);
        c.insert(ga(1, 64), vec![0; 64].into_boxed_slice(), None);
        assert_eq!(c.invalidate_all(), 2);
        let mut out = [0u8; 8];
        assert!(c.lookup(ga(0, 0), &mut out).is_none());
        assert_eq!(c.invalidate_all(), 0);
    }

    #[test]
    fn sync_invalidation_respects_bypass_knob() {
        let c = cache(1024, 64);
        c.insert(ga(0, 0), vec![9; 64].into_boxed_slice(), None);
        c.set_bypass_sync_invalidation(true);
        assert_eq!(c.invalidate_sync(), 0, "bypassed");
        let mut out = [0u8; 8];
        assert!(
            c.lookup(ga(0, 0), &mut out).is_some(),
            "stale line survives"
        );
        c.set_bypass_sync_invalidation(false);
        assert_eq!(c.invalidate_sync(), 1);
        assert!(c.lookup(ga(0, 0), &mut out).is_none());
    }

    #[test]
    fn conflicting_lines_evict() {
        // One slot: every line maps to it.
        let c = cache(64, 64);
        c.insert(ga(0, 0), vec![1; 64].into_boxed_slice(), None);
        c.insert(ga(0, 4096), vec![2; 64].into_boxed_slice(), None);
        let mut out = [0u8; 8];
        assert!(c.lookup(ga(0, 4096), &mut out).is_some());
        assert!(
            c.lookup(ga(0, 0), &mut out).is_none(),
            "evicted by conflict"
        );
    }

    #[test]
    fn fill_stamp_round_trips() {
        let c = cache(1024, 64);
        let stamp = Stamp(vec![3, 1].into_boxed_slice());
        c.insert(
            ga(0, 0),
            vec![0; 64].into_boxed_slice(),
            Some(stamp.clone()),
        );
        let mut out = [0u8; 8];
        let got = c.lookup(ga(0, 0), &mut out).expect("hit");
        assert_eq!(got, Some(stamp));
    }
}
