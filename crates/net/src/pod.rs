//! Plain-old-data marker trait for values that may live in the global
//! address space.
//!
//! UPC++ shared objects are C++ objects whose bytes are moved by RDMA.
//! The Rust equivalent needs a marker for types whose byte representation
//! is total (no padding, no niches): such values can be written to and read
//! back from a [`crate::Segment`] byte-for-byte.
//!
//! # Safety
//! Implementors guarantee that the type
//! * is `Copy + Send + Sync + 'static` (plain data always is),
//! * contains **no padding bytes** and **no invalid bit patterns** (every
//!   byte combination of `size_of::<T>()` bytes is a valid value), and
//! * has alignment ≤ 8 (segments hand out 8-byte-aligned storage).
//!
//! These conditions make the internal pointer casts in [`Pod::write_to`] and
//! [`Pod::read_from`] sound.

/// Marker for plain-old-data types storable in the global address space.
///
/// # Safety
/// See the module documentation for the exact obligations.
pub unsafe trait Pod: Copy + Send + Sync + 'static {
    /// Serialize `self` into `out` (little-endian native layout).
    /// `out.len()` must equal `size_of::<Self>()`.
    fn write_to(&self, out: &mut [u8]) {
        let size = std::mem::size_of::<Self>();
        assert_eq!(out.len(), size, "Pod::write_to: wrong buffer size");
        // SAFETY: `Self: Pod` guarantees no padding, so all `size` bytes
        // are initialized; the source lives for the duration of the copy.
        let src = unsafe { std::slice::from_raw_parts(self as *const Self as *const u8, size) };
        out.copy_from_slice(src);
    }

    /// Deserialize a value from `bytes`. `bytes.len()` must equal
    /// `size_of::<Self>()`.
    fn read_from(bytes: &[u8]) -> Self {
        let size = std::mem::size_of::<Self>();
        assert_eq!(bytes.len(), size, "Pod::read_from: wrong buffer size");
        let mut value = std::mem::MaybeUninit::<Self>::uninit();
        // SAFETY: every bit pattern is a valid `Self` (Pod contract), and we
        // copy exactly `size` bytes into the (properly aligned) local.
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), value.as_mut_ptr() as *mut u8, size);
            value.assume_init()
        }
    }

    /// Convenience: serialize into a fresh `Vec<u8>`.
    fn to_bytes(&self) -> Vec<u8> {
        let mut v = vec![0u8; std::mem::size_of::<Self>()];
        self.write_to(&mut v);
        v
    }
}

macro_rules! impl_pod_prim {
    ($($t:ty),* $(,)?) => {
        $(
            // SAFETY: primitive integer/float types have no padding and no
            // invalid bit patterns, and alignment ≤ 8 on all supported targets.
            unsafe impl Pod for $t {}
        )*
    };
}

impl_pod_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// SAFETY: arrays of Pod have no padding between elements (array layout is
// contiguous) and inherit element validity and alignment.
unsafe impl<T: Pod, const N: usize> Pod for [T; N] {}

// SAFETY: the unit type has size 0 — trivially valid.
unsafe impl Pod for () {}

/// Pack a slice of Pod values into a byte vector.
pub fn pack_slice<T: Pod>(values: &[T]) -> Vec<u8> {
    let elem = std::mem::size_of::<T>();
    let mut out = vec![0u8; std::mem::size_of_val(values)];
    for (i, v) in values.iter().enumerate() {
        v.write_to(&mut out[i * elem..(i + 1) * elem]);
    }
    out
}

/// Unpack a byte slice into a vector of Pod values. Panics when the byte
/// length is not a multiple of `size_of::<T>()`.
pub fn unpack_slice<T: Pod>(bytes: &[u8]) -> Vec<T> {
    let elem = std::mem::size_of::<T>();
    assert!(
        elem == 0 || bytes.len().is_multiple_of(elem),
        "unpack_slice: {} bytes is not a multiple of element size {}",
        bytes.len(),
        elem
    );
    if elem == 0 {
        return Vec::new();
    }
    bytes.chunks_exact(elem).map(T::read_from).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let x: u64 = 0xDEAD_BEEF_CAFE_F00D;
        assert_eq!(u64::read_from(&x.to_bytes()), x);
        let y: f64 = -1234.5678;
        assert_eq!(f64::read_from(&y.to_bytes()), y);
        let z: i32 = -42;
        assert_eq!(i32::read_from(&z.to_bytes()), z);
    }

    #[test]
    fn roundtrip_arrays() {
        let a = [1.5f64, -2.5, 3.25];
        assert_eq!(<[f64; 3]>::read_from(&a.to_bytes()), a);
    }

    #[test]
    fn pack_unpack_slice() {
        let v = vec![1u64, 2, 3, u64::MAX];
        let bytes = pack_slice(&v);
        assert_eq!(bytes.len(), 32);
        assert_eq!(unpack_slice::<u64>(&bytes), v);
    }

    #[test]
    #[should_panic(expected = "wrong buffer size")]
    fn write_to_wrong_size_panics() {
        let mut buf = [0u8; 3];
        42u64.write_to(&mut buf);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn unpack_misaligned_panics() {
        unpack_slice::<u64>(&[0u8; 7]);
    }
}
