//! Reliable active-message delivery over a faulty wire.
//!
//! With a [`FaultPlan`](crate::faults::FaultPlan) installed, `send_am` no
//! longer pushes straight into the destination inbox. Every frame on a
//! link gets a per-link sequence number, and the link's receiver-side
//! state ([`LinkIn`]) enforces **exactly-once, in-order** delivery:
//!
//! * **drop** — the frame is parked in the link's `lost` queue and
//!   re-offered (retransmitted) by the *destination's* progress engine
//!   ([`Fabric::pump_incoming`], called from `advance()`) with exponential
//!   backoff in pump ticks; after `max_attempts` total attempts the peer
//!   is declared [`PeerUnreachable`] and the job fails instead of hanging;
//! * **duplicate** — the second copy is routed through the dedup window
//!   (everything at or behind `next_expected`, plus the reorder buffer and
//!   limbo) and discarded, counted as a `dup_arrival`;
//! * **reorder / delay** — the frame sits in `limbo` for a deterministic
//!   number of pump ticks; frames that overtake it wait in the
//!   out-of-order buffer and are released in sequence order.
//!
//! Because the fate of every transmission is a pure function of
//! `(seed, src, dst, seq, attempt)` — see `crate::faults::decide` — the
//! retransmit / wire-drop / dup counts of a run are reproducible: they
//! depend on the (deterministic, program-ordered) send sequence, never on
//! thread scheduling. The `reorders` count is the one scheduling-dependent
//! statistic (whether a successor overtakes a held frame depends on when
//! the receiver pumps), so determinism assertions stick to the first
//! three.
//!
//! One-sided RMA takes a different path (`Fabric::rma_gate_slow`): puts,
//! gets and remote atomics are synchronous in this fabric, so a dropped
//! attempt is simply retried inline (re-charging the synthetic wire),
//! without dup/reorder modes — duplicating a `fetch_add` would change the
//! result, and a real NIC's RDMA engine retries lost packets below the
//! atomicity layer for exactly that reason.

use crate::fabric::{AmMessage, Fabric};
use crate::faults::{decide, Fate, FaultPlan};
use crate::Rank;
use rupcxx_trace::EventKind;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use rupcxx_util::sync::Mutex;

/// High bit distinguishing RMA sequence numbers from AM sequence numbers,
/// so the two ops streams draw independent fates on the same link.
const RMA_SEQ_TAG: u64 = 1 << 63;

/// A peer was declared dead: one frame exhausted its transmission-attempt
/// budget. Reported by [`Fabric::failure`] and surfaced by the runtime's
/// blocking waits instead of spinning forever.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PeerUnreachable {
    /// Sending rank of the abandoned frame.
    pub src: Rank,
    /// Destination rank that could not be reached.
    pub dst: Rank,
    /// Link sequence number of the abandoned frame.
    pub seq: u64,
    /// Transmission attempts made before giving up.
    pub attempts: u32,
}

impl std::fmt::Display for PeerUnreachable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "peer {} unreachable from rank {}: frame seq={} abandoned after {} transmission attempts",
            self.dst,
            self.src,
            self.seq & !RMA_SEQ_TAG,
            self.attempts
        )
    }
}

impl std::error::Error for PeerUnreachable {}

/// A delivered frame being held back by a reorder/delay fate.
struct LimboFrame {
    seq: u64,
    msg: AmMessage,
    /// Pump tick at which the frame is released to the dedup window.
    release_tick: u64,
}

/// A dropped frame awaiting retransmission.
struct LostFrame {
    seq: u64,
    msg: AmMessage,
    /// Attempt number of the *next* transmission.
    attempt: u32,
    /// Pump tick at which the retransmission happens (exponential
    /// backoff: `1 << attempt` ticks after the drop).
    due_tick: u64,
}

/// Receiver-side state of one directed link (`src -> owner`). The same
/// mutex also serializes the sender's sequence assignment, which keeps
/// per-link seq numbers in program order — the root of fate determinism.
pub(crate) struct LinkIn {
    /// Next sequence number the sender will stamp on this link.
    next_seq: u64,
    /// Next in-order sequence number the receiver will release.
    next_expected: u64,
    /// Progress-engine pump counter for this link.
    tick: u64,
    /// Frames that arrived ahead of a missing predecessor.
    ooo: BTreeMap<u64, AmMessage>,
    /// Frames held back by a reorder/delay fate.
    limbo: Vec<LimboFrame>,
    /// Dropped frames awaiting retransmission.
    lost: Vec<LostFrame>,
}

impl LinkIn {
    fn new() -> Self {
        LinkIn {
            next_seq: 0,
            next_expected: 0,
            tick: 0,
            ooo: BTreeMap::new(),
            limbo: Vec::new(),
            lost: Vec::new(),
        }
    }

    fn is_quiescent(&self) -> bool {
        self.ooo.is_empty() && self.limbo.is_empty() && self.lost.is_empty()
    }

    /// True when `seq` has already been seen (delivered, buffered or in
    /// flight through limbo/lost) — the dedup window.
    fn already_seen(&self, seq: u64) -> bool {
        seq < self.next_expected
            || self.ooo.contains_key(&seq)
            || self.limbo.iter().any(|f| f.seq == seq)
            || self.lost.iter().any(|f| f.seq == seq)
    }
}

/// Per-endpoint reliable-delivery state, allocated only when a fault plan
/// is installed (the faults-off hot path never touches it).
pub(crate) struct AmChannel {
    /// Incoming-link state, indexed by source rank.
    links: Box<[Mutex<LinkIn>]>,
    /// Outgoing RMA sequence counters, indexed by target rank.
    rma_seq: Box<[AtomicU64]>,
}

impl AmChannel {
    pub(crate) fn new(ranks: usize) -> Self {
        AmChannel {
            links: (0..ranks).map(|_| Mutex::new(LinkIn::new())).collect(),
            rma_seq: (0..ranks).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

impl Fabric {
    /// Reliable AM send path (faults installed, `src != dst`): stamp a
    /// per-link sequence number and offer the frame to the wire. The
    /// whole [`AmMessage`] (clock snapshot included) rides through
    /// limbo/lost/retransmit, so redelivered frames keep their original
    /// happens-before stamp.
    pub(crate) fn am_transmit(&self, src: Rank, dst: Rank, msg: AmMessage) {
        debug_assert_eq!(msg.src, src);
        let plan = self.faults.as_ref().expect("am_transmit without faults");
        let ch = self.endpoints[dst]
            .reliable
            .as_ref()
            .expect("faulty fabric without AmChannel");
        let mut link = ch.links[src].lock();
        let seq = link.next_seq;
        link.next_seq += 1;
        self.offer(&mut link, plan, dst, seq, msg, 0);
    }

    /// One transmission attempt of `seq` on `msg.src -> dst`, dispatching
    /// on its (pure, replayable) fate.
    fn offer(
        &self,
        link: &mut LinkIn,
        plan: &FaultPlan,
        dst: Rank,
        seq: u64,
        msg: AmMessage,
        attempt: u32,
    ) {
        let src = msg.src;
        match decide(plan, src, dst, seq, attempt) {
            Fate::Drop => {
                self.endpoints[src]
                    .stats
                    .wire_drops
                    .fetch_add(1, Ordering::Relaxed);
                self.endpoints[src]
                    .trace
                    .instant(EventKind::WireDrop, dst as i32, 0);
                if attempt + 1 >= plan.max_attempts {
                    // Budget exhausted: abandon the frame and fail the
                    // job visibly rather than retrying forever.
                    self.mark_unreachable(PeerUnreachable {
                        src,
                        dst,
                        seq,
                        attempts: attempt + 1,
                    });
                } else {
                    let due_tick = link.tick + (1u64 << attempt.min(10));
                    link.lost.push(LostFrame {
                        seq,
                        msg,
                        attempt: attempt + 1,
                        due_tick,
                    });
                }
            }
            Fate::Deliver {
                duplicate,
                hold_ticks,
            } => {
                if hold_ticks > 0 {
                    link.limbo.push(LimboFrame {
                        seq,
                        msg,
                        release_tick: link.tick + hold_ticks as u64,
                    });
                } else {
                    self.link_accept(link, src, dst, seq, Some(msg));
                }
                if duplicate {
                    // The wire also produced a second copy; it trails the
                    // original, so the dedup window always catches it.
                    self.link_accept(link, src, dst, seq, None);
                }
            }
        }
    }

    /// Receiver-side arrival of `seq`: dedup, then in-order release into
    /// the inbox (buffering out-of-order frames). `msg == None` is a
    /// duplicate wire copy, carried without payload because fates are
    /// decided synchronously — it must land in the dedup window.
    fn link_accept(
        &self,
        link: &mut LinkIn,
        src: Rank,
        dst: Rank,
        seq: u64,
        msg: Option<AmMessage>,
    ) {
        if link.already_seen(seq) {
            self.endpoints[dst]
                .stats
                .dup_arrivals
                .fetch_add(1, Ordering::Relaxed);
            self.endpoints[dst]
                .trace
                .instant(EventKind::AmDup, src as i32, 0);
            return;
        }
        let msg = msg.expect("duplicate wire copy escaped the dedup window");
        if seq == link.next_expected {
            self.endpoints[dst].inbox.push(msg);
            link.next_expected += 1;
            // Release the in-order run the arrival may have completed.
            while let Some(m) = link.ooo.remove(&link.next_expected) {
                self.endpoints[dst].inbox.push(m);
                link.next_expected += 1;
            }
        } else {
            // A predecessor is still in limbo or lost: park in order.
            self.endpoints[dst]
                .stats
                .reorders
                .fetch_add(1, Ordering::Relaxed);
            link.ooo.insert(seq, msg);
        }
    }

    /// Drive the reliable layer for rank `me`'s incoming links: advance
    /// each link's tick, release limbo frames whose hold expired, and
    /// retransmit lost frames whose backoff elapsed. Called from the
    /// runtime's `advance()`; returns the number of frames acted on so
    /// the progress engine can report work.
    pub fn pump_incoming(&self, me: Rank) -> usize {
        let Some(plan) = &self.faults else { return 0 };
        let ch = self.endpoints[me]
            .reliable
            .as_ref()
            .expect("faulty fabric without AmChannel");
        let mut work = 0;
        for src in 0..self.endpoints.len() {
            if src == me {
                continue;
            }
            let mut link = ch.links[src].lock();
            if link.limbo.is_empty() && link.lost.is_empty() {
                continue;
            }
            link.tick += 1;
            let now = link.tick;
            let (mut due, keep): (Vec<_>, Vec<_>) = std::mem::take(&mut link.limbo)
                .into_iter()
                .partition(|f| f.release_tick <= now);
            link.limbo = keep;
            // Seq order within a tick, so simultaneous releases can't
            // invert each other.
            due.sort_by_key(|f| f.seq);
            for f in due {
                self.link_accept(&mut link, src, me, f.seq, Some(f.msg));
                work += 1;
            }
            let (mut due, keep): (Vec<_>, Vec<_>) = std::mem::take(&mut link.lost)
                .into_iter()
                .partition(|f| f.due_tick <= now);
            link.lost = keep;
            due.sort_by_key(|f| f.seq);
            for f in due {
                self.endpoints[src]
                    .stats
                    .retransmits
                    .fetch_add(1, Ordering::Relaxed);
                self.endpoints[src]
                    .trace
                    .instant(EventKind::AmRetransmit, me as i32, 0);
                if let Some(p) = &self.endpoints[src].prof {
                    // The frame's span rides its message, so the profiler
                    // ties the retransmit back to the original injection.
                    let span = f.msg.prof.map_or(0, |s| s.id);
                    p.record_retransmit(span, me as i32, f.attempt as u64);
                }
                self.offer(&mut link, plan, me, f.seq, f.msg, f.attempt);
                work += 1;
            }
        }
        work
    }

    /// True when no frame destined for `me` is still buffered, held or
    /// awaiting retransmission — by the reliable layer *or* the
    /// controlled scheduler. Teardown drains until this holds, so
    /// end-of-job counter snapshots are stable. The scheduler's parked
    /// frames are counted fabric-wide (a sound superset): quiescence is
    /// only ever asserted globally (deadlock scan's quiet check,
    /// teardown), so the coarser probe never reports quiet too early.
    pub fn links_quiescent(&self, me: Rank) -> bool {
        if self.sched_pending() != 0 {
            return false;
        }
        match &self.endpoints[me].reliable {
            None => true,
            Some(ch) => ch.links.iter().all(|l| l.lock().is_quiescent()),
        }
    }

    /// Cheap check used by blocking waits: has any link failed?
    #[inline]
    pub fn has_failed(&self) -> bool {
        self.failed.load(Ordering::Relaxed)
    }

    /// The first [`PeerUnreachable`] failure, if any link died.
    pub fn failure(&self) -> Option<PeerUnreachable> {
        if !self.failed.load(Ordering::Acquire) {
            return None;
        }
        *self.failure_detail.lock()
    }

    pub(crate) fn mark_unreachable(&self, e: PeerUnreachable) {
        let mut detail = self.failure_detail.lock();
        if detail.is_none() {
            *detail = Some(e);
        }
        drop(detail);
        self.failed.store(true, Ordering::Release);
        // Postmortem: record the death on the initiator's causal stream
        // and dump every rank's flight-recorder tail (once per job).
        self.prof_unreachable(e.src, e.dst, e.attempts as u64);
        self.prof_dump_flight(&e.to_string());
    }

    /// Fault gate for one-sided RMA (`initiator != target`, plan
    /// installed): draw a fate per attempt and retry drops inline,
    /// re-charging the synthetic wire each time, until delivery or the
    /// attempt budget dies.
    ///
    /// # Panics
    /// Panics with the [`PeerUnreachable`] message once `max_attempts`
    /// transmissions of the same op have been dropped (after recording
    /// the failure for [`Fabric::failure`]).
    #[cold]
    pub(crate) fn rma_gate_slow(&self, initiator: Rank, target: Rank, bytes: usize) {
        let plan = self.faults.as_ref().expect("rma_gate without faults");
        let ch = self.endpoints[initiator]
            .reliable
            .as_ref()
            .expect("faulty fabric without AmChannel");
        let seq = ch.rma_seq[target].fetch_add(1, Ordering::Relaxed) | RMA_SEQ_TAG;
        let mut attempt = 0u32;
        loop {
            match decide(plan, initiator, target, seq, attempt) {
                // Dup/reorder don't apply to one-sided RMA — replaying a
                // remote atomic would change its result. Loss is the only
                // modeled failure; anything delivered is done.
                Fate::Deliver { .. } => return,
                Fate::Drop => {
                    let stats = &self.endpoints[initiator].stats;
                    stats.wire_drops.fetch_add(1, Ordering::Relaxed);
                    self.endpoints[initiator]
                        .trace
                        .instant(EventKind::WireDrop, target as i32, 0);
                    attempt += 1;
                    if attempt >= plan.max_attempts {
                        let e = PeerUnreachable {
                            src: initiator,
                            dst: target,
                            seq,
                            attempts: attempt,
                        };
                        self.mark_unreachable(e);
                        panic!("{e}");
                    }
                    stats.retransmits.fetch_add(1, Ordering::Relaxed);
                    self.endpoints[initiator].trace.instant(
                        EventKind::AmRetransmit,
                        target as i32,
                        0,
                    );
                    if let Some(p) = &self.endpoints[initiator].prof {
                        // RMA ops carry no wire span (they are synchronous);
                        // span 0 marks an initiator-side inline retry.
                        p.record_retransmit(0, target as i32, attempt as u64);
                    }
                    // The retry traverses the wire again.
                    self.wire(initiator, target, bytes);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{AmPayload, FabricConfig};
    use crate::faults::LinkRule;
    use crate::GlobalAddr;
    use rupcxx_trace::TraceConfig;
    use rupcxx_util::Bytes;
    use std::sync::Arc;

    fn faulty_fabric(ranks: usize, plan: FaultPlan) -> Arc<Fabric> {
        Fabric::new(FabricConfig {
            ranks,
            segment_bytes: 4096,
            simnet: None,
            trace: TraceConfig::off(),
            faults: Some(plan),
            agg: None,
            check: None,
            cache: None,
            prof: None,
            schedule: None,
            remote: None,
        })
    }

    fn send_handler(f: &Fabric, src: Rank, dst: Rank, id: u16) {
        f.send_am(
            src,
            dst,
            AmPayload::Handler {
                id,
                args: Bytes::new(),
            },
        );
    }

    /// Pump + drain until the link is quiescent, returning delivered ids.
    fn pump_to_quiescence(f: &Fabric, me: Rank) -> Vec<u16> {
        let mut got = Vec::new();
        for _ in 0..10_000 {
            f.pump_incoming(me);
            while let Some(m) = f.endpoint(me).try_recv() {
                if let AmPayload::Handler { id, .. } = m.payload {
                    got.push(id);
                }
            }
            if f.links_quiescent(me) && f.endpoint(me).pending() == 0 {
                return got;
            }
        }
        panic!("link did not quiesce");
    }

    #[test]
    fn lossy_link_delivers_exactly_once_in_order() {
        let f = faulty_fabric(2, FaultPlan::new(42).drop(0.3).dup(0.2).reorder(0.3));
        for id in 0..100u16 {
            send_handler(&f, 0, 1, id);
        }
        let got = pump_to_quiescence(&f, 1);
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        let src = f.endpoint(0).stats.snapshot();
        let dst = f.endpoint(1).stats.snapshot();
        assert!(src.wire_drops > 0, "30% drop plan must drop something");
        assert_eq!(
            src.retransmits, src.wire_drops,
            "every drop is retried exactly once at quiescence"
        );
        assert!(
            dst.dup_arrivals > 0,
            "20% dup plan must duplicate something"
        );
        assert_eq!(dst.ams_handled, 100);
    }

    #[test]
    fn fault_counts_identical_across_runs() {
        let run = || {
            let f = faulty_fabric(2, FaultPlan::new(7).drop(0.25).dup(0.1).delay(0.2));
            for id in 0..200u16 {
                send_handler(&f, 0, 1, id);
            }
            let got = pump_to_quiescence(&f, 1);
            assert_eq!(got.len(), 200);
            let c = f.total_counts();
            (c.wire_drops, c.retransmits, c.dup_arrivals)
        };
        assert_eq!(run(), run(), "same seed, same fault counts");
    }

    #[test]
    fn different_seeds_differ() {
        let drops = |seed| {
            let f = faulty_fabric(2, FaultPlan::new(seed).drop(0.3));
            for id in 0..100u16 {
                send_handler(&f, 0, 1, id);
            }
            pump_to_quiescence(&f, 1);
            f.total_counts().wire_drops
        };
        assert_ne!(drops(1), drops(2));
    }

    #[test]
    fn dead_link_reports_peer_unreachable() {
        let f = faulty_fabric(
            2,
            FaultPlan::new(1)
                .link(
                    0,
                    1,
                    LinkRule {
                        drop_ppm: 1_000_000,
                        ..Default::default()
                    },
                )
                .max_attempts(4),
        );
        assert!(f.failure().is_none());
        send_handler(&f, 0, 1, 0);
        // Drive the receiver until the attempt budget is exhausted.
        for _ in 0..100 {
            f.pump_incoming(1);
            if f.has_failed() {
                break;
            }
        }
        let e = f.failure().expect("dead link must be reported");
        assert_eq!((e.src, e.dst), (0, 1));
        assert_eq!(e.attempts, 4);
        assert!(e.to_string().contains("unreachable"));
        assert!(f.links_quiescent(1), "abandoned frame leaves no residue");
        assert_eq!(f.endpoint(0).stats.snapshot().wire_drops, 4);
    }

    #[test]
    fn reverse_direction_unaffected_by_dead_link() {
        let f = faulty_fabric(
            2,
            FaultPlan::new(3)
                .link(
                    0,
                    1,
                    LinkRule {
                        drop_ppm: 1_000_000,
                        ..Default::default()
                    },
                )
                .max_attempts(2),
        );
        for id in 0..10u16 {
            send_handler(&f, 1, 0, id);
        }
        assert_eq!(pump_to_quiescence(&f, 0), (0..10).collect::<Vec<_>>());
        assert!(!f.has_failed());
    }

    #[test]
    fn rma_retries_through_drops_and_completes() {
        let f = faulty_fabric(2, FaultPlan::new(9).drop(0.4));
        for i in 0..100u64 {
            f.put_u64(0, GlobalAddr::new(1, (i % 64) as usize * 8), i);
            let _ = f.get_u64(0, GlobalAddr::new(1, (i % 64) as usize * 8));
        }
        let c = f.endpoint(0).stats.snapshot();
        assert_eq!(c.puts, 100);
        assert_eq!(c.gets, 100);
        assert!(c.wire_drops > 0, "40% drop plan must hit RMA");
        assert_eq!(c.retransmits, c.wire_drops);
        // The data still landed despite the drops (i=99 -> slot 99 % 64).
        assert_eq!(f.get_u64(1, GlobalAddr::new(1, 35 * 8)), 99);
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn rma_dead_link_panics_with_report() {
        let f = faulty_fabric(
            2,
            FaultPlan::new(5)
                .link(
                    0,
                    1,
                    LinkRule {
                        drop_ppm: 1_000_000,
                        ..Default::default()
                    },
                )
                .max_attempts(3),
        );
        f.put_u64(0, GlobalAddr::new(1, 0), 1);
    }

    #[test]
    fn local_traffic_never_faulted() {
        let f = faulty_fabric(2, FaultPlan::new(2).drop(1.0).max_attempts(1));
        // Local RMA and local AMs bypass the wire entirely.
        f.put_u64(0, GlobalAddr::new(0, 0), 7);
        assert_eq!(f.get_u64(0, GlobalAddr::new(0, 0)), 7);
        send_handler(&f, 0, 0, 1);
        assert!(f.endpoint(0).try_recv().is_some());
        assert!(!f.has_failed());
        assert_eq!(f.total_counts().wire_drops, 0);
    }

    #[test]
    fn clean_plan_with_channel_is_transparent() {
        // A plan that faults only 0->1 leaves 1->0 on the reliable path
        // but fault-free: frames flow through seq/dedup with no drops.
        let f = faulty_fabric(
            2,
            FaultPlan::new(8).link(
                0,
                1,
                LinkRule {
                    drop_ppm: 500_000,
                    ..Default::default()
                },
            ),
        );
        for id in 0..20u16 {
            send_handler(&f, 1, 0, id);
        }
        // No pump needed: clean deliveries release immediately.
        let mut got = Vec::new();
        while let Some(m) = f.endpoint(0).try_recv() {
            if let AmPayload::Handler { id, .. } = m.payload {
                got.push(id);
            }
        }
        assert_eq!(got, (0..20).collect::<Vec<_>>());
    }
}
