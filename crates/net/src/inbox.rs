//! Sharded AM inbox: per-thread injection shards with a global sequence
//! stamp.
//!
//! A single mutexed queue serializes every producer thread of a rank on
//! one lock. The sharded inbox gives each injecting thread its own shard
//! (thread → shard by a cheap thread-id hash), so concurrent producers
//! touch disjoint mutexes; the consumer sweeps the shards and pops the
//! globally oldest message (smallest sequence stamp), which keeps delivery
//! order identical to the old single queue wherever order was defined at
//! all:
//!
//! - A single producer's pushes get monotonically increasing stamps into
//!   one shard, so per-(src,dst) FIFO — the fabric's ordering guarantee —
//!   is preserved exactly.
//! - In single-threaded and `RUPCXX_SCHEDULE`-controlled runs, all pushes
//!   come from one thread at a time, stamps equal arrival order, and the
//!   min-stamp sweep reproduces the old FIFO bit-for-bit (replay, chaos
//!   and conformance stay deterministic).
//! - Under genuinely concurrent injection the old queue's cross-producer
//!   order was mutex-arrival nondeterminism; the stamp order is one valid
//!   linearization of the same race.

use rupcxx_util::sync::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of injection shards per inbox (power of two; the thread hash is
/// masked). Eight covers the "8 threads per rank" injection target while
/// keeping the consumer's sweep short.
pub const INBOX_SHARDS: usize = 8;

static NEXT_THREAD_ID: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Dense per-thread id, assigned on first use; masked into a shard
    /// index so long-lived producer threads spread across shards.
    static THREAD_SHARD: usize =
        NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed) & (INBOX_SHARDS - 1);
}

/// The calling thread's home shard index.
#[inline]
#[must_use]
pub fn thread_shard() -> usize {
    THREAD_SHARD.with(|s| *s)
}

#[derive(Debug)]
struct Shard<T> {
    q: Mutex<VecDeque<(u64, T)>>,
    /// Mirror of `q.len()` readable without the lock, so the consumer's
    /// sweep skips empty shards with one relaxed load each.
    len: AtomicUsize,
}

impl<T> Default for Shard<T> {
    fn default() -> Self {
        Shard {
            q: Mutex::new(VecDeque::new()),
            len: AtomicUsize::new(0),
        }
    }
}

/// An unbounded MPMC FIFO sharded by injecting thread (see module docs).
/// API-compatible with the old `SegQueue` inbox: `push`/`pop`/`len`/
/// `is_empty`/`drain`.
#[derive(Debug)]
pub struct ShardedInbox<T> {
    shards: Box<[Shard<T>]>,
    next_seq: AtomicU64,
}

impl<T> Default for ShardedInbox<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ShardedInbox<T> {
    /// An empty inbox with [`INBOX_SHARDS`] shards.
    #[must_use]
    pub fn new() -> Self {
        ShardedInbox {
            shards: (0..INBOX_SHARDS).map(|_| Shard::default()).collect(),
            next_seq: AtomicU64::new(0),
        }
    }

    /// Enqueue on the calling thread's shard, stamped with the next global
    /// sequence number. Producers on different shards contend only on the
    /// stamp's `fetch_add`, not on a queue lock.
    pub fn push(&self, value: T) {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let shard = &self.shards[thread_shard()];
        let mut q = shard.q.lock();
        q.push_back((seq, value));
        shard.len.store(q.len(), Ordering::Release);
    }

    /// Dequeue the globally oldest message: sweep the non-empty shards and
    /// pop the front with the smallest stamp. The guard of the current
    /// best shard is held while the next candidate is examined (at most
    /// two shard locks at once; producers hold exactly one, so no cycle).
    pub fn pop(&self) -> Option<T> {
        type Best<'a, T> = (u64, std::sync::MutexGuard<'a, VecDeque<(u64, T)>>, usize);
        let mut best: Option<Best<'_, T>> = None;
        for (i, shard) in self.shards.iter().enumerate() {
            if shard.len.load(Ordering::Acquire) == 0 {
                continue;
            }
            let q = shard.q.lock();
            match (q.front().map(|(s, _)| *s), &best) {
                (None, _) => {}
                (Some(s), Some((bs, _, _))) if s >= *bs => {}
                (Some(s), _) => best = Some((s, q, i)),
            }
        }
        let (_, mut q, i) = best?;
        let (_, v) = q.pop_front().expect("front observed under the lock");
        self.shards[i].len.store(q.len(), Ordering::Release);
        Some(v)
    }

    /// Number of queued items across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.len.load(Ordering::Acquire))
            .sum()
    }

    /// True when nothing is queued on any shard.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards
            .iter()
            .all(|s| s.len.load(Ordering::Acquire) == 0)
    }

    /// Take every queued item in one critical section (all shard locks
    /// held in index order), merged into global stamp order. Like the old
    /// queue's `drain`, the snapshot is consistent: concurrent pushes are
    /// all-in or all-after.
    pub fn drain(&self) -> Vec<T> {
        let mut guards: Vec<_> = self.shards.iter().map(|s| s.q.lock()).collect();
        let total: usize = guards.iter().map(|g| g.len()).sum();
        let mut stamped = Vec::with_capacity(total);
        for (g, shard) in guards.iter_mut().zip(self.shards.iter()) {
            stamped.extend(g.drain(..));
            shard.len.store(0, Ordering::Release);
        }
        stamped.sort_by_key(|(s, _)| *s);
        stamped.into_iter().map(|(_, v)| v).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_single_thread() {
        let q = ShardedInbox::new();
        assert!(q.is_empty());
        for i in 0..10 {
            q.push(i);
        }
        assert_eq!(q.len(), 10);
        for i in 0..10 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn drain_merges_in_stamp_order() {
        let q = ShardedInbox::new();
        for i in 0..7 {
            q.push(i);
        }
        assert_eq!(q.drain(), (0..7).collect::<Vec<_>>());
        assert!(q.is_empty());
        assert_eq!(q.drain(), Vec::<i32>::new());
    }

    #[test]
    fn concurrent_producers_lose_nothing_and_keep_per_producer_order() {
        let q = Arc::new(ShardedInbox::new());
        let producers = 8;
        let per = 500;
        let handles: Vec<_> = (0..producers)
            .map(|t| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for i in 0..per {
                        q.push((t, i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(q.len(), producers * per);
        let mut last = vec![-1i64; producers];
        let mut count = 0;
        while let Some((t, i)) = q.pop() {
            assert!(
                (i as i64) > last[t],
                "producer {t} delivered {i} after {}",
                last[t]
            );
            last[t] = i as i64;
            count += 1;
        }
        assert_eq!(count, producers * per);
    }

    #[test]
    fn pop_takes_globally_oldest_across_shards() {
        // Force items onto different shards by pushing from different
        // threads, then verify pop returns stamp order.
        let q = Arc::new(ShardedInbox::new());
        for v in 0..4 {
            let q = q.clone();
            std::thread::spawn(move || q.push(v)).join().unwrap();
        }
        let got: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
