//! Globally addressable memory segments.
//!
//! Each rank owns one [`Segment`]: a fixed-size arena of `AtomicU64` words.
//! All remote memory operations (the `put`/`get` in [`crate::Fabric`])
//! resolve to relaxed atomic loads and stores on these words, so data races
//! between ranks are *defined*: a racing read observes some previously
//! written value. This is a safe-Rust realization of the paper's relaxed
//! memory-consistency model (§III-F): "memory operations issued from
//! different threads can be executed in arbitrary order unless explicit
//! synchronization is specified".
//!
//! Byte-granular accesses that touch only part of a word use a CAS loop so
//! that concurrent writes to *different bytes of the same word* never lose
//! updates; full-word accesses take the fast path of a single relaxed
//! load/store.

use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-size, byte-addressable arena backed by `AtomicU64` words.
pub struct Segment {
    words: Box<[AtomicU64]>,
    len: usize,
}

impl Segment {
    /// Create a zero-initialized segment of `len` bytes (rounded up to a
    /// whole number of 8-byte words).
    pub fn new(len: usize) -> Self {
        let nwords = len.div_ceil(8);
        let words = (0..nwords).map(|_| AtomicU64::new(0)).collect();
        Segment { words, len }
    }

    /// Usable size in bytes.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the segment has zero capacity.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn check(&self, offset: usize, n: usize) {
        assert!(
            offset.checked_add(n).is_some_and(|end| end <= self.len),
            "segment access out of bounds: offset {offset} len {n} segment {}",
            self.len
        );
    }

    /// Read an aligned u64 (offset must be a multiple of 8).
    #[inline]
    #[must_use]
    pub fn load_u64(&self, offset: usize) -> u64 {
        debug_assert_eq!(offset % 8, 0, "load_u64 requires 8-byte alignment");
        self.check(offset, 8);
        self.words[offset / 8].load(Ordering::Relaxed)
    }

    /// Write an aligned u64 (offset must be a multiple of 8).
    #[inline]
    pub fn store_u64(&self, offset: usize, value: u64) {
        debug_assert_eq!(offset % 8, 0, "store_u64 requires 8-byte alignment");
        self.check(offset, 8);
        self.words[offset / 8].store(value, Ordering::Relaxed);
    }

    /// Atomically xor an aligned u64, returning the previous value.
    /// (GUPS-style read-modify-write; the non-atomic UPC kernel is modeled
    /// by a separate load + store pair at the caller's choice.)
    #[inline]
    pub fn fetch_xor_u64(&self, offset: usize, value: u64) -> u64 {
        debug_assert_eq!(offset % 8, 0);
        self.check(offset, 8);
        self.words[offset / 8].fetch_xor(value, Ordering::Relaxed)
    }

    /// Atomically add to an aligned u64, returning the previous value.
    #[inline]
    pub fn fetch_add_u64(&self, offset: usize, value: u64) -> u64 {
        debug_assert_eq!(offset % 8, 0);
        self.check(offset, 8);
        self.words[offset / 8].fetch_add(value, Ordering::Relaxed)
    }

    /// Compare-and-swap on an aligned u64. Returns `Ok(previous)` on success
    /// and `Err(actual)` on failure.
    #[inline]
    pub fn cas_u64(&self, offset: usize, current: u64, new: u64) -> Result<u64, u64> {
        debug_assert_eq!(offset % 8, 0);
        self.check(offset, 8);
        self.words[offset / 8].compare_exchange(current, new, Ordering::AcqRel, Ordering::Acquire)
    }

    /// Read `buf.len()` bytes starting at `offset` into `buf`.
    pub fn read_bytes(&self, offset: usize, buf: &mut [u8]) {
        self.check(offset, buf.len());
        let mut off = offset;
        let mut out = buf;
        // Leading partial word.
        let head = off % 8;
        if head != 0 && !out.is_empty() {
            let take = (8 - head).min(out.len());
            let word = self.words[off / 8].load(Ordering::Relaxed).to_le_bytes();
            out[..take].copy_from_slice(&word[head..head + take]);
            off += take;
            out = &mut out[take..];
        }
        // Full words.
        let mut chunks = out.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.words[off / 8].load(Ordering::Relaxed).to_le_bytes());
            off += 8;
        }
        // Trailing partial word.
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.words[off / 8].load(Ordering::Relaxed).to_le_bytes();
            let n = rest.len();
            rest.copy_from_slice(&word[..n]);
        }
    }

    /// Write `data` starting at `offset`.
    pub fn write_bytes(&self, offset: usize, data: &[u8]) {
        self.check(offset, data.len());
        let mut off = offset;
        let mut input = data;
        let head = off % 8;
        if head != 0 && !input.is_empty() {
            let take = (8 - head).min(input.len());
            self.write_partial_word(off / 8, head, &input[..take]);
            off += take;
            input = &input[take..];
        }
        let mut chunks = input.chunks_exact(8);
        for chunk in &mut chunks {
            let mut w = [0u8; 8];
            w.copy_from_slice(chunk);
            self.words[off / 8].store(u64::from_le_bytes(w), Ordering::Relaxed);
            off += 8;
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            self.write_partial_word(off / 8, 0, rest);
        }
    }

    /// Merge `bytes` into word `widx` at byte position `start` with a CAS
    /// loop, so concurrent writes to other bytes of the word are preserved.
    fn write_partial_word(&self, widx: usize, start: usize, bytes: &[u8]) {
        debug_assert!(start + bytes.len() <= 8);
        let mut mask = [0u8; 8];
        let mut val = [0u8; 8];
        for (i, &b) in bytes.iter().enumerate() {
            mask[start + i] = 0xFF;
            val[start + i] = b;
        }
        let mask = u64::from_le_bytes(mask);
        let val = u64::from_le_bytes(val);
        let word = &self.words[widx];
        let mut cur = word.load(Ordering::Relaxed);
        loop {
            let next = (cur & !mask) | val;
            match word.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Raw pointer to the aligned word at `offset`, bounds-checked for
    /// `bytes` addressable bytes behind it. This is the privatization
    /// escape hatch under `GlobalPtr::local_slice` and friends: the word
    /// fast paths above stay atomic, while a privatized phase reads and
    /// writes through plain references derived from this pointer.
    ///
    /// The caller must uphold the PGAS ownership discipline: while any
    /// reference derived from this pointer is live, no other rank may
    /// access the range (separate such phases with `barrier()`/`fence()`,
    /// exactly as the paper's relaxed memory model requires for
    /// conflicting accesses).
    #[must_use]
    pub fn privatize_ptr(&self, offset: usize, bytes: usize) -> *mut u64 {
        assert_eq!(offset % 8, 0, "privatized access requires 8-byte alignment");
        self.check(offset, bytes);
        self.words[offset / 8].as_ptr()
    }

    /// Zero a byte range.
    pub fn zero(&self, offset: usize, n: usize) {
        // Reuse write_bytes in chunks to avoid a large temporary.
        const CHUNK: usize = 4096;
        let zeros = [0u8; CHUNK];
        let mut done = 0;
        while done < n {
            let take = CHUNK.min(n - done);
            self.write_bytes(offset + done, &zeros[..take]);
            done += take;
        }
    }
}

impl std::fmt::Debug for Segment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Segment").field("len", &self.len).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_u64_roundtrip() {
        let s = Segment::new(64);
        s.store_u64(8, 0x0123_4567_89AB_CDEF);
        assert_eq!(s.load_u64(8), 0x0123_4567_89AB_CDEF);
        assert_eq!(s.load_u64(0), 0);
    }

    #[test]
    fn byte_roundtrip_unaligned() {
        let s = Segment::new(64);
        let data: Vec<u8> = (0..23).collect();
        s.write_bytes(3, &data);
        let mut out = vec![0u8; 23];
        s.read_bytes(3, &mut out);
        assert_eq!(out, data);
        // Bytes outside the range must be untouched (zero).
        let mut head = [0u8; 3];
        s.read_bytes(0, &mut head);
        assert_eq!(head, [0, 0, 0]);
    }

    #[test]
    fn partial_word_writes_preserve_neighbors() {
        let s = Segment::new(8);
        s.write_bytes(0, &[0xAA; 8]);
        s.write_bytes(2, &[0xBB; 3]);
        let mut out = [0u8; 8];
        s.read_bytes(0, &mut out);
        assert_eq!(out, [0xAA, 0xAA, 0xBB, 0xBB, 0xBB, 0xAA, 0xAA, 0xAA]);
    }

    #[test]
    fn fetch_xor_and_add() {
        let s = Segment::new(16);
        s.store_u64(0, 0b1010);
        assert_eq!(s.fetch_xor_u64(0, 0b0110), 0b1010);
        assert_eq!(s.load_u64(0), 0b1100);
        assert_eq!(s.fetch_add_u64(8, 5), 0);
        assert_eq!(s.load_u64(8), 5);
    }

    #[test]
    fn cas_success_and_failure() {
        let s = Segment::new(8);
        s.store_u64(0, 7);
        assert_eq!(s.cas_u64(0, 7, 9), Ok(7));
        assert_eq!(s.cas_u64(0, 7, 11), Err(9));
        assert_eq!(s.load_u64(0), 9);
    }

    #[test]
    fn zero_range() {
        let s = Segment::new(32);
        s.write_bytes(0, &[0xFF; 32]);
        s.zero(5, 20);
        let mut out = [0u8; 32];
        s.read_bytes(0, &mut out);
        assert!(out[..5].iter().all(|&b| b == 0xFF));
        assert!(out[5..25].iter().all(|&b| b == 0));
        assert!(out[25..].iter().all(|&b| b == 0xFF));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_read_panics() {
        let s = Segment::new(8);
        let mut buf = [0u8; 9];
        s.read_bytes(0, &mut buf);
    }

    #[test]
    fn concurrent_byte_writes_do_not_lose_updates() {
        // Two threads write disjoint bytes of the same word repeatedly.
        let s = std::sync::Arc::new(Segment::new(8));
        let s1 = s.clone();
        let s2 = s.clone();
        let t1 = std::thread::spawn(move || {
            for _ in 0..10_000 {
                s1.write_bytes(0, &[0x11; 4]);
            }
        });
        let t2 = std::thread::spawn(move || {
            for _ in 0..10_000 {
                s2.write_bytes(4, &[0x22; 4]);
            }
        });
        t1.join().unwrap();
        t2.join().unwrap();
        let mut out = [0u8; 8];
        s.read_bytes(0, &mut out);
        assert_eq!(out, [0x11, 0x11, 0x11, 0x11, 0x22, 0x22, 0x22, 0x22]);
    }

    #[test]
    fn privatize_ptr_aliases_the_words() {
        let s = Segment::new(32);
        s.store_u64(8, 77);
        let p = s.privatize_ptr(8, 16);
        // One exclusive accessor, no concurrent segment traffic.
        unsafe {
            assert_eq!(*p, 77);
            *p.add(1) = 99;
        }
        assert_eq!(s.load_u64(16), 99);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn privatize_ptr_checks_bounds() {
        let s = Segment::new(16);
        let _ = s.privatize_ptr(8, 16);
    }

    #[test]
    #[should_panic(expected = "alignment")]
    fn privatize_ptr_checks_alignment() {
        let s = Segment::new(16);
        let _ = s.privatize_ptr(4, 8);
    }

    #[test]
    fn empty_segment() {
        let s = Segment::new(0);
        assert!(s.is_empty());
        s.read_bytes(0, &mut []);
        s.write_bytes(0, &[]);
    }
}
