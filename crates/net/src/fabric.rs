//! The fabric: N endpoints with one-sided RMA and active messages.
//!
//! A [`Fabric`] is shared (via `Arc`) by all rank threads. Operations name
//! the *initiating* rank explicitly so the fabric can attribute traffic to
//! the right endpoint's counters and distinguish local from remote accesses.
//!
//! One-sided RMA (`put*`/`get*`) writes directly into the target segment —
//! the target CPU is never involved, mirroring RDMA hardware. Active
//! messages are enqueued on the destination endpoint's inbox and executed by
//! the destination's progress engine (`rupcxx-runtime`'s `advance()`), which
//! mirrors GASNet's AM + polling model.

use crate::aggregate::{AggConfig, AggState};
use crate::cache::{CacheConfig, CacheState};
use crate::conduit::wire::RmwOp;
use crate::conduit::RemoteConfig;
use crate::faults::FaultPlan;
use crate::inbox::ShardedInbox;
use crate::reliable::{AmChannel, PeerUnreachable};
use crate::remote::RemoteFabric;
use crate::schedule::{SchedState, ScheduleConfig};
use crate::segment::Segment;
use crate::stats::{CommCounts, CommStats};
use crate::Rank;
use rupcxx_check::{AccessKind, CheckConfig, Checker, Stamp};
use rupcxx_trace::{EventKind, ProfConfig, ProfKind, ProfSpan, ProfState, RankTrace, TraceConfig};
use rupcxx_util::sync::Mutex;
use rupcxx_util::Bytes;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// An address in the global address space: a rank plus a byte offset into
/// that rank's segment, packed into one 64-bit word — rank in the high
/// [`GlobalAddr::RANK_BITS`], offset in the low [`GlobalAddr::OFFSET_BITS`]
/// (the hardware-address-mapping layout: owner extraction is one shift,
/// offset extraction one mask, no branches). `rupcxx::GlobalPtr<T>` wraps
/// this with a type.
///
/// Capacity limits of the packing: at most [`GlobalAddr::MAX_RANKS`] ranks
/// (65 536) and segments up to [`GlobalAddr::MAX_OFFSET`] bytes
/// (256 TiB − 1), both debug-checked at construction. The derived `Ord` on
/// the packed word is identical to the old two-field struct's
/// rank-then-offset lexicographic order because rank occupies the high
/// bits.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalAddr(u64);

impl GlobalAddr {
    /// Bits reserved for the owning rank (high bits of the word).
    pub const RANK_BITS: u32 = 16;
    /// Bits reserved for the byte offset (low bits of the word).
    pub const OFFSET_BITS: u32 = 64 - Self::RANK_BITS;
    /// Exclusive upper bound on rank ids representable in the packing.
    pub const MAX_RANKS: usize = 1 << Self::RANK_BITS;
    /// Inclusive upper bound on byte offsets (256 TiB − 1).
    pub const MAX_OFFSET: usize = (1 << Self::OFFSET_BITS) - 1;

    /// Construct an address. Debug-asserts that `rank` and `offset` fit
    /// the bitfield; release builds truncate neither (the packing is a
    /// plain shift-or, so out-of-range inputs would corrupt the word —
    /// keep ranks under [`Self::MAX_RANKS`] and segments under
    /// [`Self::MAX_OFFSET`]).
    #[inline]
    #[must_use]
    pub fn new(rank: Rank, offset: usize) -> Self {
        debug_assert!(
            rank < Self::MAX_RANKS,
            "rank {rank} exceeds the {}-bit rank field",
            Self::RANK_BITS
        );
        debug_assert!(
            offset <= Self::MAX_OFFSET,
            "offset {offset} exceeds the {}-bit offset field",
            Self::OFFSET_BITS
        );
        GlobalAddr(((rank as u64) << Self::OFFSET_BITS) | offset as u64)
    }

    /// The owning rank (branch-free: one shift).
    #[inline]
    #[must_use]
    pub fn rank(self) -> Rank {
        (self.0 >> Self::OFFSET_BITS) as Rank
    }

    /// Byte offset into the owning rank's segment (branch-free: one mask).
    #[inline]
    #[must_use]
    pub fn offset(self) -> usize {
        (self.0 & Self::MAX_OFFSET as u64) as usize
    }

    /// The raw packed word (for wire frames and hash keys).
    #[inline]
    #[must_use]
    pub fn packed(self) -> u64 {
        self.0
    }

    /// Reconstruct from a packed word produced by [`Self::packed`].
    #[inline]
    #[must_use]
    pub fn from_packed(word: u64) -> Self {
        GlobalAddr(word)
    }

    /// Address advanced by `bytes`. Debug-asserts the result stays inside
    /// the offset field instead of silently wrapping into the rank bits.
    // Deliberately named like pointer arithmetic; not an `Add` impl
    // because the operand is a byte count, not another address.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    #[must_use]
    pub fn add(self, bytes: usize) -> Self {
        debug_assert!(
            self.offset() + bytes <= Self::MAX_OFFSET,
            "offset {} + {bytes} overflows the {}-bit offset field",
            self.offset(),
            Self::OFFSET_BITS
        );
        GlobalAddr(self.0 + bytes as u64)
    }
}

impl std::fmt::Debug for GlobalAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GlobalAddr")
            .field("rank", &self.rank())
            .field("offset", &self.offset())
            .finish()
    }
}

/// Payload of an active message.
pub enum AmPayload {
    /// A registered-handler invocation: handler id + packed argument bytes.
    /// This is the paper's "pack the task function pointer and its arguments
    /// into a contiguous buffer" path (§IV).
    Handler {
        /// Registered handler id (identical on all ranks).
        id: u16,
        /// Packed arguments.
        args: Bytes,
    },
    /// An opaque boxed task — the in-process shortcut for closure `async`s.
    Task(Box<dyn FnOnce() + Send + 'static>),
    /// A coalesced batch of fine-grained operations from the
    /// per-destination aggregation layer (see [`crate::aggregate`]): one
    /// wire message carrying `count` packed frames, unpacked in order by
    /// the destination in a single inbox pop. The reliable layer treats
    /// it as one sequenced frame, so a retransmit redelivers the whole
    /// batch exactly once.
    Batch {
        /// Packed frames (decode with [`crate::aggregate::BatchReader`]).
        frames: Bytes,
        /// Number of frames packed into `frames`.
        count: u32,
    },
}

impl std::fmt::Debug for AmPayload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AmPayload::Handler { id, args } => f
                .debug_struct("Handler")
                .field("id", id)
                .field("args_len", &args.len())
                .finish(),
            AmPayload::Task(_) => f.write_str("Task(..)"),
            AmPayload::Batch { frames, count } => f
                .debug_struct("Batch")
                .field("count", count)
                .field("bytes", &frames.len())
                .finish(),
        }
    }
}

/// An active message as delivered to the destination.
#[derive(Debug)]
pub struct AmMessage {
    /// Sending rank.
    pub src: Rank,
    /// Payload.
    pub payload: AmPayload,
    /// Sender's vector-clock snapshot at send time, present only when the
    /// happens-before checker is installed. The receiver's progress engine
    /// joins it before running the payload — AM delivery is the
    /// synchronization edge every collective and completion reply is built
    /// on, so this one field gives the checker the whole HB relation.
    pub clock: Option<Stamp>,
    /// Causal span id, present only when the profiler is on. It rides the
    /// message the same way `clock` does — surviving retransmits and
    /// aggregation — so the receiver can join the delivery to the
    /// injecting operation on the sending rank.
    pub prof: Option<ProfSpan>,
}

/// One per-rank endpoint: segment + AM inbox + counters.
pub struct Endpoint {
    /// This rank's globally addressable memory.
    pub segment: Segment,
    pub(crate) inbox: ShardedInbox<AmMessage>,
    /// Traffic counters for operations initiated by this rank.
    pub stats: CommStats,
    /// Structured tracing + metrics for this rank (off by default).
    pub trace: RankTrace,
    /// Reliable-delivery state for this rank's incoming links; allocated
    /// only when the fabric has a fault plan.
    pub(crate) reliable: Option<AmChannel>,
    /// Per-destination aggregation buffers for operations *initiated* by
    /// this rank; allocated only when the fabric has an [`AggConfig`].
    pub(crate) agg: Option<AggState>,
    /// Software read cache for *remote* gets initiated by this rank;
    /// allocated only when the fabric has a [`CacheConfig`].
    pub(crate) cache: Option<CacheState>,
    /// Causal profiler state for this rank; allocated only when the
    /// fabric has a [`ProfConfig`] (`RUPCXX_PROF`).
    pub prof: Option<ProfState>,
    /// Precomputed at construction: every feature that could touch a
    /// word-RMA issued by this rank (simnet, faults, checker, conduit,
    /// trace, read cache) is off, so `put_u64`/`get_u64`/atomics take the
    /// branch-collapsed fast path — one flag load instead of six
    /// scattered `Option` probes.
    pub(crate) rma_fast: bool,
}

impl Endpoint {
    #[allow(clippy::too_many_arguments)]
    fn new(
        rank: usize,
        ranks: usize,
        segment_bytes: usize,
        trace: &TraceConfig,
        faulty: bool,
        agg: Option<&AggConfig>,
        cache: Option<&CacheConfig>,
        prof: Option<&ProfConfig>,
        rma_fast: bool,
    ) -> Self {
        let stats = CommStats::default();
        if prof.is_some() {
            stats.enable_per_dest(ranks);
        }
        Endpoint {
            segment: Segment::new(segment_bytes),
            inbox: ShardedInbox::new(),
            stats,
            trace: RankTrace::new(trace),
            reliable: faulty.then(|| AmChannel::new(ranks)),
            agg: agg.map(|cfg| AggState::new(ranks, cfg.clone())),
            cache: cache.map(|cfg| CacheState::new(cfg.clone())),
            prof: prof.map(|cfg| ProfState::new(rank, cfg)),
            rma_fast,
        }
    }

    /// This rank's software read cache, if one is installed (tests use it
    /// to reach the bypass knob; apps never need it).
    pub fn cache(&self) -> Option<&CacheState> {
        self.cache.as_ref()
    }

    /// Dequeue the next pending active message, if any. Called by the
    /// owner rank's progress engine.
    pub fn try_recv(&self) -> Option<AmMessage> {
        let msg = self.inbox.pop();
        if msg.is_some() {
            self.stats.ams_handled.fetch_add(1, Ordering::Relaxed);
        }
        msg
    }

    /// Number of queued, not-yet-executed active messages.
    ///
    /// This is a racy sample: a concurrent sender or the progress engine
    /// can change the queue between this call and the next. Tests that
    /// need a consistent observation should use [`Endpoint::drain`].
    pub fn pending(&self) -> usize {
        self.inbox.len()
    }

    /// Dequeue *every* pending active message in one consistent snapshot
    /// (single critical section), counting them as handled.
    ///
    /// Unlike a `try_recv`/`pending` loop — which samples the queue
    /// length without a snapshot and can interleave with concurrent
    /// pushes — the returned batch is exactly the queue contents at one
    /// instant, in FIFO order. Intended for tests asserting on delivery
    /// order/content under reordering; the runtime's progress engine
    /// keeps using `try_recv` one message at a time.
    pub fn drain(&self) -> Vec<AmMessage> {
        let msgs = self.inbox.drain();
        if !msgs.is_empty() {
            self.stats
                .ams_handled
                .fetch_add(msgs.len() as u64, Ordering::Relaxed);
        }
        msgs
    }
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("segment", &self.segment)
            .field("pending", &self.inbox.len())
            .finish()
    }
}

/// Synthetic network timing injected into remote operations — turns the
/// host's instantaneous shared memory into a latency/bandwidth-limited
/// "wire", so *measured* runs exhibit the latency-bound behaviour of a
/// real interconnect (complementing the analytic projections of
/// `rupcxx-perfmodel`). The initiating thread busy-waits for the modeled
/// duration, exactly like a blocking RDMA verb.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimNet {
    /// One-way latency charged to every remote operation, in nanoseconds.
    pub latency_ns: u64,
    /// Wire bandwidth in bytes/µs (0 = infinite). 8000 = 8 GB/s.
    pub bytes_per_us: u64,
}

impl SimNet {
    /// A profile resembling a modern HPC NIC (1.3 µs, 8 GB/s).
    pub fn hpc_nic() -> Self {
        SimNet {
            latency_ns: 1300,
            bytes_per_us: 8000,
        }
    }

    #[inline]
    fn charge(&self, bytes: usize) {
        let mut ns = self.latency_ns;
        ns += (bytes as u64 * 1000)
            .checked_div(self.bytes_per_us)
            .unwrap_or(0);
        if ns == 0 {
            return;
        }
        let start = std::time::Instant::now();
        let dur = std::time::Duration::from_nanos(ns);
        while start.elapsed() < dur {
            std::hint::spin_loop();
        }
    }
}

/// Fabric construction parameters.
#[derive(Clone, Debug)]
pub struct FabricConfig {
    /// Number of ranks (endpoints).
    pub ranks: usize,
    /// Segment size per rank, in bytes.
    pub segment_bytes: usize,
    /// Optional synthetic wire timing for remote operations.
    pub simnet: Option<SimNet>,
    /// Tracing/metrics configuration applied to every endpoint.
    pub trace: TraceConfig,
    /// Optional deterministic fault-injection plan (`RUPCXX_FAULTS`).
    /// None (the default) keeps the exact fault-free fast path: AMs go
    /// straight to the destination inbox, RMA never draws a fate.
    pub faults: Option<FaultPlan>,
    /// Optional per-destination aggregation thresholds (`RUPCXX_AGG`).
    /// None (the default) keeps every buffered entry point on the direct
    /// path after one untaken branch, with no buffers allocated.
    pub agg: Option<AggConfig>,
    /// Optional online race/deadlock checker (`RUPCXX_CHECK`). None (the
    /// default) keeps every hook at one untaken branch; with a config the
    /// fabric owns the job's shared [`Checker`] instance.
    pub check: Option<CheckConfig>,
    /// Optional software read cache for remote gets (`RUPCXX_CACHE`).
    /// None (the default) keeps every get on the direct path after one
    /// untaken branch, with no cache allocated.
    pub cache: Option<CacheConfig>,
    /// Optional causal profiler (`RUPCXX_PROF`). None (the default)
    /// keeps every hook at one untaken branch, with no spans on the wire.
    pub prof: Option<ProfConfig>,
    /// Optional controlled delivery schedule (`RUPCXX_SCHEDULE`, see
    /// [`crate::schedule`]). None (the default) keeps the AM delivery
    /// path at one untaken branch with wire traffic bit-for-bit
    /// unchanged. Mutually exclusive with `faults`: the schedule replaces
    /// the fate hash as the source of delivery-order nondeterminism.
    pub schedule: Option<ScheduleConfig>,
    /// Multi-process mode (`RUPCXX_CONDUIT`): this OS process hosts one
    /// rank and reaches the others through a conduit. None (the default)
    /// keeps the in-process fabric — all ranks in one address space, AMs
    /// delivered by direct inbox push (the "loopback conduit").
    pub remote: Option<RemoteConfig>,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            ranks: 4,
            segment_bytes: 16 << 20,
            simnet: None,
            trace: TraceConfig::off(),
            faults: None,
            agg: None,
            check: None,
            cache: None,
            prof: None,
            schedule: None,
            remote: None,
        }
    }
}

/// The communication fabric: all endpoints of an SPMD job.
pub struct Fabric {
    pub(crate) endpoints: Box<[Endpoint]>,
    simnet: Option<SimNet>,
    /// Fault-injection plan; None disables the reliable layer entirely.
    pub(crate) faults: Option<FaultPlan>,
    /// Set once a peer is declared unreachable (checked by blocking
    /// waits via [`Fabric::has_failed`]).
    pub(crate) failed: AtomicBool,
    /// Set once the flight recorder has dumped (one postmortem per job).
    pub(crate) prof_dumped: AtomicBool,
    /// First failure's detail, for [`Fabric::failure`].
    pub(crate) failure_detail: Mutex<Option<PeerUnreachable>>,
    /// The job's shared race/deadlock checker; None disables every hook.
    pub(crate) check: Option<Arc<Checker>>,
    /// Controlled delivery scheduler; None keeps the direct AM path.
    pub(crate) sched: Option<SchedState>,
    /// Conduit transport to out-of-process peers; None = in-process.
    pub(crate) remote: Option<RemoteFabric>,
    /// Segment size every rank was configured with. Equal to
    /// `endpoints[r].segment.len()` in-process; in remote mode the stub
    /// endpoints have zero-sized segments, so remote bounds checks (and
    /// the read cache's line clamping) use this instead.
    pub(crate) seg_bytes: usize,
}

impl Fabric {
    /// Build a fabric per `config`.
    pub fn new(config: FabricConfig) -> Arc<Self> {
        assert!(config.ranks > 0, "fabric needs at least one rank");
        let faults = config.faults.filter(|p| !p.is_noop());
        assert!(
            faults.is_none() || config.schedule.is_none(),
            "fault injection and controlled scheduling are mutually exclusive: \
             both decide AM delivery order"
        );
        assert!(
            config.remote.is_none() || config.schedule.is_none(),
            "the controlled schedule needs every rank's pending queues in one \
             address space: run RUPCXX_SCHEDULE jobs on the loopback conduit"
        );
        let sched = config
            .schedule
            .as_ref()
            .map(|cfg| SchedState::new(config.ranks, cfg));
        // Building the conduit blocks until the whole mesh is up, so by
        // the time any rank's fabric exists its peers are reachable.
        let remote = config
            .remote
            .as_ref()
            .map(|rc| RemoteFabric::new(rc, config.ranks));
        let endpoints = (0..config.ranks)
            .map(|rank| {
                // In remote mode only the hosted rank gets real memory;
                // peers are zero-sized stubs, so any accidental direct
                // access to "their" segment panics out-of-bounds — a
                // built-in detector for layers bypassing the conduit.
                let seg = match &config.remote {
                    Some(rc) if rank != rc.my_rank => 0,
                    _ => config.segment_bytes,
                };
                // Word-RMA fast path: legal only when nothing can observe
                // or reroute the access (see `Endpoint::rma_fast`).
                let rma_fast = config.simnet.is_none()
                    && faults.is_none()
                    && config.check.is_none()
                    && config.remote.is_none()
                    && !config.trace.is_enabled()
                    && config.cache.is_none();
                Endpoint::new(
                    rank,
                    config.ranks,
                    seg,
                    &config.trace,
                    faults.is_some(),
                    config.agg.as_ref(),
                    config.cache.as_ref(),
                    config.prof.as_ref(),
                    rma_fast,
                )
            })
            .collect();
        let check = config
            .check
            .as_ref()
            .map(|cfg| rupcxx_check::build(config.ranks, cfg));
        Arc::new(Fabric {
            endpoints,
            simnet: config.simnet,
            faults,
            failed: AtomicBool::new(false),
            prof_dumped: AtomicBool::new(false),
            failure_detail: Mutex::new(None),
            check,
            sched,
            remote,
            seg_bytes: config.segment_bytes,
        })
    }

    /// The installed checker, if any (the runtime joins message clocks,
    /// registers waits and exports findings through this).
    #[inline]
    pub fn checker(&self) -> Option<&Arc<Checker>> {
        self.check.as_ref()
    }

    /// True when a fault plan is installed (the reliable layer is live).
    pub fn has_faults(&self) -> bool {
        self.faults.is_some()
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.endpoints.len()
    }

    /// Access an endpoint (its segment, inbox, counters).
    pub fn endpoint(&self, rank: Rank) -> &Endpoint {
        &self.endpoints[rank]
    }

    /// Charge the synthetic wire for a remote transfer (no-op without a
    /// [`SimNet`] or for rank-local operations).
    #[inline]
    pub(crate) fn wire(&self, initiator: Rank, target: Rank, bytes: usize) {
        if initiator != target {
            if let Some(sim) = &self.simnet {
                sim.charge(bytes);
            }
        }
    }

    /// Start a trace span on the initiator's clock (0 when tracing is off).
    #[inline]
    fn trace_start(&self, initiator: Rank) -> u64 {
        self.endpoints[initiator].trace.start()
    }

    /// Close an RMA span. Only *remote* operations are recorded, matching
    /// the way `CommStats` counts `puts`/`gets` — so per-kind trace event
    /// counts line up with the counters for the same run.
    #[inline]
    fn trace_rma(&self, kind: EventKind, initiator: Rank, target: Rank, bytes: usize, start: u64) {
        if initiator != target {
            self.endpoints[initiator]
                .trace
                .span(kind, target as i32, bytes as u64, start);
        }
    }

    /// Race-checker hook shared by every RMA op: one untaken branch when
    /// no checker is installed.
    #[inline]
    fn check_access(
        &self,
        initiator: Rank,
        target: Rank,
        offset: usize,
        len: usize,
        kind: AccessKind,
        op: &'static str,
    ) {
        if let Some(ck) = &self.check {
            ck.access(initiator, target, offset, len, kind, op);
        }
    }

    /// Fault gate shared by every RMA op: with no plan installed this is
    /// the hot path's single extra branch; with one, remote ops draw a
    /// fate and retry drops inline (see `reliable::rma_gate_slow`).
    #[inline]
    fn rma_gate(&self, initiator: Rank, target: Rank, bytes: usize) {
        if self.faults.is_some() && initiator != target {
            self.rma_gate_slow(initiator, target, bytes);
        }
    }

    /// Stats-only accounting for the `rma_fast` word path: exactly the
    /// counters [`Fabric::count_put`]/[`Fabric::count_get`] would bump
    /// with every feature off, with no gate probes.
    #[inline]
    fn count_word_fast(&self, initiator: Rank, target: Rank, put: bool) {
        let stats = &self.endpoints[initiator].stats;
        if initiator == target {
            stats.local_ops.fetch_add(1, Ordering::Relaxed);
        } else {
            let (ops, bytes) = if put {
                (&stats.puts, &stats.put_bytes)
            } else {
                (&stats.gets, &stats.get_bytes)
            };
            ops.fetch_add(1, Ordering::Relaxed);
            bytes.fetch_add(8, Ordering::Relaxed);
            stats.count_dest(target, 8);
        }
    }

    #[inline]
    fn count_put(&self, initiator: Rank, target: Rank, bytes: usize) {
        self.rma_gate(initiator, target, bytes);
        let stats = &self.endpoints[initiator].stats;
        if initiator == target {
            stats.local_ops.fetch_add(1, Ordering::Relaxed);
        } else {
            stats.puts.fetch_add(1, Ordering::Relaxed);
            stats.put_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
            stats.count_dest(target, bytes as u64);
        }
    }

    #[inline]
    fn count_get(&self, initiator: Rank, target: Rank, bytes: usize) {
        self.rma_gate(initiator, target, bytes);
        let stats = &self.endpoints[initiator].stats;
        if initiator == target {
            stats.local_ops.fetch_add(1, Ordering::Relaxed);
        } else {
            stats.gets.fetch_add(1, Ordering::Relaxed);
            stats.get_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
            stats.count_dest(target, bytes as u64);
        }
    }

    /// Write-through invalidation: drop the initiator's own cached lines
    /// covering a span it is about to overwrite, so a rank always reads
    /// its own writes. One untaken branch when the cache is off; local
    /// writes skip it too (local lines are never cached).
    #[inline]
    pub(crate) fn invalidate_own(&self, initiator: Rank, dst: GlobalAddr, len: usize) {
        if let Some(cache) = &self.endpoints[initiator].cache {
            if dst.rank() != initiator {
                let n = cache.invalidate_span(dst, len);
                if n != 0 {
                    self.endpoints[initiator]
                        .stats
                        .cache_invalidations
                        .fetch_add(n, Ordering::Relaxed);
                }
            }
        }
    }

    /// Drop every line of `rank`'s read cache at a synchronization point
    /// (`barrier()`/`fence()` and the fences built on them). One untaken
    /// branch when the cache is off.
    pub fn cache_invalidate_sync(&self, rank: Rank) {
        if let Some(cache) = &self.endpoints[rank].cache {
            let n = cache.invalidate_sync();
            if n != 0 {
                self.endpoints[rank]
                    .stats
                    .cache_invalidations
                    .fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Shared prologue of every put-shaped op: trace clock, checker
    /// record, counters/fault gate, wire charge and write-through cache
    /// invalidation — one inlined sequence so each off-path feature costs
    /// a single branch. Returns the trace span start.
    #[inline]
    fn put_prologue(
        &self,
        initiator: Rank,
        dst: GlobalAddr,
        len: usize,
        kind: AccessKind,
        op: &'static str,
    ) -> u64 {
        let t0 = self.trace_start(initiator);
        self.check_access(initiator, dst.rank(), dst.offset(), len, kind, op);
        self.count_put(initiator, dst.rank(), len);
        self.wire(initiator, dst.rank(), len);
        self.invalidate_own(initiator, dst, len);
        t0
    }

    /// [`Fabric::put_prologue`] for word atomics, which charge the wire a
    /// full round trip (remote atomics are on real hardware).
    #[inline]
    fn rmw_prologue(&self, initiator: Rank, dst: GlobalAddr, op: &'static str) -> u64 {
        let t0 = self.trace_start(initiator);
        self.check_access(
            initiator,
            dst.rank(),
            dst.offset(),
            8,
            AccessKind::Atomic,
            op,
        );
        self.count_put(initiator, dst.rank(), 8);
        self.wire(initiator, dst.rank(), 8);
        self.wire(initiator, dst.rank(), 8);
        self.invalidate_own(initiator, dst, 8);
        t0
    }

    /// Shared prologue of every get-shaped op (the mirror of
    /// [`Fabric::put_prologue`]; gets never invalidate).
    #[inline]
    fn get_prologue(&self, initiator: Rank, src: GlobalAddr, len: usize, op: &'static str) -> u64 {
        let t0 = self.trace_start(initiator);
        self.check_access(
            initiator,
            src.rank(),
            src.offset(),
            len,
            AccessKind::Read,
            op,
        );
        self.count_get(initiator, src.rank(), len);
        self.wire(initiator, src.rank(), len);
        t0
    }

    /// One-sided put: write `data` at `dst`.
    ///
    /// An aligned 8-byte payload — the dominant size for shared scalars
    /// and word-typed arrays — skips the byte-slice machinery (bounds
    /// check per word, partial-word CAS handling, memcpy through
    /// `to_le_bytes`) and stores the word directly, like
    /// [`Fabric::put_u64`].
    pub fn put(&self, initiator: Rank, dst: GlobalAddr, data: &[u8]) {
        let t0 = self.put_prologue(initiator, dst, data.len(), AccessKind::Write, "put");
        if let Some(r) = self.remote_to(dst.rank()) {
            self.remote_put(r, dst, data);
        } else {
            let seg = &self.endpoints[dst.rank()].segment;
            if data.len() == 8 && dst.offset().is_multiple_of(8) {
                seg.store_u64(dst.offset(), u64::from_le_bytes(data.try_into().unwrap()));
            } else {
                seg.write_bytes(dst.offset(), data);
            }
        }
        self.trace_rma(EventKind::Put, initiator, dst.rank(), data.len(), t0);
    }

    /// One-sided get: read `buf.len()` bytes from `src`. Aligned 8-byte
    /// reads take the same direct-word fast path as [`Fabric::put`].
    /// With a read cache installed, remote gets are served line-by-line
    /// from the cache, filling whole lines through the fabric on a miss.
    pub fn get(&self, initiator: Rank, src: GlobalAddr, buf: &mut [u8]) {
        if self.endpoints[initiator].cache.is_some() && src.rank() != initiator {
            return self.get_cached(initiator, src, buf);
        }
        self.get_direct(initiator, src, buf)
    }

    /// The uncached fabric get: also the fill path of [`Fabric::get`].
    fn get_direct(&self, initiator: Rank, src: GlobalAddr, buf: &mut [u8]) {
        let t0 = self.get_prologue(initiator, src, buf.len(), "get");
        if let Some(r) = self.remote_to(src.rank()) {
            self.remote_get(r, src, buf);
        } else {
            let seg = &self.endpoints[src.rank()].segment;
            if buf.len() == 8 && src.offset().is_multiple_of(8) {
                buf.copy_from_slice(&seg.load_u64(src.offset()).to_le_bytes());
            } else {
                seg.read_bytes(src.offset(), buf);
            }
        }
        self.trace_rma(EventKind::Get, initiator, src.rank(), buf.len(), t0);
    }

    /// Serve a remote get from the initiator's read cache, one line-sized
    /// chunk at a time. A miss fetches and installs the *whole* covering
    /// line — one fabric get amortized over all subsequent hits in the
    /// line. The checker observes only the bytes each call actually
    /// requested (at the fill for misses, at the current clock for hits),
    /// never the line padding.
    fn get_cached(&self, initiator: Rank, src: GlobalAddr, buf: &mut [u8]) {
        let ep = &self.endpoints[initiator];
        let cache = ep.cache.as_ref().unwrap();
        // Every rank's segment has the configured size; in remote mode
        // the peer's stub segment here is empty, so ask the config.
        let seg_len = self.seg_bytes;
        if buf.is_empty() || src.offset() + buf.len() > seg_len {
            // Degenerate or out-of-bounds: identical behaviour (and panic
            // message) to the uncached path.
            return self.get_direct(initiator, src, buf);
        }
        let line = cache.line_bytes();
        let mut off = src.offset();
        let mut out = &mut buf[..];
        while !out.is_empty() {
            let base = cache.line_base(off);
            let line_len = line.min(seg_len - base);
            let take = (base + line_len - off).min(out.len());
            let (chunk, rest) = out.split_at_mut(take);
            match cache.lookup(GlobalAddr::new(src.rank(), off), chunk) {
                Some(fill) => {
                    ep.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                    ep.trace
                        .instant(EventKind::CacheHit, src.rank() as i32, take as u64);
                    if let Some(ck) = &self.check {
                        // A hit is still a read the program performs now:
                        // record it at the current clock (writes *racing*
                        // with the hit are plain data races), then check
                        // that no synchronized-after-fill write has made
                        // the cached bytes stale.
                        ck.access(initiator, src.rank(), off, take, AccessKind::Read, "get");
                        if let Some(fill) = &fill {
                            ck.cache_read(initiator, src.rank(), off, take, fill);
                        }
                    }
                }
                None => {
                    ep.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
                    // Fill the whole covering line with one fabric get,
                    // but record the checker read for only the bytes the
                    // program asked for: claiming the line's padding
                    // would invent false-sharing races with ranks
                    // legitimately writing adjacent bytes.
                    let t0 = self.trace_start(initiator);
                    self.check_access(initiator, src.rank(), off, take, AccessKind::Read, "get");
                    self.count_get(initiator, src.rank(), line_len);
                    self.wire(initiator, src.rank(), line_len);
                    let mut data = vec![0u8; line_len];
                    if let Some(r) = self.remote_to(src.rank()) {
                        self.remote_get(r, GlobalAddr::new(src.rank(), base), &mut data);
                    } else {
                        self.endpoints[src.rank()]
                            .segment
                            .read_bytes(base, &mut data);
                    }
                    self.trace_rma(EventKind::Get, initiator, src.rank(), line_len, t0);
                    chunk.copy_from_slice(&data[off - base..off - base + take]);
                    let fill = self.check.as_ref().map(|ck| ck.send_stamp(initiator));
                    cache.insert(
                        GlobalAddr::new(src.rank(), base),
                        data.into_boxed_slice(),
                        fill,
                    );
                    ep.trace
                        .instant(EventKind::CacheFill, src.rank() as i32, line_len as u64);
                }
            }
            out = rest;
            off += take;
        }
    }

    /// Aligned 8-byte put (fast path used by shared scalars/arrays).
    #[inline]
    pub fn put_u64(&self, initiator: Rank, dst: GlobalAddr, value: u64) {
        if self.endpoints[initiator].rma_fast {
            self.count_word_fast(initiator, dst.rank(), true);
            return self.endpoints[dst.rank()]
                .segment
                .store_u64(dst.offset(), value);
        }
        let t0 = self.put_prologue(initiator, dst, 8, AccessKind::Write, "put");
        if let Some(r) = self.remote_to(dst.rank()) {
            self.remote_put(r, dst, &value.to_le_bytes());
        } else {
            self.endpoints[dst.rank()]
                .segment
                .store_u64(dst.offset(), value);
        }
        self.trace_rma(EventKind::Put, initiator, dst.rank(), 8, t0);
    }

    /// Aligned 8-byte get (fast path). Like [`Fabric::get`], remote reads
    /// go through the read cache when one is installed.
    #[inline]
    pub fn get_u64(&self, initiator: Rank, src: GlobalAddr) -> u64 {
        if self.endpoints[initiator].rma_fast {
            self.count_word_fast(initiator, src.rank(), false);
            return self.endpoints[src.rank()].segment.load_u64(src.offset());
        }
        if self.endpoints[initiator].cache.is_some() && src.rank() != initiator {
            let mut buf = [0u8; 8];
            self.get_cached(initiator, src, &mut buf);
            return u64::from_le_bytes(buf);
        }
        self.get_u64_direct(initiator, src)
    }

    /// The uncached aligned 8-byte get.
    #[inline]
    fn get_u64_direct(&self, initiator: Rank, src: GlobalAddr) -> u64 {
        let t0 = self.get_prologue(initiator, src, 8, "get");
        let v = if let Some(r) = self.remote_to(src.rank()) {
            let mut buf = [0u8; 8];
            self.remote_get(r, src, &mut buf);
            u64::from_le_bytes(buf)
        } else {
            self.endpoints[src.rank()].segment.load_u64(src.offset())
        };
        self.trace_rma(EventKind::Get, initiator, src.rank(), 8, t0);
        v
    }

    /// Remote atomic xor on an aligned u64; returns the previous value.
    #[inline]
    pub fn xor_u64(&self, initiator: Rank, dst: GlobalAddr, value: u64) -> u64 {
        if self.endpoints[initiator].rma_fast {
            self.count_word_fast(initiator, dst.rank(), true);
            return self.endpoints[dst.rank()]
                .segment
                .fetch_xor_u64(dst.offset(), value);
        }
        let t0 = self.rmw_prologue(initiator, dst, "xor");
        let v = if let Some(r) = self.remote_to(dst.rank()) {
            self.remote_rmw(r, RmwOp::Xor, dst, value, 0).1
        } else {
            self.endpoints[dst.rank()]
                .segment
                .fetch_xor_u64(dst.offset(), value)
        };
        self.trace_rma(EventKind::Put, initiator, dst.rank(), 8, t0);
        v
    }

    /// Remote atomic add on an aligned u64; returns the previous value.
    #[inline]
    pub fn add_u64(&self, initiator: Rank, dst: GlobalAddr, value: u64) -> u64 {
        if self.endpoints[initiator].rma_fast {
            self.count_word_fast(initiator, dst.rank(), true);
            return self.endpoints[dst.rank()]
                .segment
                .fetch_add_u64(dst.offset(), value);
        }
        let t0 = self.rmw_prologue(initiator, dst, "add");
        let v = if let Some(r) = self.remote_to(dst.rank()) {
            self.remote_rmw(r, RmwOp::Add, dst, value, 0).1
        } else {
            self.endpoints[dst.rank()]
                .segment
                .fetch_add_u64(dst.offset(), value)
        };
        self.trace_rma(EventKind::Put, initiator, dst.rank(), 8, t0);
        v
    }

    /// Remote CAS on an aligned u64.
    #[inline]
    pub fn cas_u64(
        &self,
        initiator: Rank,
        dst: GlobalAddr,
        current: u64,
        new: u64,
    ) -> Result<u64, u64> {
        if self.endpoints[initiator].rma_fast {
            self.count_word_fast(initiator, dst.rank(), true);
            return self.endpoints[dst.rank()]
                .segment
                .cas_u64(dst.offset(), current, new);
        }
        let t0 = self.rmw_prologue(initiator, dst, "cas");
        let r = if let Some(rf) = self.remote_to(dst.rank()) {
            let (ok, prev) = self.remote_rmw(rf, RmwOp::Cas, dst, current, new);
            if ok {
                Ok(prev)
            } else {
                Err(prev)
            }
        } else {
            self.endpoints[dst.rank()]
                .segment
                .cas_u64(dst.offset(), current, new)
        };
        self.trace_rma(EventKind::Put, initiator, dst.rank(), 8, t0);
        r
    }

    /// Strided (vector) put: write `nblocks` blocks of `block` bytes from
    /// `src` (contiguous) to `dst`, advancing the destination by
    /// `dst_stride` bytes between blocks. One network operation: real RDMA
    /// NICs offer the same "iovec" capability, and the paper's ghost-zone
    /// copies rely on it being one-sided.
    pub fn put_strided(
        &self,
        initiator: Rank,
        dst: GlobalAddr,
        dst_stride: usize,
        src: &[u8],
        block: usize,
        nblocks: usize,
    ) {
        assert_eq!(
            src.len(),
            block * nblocks,
            "put_strided: source size mismatch"
        );
        let t0 = self.trace_start(initiator);
        if self.check.is_some() {
            // Record the blocks individually: the gaps between them are
            // not written, and claiming the covering range would invent
            // races with neighbours that legitimately own the gap bytes.
            for b in 0..nblocks {
                self.check_access(
                    initiator,
                    dst.rank(),
                    dst.offset() + b * dst_stride,
                    block,
                    AccessKind::Write,
                    "put-strided",
                );
            }
        }
        self.count_put(initiator, dst.rank(), src.len());
        self.wire(initiator, dst.rank(), src.len());
        if nblocks > 0 {
            // Write-through over the covering span: invalidating the gap
            // bytes' lines too is safe (a dropped line only costs a refill).
            self.invalidate_own(initiator, dst, (nblocks - 1) * dst_stride + block);
        }
        if let Some(r) = self.remote_to(dst.rank()) {
            self.remote_put_strided(r, dst, dst_stride, src, block, nblocks);
        } else {
            let seg = &self.endpoints[dst.rank()].segment;
            for b in 0..nblocks {
                seg.write_bytes(
                    dst.offset() + b * dst_stride,
                    &src[b * block..(b + 1) * block],
                );
            }
        }
        self.trace_rma(EventKind::Put, initiator, dst.rank(), src.len(), t0);
    }

    /// Strided (vector) get: the mirror of [`Fabric::put_strided`].
    pub fn get_strided(
        &self,
        initiator: Rank,
        src: GlobalAddr,
        src_stride: usize,
        buf: &mut [u8],
        block: usize,
        nblocks: usize,
    ) {
        assert_eq!(
            buf.len(),
            block * nblocks,
            "get_strided: buffer size mismatch"
        );
        let t0 = self.trace_start(initiator);
        if self.check.is_some() {
            for b in 0..nblocks {
                self.check_access(
                    initiator,
                    src.rank(),
                    src.offset() + b * src_stride,
                    block,
                    AccessKind::Read,
                    "get-strided",
                );
            }
        }
        self.count_get(initiator, src.rank(), buf.len());
        self.wire(initiator, src.rank(), buf.len());
        if let Some(r) = self.remote_to(src.rank()) {
            self.remote_get_strided(r, src, src_stride, buf, block, nblocks);
        } else {
            let seg = &self.endpoints[src.rank()].segment;
            for b in 0..nblocks {
                seg.read_bytes(
                    src.offset() + b * src_stride,
                    &mut buf[b * block..(b + 1) * block],
                );
            }
        }
        self.trace_rma(EventKind::Get, initiator, src.rank(), buf.len(), t0);
    }

    /// Send an active message to `dst`. FIFO order is preserved per
    /// (source, destination) pair — with a fault plan installed the
    /// reliable layer re-establishes it through sequence numbers,
    /// retransmission and receiver-side reordering; otherwise the push
    /// below is FIFO by construction.
    pub fn send_am(&self, initiator: Rank, dst: Rank, payload: AmPayload) {
        let am_bytes = match &payload {
            AmPayload::Handler { args, .. } => args.len(),
            AmPayload::Task(_) => 64, // headers of an opaque task AM
            AmPayload::Batch { frames, .. } => frames.len(),
        };
        // Per-link FIFO across the aggregation layer: frames already
        // buffered for `dst` must reach the wire before this message
        // (one untaken branch when aggregation is off; batches themselves
        // are produced by the flush and must not recurse into it).
        if self.endpoints[initiator].agg.is_some() && !matches!(payload, AmPayload::Batch { .. }) {
            self.flush_agg_to(initiator, dst);
        }
        self.wire(initiator, dst, am_bytes);
        let stats = &self.endpoints[initiator].stats;
        stats.ams_sent.fetch_add(1, Ordering::Relaxed);
        match &payload {
            AmPayload::Handler { args, .. } => {
                stats
                    .am_bytes
                    .fetch_add(args.len() as u64, Ordering::Relaxed);
            }
            AmPayload::Batch { frames, .. } => {
                stats
                    .am_bytes
                    .fetch_add(frames.len() as u64, Ordering::Relaxed);
            }
            AmPayload::Task(_) => {}
        }
        stats.count_dest(dst, am_bytes as u64);
        self.endpoints[initiator]
            .trace
            .instant(EventKind::AmSend, dst as i32, am_bytes as u64);
        // The sender's clock snapshot rides the message (None when the
        // checker is off): the receiver joins it before executing the
        // payload, giving the checker the AM happens-before edge — and,
        // for a batch, the flush-time clock its frames are recorded with.
        let clock = self.check.as_ref().map(|ck| ck.send_stamp(initiator));
        // Likewise the causal span (None when the profiler is off): it
        // survives retransmits because the whole message rides the limbo
        // and lost queues, and aggregation because a batch is one frame.
        let prof = self.endpoints[initiator].prof.as_ref().map(|p| {
            let span = p.alloc_span();
            p.record_send(span, dst as i32);
            span
        });
        let msg = AmMessage {
            src: initiator,
            payload,
            clock,
            prof,
        };
        // Out-of-process destination: the fully-built message (clock and
        // span attached) goes on the wire; the receiving process re-runs
        // the delivery tail below, fate draw included.
        if let Some(r) = self.remote_to(dst) {
            return self.remote_send_am(r, dst, msg);
        }
        // The single faults-off/schedule-off branch on the AM path; local
        // deliveries never traverse the (faulty or scheduled) wire.
        if self.faults.is_some() && initiator != dst {
            self.am_transmit(initiator, dst, msg);
        } else if self.sched.is_some() && initiator != dst {
            self.sched_park(initiator, dst, msg);
        } else {
            self.endpoints[dst].inbox.push(msg);
        }
    }

    /// The causal profiler state of `rank`, if the profiler is on.
    #[inline]
    pub fn prof(&self, rank: Rank) -> Option<&ProfState> {
        self.endpoints[rank].prof.as_ref()
    }

    /// Fabric-wide retransmit total. Wait-state classification samples
    /// this around a blocking wait: a nonzero delta means the wait rode
    /// out packet loss (a retransmit stall), whichever rank's frames were
    /// being repaired.
    pub fn total_retransmits(&self) -> u64 {
        self.endpoints
            .iter()
            .map(|e| e.stats.retransmits.load(Ordering::Relaxed))
            .sum()
    }

    /// Dump the flight recorder: the tail of every rank's causal event
    /// stream, to stderr and the test-visible capture buffer. One dump
    /// per job (first failure wins); no-op when the profiler is off.
    pub fn prof_dump_flight(&self, reason: &str) {
        if self.endpoints[0].prof.is_none() || self.prof_dumped.swap(true, Ordering::SeqCst) {
            return;
        }
        let per_rank: Vec<(usize, Vec<rupcxx_trace::ProfEvent>)> = self
            .endpoints
            .iter()
            .enumerate()
            .filter_map(|(r, e)| e.prof.as_ref().map(|p| (r, p.ring.snapshot())))
            .collect();
        rupcxx_trace::flight::record_dump(rupcxx_trace::flight::format_flight(reason, &per_rank));
    }

    /// Record an unreachable-peer event on the initiator's profiler
    /// stream (no-op when the profiler is off).
    pub(crate) fn prof_unreachable(&self, initiator: Rank, dst: Rank, attempts: u64) {
        if let Some(p) = &self.endpoints[initiator].prof {
            p.record_instant(ProfKind::Unreachable, dst as i32, attempts);
        }
    }

    /// Aggregate traffic snapshot over all endpoints.
    pub fn total_counts(&self) -> CommCounts {
        self.endpoints
            .iter()
            .map(|e| e.stats.snapshot())
            .fold(CommCounts::default(), |acc, c| acc.merged(&c))
    }

    /// Reset every endpoint's counters.
    pub fn reset_counts(&self) {
        for e in self.endpoints.iter() {
            e.stats.reset();
        }
    }
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("ranks", &self.ranks())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(ranks: usize) -> Arc<Fabric> {
        Fabric::new(FabricConfig {
            ranks,
            segment_bytes: 4096,
            simnet: None,
            trace: TraceConfig::off(),
            faults: None,
            agg: None,
            check: None,
            cache: None,
            prof: None,
            schedule: None,
            remote: None,
        })
    }

    fn cached_fabric(ranks: usize, line: usize) -> Arc<Fabric> {
        Fabric::new(FabricConfig {
            ranks,
            segment_bytes: 4096,
            cache: Some(CacheConfig::new().capacity_bytes(1024).line_bytes(line)),
            ..FabricConfig::default()
        })
    }

    #[test]
    fn put_get_roundtrip_remote() {
        let f = fabric(2);
        let addr = GlobalAddr::new(1, 16);
        f.put(0, addr, &[1, 2, 3, 4]);
        let mut out = [0u8; 4];
        f.get(0, addr, &mut out);
        assert_eq!(out, [1, 2, 3, 4]);
        let c = f.endpoint(0).stats.snapshot();
        assert_eq!(c.puts, 1);
        assert_eq!(c.gets, 1);
        assert_eq!(c.put_bytes, 4);
        assert_eq!(c.get_bytes, 4);
    }

    #[test]
    fn local_ops_counted_separately() {
        let f = fabric(2);
        f.put_u64(1, GlobalAddr::new(1, 0), 42);
        let c = f.endpoint(1).stats.snapshot();
        assert_eq!(c.puts, 0);
        assert_eq!(c.local_ops, 1);
        assert_eq!(f.get_u64(1, GlobalAddr::new(1, 0)), 42);
    }

    #[test]
    fn word_sized_put_get_fast_path_matches_slice_path() {
        let f = fabric(2);
        // Aligned 8-byte slice ops take the direct-word path; they must
        // be indistinguishable from the byte path, counts included.
        let v = 0x0102_0304_0506_0708u64;
        f.put(0, GlobalAddr::new(1, 16), &v.to_le_bytes());
        assert_eq!(f.get_u64(0, GlobalAddr::new(1, 16)), v);
        let mut out = [0u8; 8];
        f.get(0, GlobalAddr::new(1, 16), &mut out);
        assert_eq!(out, v.to_le_bytes());
        // Unaligned 8-byte ops still go through the partial-word path.
        f.put(0, GlobalAddr::new(1, 3), &v.to_le_bytes());
        let mut out = [0u8; 8];
        f.get(0, GlobalAddr::new(1, 3), &mut out);
        assert_eq!(out, v.to_le_bytes());
        let c = f.endpoint(0).stats.snapshot();
        assert_eq!((c.puts, c.gets), (2, 3));
        assert_eq!((c.put_bytes, c.get_bytes), (16, 24));
    }

    #[test]
    fn xor_add_cas() {
        let f = fabric(2);
        let a = GlobalAddr::new(1, 8);
        f.put_u64(0, a, 0xF0);
        assert_eq!(f.xor_u64(0, a, 0x0F), 0xF0);
        assert_eq!(f.get_u64(0, a), 0xFF);
        assert_eq!(f.add_u64(0, a, 1), 0xFF);
        assert_eq!(f.cas_u64(0, a, 0x100, 7), Ok(0x100));
        assert_eq!(f.get_u64(0, a), 7);
    }

    #[test]
    fn strided_roundtrip() {
        let f = fabric(2);
        let base = GlobalAddr::new(1, 0);
        // 3 blocks of 8 bytes with stride 24 on the remote side.
        let src: Vec<u8> = (0..24).collect();
        f.put_strided(0, base, 24, &src, 8, 3);
        let mut buf = vec![0u8; 24];
        f.get_strided(0, base, 24, &mut buf, 8, 3);
        assert_eq!(buf, src);
        // Gap bytes untouched.
        let mut gap = [0u8; 8];
        f.get(0, base.add(8), &mut gap);
        assert_eq!(gap, [0u8; 8]);
    }

    #[test]
    fn am_fifo_per_pair() {
        let f = fabric(2);
        for i in 0..10u16 {
            f.send_am(
                0,
                1,
                AmPayload::Handler {
                    id: i,
                    args: Bytes::new(),
                },
            );
        }
        let mut got = vec![];
        while let Some(m) = f.endpoint(1).try_recv() {
            assert_eq!(m.src, 0);
            if let AmPayload::Handler { id, .. } = m.payload {
                got.push(id);
            }
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert_eq!(f.endpoint(0).stats.snapshot().ams_sent, 10);
        assert_eq!(f.endpoint(1).stats.snapshot().ams_handled, 10);
    }

    #[test]
    fn am_task_payload_executes() {
        let f = fabric(2);
        let flag = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag2 = flag.clone();
        f.send_am(
            0,
            1,
            AmPayload::Task(Box::new(move || {
                flag2.store(true, Ordering::SeqCst);
            })),
        );
        let msg = f.endpoint(1).try_recv().unwrap();
        match msg.payload {
            AmPayload::Task(task) => task(),
            other => panic!("unexpected payload {other:?}"),
        }
        assert!(flag.load(Ordering::SeqCst));
    }

    #[test]
    fn simnet_charges_remote_ops_only() {
        let f = Fabric::new(FabricConfig {
            ranks: 2,
            segment_bytes: 4096,
            simnet: Some(SimNet {
                latency_ns: 200_000, // 200 µs — far above host noise
                bytes_per_us: 0,
            }),
            trace: TraceConfig::off(),
            faults: None,
            agg: None,
            check: None,
            cache: None,
            prof: None,
            schedule: None,
            remote: None,
        });
        // Remote word put takes at least the injected latency.
        let t = std::time::Instant::now();
        f.put_u64(0, GlobalAddr::new(1, 0), 1);
        assert!(t.elapsed() >= std::time::Duration::from_micros(200));
        // Local word put is unaffected (well under the injected latency).
        let t = std::time::Instant::now();
        f.put_u64(1, GlobalAddr::new(1, 8), 1);
        assert!(t.elapsed() < std::time::Duration::from_micros(200));
        // Remote atomics charge a round trip (two traversals).
        let t = std::time::Instant::now();
        f.xor_u64(0, GlobalAddr::new(1, 0), 1);
        assert!(t.elapsed() >= std::time::Duration::from_micros(400));
    }

    #[test]
    fn simnet_bandwidth_term() {
        let f = Fabric::new(FabricConfig {
            ranks: 2,
            segment_bytes: 1 << 20,
            simnet: Some(SimNet {
                latency_ns: 0,
                bytes_per_us: 100, // 100 MB/s: 512 KiB ≈ 5.2 ms
            }),
            trace: TraceConfig::off(),
            faults: None,
            agg: None,
            check: None,
            cache: None,
            prof: None,
            schedule: None,
            remote: None,
        });
        let data = vec![0u8; 512 << 10];
        let t = std::time::Instant::now();
        f.put(0, GlobalAddr::new(1, 0), &data);
        assert!(t.elapsed() >= std::time::Duration::from_millis(5));
    }

    #[test]
    fn global_addr_arithmetic() {
        let a = GlobalAddr::new(3, 100);
        assert_eq!(a.add(28), GlobalAddr::new(3, 128));
    }

    #[test]
    fn endpoint_drain_is_consistent_and_counts_handled() {
        let f = fabric(2);
        for i in 0..6u16 {
            f.send_am(
                0,
                1,
                AmPayload::Handler {
                    id: i,
                    args: Bytes::new(),
                },
            );
        }
        let batch = f.endpoint(1).drain();
        assert_eq!(batch.len(), 6);
        let ids: Vec<u16> = batch
            .iter()
            .map(|m| match &m.payload {
                AmPayload::Handler { id, .. } => *id,
                other => panic!("unexpected payload {other:?}"),
            })
            .collect();
        assert_eq!(ids, (0..6).collect::<Vec<_>>());
        assert_eq!(f.endpoint(1).pending(), 0);
        assert_eq!(f.endpoint(1).stats.snapshot().ams_handled, 6);
        // Draining an empty inbox is a no-op, not a count.
        assert!(f.endpoint(1).drain().is_empty());
        assert_eq!(f.endpoint(1).stats.snapshot().ams_handled, 6);
    }

    #[test]
    fn noop_fault_plan_skips_reliable_layer() {
        let f = Fabric::new(FabricConfig {
            ranks: 2,
            segment_bytes: 4096,
            simnet: None,
            trace: TraceConfig::off(),
            faults: Some(crate::faults::FaultPlan::new(1)),
            agg: None,
            check: None,
            cache: None,
            prof: None,
            schedule: None,
            remote: None,
        });
        assert!(!f.has_faults(), "a no-op plan must not slow the fabric");
        f.send_am(
            0,
            1,
            AmPayload::Handler {
                id: 0,
                args: Bytes::new(),
            },
        );
        assert_eq!(f.endpoint(1).pending(), 1);
    }

    #[test]
    fn cached_gets_fill_once_then_hit() {
        let f = cached_fabric(2, 64);
        for i in 0..8 {
            f.put_u64(1, GlobalAddr::new(1, 64 + i * 8), 100 + i as u64);
        }
        // Eight word gets inside one line: one fabric get, seven hits.
        for i in 0..8 {
            assert_eq!(f.get_u64(0, GlobalAddr::new(1, 64 + i * 8)), 100 + i as u64);
        }
        let c = f.endpoint(0).stats.snapshot();
        assert_eq!(c.gets, 1, "one line fill on the fabric");
        assert_eq!(c.get_bytes, 64, "the whole line was fetched");
        assert_eq!(c.cache_misses, 1);
        assert_eq!(c.cache_hits, 7);
    }

    #[test]
    fn cached_get_spanning_lines_and_odd_offsets_is_bit_exact() {
        let f = cached_fabric(2, 64);
        let data: Vec<u8> = (0..200u8).collect();
        f.put(1, GlobalAddr::new(1, 30), &data);
        let mut out = vec![0u8; 200];
        f.get(0, GlobalAddr::new(1, 30), &mut out);
        assert_eq!(out, data, "multi-line cached read");
        let mut again = vec![0u8; 200];
        f.get(0, GlobalAddr::new(1, 30), &mut again);
        assert_eq!(again, data, "all-hit re-read");
        let c = f.endpoint(0).stats.snapshot();
        // [30, 230) covers lines 0,64,128,192: 4 fills, then 4 hits.
        assert_eq!(c.cache_misses, 4);
        assert_eq!(c.cache_hits, 4);
        assert_eq!(c.gets, 4);
    }

    #[test]
    fn own_put_invalidates_cached_line() {
        let f = cached_fabric(2, 64);
        let a = GlobalAddr::new(1, 64);
        f.put_u64(0, a, 1);
        assert_eq!(f.get_u64(0, a), 1);
        // Write-through: the initiator's next read sees its own write.
        f.put_u64(0, a, 2);
        assert_eq!(f.get_u64(0, a), 2, "read-your-own-writes");
        let c = f.endpoint(0).stats.snapshot();
        assert_eq!(c.cache_invalidations, 1, "second put dropped the line");
        assert_eq!(c.cache_misses, 2, "the line was refilled");
        // Atomics write through as well.
        f.xor_u64(0, a, 0xF0);
        assert_eq!(f.get_u64(0, a), 2 ^ 0xF0);
    }

    #[test]
    fn sync_invalidation_refetches_remote_writes() {
        let f = cached_fabric(2, 64);
        let a = GlobalAddr::new(1, 0);
        f.put_u64(1, a, 5);
        assert_eq!(f.get_u64(0, a), 5);
        // Rank 1 (the owner) updates its own word: rank 0's cache cannot
        // see it until a sync point drops the line.
        f.put_u64(1, a, 9);
        assert_eq!(f.get_u64(0, a), 5, "stale until synchronization");
        f.cache_invalidate_sync(0);
        assert_eq!(f.get_u64(0, a), 9, "fresh after sync invalidation");
        assert_eq!(f.endpoint(0).stats.snapshot().cache_invalidations, 1);
    }

    #[test]
    fn local_gets_bypass_the_cache() {
        let f = cached_fabric(2, 64);
        f.put_u64(1, GlobalAddr::new(1, 0), 3);
        assert_eq!(f.get_u64(1, GlobalAddr::new(1, 0)), 3);
        let c = f.endpoint(1).stats.snapshot();
        assert_eq!(c.cache_hits + c.cache_misses, 0, "local reads never cached");
        assert_eq!(c.local_ops, 2);
    }

    #[test]
    fn short_line_at_segment_end_is_cached_correctly() {
        // 4096-byte segment, 64-byte lines: the last line is full, so use
        // an offset near the end with a line size that does not divide the
        // segment? 4096 % 64 == 0 — craft a short line via a small segment.
        let f = Fabric::new(FabricConfig {
            ranks: 2,
            segment_bytes: 100, // last 64-byte line holds 36 bytes
            cache: Some(CacheConfig::new().capacity_bytes(1024).line_bytes(64)),
            ..FabricConfig::default()
        });
        f.put(1, GlobalAddr::new(1, 90), &[7; 10]);
        let mut out = [0u8; 10];
        f.get(0, GlobalAddr::new(1, 90), &mut out);
        assert_eq!(out, [7; 10]);
        let c = f.endpoint(0).stats.snapshot();
        assert_eq!(c.cache_misses, 1);
        assert_eq!(c.get_bytes, 36, "short line fetch stops at segment end");
        f.get(0, GlobalAddr::new(1, 90), &mut out);
        assert_eq!(out, [7; 10]);
        assert_eq!(f.endpoint(0).stats.snapshot().cache_hits, 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn cached_out_of_bounds_get_panics_like_uncached() {
        let f = cached_fabric(2, 64);
        let mut buf = [0u8; 16];
        f.get(0, GlobalAddr::new(1, 4090), &mut buf);
    }

    #[test]
    fn total_counts_aggregates() {
        let f = fabric(3);
        f.put_u64(0, GlobalAddr::new(1, 0), 1);
        f.put_u64(1, GlobalAddr::new(2, 0), 1);
        f.get_u64(2, GlobalAddr::new(0, 0));
        let t = f.total_counts();
        assert_eq!(t.puts, 2);
        assert_eq!(t.gets, 1);
        f.reset_counts();
        assert_eq!(f.total_counts(), CommCounts::default());
    }
}
