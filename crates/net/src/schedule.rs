//! Controlled delivery scheduling: an explicit, replayable AM delivery
//! order instead of the fault plan's fate hash.
//!
//! With a [`ScheduleConfig`] installed, `send_am` no longer pushes remote
//! frames straight into the destination inbox. Frames are *parked* in a
//! per-link pending queue, and a global pump ([`Fabric::pump_schedule`],
//! driven from every rank's `advance()`) releases them one at a time in
//! the order a [`Schedule`] dictates:
//!
//! * while explicit picks remain, the next pick names the link whose head
//!   frame is delivered next — the pump *blocks* (delivers nothing) until
//!   that link has a pending frame, so a recorded schedule replays the
//!   exact delivery order it was recorded from;
//! * past the last pick, delivery falls back to a deterministic tail
//!   policy: canonical order (lowest `(src, dst)` link first) or, with
//!   [`Schedule::random`], a seeded pseudo-random choice among non-empty
//!   links.
//!
//! Per-link FIFO is preserved by construction (picks name links, not
//! frames), so a schedule is exactly a linearization of the deliveries a
//! real run could produce. Every delivery is appended to a [`RecordLog`]
//! — link, per-link sequence number, and the frame's happens-before stamp
//! when the checker is on — which is what `rupcxx-explore` enumerates and
//! shrinks over.
//!
//! The schedule and the fault plan are mutually exclusive: the controlled
//! scheduler *replaces* the fate hash as the source of delivery-order
//! nondeterminism. One-sided RMA is synchronous on this fabric and is not
//! scheduled; AM delivery order is the only nondeterminism to control.
//!
//! Two safety valves keep a stale or shrunk schedule from hanging a run:
//! a pick that stays unsatisfiable for [`STALL_SKIP`] while frames are
//! pending elsewhere is skipped (counted in
//! [`SchedCounts::skipped_picks`]), and teardown switches the pump into
//! drain mode ([`Fabric::sched_finish`]) once every rank's closure has
//! returned, releasing leftovers in canonical order.

use crate::fabric::{AmMessage, Fabric};
use crate::Rank;
use rupcxx_check::Stamp;
use rupcxx_util::rng::SplitMix64;
use rupcxx_util::sync::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long the pump tolerates an unsatisfiable pick (frames pending on
/// other links, the picked link empty) before skipping it. Generous: a
/// legitimate block only lasts until the named sender's next send, so
/// anything near this bound is a stale entry from a shrunk schedule.
pub const STALL_SKIP: Duration = Duration::from_secs(2);

/// A replayable delivery schedule: explicit link picks consumed in order,
/// then a deterministic tail policy.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schedule {
    /// Explicit delivery decisions: each entry names the `(src, dst)`
    /// link whose head frame is delivered next.
    pub picks: Vec<(Rank, Rank)>,
    /// Tail policy once `picks` is exhausted: `None` = canonical order
    /// (lowest link first), `Some(seed)` = seeded pseudo-random choice.
    pub random_seed: Option<u64>,
}

impl Schedule {
    /// The bug-agnostic starting schedule: no explicit picks, canonical
    /// tail. Installing it still serializes delivery through the pump.
    pub fn canonical() -> Self {
        Schedule::default()
    }

    /// A schedule that replays `picks` then falls back to canonical order.
    pub fn with_picks(picks: Vec<(Rank, Rank)>) -> Self {
        Schedule {
            picks,
            random_seed: None,
        }
    }

    /// A fully random (but seeded, hence reproducible) schedule.
    pub fn random(seed: u64) -> Self {
        Schedule {
            picks: Vec::new(),
            random_seed: Some(seed),
        }
    }

    /// Parse the serialized form (see [`Schedule::to_text`]): one
    /// `SRC->DST` pick per line, optional `random=SEED`, `#` comments.
    pub fn parse(text: &str) -> Result<Schedule, String> {
        let mut sched = Schedule::canonical();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(seed) = line.strip_prefix("random=") {
                if sched.random_seed.is_some() {
                    return Err(format!("line {}: duplicate random= line", lineno + 1));
                }
                sched.random_seed = Some(
                    seed.trim()
                        .parse::<u64>()
                        .map_err(|e| format!("line {}: bad seed: {e}", lineno + 1))?,
                );
                continue;
            }
            let (src, dst) = line
                .split_once("->")
                .ok_or_else(|| format!("line {}: expected SRC->DST, got {line:?}", lineno + 1))?;
            let parse_rank = |s: &str| {
                s.trim()
                    .parse::<Rank>()
                    .map_err(|e| format!("line {}: bad rank {s:?}: {e}", lineno + 1))
            };
            sched.picks.push((parse_rank(src)?, parse_rank(dst)?));
        }
        Ok(sched)
    }

    /// Serialize to the replay format parsed by [`Schedule::parse`] —
    /// suitable for committing as a regression test input
    /// (`RUPCXX_SCHEDULE=<path>`).
    pub fn to_text(&self) -> String {
        let mut out = String::from("# rupcxx schedule v1\n");
        if let Some(seed) = self.random_seed {
            out.push_str(&format!("random={seed}\n"));
        }
        for (src, dst) in &self.picks {
            out.push_str(&format!("{src}->{dst}\n"));
        }
        out
    }
}

/// One delivery the pump performed, in order.
#[derive(Clone, Debug)]
pub struct DeliveryRecord {
    /// Sending rank.
    pub src: Rank,
    /// Destination rank.
    pub dst: Rank,
    /// Per-link delivery index (FIFO position on `src -> dst`).
    pub seq: u64,
    /// The frame's happens-before stamp at send time (present when the
    /// checker is on) — the independence oracle exploration prunes with.
    pub clock: Option<Stamp>,
}

/// Pump accounting, exposed for coverage reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedCounts {
    /// Total frames delivered through the pump.
    pub delivered: u64,
    /// Deliveries decided by an explicit pick.
    pub scheduled: u64,
    /// Deliveries decided by the tail policy (canonical or random).
    pub fallback: u64,
    /// Stale picks skipped after [`STALL_SKIP`] without progress.
    pub skipped_picks: u64,
}

/// The delivery record of one run: every delivery in order plus the pump
/// counters. Shared out through a [`ScheduleRecorder`] so the exploration
/// driver can read it after the job (even an aborted one) tears down.
#[derive(Debug, Default)]
pub struct RecordLog {
    /// Deliveries in pump order.
    pub deliveries: Vec<DeliveryRecord>,
    /// Pump accounting.
    pub counts: SchedCounts,
}

impl RecordLog {
    /// The recorded delivery order as a pick list — replaying these picks
    /// under [`Schedule::with_picks`] reproduces this run's order.
    pub fn picks(&self) -> Vec<(Rank, Rank)> {
        self.deliveries.iter().map(|d| (d.src, d.dst)).collect()
    }
}

/// Shared handle to a run's [`RecordLog`] (the `FindingSink` pattern:
/// the caller keeps a clone and reads it after the job ends).
pub type ScheduleRecorder = Arc<Mutex<RecordLog>>;

/// A fresh, empty recorder.
pub fn new_recorder() -> ScheduleRecorder {
    Arc::new(Mutex::new(RecordLog::default()))
}

/// Controlled-scheduler configuration for a fabric, normally built by
/// `rupcxx-explore` or parsed from `RUPCXX_SCHEDULE`.
#[derive(Clone)]
pub struct ScheduleConfig {
    /// The delivery order to impose.
    pub schedule: Schedule,
    /// Optional external recorder; when absent the fabric keeps its own
    /// log (readable via [`Fabric::sched_log`] while the fabric lives).
    pub recorder: Option<ScheduleRecorder>,
    /// Stale-pick tolerance (defaults to [`STALL_SKIP`]). Exploration's
    /// shrinking probes lower it: a ddmin candidate can legitimately
    /// contain picks the shrunk program never satisfies.
    pub stall_skip: Duration,
}

impl ScheduleConfig {
    /// Wrap a schedule with no external recorder.
    pub fn new(schedule: Schedule) -> Self {
        ScheduleConfig {
            schedule,
            recorder: None,
            stall_skip: STALL_SKIP,
        }
    }

    /// Attach a recorder the caller can read after the job tears down.
    pub fn with_recorder(mut self, recorder: ScheduleRecorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Override the stale-pick tolerance.
    pub fn with_stall_skip(mut self, d: Duration) -> Self {
        self.stall_skip = d;
        self
    }

    /// Read `RUPCXX_SCHEDULE` from the environment: a path to a schedule
    /// file (see [`Schedule::to_text`]) or `inline:<text>` with `;` for
    /// newlines. Malformed values abort with a clear message.
    pub fn from_env() -> Option<Self> {
        rupcxx_util::env::parse_env(
            "RUPCXX_SCHEDULE",
            "<schedule-file-path>|inline:<text, ';' = newline>|off",
            |raw| {
                let raw = raw.trim();
                if raw.is_empty() || raw == "off" {
                    return Ok(None);
                }
                let text = match raw.strip_prefix("inline:") {
                    Some(inline) => inline.replace(';', "\n"),
                    None => std::fs::read_to_string(raw)
                        .map_err(|e| format!("cannot read schedule file: {e}"))?,
                };
                Schedule::parse(&text).map(|s| Some(ScheduleConfig::new(s)))
            },
        )
    }
}

impl std::fmt::Debug for ScheduleConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScheduleConfig")
            .field("picks", &self.schedule.picks.len())
            .field("random_seed", &self.schedule.random_seed)
            .field(
                "recorder",
                &self.recorder.as_ref().map(|_| "ScheduleRecorder"),
            )
            .field("stall_skip", &self.stall_skip)
            .finish()
    }
}

/// Fabric-side scheduler state, allocated only when a [`ScheduleConfig`]
/// is installed (the schedule-off hot path never touches it).
pub(crate) struct SchedState {
    /// Global count of parked frames — the lock-free quiescence probe.
    pending_count: AtomicUsize,
    inner: Mutex<SchedInner>,
}

struct SchedInner {
    picks: Vec<(Rank, Rank)>,
    cursor: usize,
    random_seed: Option<u64>,
    /// Tail-policy decision counter (the random stream index).
    decisions: u64,
    /// Parked frames per link, indexed `src * ranks + dst`.
    pending: Vec<VecDeque<AmMessage>>,
    /// Per-link delivery counters feeding [`DeliveryRecord::seq`].
    link_seq: Vec<u64>,
    /// When the current pick first became unsatisfiable, for stale-pick
    /// skipping; cleared by any delivery.
    stalled_since: Option<Instant>,
    /// Teardown drain mode: ignore remaining picks, deliver canonically.
    drain_all: bool,
    /// Stale-pick tolerance (from [`ScheduleConfig::stall_skip`]).
    stall_skip: Duration,
    log: ScheduleRecorder,
}

impl SchedState {
    pub(crate) fn new(ranks: usize, cfg: &ScheduleConfig) -> Self {
        for &(src, dst) in &cfg.schedule.picks {
            assert!(
                src < ranks && dst < ranks && src != dst,
                "schedule pick {src}->{dst} names an invalid link for {ranks} ranks"
            );
        }
        SchedState {
            pending_count: AtomicUsize::new(0),
            inner: Mutex::new(SchedInner {
                picks: cfg.schedule.picks.clone(),
                cursor: 0,
                random_seed: cfg.schedule.random_seed,
                decisions: 0,
                pending: (0..ranks * ranks).map(|_| VecDeque::new()).collect(),
                link_seq: vec![0; ranks * ranks],
                stalled_since: None,
                drain_all: false,
                stall_skip: cfg.stall_skip,
                log: cfg.recorder.clone().unwrap_or_else(new_recorder),
            }),
        }
    }
}

impl SchedInner {
    /// The link index of the next delivery, or `None` if the pump must
    /// wait. Counts a stale explicit pick as skipped after [`STALL_SKIP`].
    fn next_link(&mut self, ranks: usize) -> Option<(usize, bool)> {
        while !self.drain_all && self.cursor < self.picks.len() {
            let (src, dst) = self.picks[self.cursor];
            let li = src * ranks + dst;
            if !self.pending[li].is_empty() {
                self.cursor += 1;
                return Some((li, true));
            }
            // The picked link is empty but frames are pending elsewhere:
            // block (replay fidelity) unless the pick has been stale for
            // `stall_skip`, in which case it is from a shrunk/stale
            // schedule and is dropped so the run cannot hang.
            match self.stalled_since {
                None => {
                    self.stalled_since = Some(Instant::now());
                    return None;
                }
                Some(t0) if t0.elapsed() < self.stall_skip => return None,
                Some(_) => {
                    self.stalled_since = None;
                    self.cursor += 1;
                    self.log.lock().counts.skipped_picks += 1;
                }
            }
        }
        // Tail policy over the non-empty links.
        let nonempty: Vec<usize> = (0..self.pending.len())
            .filter(|&li| !self.pending[li].is_empty())
            .collect();
        debug_assert!(!nonempty.is_empty(), "tail policy with nothing pending");
        let li = match self.random_seed {
            None => nonempty[0],
            Some(seed) => {
                let mut rng = SplitMix64::new(seed ^ self.decisions.wrapping_mul(0x9E37_79B9));
                nonempty[rng.next_below(nonempty.len() as u64) as usize]
            }
        };
        self.decisions += 1;
        Some((li, false))
    }
}

impl Fabric {
    /// True when a controlled delivery schedule is installed.
    #[inline]
    pub fn has_schedule(&self) -> bool {
        self.sched.is_some()
    }

    /// Park a remote AM in the scheduler's pending queue (schedule
    /// installed, `src != dst`), then pump — delivery happens inline when
    /// the schedule already allows it.
    pub(crate) fn sched_park(&self, src: Rank, dst: Rank, msg: AmMessage) {
        let s = self.sched.as_ref().expect("sched_park without schedule");
        {
            let mut inner = s.inner.lock();
            let li = src * self.endpoints.len() + dst;
            inner.pending[li].push_back(msg);
        }
        s.pending_count.fetch_add(1, Ordering::Release);
        self.pump_schedule();
    }

    /// Drive the controlled scheduler: deliver every frame the schedule
    /// currently allows, in order, into destination inboxes. Any rank's
    /// progress engine drives the whole (global) schedule — delivery is
    /// just an inbox push; execution stays with the destination. Returns
    /// the number of frames delivered. One untaken branch when no
    /// schedule is installed.
    pub fn pump_schedule(&self) -> usize {
        let Some(s) = &self.sched else { return 0 };
        if s.pending_count.load(Ordering::Acquire) == 0 {
            return 0;
        }
        let ranks = self.endpoints.len();
        let mut inner = s.inner.lock();
        let mut delivered = 0;
        while s.pending_count.load(Ordering::Acquire) > 0 {
            let Some((li, scheduled)) = inner.next_link(ranks) else {
                break;
            };
            let msg = inner.pending[li].pop_front().expect("picked link empty");
            s.pending_count.fetch_sub(1, Ordering::Release);
            inner.stalled_since = None;
            let (src, dst) = (li / ranks, li % ranks);
            let seq = inner.link_seq[li];
            inner.link_seq[li] += 1;
            {
                let mut log = inner.log.lock();
                log.deliveries.push(DeliveryRecord {
                    src,
                    dst,
                    seq,
                    clock: msg.clock.clone(),
                });
                log.counts.delivered += 1;
                if scheduled {
                    log.counts.scheduled += 1;
                } else {
                    log.counts.fallback += 1;
                }
            }
            self.endpoints[dst].inbox.push(msg);
            delivered += 1;
        }
        delivered
    }

    /// Switch the pump into teardown drain mode: every rank's closure has
    /// returned, so picks still unconsumed name frames that will never be
    /// sent — ignore them and release leftovers in canonical order. This
    /// is what makes teardown quiescence schedule-agnostic. No-op without
    /// a schedule.
    pub fn sched_finish(&self) {
        if let Some(s) = &self.sched {
            s.inner.lock().drain_all = true;
            self.pump_schedule();
        }
    }

    /// Number of frames parked fabric-wide by the controlled scheduler
    /// (0 without one). Folded into [`Fabric::links_quiescent`] so the
    /// deadlock scan's quiet check and teardown treat a parked frame
    /// exactly like an in-flight one.
    #[inline]
    pub fn sched_pending(&self) -> usize {
        match &self.sched {
            None => 0,
            Some(s) => s.pending_count.load(Ordering::Acquire),
        }
    }

    /// This run's delivery record (the live log — explorers normally read
    /// it through their own [`ScheduleRecorder`] after teardown instead).
    pub fn sched_log(&self) -> Option<ScheduleRecorder> {
        self.sched.as_ref().map(|s| s.inner.lock().log.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{AmPayload, FabricConfig};
    use rupcxx_util::Bytes;

    fn sched_fabric(ranks: usize, schedule: Schedule) -> (Arc<Fabric>, ScheduleRecorder) {
        let rec = new_recorder();
        let f = Fabric::new(FabricConfig {
            ranks,
            segment_bytes: 4096,
            schedule: Some(ScheduleConfig::new(schedule).with_recorder(rec.clone())),
            ..FabricConfig::default()
        });
        (f, rec)
    }

    fn send(f: &Fabric, src: Rank, dst: Rank, id: u16) {
        f.send_am(
            src,
            dst,
            AmPayload::Handler {
                id,
                args: Bytes::new(),
            },
        );
    }

    fn recv_ids(f: &Fabric, me: Rank) -> Vec<(Rank, u16)> {
        let mut got = Vec::new();
        while let Some(m) = f.endpoint(me).try_recv() {
            if let AmPayload::Handler { id, .. } = m.payload {
                got.push((m.src, id));
            }
        }
        got
    }

    #[test]
    fn canonical_schedule_delivers_in_link_order() {
        let (f, rec) = sched_fabric(3, Schedule::canonical());
        // Parked frames deliver inline (the park pumps), so interleave
        // sends from two sources: each delivery happens at park time.
        send(&f, 2, 0, 20);
        send(&f, 1, 0, 10);
        assert_eq!(recv_ids(&f, 0), vec![(2, 20), (1, 10)]);
        let log = rec.lock();
        assert_eq!(log.picks(), vec![(2, 0), (1, 0)]);
        assert_eq!(log.counts.delivered, 2);
        assert_eq!(log.counts.fallback, 2);
        assert_eq!(log.counts.scheduled, 0);
    }

    #[test]
    fn explicit_picks_block_until_satisfiable() {
        let (f, rec) = sched_fabric(3, Schedule::with_picks(vec![(2, 0), (1, 0)]));
        // The schedule demands 2->0 first: a 1->0 frame parks undelivered.
        send(&f, 1, 0, 10);
        assert_eq!(f.endpoint(0).pending(), 0, "blocked on pick 2->0");
        assert_eq!(f.sched_pending(), 1);
        assert!(!f.links_quiescent(0), "parked frame counts as in flight");
        // Once 2->0 arrives, both deliveries release in pick order.
        send(&f, 2, 0, 20);
        assert_eq!(recv_ids(&f, 0), vec![(2, 20), (1, 10)]);
        assert!(f.links_quiescent(0));
        let log = rec.lock();
        assert_eq!(log.picks(), vec![(2, 0), (1, 0)]);
        assert_eq!(log.counts.scheduled, 2);
        assert_eq!(log.counts.fallback, 0);
    }

    #[test]
    fn per_link_fifo_is_preserved() {
        let (f, _rec) = sched_fabric(2, Schedule::canonical());
        for id in 0..10u16 {
            send(&f, 0, 1, id);
        }
        let got: Vec<u16> = recv_ids(&f, 1).into_iter().map(|(_, id)| id).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn local_sends_bypass_the_scheduler() {
        let (f, rec) = sched_fabric(2, Schedule::with_picks(vec![(0, 1)]));
        send(&f, 0, 0, 1);
        assert_eq!(recv_ids(&f, 0), vec![(0, 1)]);
        assert_eq!(rec.lock().counts.delivered, 0);
    }

    #[test]
    fn sched_finish_releases_stale_picks() {
        // A pick for a frame that will never be sent: drain mode releases
        // the parked frames canonically instead of hanging teardown.
        let (f, rec) = sched_fabric(3, Schedule::with_picks(vec![(2, 0)]));
        send(&f, 1, 0, 10);
        assert_eq!(f.endpoint(0).pending(), 0);
        f.sched_finish();
        assert_eq!(recv_ids(&f, 0), vec![(1, 10)]);
        assert_eq!(rec.lock().counts.fallback, 1);
        assert!(f.links_quiescent(0));
    }

    #[test]
    fn random_schedule_is_reproducible_and_can_differ() {
        // A random schedule has no picks, so each park delivers inline and
        // the seeded choice only matters with 2+ links pending; what this
        // pins down is that identical runs record identical orders.
        let order = |seed: u64| {
            let (f, rec) = sched_fabric(3, Schedule::random(seed));
            send(&f, 1, 0, 10);
            send(&f, 2, 0, 20);
            send(&f, 1, 0, 11);
            let _ = recv_ids(&f, 0);
            let picks = rec.lock().picks();
            picks
        };
        assert_eq!(order(7), order(7), "same seed, same order");
    }

    #[test]
    fn schedule_text_roundtrip() {
        let s = Schedule {
            picks: vec![(0, 1), (2, 0)],
            random_seed: Some(99),
        };
        let text = s.to_text();
        assert_eq!(Schedule::parse(&text).unwrap(), s);
        // Comments and blank lines are tolerated.
        let parsed = Schedule::parse("# hi\n\n 1 -> 2 \nrandom=5\n").unwrap();
        assert_eq!(parsed.picks, vec![(1, 2)]);
        assert_eq!(parsed.random_seed, Some(5));
    }

    #[test]
    fn schedule_parse_rejects_garbage() {
        assert!(Schedule::parse("0=>1").is_err());
        assert!(Schedule::parse("a->b").is_err());
        assert!(Schedule::parse("random=x").is_err());
        assert!(Schedule::parse("random=1\nrandom=2").is_err());
    }

    #[test]
    #[should_panic(expected = "invalid link")]
    fn out_of_range_pick_is_rejected_at_construction() {
        let _ = sched_fabric(2, Schedule::with_picks(vec![(0, 5)]));
    }

    #[test]
    #[should_panic(expected = "mutually exclusive")]
    fn schedule_and_faults_are_mutually_exclusive() {
        let _ = Fabric::new(FabricConfig {
            ranks: 2,
            segment_bytes: 4096,
            faults: Some(crate::faults::FaultPlan::new(1).drop(0.1)),
            schedule: Some(ScheduleConfig::new(Schedule::canonical())),
            ..FabricConfig::default()
        });
    }
}
