//! Per-destination message aggregation (a software "conveyor").
//!
//! Fine-grained PGAS traffic — 8-byte remote updates, small RPCs — pays a
//! full `send_am`/RMA cost per operation on this fabric: an allocation, a
//! queue push, stats, trace and (under faults) reliable-layer bookkeeping
//! for every few bytes moved. UPC++ amortizes that per-message injection
//! overhead by packing handler + args into contiguous buffers (paper §IV);
//! DASH/DART report per-destination coalescing as the single largest win
//! for irregular workloads. This module is that layer:
//!
//! * each rank keeps one small coalescing buffer **per destination** into
//!   which buffered operations are packed as compact frames
//!   ([`Frame`]: handler RPCs, `xor`/`add` word updates, small puts);
//! * a buffer flushes as **one** [`AmPayload::Batch`] active message when
//!   it crosses the configured byte or frame-count threshold
//!   ([`AggConfig`]), or when the runtime force-flushes at a completion
//!   point (`advance()`, `fence()`, `barrier()`, `async_copy_fence`);
//! * the receiver pops the batch from its inbox **once** and dispatches
//!   the frames in order, so queue, allocation, stats and trace costs are
//!   paid per batch, not per operation;
//! * the reliable/fault layer sees the batch as a single sequenced frame:
//!   a retransmit redelivers the whole batch exactly once, and per-link
//!   FIFO order is preserved — [`Fabric::send_am`] flushes the
//!   destination's buffer before injecting any direct message.
//!
//! Without an [`AggConfig`] installed the layer is zero-cost: every
//! buffered entry point falls through to the direct operation after one
//! untaken branch, and no buffers are allocated.
//!
//! **Consistency:** buffered operations complete at the *next flush
//! point*, not at the call. Mixing buffered updates with direct RMA on
//! the same location without an intervening flush (`fence`/`barrier`)
//! is unordered, exactly like unsynchronized conflicting accesses under
//! the paper's relaxed memory model (§III-F).

use crate::fabric::{AmPayload, Fabric, GlobalAddr};
use crate::inbox::{thread_shard, INBOX_SHARDS};
use crate::Rank;
use rupcxx_trace::EventKind;
use rupcxx_util::sync::SpinMutex;
use rupcxx_util::{Bytes, SlabPool};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Aggregation thresholds (the `RUPCXX_AGG=bytes,count` knobs).
///
/// A per-destination buffer flushes when it holds `flush_bytes` of packed
/// frames **or** `flush_count` frames, whichever comes first.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AggConfig {
    /// Flush a destination buffer once it holds this many packed bytes.
    pub flush_bytes: usize,
    /// Flush a destination buffer once it holds this many frames.
    pub flush_count: usize,
}

impl Default for AggConfig {
    fn default() -> Self {
        AggConfig {
            flush_bytes: 4096,
            flush_count: 64,
        }
    }
}

impl AggConfig {
    /// Default thresholds (4096 bytes / 64 frames).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: set the byte threshold.
    pub fn flush_bytes(mut self, bytes: usize) -> Self {
        self.flush_bytes = bytes.max(1);
        self
    }

    /// Builder: set the frame-count threshold.
    pub fn flush_count(mut self, count: usize) -> Self {
        self.flush_count = count.max(1);
        self
    }

    /// Read a config from the `RUPCXX_AGG` environment variable.
    ///
    /// * unset, empty, `off` or `0` — aggregation disabled (`None`);
    /// * `on` or `1` — enabled with the default thresholds;
    /// * `BYTES,COUNT` (e.g. `RUPCXX_AGG=4096,64`) — explicit thresholds.
    ///
    /// A malformed value aborts with a clear message, mirroring
    /// `RUPCXX_FAULTS`/`RUPCXX_TRACE`/`RUPCXX_CHECK`.
    pub fn from_env() -> Option<Self> {
        rupcxx_util::env::parse_env("RUPCXX_AGG", "off | on | BYTES,COUNT", Self::parse)
    }

    /// Parse an `RUPCXX_AGG` value (see [`AggConfig::from_env`]).
    pub fn parse(raw: &str) -> Result<Option<Self>, String> {
        let raw = raw.trim();
        match raw {
            "" | "off" | "0" => return Ok(None),
            "on" | "1" => return Ok(Some(Self::default())),
            _ => {}
        }
        let (bytes, count) = raw
            .split_once(',')
            .ok_or_else(|| "expected off | on | BYTES,COUNT".to_string())?;
        let bytes: usize = bytes
            .trim()
            .parse()
            .map_err(|_| format!("bad byte threshold {:?}", bytes.trim()))?;
        let count: usize = count
            .trim()
            .parse()
            .map_err(|_| format!("bad frame-count threshold {:?}", count.trim()))?;
        if bytes == 0 || count == 0 {
            return Err("thresholds must be >= 1".into());
        }
        Ok(Some(AggConfig {
            flush_bytes: bytes,
            flush_count: count,
        }))
    }
}

/// Largest `data` accepted by [`Fabric::put_buffered`] as a frame; larger
/// puts are not "fine-grained" and go out directly.
pub const AGG_MAX_PUT: usize = 1024;

/// Headroom reserved beyond the byte threshold so the threshold check
/// (which runs *after* the frame is packed) never forces a slab to grow:
/// the largest frame is a [`AGG_MAX_PUT`]-byte put plus its header.
const AGG_SLACK: usize = AGG_MAX_PUT + 64;

/// One (shard, destination) coalescing buffer. `bytes` is a slab on loan
/// from the endpoint's [`SlabPool`], taken lazily on first use and
/// pre-reserved to `flush_bytes + AGG_SLACK` so packing a frame is a pure
/// `extend_from_slice` — no reallocation, ever, on the word-frame path.
#[derive(Default)]
struct AggBuf {
    /// Frames currently packed in `bytes`.
    count: u32,
    /// Packed frame encoding (see the `TAG_*` constants).
    bytes: Vec<u8>,
}

/// One injection shard: a buffer per destination plus a dirty flag. Each
/// producer thread owns one shard (by thread hash), so concurrent
/// injectors never contend on a buffer lock — which is why the buffers
/// sit behind a [`SpinMutex`]: the lock is held for a handful of
/// nanoseconds by (almost always) a single thread, and the uncontended
/// spin acquire/release is about half the cost of a futex mutex round
/// trip on the per-operation pack path.
struct AggShard {
    bufs: Box<[SpinMutex<AggBuf>]>,
    /// Set when any destination of this shard may hold frames — the cheap
    /// gate that keeps `flush_agg` in the progress engine's hot loop at
    /// one relaxed load per shard when nothing is pending.
    dirty: AtomicBool,
}

/// Per-endpoint aggregation state: config + per-shard, per-destination
/// buffers + the slab pool that recycles flushed batch buffers. Allocated
/// only when the fabric has an [`AggConfig`] (the slabs stay unallocated
/// until a destination is first used).
pub(crate) struct AggState {
    cfg: AggConfig,
    shards: Box<[AggShard]>,
    /// Recycles batch slabs: a flushed buffer travels to the receiver as
    /// pooled [`Bytes`] and its capacity returns here when the last
    /// reader drops — steady state packs and ships without allocating.
    pool: Arc<SlabPool>,
}

impl AggState {
    pub(crate) fn new(ranks: usize, cfg: AggConfig) -> Self {
        AggState {
            cfg,
            shards: (0..INBOX_SHARDS)
                .map(|_| AggShard {
                    bufs: (0..ranks)
                        .map(|_| SpinMutex::new(AggBuf::default()))
                        .collect(),
                    dirty: AtomicBool::new(false),
                })
                .collect(),
            // Enough idle slabs for every (shard, destination) buffer plus
            // a margin of in-flight batches.
            pool: SlabPool::new(INBOX_SHARDS * ranks + 8),
        }
    }
}

const TAG_HANDLER: u8 = 0;
const TAG_XOR: u8 = 1;
const TAG_ADD: u8 = 2;
const TAG_PUT: u8 = 3;

/// One unpacked frame of an [`AmPayload::Batch`].
#[derive(Debug, PartialEq, Eq)]
pub enum Frame<'a> {
    /// A registered-handler RPC (dispatched through the runtime's
    /// handler table, like a direct `AmPayload::Handler`).
    Handler {
        /// Registered handler id.
        id: u16,
        /// Packed arguments.
        args: &'a [u8],
    },
    /// An atomic xor on an aligned word of the destination's segment.
    Xor {
        /// Packed target address (rank = the destination itself).
        addr: GlobalAddr,
        /// Operand.
        value: u64,
    },
    /// An atomic add on an aligned word of the destination's segment.
    Add {
        /// Packed target address (rank = the destination itself).
        addr: GlobalAddr,
        /// Operand.
        value: u64,
    },
    /// A small contiguous write into the destination's segment.
    Put {
        /// Packed target address (rank = the destination itself).
        addr: GlobalAddr,
        /// Bytes to write.
        data: &'a [u8],
    },
}

fn encode_handler(buf: &mut Vec<u8>, id: u16, args: &[u8]) {
    buf.push(TAG_HANDLER);
    buf.extend_from_slice(&id.to_le_bytes());
    buf.extend_from_slice(&(args.len() as u32).to_le_bytes());
    buf.extend_from_slice(args);
}

// RMA frames carry the packed [`GlobalAddr`] word verbatim: the rank bits
// double as an end-to-end integrity check (the receiver asserts the frame
// was packed for it), and encode/decode are a single 8-byte move either
// way.
#[inline]
fn encode_word(buf: &mut Vec<u8>, tag: u8, addr: GlobalAddr, value: u64) {
    // Assemble the frame on the stack and append it with ONE
    // `extend_from_slice`: a single length/capacity check instead of
    // three, and the compiler lowers the copy to two unaligned 8-byte
    // stores plus a byte.
    let mut frame = [0u8; 17];
    frame[0] = tag;
    frame[1..9].copy_from_slice(&addr.packed().to_le_bytes());
    frame[9..17].copy_from_slice(&value.to_le_bytes());
    buf.extend_from_slice(&frame);
}

fn encode_put(buf: &mut Vec<u8>, addr: GlobalAddr, data: &[u8]) {
    buf.push(TAG_PUT);
    buf.extend_from_slice(&addr.packed().to_le_bytes());
    buf.extend_from_slice(&(data.len() as u32).to_le_bytes());
    buf.extend_from_slice(data);
}

/// In-order iterator over the frames packed in a batch payload.
///
/// The encoding is produced and consumed inside this crate, so a
/// malformed buffer is an internal invariant violation and panics.
pub struct BatchReader<'a> {
    buf: &'a [u8],
}

impl<'a> BatchReader<'a> {
    /// Iterate the frames of `frames` (an [`AmPayload::Batch`] body).
    pub fn new(frames: &'a [u8]) -> Self {
        BatchReader { buf: frames }
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        head
    }

    fn take_u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    fn take_u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }
}

impl<'a> Iterator for BatchReader<'a> {
    type Item = Frame<'a>;

    fn next(&mut self) -> Option<Frame<'a>> {
        if self.buf.is_empty() {
            return None;
        }
        let tag = self.take(1)[0];
        Some(match tag {
            TAG_HANDLER => {
                let id = u16::from_le_bytes(self.take(2).try_into().unwrap());
                let len = self.take_u32() as usize;
                Frame::Handler {
                    id,
                    args: self.take(len),
                }
            }
            TAG_XOR => Frame::Xor {
                addr: GlobalAddr::from_packed(self.take_u64()),
                value: self.take_u64(),
            },
            TAG_ADD => Frame::Add {
                addr: GlobalAddr::from_packed(self.take_u64()),
                value: self.take_u64(),
            },
            TAG_PUT => {
                let addr = GlobalAddr::from_packed(self.take_u64());
                let len = self.take_u32() as usize;
                Frame::Put {
                    addr,
                    data: self.take(len),
                }
            }
            other => panic!("batch frame with unknown tag {other}"),
        })
    }
}

impl Fabric {
    /// True when this initiator has an aggregation layer installed.
    pub fn agg_enabled(&self, initiator: Rank) -> bool {
        self.endpoints[initiator].agg.is_some()
    }

    /// Pack one frame for `dst` into the calling thread's shard buffer,
    /// flushing it if a threshold is crossed. Caller guarantees
    /// aggregation is on and `dst != initiator`.
    ///
    /// Hot-path cost: one uncontended shard-buffer lock, the
    /// `extend_from_slice` of the frame, and (rarely) a dirty-flag store —
    /// per-op stats are accounted at flush time, batched per batch.
    fn agg_push(&self, initiator: Rank, dst: Rank, encode: impl FnOnce(&mut Vec<u8>)) {
        let ep = &self.endpoints[initiator];
        let agg = ep.agg.as_ref().expect("agg_push without aggregation");
        let shard = &agg.shards[thread_shard()];
        let flush = {
            let mut buf = shard.bufs[dst].lock();
            if buf.bytes.capacity() == 0 {
                buf.bytes = agg.pool.take(agg.cfg.flush_bytes + AGG_SLACK);
            }
            encode(&mut buf.bytes);
            buf.count += 1;
            if buf.count == 1 {
                shard.dirty.store(true, Ordering::Release);
            }
            buf.count as usize >= agg.cfg.flush_count || buf.bytes.len() >= agg.cfg.flush_bytes
        };
        if flush {
            // Threshold crossings flush only this thread's shard; other
            // injectors' partial buffers keep filling toward their own
            // thresholds. (The ordering flush in `send_am` sweeps every
            // shard via `flush_agg_to`.)
            self.flush_agg_shard_to(initiator, shard, dst);
        }
    }

    /// Flush one (shard, destination) buffer as a single
    /// [`AmPayload::Batch`]. The slab leaves as pooled [`Bytes`] — no
    /// copy, no shrink — and its capacity returns to the pool when the
    /// last reader (receiver, or the reliable layer's retransmit copy)
    /// drops. Returns whether anything was sent.
    fn flush_agg_shard_to(&self, initiator: Rank, shard: &AggShard, dst: Rank) -> bool {
        let ep = &self.endpoints[initiator];
        let agg = ep.agg.as_ref().expect("flush without aggregation");
        let (count, bytes) = {
            let mut buf = shard.bufs[dst].lock();
            if buf.count == 0 {
                return false;
            }
            (
                std::mem::take(&mut buf.count),
                std::mem::take(&mut buf.bytes),
            )
        };
        ep.stats.agg_ops.fetch_add(count as u64, Ordering::Relaxed);
        ep.stats.agg_batches.fetch_add(1, Ordering::Relaxed);
        ep.trace
            .instant(EventKind::BatchFlush, dst as i32, count as u64);
        self.send_am(
            initiator,
            dst,
            AmPayload::Batch {
                count,
                frames: Bytes::pooled(bytes, &agg.pool),
            },
        );
        true
    }

    /// Flush the initiator's buffers for one destination (all shards, in
    /// shard order) as [`AmPayload::Batch`] messages. Returns whether
    /// anything was sent.
    pub fn flush_agg_to(&self, initiator: Rank, dst: Rank) -> bool {
        let ep = &self.endpoints[initiator];
        let Some(agg) = &ep.agg else { return false };
        let mut sent = false;
        for shard in agg.shards.iter() {
            sent |= self.flush_agg_shard_to(initiator, shard, dst);
        }
        sent
    }

    /// Force-flush every destination buffer of `initiator`; returns the
    /// number of batches sent. With aggregation off — or nothing buffered
    /// — this is one branch plus one relaxed load per shard.
    pub fn flush_agg(&self, initiator: Rank) -> usize {
        let ep = &self.endpoints[initiator];
        let Some(agg) = &ep.agg else { return 0 };
        if !agg.shards.iter().any(|s| s.dirty.load(Ordering::Acquire)) {
            return 0;
        }
        // Clear the flags before sweeping: a racing push re-marks its
        // shard and is picked up by the next advance() at the latest.
        for shard in agg.shards.iter() {
            shard.dirty.store(false, Ordering::Release);
        }
        let mut batches = 0;
        for dst in 0..self.endpoints.len() {
            for shard in agg.shards.iter() {
                if self.flush_agg_shard_to(initiator, shard, dst) {
                    batches += 1;
                }
            }
        }
        batches
    }

    /// Buffered registered-handler RPC: packed as a frame when
    /// aggregation is on and `dst` is remote, otherwise a direct
    /// [`Fabric::send_am`].
    pub fn am_buffered(&self, initiator: Rank, dst: Rank, id: u16, args: &[u8]) {
        if self.endpoints[initiator].agg.is_some() && dst != initiator {
            self.agg_push(initiator, dst, |b| encode_handler(b, id, args));
        } else {
            self.send_am(
                initiator,
                dst,
                AmPayload::Handler {
                    id,
                    args: Bytes::copy_from_slice(args),
                },
            );
        }
    }

    /// Buffered remote xor (no fetched result — the update is applied by
    /// the destination's progress engine at delivery).
    pub fn xor_u64_buffered(&self, initiator: Rank, dst: GlobalAddr, value: u64) {
        if self.endpoints[initiator].agg.is_some() && dst.rank() != initiator {
            self.invalidate_own(initiator, dst, 8);
            self.agg_push(initiator, dst.rank(), |b| {
                encode_word(b, TAG_XOR, dst, value)
            });
        } else {
            let _ = self.xor_u64(initiator, dst, value);
        }
    }

    /// Buffered remote add (no fetched result).
    pub fn add_u64_buffered(&self, initiator: Rank, dst: GlobalAddr, value: u64) {
        if self.endpoints[initiator].agg.is_some() && dst.rank() != initiator {
            self.invalidate_own(initiator, dst, 8);
            self.agg_push(initiator, dst.rank(), |b| {
                encode_word(b, TAG_ADD, dst, value)
            });
        } else {
            let _ = self.add_u64(initiator, dst, value);
        }
    }

    /// Buffered small put. Payloads over [`AGG_MAX_PUT`] bytes (or local
    /// / unaggregated ones) go out as a direct one-sided put.
    pub fn put_buffered(&self, initiator: Rank, dst: GlobalAddr, data: &[u8]) {
        if self.endpoints[initiator].agg.is_some()
            && dst.rank() != initiator
            && data.len() <= AGG_MAX_PUT
        {
            self.invalidate_own(initiator, dst, data.len());
            self.agg_push(initiator, dst.rank(), |b| encode_put(b, dst, data));
        } else {
            self.put(initiator, dst, data);
        }
    }

    /// Apply one segment-level frame on `me`'s own segment (the receiver
    /// side of batch dispatch). Returns `false` for [`Frame::Handler`],
    /// which the caller must route through its handler registry.
    ///
    /// `src`/`clock` identify the batch the frame arrived in: the checker
    /// records each applied frame as an access *by the sender* with the
    /// batch's flush-time clock — not the receiving rank's current clock,
    /// which would order the frame under everything the receiver has done
    /// and hide races with the receiver's own unfenced accesses.
    pub fn apply_frame(
        &self,
        me: Rank,
        src: Rank,
        clock: Option<&rupcxx_check::Stamp>,
        frame: &Frame<'_>,
    ) -> bool {
        if let (Some(ck), Some(stamp)) = (&self.check, clock) {
            match frame {
                Frame::Xor { addr, .. } => {
                    ck.frame_access(
                        src,
                        me,
                        addr.offset(),
                        8,
                        rupcxx_check::AccessKind::Atomic,
                        stamp,
                        "agg-xor",
                    );
                }
                Frame::Add { addr, .. } => {
                    ck.frame_access(
                        src,
                        me,
                        addr.offset(),
                        8,
                        rupcxx_check::AccessKind::Atomic,
                        stamp,
                        "agg-add",
                    );
                }
                Frame::Put { addr, data } => {
                    ck.frame_access(
                        src,
                        me,
                        addr.offset(),
                        data.len(),
                        rupcxx_check::AccessKind::Write,
                        stamp,
                        "agg-put",
                    );
                }
                Frame::Handler { .. } => {}
            }
        }
        // The packed rank bits assert end-to-end that the frame was packed
        // for this rank's segment.
        if let Frame::Xor { addr, .. } | Frame::Add { addr, .. } | Frame::Put { addr, .. } = frame {
            debug_assert_eq!(addr.rank(), me, "batch frame addressed to the wrong rank");
        }
        let seg = &self.endpoints[me].segment;
        match frame {
            Frame::Xor { addr, value } => {
                seg.fetch_xor_u64(addr.offset(), *value);
            }
            Frame::Add { addr, value } => {
                seg.fetch_add_u64(addr.offset(), *value);
            }
            Frame::Put { addr, data } => {
                seg.write_bytes(addr.offset(), data);
            }
            Frame::Handler { .. } => return false,
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{AmMessage, FabricConfig};
    use rupcxx_trace::TraceConfig;
    use std::sync::Arc;

    fn agg_fabric(ranks: usize, cfg: AggConfig) -> Arc<Fabric> {
        Fabric::new(FabricConfig {
            ranks,
            segment_bytes: 4096,
            simnet: None,
            trace: TraceConfig::off(),
            faults: None,
            agg: Some(cfg),
            check: None,
            cache: None,
            prof: None,
            schedule: None,
            remote: None,
        })
    }

    /// Receiver-side dispatch for tests: pop everything, apply segment
    /// frames, return handler ids in arrival order.
    fn dispatch_all(f: &Fabric, me: Rank) -> Vec<u16> {
        let mut ids = Vec::new();
        for AmMessage {
            src,
            payload,
            clock,
            ..
        } in f.endpoint(me).drain()
        {
            match payload {
                AmPayload::Handler { id, .. } => ids.push(id),
                AmPayload::Batch { frames, count } => {
                    let mut seen = 0;
                    for frame in BatchReader::new(&frames) {
                        seen += 1;
                        if let Frame::Handler { id, .. } = frame {
                            ids.push(id);
                        } else {
                            assert!(f.apply_frame(me, src, clock.as_ref(), &frame));
                        }
                    }
                    assert_eq!(seen, count, "batch count must match its frames");
                }
                AmPayload::Task(_) => panic!("unexpected task payload"),
            }
        }
        ids
    }

    #[test]
    fn parse_env_forms() {
        assert_eq!(AggConfig::parse("off"), Ok(None));
        assert_eq!(AggConfig::parse("0"), Ok(None));
        assert_eq!(AggConfig::parse(""), Ok(None));
        assert_eq!(AggConfig::parse("on"), Ok(Some(AggConfig::default())));
        assert_eq!(AggConfig::parse("1"), Ok(Some(AggConfig::default())));
        assert_eq!(
            AggConfig::parse(" 8192 , 32 "),
            Ok(Some(AggConfig {
                flush_bytes: 8192,
                flush_count: 32
            }))
        );
        assert!(AggConfig::parse("many").is_err());
        assert!(AggConfig::parse("8192").is_err());
        assert!(AggConfig::parse("0,64").is_err());
        assert!(AggConfig::parse("x,64").is_err());
    }

    #[test]
    fn frames_round_trip_in_order() {
        let mut buf = Vec::new();
        encode_handler(&mut buf, 7, &[1, 2, 3]);
        encode_word(&mut buf, TAG_XOR, GlobalAddr::new(1, 40), 0xDEAD);
        encode_word(&mut buf, TAG_ADD, GlobalAddr::new(1, 48), 5);
        encode_put(&mut buf, GlobalAddr::new(1, 64), &[9; 16]);
        encode_handler(&mut buf, 8, &[]);
        let got: Vec<Frame<'_>> = BatchReader::new(&buf).collect();
        assert_eq!(
            got,
            vec![
                Frame::Handler {
                    id: 7,
                    args: &[1, 2, 3]
                },
                Frame::Xor {
                    addr: GlobalAddr::new(1, 40),
                    value: 0xDEAD
                },
                Frame::Add {
                    addr: GlobalAddr::new(1, 48),
                    value: 5
                },
                Frame::Put {
                    addr: GlobalAddr::new(1, 64),
                    data: &[9; 16]
                },
                Frame::Handler { id: 8, args: &[] },
            ]
        );
    }

    #[test]
    fn count_threshold_flushes_one_batch() {
        let f = agg_fabric(2, AggConfig::new().flush_count(4));
        for i in 0..4 {
            f.xor_u64_buffered(0, GlobalAddr::new(1, 8 * i), 1 << i);
        }
        // The 4th frame crossed the threshold: exactly one wire message.
        let c = f.endpoint(0).stats.snapshot();
        assert_eq!(c.agg_ops, 4);
        assert_eq!(c.agg_batches, 1);
        assert_eq!(c.ams_sent, 1);
        assert_eq!(f.endpoint(1).pending(), 1);
        assert!(dispatch_all(&f, 1).is_empty());
        for i in 0..4 {
            assert_eq!(f.endpoint(1).segment.load_u64(8 * i), 1 << i);
        }
    }

    #[test]
    fn byte_threshold_flushes() {
        let f = agg_fabric(2, AggConfig::new().flush_bytes(64).flush_count(1000));
        // 17-byte xor frames: the 4th crosses 64 bytes.
        for _ in 0..4 {
            f.add_u64_buffered(0, GlobalAddr::new(1, 0), 1);
        }
        assert_eq!(f.endpoint(0).stats.snapshot().agg_batches, 1);
        assert!(dispatch_all(&f, 1).is_empty());
        assert_eq!(f.endpoint(1).segment.load_u64(0), 4);
    }

    #[test]
    fn flush_agg_sends_partial_buffers_per_destination() {
        let f = agg_fabric(3, AggConfig::default());
        f.xor_u64_buffered(0, GlobalAddr::new(1, 0), 3);
        f.add_u64_buffered(0, GlobalAddr::new(2, 8), 4);
        f.put_buffered(0, GlobalAddr::new(2, 16), &[0xAB; 8]);
        assert_eq!(f.endpoint(1).pending(), 0, "below threshold: nothing sent");
        assert_eq!(f.flush_agg(0), 2, "one batch per buffered destination");
        assert_eq!(f.flush_agg(0), 0, "idempotent once empty");
        assert!(dispatch_all(&f, 1).is_empty());
        assert!(dispatch_all(&f, 2).is_empty());
        assert_eq!(f.endpoint(1).segment.load_u64(0), 3);
        assert_eq!(f.endpoint(2).segment.load_u64(8), 4);
        let mut got = [0u8; 8];
        f.endpoint(2).segment.read_bytes(16, &mut got);
        assert_eq!(got, [0xAB; 8]);
        let c = f.endpoint(0).stats.snapshot();
        assert_eq!((c.agg_ops, c.agg_batches), (3, 2));
    }

    #[test]
    fn local_ops_and_oversize_puts_fall_through() {
        let f = agg_fabric(2, AggConfig::default());
        // Local buffered ops never buffer (they are already "delivered").
        f.xor_u64_buffered(0, GlobalAddr::new(0, 0), 7);
        assert_eq!(f.endpoint(0).segment.load_u64(0), 7);
        // A put over AGG_MAX_PUT is not fine-grained: direct one-sided.
        let big = vec![1u8; AGG_MAX_PUT + 1];
        f.put_buffered(0, GlobalAddr::new(1, 0), &big);
        let c = f.endpoint(0).stats.snapshot();
        assert_eq!(c.agg_ops, 0);
        assert_eq!(c.local_ops, 1);
        assert_eq!(c.puts, 1);
        assert_eq!(c.put_bytes, big.len() as u64);
    }

    #[test]
    fn disabled_layer_falls_through_with_identical_counts() {
        let plain = Fabric::new(FabricConfig {
            ranks: 2,
            segment_bytes: 4096,
            simnet: None,
            trace: TraceConfig::off(),
            faults: None,
            agg: None,
            check: None,
            cache: None,
            prof: None,
            schedule: None,
            remote: None,
        });
        assert!(!plain.agg_enabled(0));
        plain.xor_u64_buffered(0, GlobalAddr::new(1, 0), 9);
        plain.add_u64_buffered(0, GlobalAddr::new(1, 8), 2);
        plain.put_buffered(0, GlobalAddr::new(1, 16), &[1, 2, 3]);
        plain.am_buffered(0, 1, 3, &[4, 5]);
        assert_eq!(plain.flush_agg(0), 0);
        let c = plain.endpoint(0).stats.snapshot();
        // Exactly the direct-path counts: 2 word updates + 1 put + 1 AM.
        assert_eq!((c.agg_ops, c.agg_batches), (0, 0));
        assert_eq!(c.puts, 3);
        assert_eq!(c.ams_sent, 1);
        assert_eq!(plain.endpoint(1).segment.load_u64(0), 9);
        assert_eq!(plain.endpoint(1).segment.load_u64(8), 2);
    }

    #[test]
    fn direct_am_flushes_destination_buffer_first() {
        // Per-link FIFO across the layers: frames buffered before a
        // direct AM must be delivered before it.
        let f = agg_fabric(2, AggConfig::default());
        f.am_buffered(0, 1, 10, &[]);
        f.am_buffered(0, 1, 11, &[]);
        f.send_am(
            0,
            1,
            AmPayload::Handler {
                id: 12,
                args: Bytes::new(),
            },
        );
        assert_eq!(dispatch_all(&f, 1), vec![10, 11, 12]);
        let c = f.endpoint(0).stats.snapshot();
        assert_eq!(c.agg_batches, 1, "the direct send forced the flush");
        assert_eq!(c.ams_sent, 2, "one batch + one direct AM");
    }

    #[test]
    fn batch_is_one_reliable_frame_under_total_duplication() {
        // Every wire frame is duplicated: the dedup window must discard
        // the duplicate *batch* so its updates apply exactly once.
        let f = Fabric::new(FabricConfig {
            ranks: 2,
            segment_bytes: 4096,
            simnet: None,
            trace: TraceConfig::off(),
            faults: Some(crate::faults::FaultPlan::new(3).dup(1.0)),
            agg: Some(AggConfig::new().flush_count(8)),
            check: None,
            cache: None,
            prof: None,
            schedule: None,
            remote: None,
        });
        for _ in 0..8 {
            f.add_u64_buffered(0, GlobalAddr::new(1, 0), 1);
        }
        for _ in 0..1000 {
            f.pump_incoming(1);
            assert!(dispatch_all(&f, 1).is_empty());
            if f.links_quiescent(1) && f.endpoint(1).pending() == 0 {
                break;
            }
        }
        assert_eq!(f.endpoint(1).segment.load_u64(0), 8, "exactly once");
        let c = f.total_counts();
        assert_eq!(c.agg_batches, 1);
        assert_eq!(c.dup_arrivals, 1, "one duplicate of the one batch");
    }
}
