//! Affinity-driven loops — the `upc_forall` row of the paper's Table I.
//!
//! UPC's `upc_forall(init; cond; incr; affinity) stmt` runs each iteration
//! on the thread named by the affinity expression. The paper's UPC++
//! equivalent is the plain rewrite
//! `for (...) { if (affinity_cond) { stmts } }`; these helpers package
//! that rewrite so the common affinity forms read like the original.

use crate::shared_array::SharedArray;
use rupcxx_net::Pod;
use rupcxx_runtime::Ctx;

impl<T: Pod> SharedArray<T> {
    /// `upc_forall(i = 0; i < n; i++; &A[i])`: run `body(i)` on the rank
    /// with affinity to element `i` — i.e. iterate exactly the elements
    /// this rank owns, in increasing index order.
    pub fn forall(&self, ctx: &Ctx, mut body: impl FnMut(usize)) {
        for i in self.my_indices(ctx).collect::<Vec<_>>() {
            body(i);
        }
    }
}

/// `upc_forall(i = 0; i < n; i++; i)`: integer affinity — iteration `i`
/// runs on rank `i % ranks()`.
pub fn forall_cyclic(ctx: &Ctx, n: usize, mut body: impl FnMut(usize)) {
    let mut i = ctx.rank();
    while i < n {
        body(i);
        i += ctx.ranks();
    }
}

/// Blocked integer affinity: iteration `i` runs on rank
/// `i / ceil(n / ranks())` — the other common `upc_forall` idiom.
pub fn forall_blocked(ctx: &Ctx, n: usize, mut body: impl FnMut(usize)) {
    let chunk = n.div_ceil(ctx.ranks()).max(1);
    let lo = ctx.rank() * chunk;
    let hi = (lo + chunk).min(n);
    for i in lo..hi {
        body(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupcxx_runtime::{spmd, RuntimeConfig};

    fn cfg(n: usize) -> RuntimeConfig {
        RuntimeConfig::new(n).segment_bytes(1 << 16)
    }

    #[test]
    fn forall_cyclic_partitions() {
        let out = spmd(cfg(3), |ctx| {
            let mut mine = vec![];
            forall_cyclic(ctx, 11, |i| mine.push(i));
            for &i in &mine {
                assert_eq!(i % 3, ctx.rank());
            }
            mine
        });
        let mut all: Vec<usize> = out.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..11).collect::<Vec<_>>());
    }

    #[test]
    fn forall_blocked_partitions() {
        let out = spmd(cfg(4), |ctx| {
            let mut mine = vec![];
            forall_blocked(ctx, 10, |i| mine.push(i));
            mine
        });
        assert_eq!(out[0], vec![0, 1, 2]);
        assert_eq!(out[1], vec![3, 4, 5]);
        assert_eq!(out[2], vec![6, 7, 8]);
        assert_eq!(out[3], vec![9]);
    }

    #[test]
    fn shared_array_forall_matches_affinity() {
        spmd(cfg(4), |ctx| {
            let a = SharedArray::<u64>::new(ctx, 40, 3);
            a.forall(ctx, |i| {
                assert_eq!(a.owner(i), ctx.rank());
                a.write(ctx, i, i as u64 * 2);
            });
            ctx.barrier();
            let total: u64 = ctx.allreduce(
                {
                    let mut s = 0;
                    a.forall(ctx, |i| s += a.read(ctx, i));
                    s
                },
                |x, y| x + y,
            );
            assert_eq!(total, (0..40u64).map(|i| i * 2).sum());
            a.destroy(ctx);
        });
    }

    #[test]
    fn empty_ranges() {
        spmd(cfg(2), |ctx| {
            forall_cyclic(ctx, 0, |_| panic!("no iterations"));
            forall_blocked(ctx, 0, |_| panic!("no iterations"));
        });
    }
}
