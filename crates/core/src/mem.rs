//! Dynamic global memory management (paper §III-C).
//!
//! `allocate<T>(rank, n)` reserves global storage for `n` elements of `T`
//! in `rank`'s segment — local **or remote**, the UPC++ feature unavailable
//! in UPC and MPI that makes distributed data structures (linked lists,
//! hash tables, directories) convenient. `deallocate` may be called from
//! any rank.
//!
//! As in the paper, `allocate` does not run constructors; use
//! [`allocate_init`] to allocate and fill in one call (the moral
//! equivalent of placement-new).

use crate::global_ptr::GlobalPtr;
use rupcxx_net::{Pod, Rank};
use rupcxx_runtime::alloc::OutOfSegmentMemory;
use rupcxx_runtime::Ctx;

/// Allocate global storage for `count` elements of `T` on `rank`.
/// The contents are unspecified (fresh segments read as zero, reused blocks
/// keep stale bytes): no constructor runs, matching the paper's semantics —
/// initialize explicitly or use [`allocate_init`].
pub fn allocate<T: Pod>(
    ctx: &Ctx,
    rank: Rank,
    count: usize,
) -> Result<GlobalPtr<T>, OutOfSegmentMemory> {
    let bytes = std::mem::size_of::<T>() * count.max(1);
    let addr = ctx.alloc_on(rank, bytes)?;
    Ok(GlobalPtr::from_addr(addr))
}

/// Allocate and initialize every element with `init` (the placement-new
/// pattern from the paper, fused for convenience).
pub fn allocate_init<T: Pod>(
    ctx: &Ctx,
    rank: Rank,
    count: usize,
    init: T,
) -> Result<GlobalPtr<T>, OutOfSegmentMemory> {
    let ptr = allocate::<T>(ctx, rank, count)?;
    let values = vec![init; count];
    ptr.rput_slice(ctx, &values);
    Ok(ptr)
}

/// Free storage returned by [`allocate`]. Callable from any rank.
pub fn deallocate<T: Pod>(ctx: &Ctx, ptr: GlobalPtr<T>) {
    ctx.free(ptr.addr());
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupcxx_runtime::{spmd, RuntimeConfig};

    fn cfg(n: usize) -> RuntimeConfig {
        RuntimeConfig::new(n).segment_bytes(1 << 16)
    }

    #[test]
    fn allocate_on_remote_rank() {
        spmd(cfg(3), |ctx| {
            if ctx.rank() == 0 {
                // The paper's example: allocate space for 64 ints on rank 2.
                let sp = allocate::<i64>(ctx, 2, 64).expect("alloc");
                assert_eq!(sp.where_(), 2);
                assert_eq!(ctx.segment_in_use(2), 64 * 8);
                deallocate(ctx, sp);
                assert_eq!(ctx.segment_in_use(2), 0);
            }
            ctx.barrier();
        });
    }

    #[test]
    fn allocate_init_fills() {
        spmd(cfg(2), |ctx| {
            if ctx.rank() == 1 {
                let p = allocate_init::<f64>(ctx, 0, 5, 2.5).expect("alloc");
                let mut out = [0.0; 5];
                p.rget_slice(ctx, &mut out);
                assert_eq!(out, [2.5; 5]);
                deallocate(ctx, p);
            }
            ctx.barrier();
        });
    }

    #[test]
    fn fresh_segment_reads_zero() {
        spmd(cfg(1), |ctx| {
            let p = allocate::<u64>(ctx, 0, 8).expect("alloc");
            let mut out = [1u64; 8];
            p.rget_slice(ctx, &mut out);
            assert_eq!(out, [0u64; 8]);
            deallocate(ctx, p);
        });
    }

    #[test]
    fn exhaustion_reports_error() {
        spmd(RuntimeConfig::new(1).segment_bytes(1024), |ctx| {
            let err = allocate::<u64>(ctx, 0, 1_000_000).unwrap_err();
            assert!(err.requested >= 8_000_000);
        });
    }
}
