//! Asynchronous remote function invocation (paper §III-G).
//!
//! The paper's `async(place)(function, args...)` becomes [`async_on`]:
//! ship a closure to a rank, get back a future for its return value.
//! [`async_with_event`] registers completion on an [`Event`];
//! [`async_after`] defers the launch until an event fires — together these
//! express the event-driven task DAGs of Listing 1 / Fig. 1. The
//! `finish` construct lives on [`Ctx::finish`] (see `rupcxx-runtime`).
//!
//! As in UPC++ (and unlike X10), only the explicit closure and its
//! captures travel — there is no automatic serialization of the reachable
//! object graph.

use rupcxx_net::Rank;
use rupcxx_runtime::{Ctx, Event, RtFuture};

/// Launch `task` asynchronously on rank `place`; returns a future for the
/// result — `future<T> f = async(place)(function, args...)`.
///
/// The task runs when `place` next drives progress (its `advance()`, any
/// blocking wait, or the post-SPMD drain). The reply resolving the future
/// is itself an active message processed by the *caller's* progress engine.
pub fn async_on<T: Send + 'static>(
    ctx: &Ctx,
    place: Rank,
    task: impl FnOnce(&Ctx) -> T + Send + 'static,
) -> RtFuture<T> {
    let (future, setter) = RtFuture::pending();
    let shared = ctx.shared().clone();
    let origin = ctx.rank();
    ctx.send_task(place, move || {
        let target_ctx = Ctx::new(place, shared.clone());
        let value = task(&target_ctx);
        target_ctx.send_task(origin, move || setter.set(value));
    });
    future
}

/// Launch `task` on `place`, signaling `event` when it completes
/// (`async(place, event)(task, args...)`).
pub fn async_with_event(
    ctx: &Ctx,
    place: Rank,
    event: &Event,
    task: impl FnOnce(&Ctx) + Send + 'static,
) {
    event.register();
    let done = event.clone();
    let shared = ctx.shared().clone();
    let origin = ctx.rank();
    ctx.send_task(place, move || {
        let target_ctx = Ctx::new(place, shared.clone());
        task(&target_ctx);
        // Signal on the origin's progress engine, like the paper's reply AM.
        target_ctx.send_task(origin, move || done.signal());
    });
}

/// Launch `task` on `place` after `after` fires, optionally signaling
/// `signal` on completion (`async_after(place, &after, &signal)(task)`).
pub fn async_after(
    ctx: &Ctx,
    place: Rank,
    after: &Event,
    signal: Option<&Event>,
    task: impl FnOnce(&Ctx) + Send + 'static,
) {
    if let Some(s) = signal {
        s.register();
    }
    let signal = signal.cloned();
    let shared = ctx.shared().clone();
    let origin = ctx.rank();
    after.on_fire(move || {
        // Launch from whichever thread performed the final signal; the
        // task itself still runs on `place`.
        let launcher_ctx = Ctx::new(origin, shared.clone());
        let shared2 = shared.clone();
        launcher_ctx.send_task(place, move || {
            let target_ctx = Ctx::new(place, shared2.clone());
            task(&target_ctx);
            if let Some(done) = signal {
                target_ctx.send_task(origin, move || done.signal());
            }
        });
    });
}

/// Launch `task` on every rank (the "group of threads" form of `place`);
/// returns one future per rank, in rank order.
pub fn async_on_all<T: Send + 'static>(
    ctx: &Ctx,
    task: impl Fn(&Ctx) -> T + Clone + Send + 'static,
) -> Vec<RtFuture<T>> {
    (0..ctx.ranks())
        .map(|r| {
            let t = task.clone();
            async_on(ctx, r, move |c| t(c))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupcxx_runtime::{spmd, RuntimeConfig};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn cfg(n: usize) -> RuntimeConfig {
        RuntimeConfig::new(n).segment_bytes(1 << 16)
    }

    #[test]
    fn async_on_returns_value() {
        let out = spmd(cfg(3), |ctx| {
            if ctx.rank() == 0 {
                let f = async_on(ctx, 2, |tctx| {
                    assert_eq!(tctx.rank(), 2);
                    tctx.rank() as u64 * 100
                });
                f.get(ctx)
            } else {
                0
            }
        });
        assert_eq!(out[0], 200);
    }

    #[test]
    fn async_lambda_with_argument() {
        // The paper's example: async(2)([](int n){ printf("n: %d", n); }, 5).
        let seen = Arc::new(AtomicUsize::new(0));
        let s2 = seen.clone();
        spmd(cfg(3), move |ctx| {
            if ctx.rank() == 0 {
                let n = 5usize;
                let s3 = s2.clone();
                let f = async_on(ctx, 2, move |_| {
                    s3.store(n, Ordering::SeqCst);
                });
                f.get(ctx);
            }
            ctx.barrier();
        });
        assert_eq!(seen.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn event_signaled_after_remote_completion() {
        spmd(cfg(2), |ctx| {
            if ctx.rank() == 0 {
                let e = Event::new();
                let hit = Arc::new(AtomicUsize::new(0));
                let h = hit.clone();
                async_with_event(ctx, 1, &e, move |_| {
                    h.fetch_add(1, Ordering::SeqCst);
                });
                e.wait(ctx);
                assert_eq!(hit.load(Ordering::SeqCst), 1);
            }
            ctx.barrier();
        });
    }

    #[test]
    fn listing1_task_dependency_graph() {
        // Reproduces Listing 1 / Fig. 1: six tasks, three events.
        //   t1,t2 -> e1;  t3 = after e1, signals e2; t4 -> e2;
        //   t5,t6 = after e2, signal e3;  wait e3.
        let order: Arc<rupcxx_util::sync::Mutex<Vec<&'static str>>> = Arc::default();
        let o = order.clone();
        spmd(cfg(4), move |ctx| {
            if ctx.rank() == 0 {
                let (e1, e2, e3) = (Event::new(), Event::new(), Event::new());
                let push =
                    |name: &'static str, o: &Arc<rupcxx_util::sync::Mutex<Vec<&'static str>>>| {
                        let o = o.clone();
                        move |_: &Ctx| {
                            o.lock().push(name);
                        }
                    };
                async_with_event(ctx, 1, &e1, push("t1", &o));
                async_with_event(ctx, 2, &e1, push("t2", &o));
                async_after(ctx, 3, &e1, Some(&e2), push("t3", &o));
                async_with_event(ctx, 1, &e2, push("t4", &o));
                async_after(ctx, 2, &e2, Some(&e3), push("t5", &o));
                async_after(ctx, 3, &e2, Some(&e3), push("t6", &o));
                e3.wait(ctx);
            }
            ctx.barrier();
        });
        let seq = order.lock().clone();
        assert_eq!(seq.len(), 6, "all six tasks ran: {seq:?}");
        let pos = |n: &str| seq.iter().position(|&x| x == n).unwrap();
        // Dependency edges from Fig. 1.
        assert!(pos("t3") > pos("t1") && pos("t3") > pos("t2"));
        assert!(pos("t5") > pos("t3") && pos("t5") > pos("t4"));
        assert!(pos("t6") > pos("t3") && pos("t6") > pos("t4"));
    }

    #[test]
    fn async_on_all_reaches_every_rank() {
        let out = spmd(cfg(4), |ctx| {
            if ctx.rank() == 0 {
                let fs = async_on_all(ctx, |tctx| tctx.rank());
                fs.into_iter().map(|f| f.get(ctx)).collect::<Vec<_>>()
            } else {
                vec![]
            }
        });
        assert_eq!(out[0], vec![0, 1, 2, 3]);
    }

    #[test]
    fn self_async_executes_locally() {
        let out = spmd(cfg(1), |ctx| {
            let f = async_on(ctx, 0, |_| 7u32);
            f.get(ctx)
        });
        assert_eq!(out[0], 7);
    }
}
