//! Shared scalar variables (paper §III-A).
//!
//! A [`SharedVar<T>`] is a single memory location in the global address
//! space, stored on a home rank (rank 0 by default, as in UPC) and
//! readable/writable by every rank — the UPC++ `shared_var<T>`.

use crate::global_ptr::GlobalPtr;
use crate::mem::allocate;
use rupcxx_net::{GlobalAddr, Pod};
use rupcxx_runtime::Ctx;

/// A shared scalar in the global address space.
///
/// Construction is collective: every rank must call [`SharedVar::new`]
/// (the home rank allocates, the address is broadcast). Afterwards any
/// rank may [`read`](SharedVar::read) or [`write`](SharedVar::write) it
/// directly — the paper's `s = 1; int a = s;`.
#[derive(Clone, Copy, Debug)]
pub struct SharedVar<T: Pod> {
    ptr: GlobalPtr<T>,
}

impl<T: Pod> SharedVar<T> {
    /// Collectively create a shared variable on rank 0 with `init` value.
    pub fn new(ctx: &Ctx, init: T) -> Self {
        Self::on_rank(ctx, 0, init)
    }

    /// Collectively create a shared variable homed on `home`.
    pub fn on_rank(ctx: &Ctx, home: rupcxx_net::Rank, init: T) -> Self {
        let ptr = if ctx.rank() == home {
            let p = allocate::<T>(ctx, home, 1).expect("segment memory for SharedVar");
            p.rput(ctx, init);
            ctx.broadcast(home, [p.addr().rank() as u64, p.addr().offset() as u64]);
            p
        } else {
            let a = ctx.broadcast(home, [0u64; 2]);
            GlobalPtr::from_addr(GlobalAddr::new(a[0] as usize, a[1] as usize))
        };
        SharedVar { ptr }
    }

    /// Read the value (rvalue use).
    pub fn read(&self, ctx: &Ctx) -> T {
        self.ptr.rget(ctx)
    }

    /// Write the value (lvalue use).
    pub fn write(&self, ctx: &Ctx, value: T) {
        self.ptr.rput(ctx, value)
    }

    /// The underlying global pointer.
    pub fn ptr(&self) -> GlobalPtr<T> {
        self.ptr
    }

    /// Collectively destroy: frees the storage (home rank frees, all ranks
    /// synchronize).
    pub fn destroy(self, ctx: &Ctx) {
        ctx.barrier();
        if ctx.rank() == self.ptr.where_() {
            crate::mem::deallocate(ctx, self.ptr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupcxx_runtime::{spmd, RuntimeConfig};

    fn cfg(n: usize) -> RuntimeConfig {
        RuntimeConfig::new(n).segment_bytes(1 << 16)
    }

    #[test]
    fn all_ranks_see_writes() {
        spmd(cfg(4), |ctx| {
            let s = SharedVar::<u64>::new(ctx, 7);
            assert_eq!(s.read(ctx), 7);
            ctx.barrier();
            if ctx.rank() == 3 {
                s.write(ctx, 1234);
            }
            ctx.barrier();
            assert_eq!(s.read(ctx), 1234);
            s.destroy(ctx);
        });
    }

    #[test]
    fn homed_on_nonzero_rank() {
        spmd(cfg(3), |ctx| {
            let s = SharedVar::<f64>::on_rank(ctx, 2, 1.5);
            assert_eq!(s.ptr().where_(), 2);
            assert_eq!(s.read(ctx), 1.5);
            s.destroy(ctx);
        });
    }

    #[test]
    fn single_rank() {
        spmd(cfg(1), |ctx| {
            let s = SharedVar::<i64>::new(ctx, -9);
            s.write(ctx, 10);
            assert_eq!(s.read(ctx), 10);
            s.destroy(ctx);
        });
    }
}
