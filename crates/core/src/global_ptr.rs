//! Typed global pointers (paper §III-B).
//!
//! A [`GlobalPtr<T>`] encapsulates the owning rank and the address of a
//! shared object — the UPC++ `global_ptr<T>`. As in the paper (and unlike
//! UPC), global pointers carry **no block offset/phase**: pointer
//! arithmetic works exactly like ordinary pointer arithmetic, advancing in
//! units of `size_of::<T>()` within the owner's segment.

use rupcxx_net::{GlobalAddr, Pod, Rank};
use rupcxx_runtime::Ctx;
use std::marker::PhantomData;

/// A typed pointer into the global address space.
///
/// `GlobalPtr<T>` is `Copy` and meaningful on every rank (it can be sent
/// through broadcasts, stored in directories, etc.). Dereferencing requires
/// a [`Ctx`], which supplies the initiating rank for the underlying
/// communication.
pub struct GlobalPtr<T: Pod> {
    addr: GlobalAddr,
    _elem: PhantomData<fn() -> T>,
}

impl<T: Pod> Clone for GlobalPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Pod> Copy for GlobalPtr<T> {}

// SAFETY: a `GlobalPtr` is a `GlobalAddr` (one packed u64 — no padding, all
// bit patterns valid) plus a ZST marker, so it can itself live in the global
// address space — which is what makes directory-of-pointers structures
// (paper §III-E) expressible.
unsafe impl<T: Pod> Pod for GlobalPtr<T> {}

impl<T: Pod> PartialEq for GlobalPtr<T> {
    fn eq(&self, other: &Self) -> bool {
        self.addr == other.addr
    }
}
impl<T: Pod> Eq for GlobalPtr<T> {}

impl<T: Pod> std::fmt::Debug for GlobalPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GlobalPtr<{}>(rank {}, offset {})",
            std::any::type_name::<T>(),
            self.addr.rank(),
            self.addr.offset()
        )
    }
}

impl<T: Pod> GlobalPtr<T> {
    /// Wrap a raw global address. The address must be 8-byte aligned and
    /// point at storage of (at least) `size_of::<T>()` bytes.
    #[inline]
    #[must_use]
    pub fn from_addr(addr: GlobalAddr) -> Self {
        GlobalPtr {
            addr,
            _elem: PhantomData,
        }
    }

    /// The underlying untyped address.
    #[inline]
    #[must_use]
    pub fn addr(&self) -> GlobalAddr {
        self.addr
    }

    /// The rank owning the referenced object — the paper's `where()`.
    #[inline]
    #[must_use]
    pub fn where_(&self) -> Rank {
        self.addr.rank()
    }

    /// True when the referenced object has affinity to the calling rank.
    #[inline]
    #[must_use]
    pub fn is_local(&self, ctx: &Ctx) -> bool {
        self.addr.rank() == ctx.rank()
    }

    /// Pointer arithmetic: advance by `count` elements (like `p + count`
    /// on a C++ `global_ptr` — no phase, paper §III-B).
    #[inline]
    #[must_use]
    pub fn offset(&self, count: usize) -> Self {
        GlobalPtr::from_addr(self.addr.add(count * std::mem::size_of::<T>()))
    }

    /// One-sided read of the referenced value (UPC++ rvalue use of a
    /// shared object).
    #[must_use]
    pub fn rget(&self, ctx: &Ctx) -> T {
        let size = std::mem::size_of::<T>();
        if size == 8 && self.addr.offset().is_multiple_of(8) {
            // Word fast path (u64/f64/usize…).
            let w = ctx.fabric().get_u64(ctx.rank(), self.addr);
            return T::read_from(&w.to_le_bytes());
        }
        // Small scalars stage through the stack, not a heap vec.
        let mut stack = [0u8; 32];
        let mut heap;
        let buf: &mut [u8] = if size <= 32 {
            &mut stack[..size]
        } else {
            heap = vec![0u8; size];
            &mut heap
        };
        ctx.fabric().get(ctx.rank(), self.addr, buf);
        T::read_from(buf)
    }

    /// One-sided write of the referenced value (UPC++ lvalue use).
    pub fn rput(&self, ctx: &Ctx, value: T) {
        let size = std::mem::size_of::<T>();
        if size == 8 && self.addr.offset().is_multiple_of(8) {
            let mut w = [0u8; 8];
            value.write_to(&mut w);
            ctx.fabric()
                .put_u64(ctx.rank(), self.addr, u64::from_le_bytes(w));
            return;
        }
        let mut stack = [0u8; 32];
        let mut heap;
        let buf: &mut [u8] = if size <= 32 {
            &mut stack[..size]
        } else {
            heap = vec![0u8; size];
            &mut heap
        };
        value.write_to(buf);
        ctx.fabric().put(ctx.rank(), self.addr, buf);
    }

    /// Like [`GlobalPtr::rput`], but eligible for per-destination
    /// aggregation: with aggregation configured (`RUPCXX_AGG` /
    /// `RuntimeConfig::with_agg`) the write is coalesced into the owner's
    /// batch buffer and lands at the next flush point — call
    /// `ctx.agg_fence()` (or `barrier()` on a fault-free fabric) before
    /// reading it back remotely. Without aggregation this is exactly
    /// `rput`. Values larger than the fabric's small-put cutoff fall
    /// through to the direct path.
    pub fn rput_agg(&self, ctx: &Ctx, value: T) {
        let size = std::mem::size_of::<T>();
        debug_assert!(size <= 1024, "rput_agg is for small values");
        let mut stack = [0u8; 32];
        let mut heap;
        let buf: &mut [u8] = if size <= 32 {
            &mut stack[..size]
        } else {
            heap = vec![0u8; size];
            &mut heap
        };
        value.write_to(buf);
        ctx.fabric().put_buffered(ctx.rank(), self.addr, buf);
    }

    /// Bulk one-sided read of `out.len()` consecutive elements starting at
    /// this pointer.
    pub fn rget_slice(&self, ctx: &Ctx, out: &mut [T]) {
        let size = std::mem::size_of::<T>();
        let mut buf = vec![0u8; std::mem::size_of_val(out)];
        ctx.fabric().get(ctx.rank(), self.addr, &mut buf);
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = T::read_from(&buf[i * size..(i + 1) * size]);
        }
    }

    /// Bulk one-sided write of `values` to consecutive elements starting
    /// at this pointer.
    pub fn rput_slice(&self, ctx: &Ctx, values: &[T]) {
        let buf = rupcxx_net::pod::pack_slice(values);
        ctx.fabric().put(ctx.rank(), self.addr, &buf);
    }

    /// Reinterpret as a pointer to another Pod type (the paper's
    /// `global_ptr<void>` casting facility).
    #[inline]
    #[must_use]
    pub fn cast<U: Pod>(&self) -> GlobalPtr<U> {
        GlobalPtr::from_addr(self.addr)
    }

    /// Validate this pointer for privatized access to `count` elements
    /// and resolve it to a raw word pointer. Panics unless the target has
    /// local affinity, `T` is an 8-byte word type, the address is
    /// word-aligned and the range is in bounds — the same validate-once
    /// constraints as `LocalGrid`.
    fn privatize(&self, ctx: &Ctx, count: usize) -> *mut u64 {
        assert_eq!(
            self.addr.rank(),
            ctx.rank(),
            "privatization requires local affinity (owner rank {}, calling rank {})",
            self.addr.rank(),
            ctx.rank()
        );
        assert_eq!(
            std::mem::size_of::<T>(),
            8,
            "privatization needs word elements"
        );
        ctx.fabric()
            .endpoint(ctx.rank())
            .segment
            .privatize_ptr(self.addr.offset(), count * 8)
    }

    /// Privatize a locally owned object: the paper's "downcast a
    /// `global_ptr` with local affinity to a raw `T*`" (§III-B), which is
    /// how UPC++ programs privatize the local portion of shared data.
    /// Validates affinity/alignment once and returns a direct reference;
    /// reads through it compile to plain loads — no fabric dispatch, no
    /// stats, no per-access bounds check, and no read-cache lookup.
    ///
    /// The reference aliases globally addressable memory. Holding it
    /// across an access by another rank to the same element is an
    /// unsynchronized conflicting access under the paper's relaxed memory
    /// model — keep privatized use inside a phase delimited by
    /// `barrier()`/`fence()`. (The race checker does not observe
    /// privatized accesses; it sees only the sync points around them.)
    pub fn local_ref<'a>(&self, ctx: &'a Ctx) -> &'a T {
        &self.local_slice(ctx, 1)[0]
    }

    /// Privatize `count` consecutive locally owned elements as a slice
    /// (see [`GlobalPtr::local_ref`] for the synchronization contract).
    pub fn local_slice<'a>(&self, ctx: &'a Ctx, count: usize) -> &'a [T] {
        let p = self.privatize(ctx, count);
        // SAFETY: `privatize` checked affinity, element size, alignment
        // and bounds; `T: Pod` accepts any bit pattern, and the segment
        // (owned by `ctx`'s shared state) outlives `'a`. Freedom from
        // concurrent writers is the caller's contract, per the PGAS
        // ownership discipline documented above.
        unsafe { std::slice::from_raw_parts(p as *const T, count) }
    }

    /// Privatize `count` consecutive locally owned elements for mutation.
    /// In addition to the [`GlobalPtr::local_ref`] contract, the caller
    /// must be the *only* accessor of the range while the slice is live —
    /// the owner-computes phase of GUPS/stencil-style kernels, with
    /// barriers on both sides.
    #[allow(clippy::mut_from_ref)]
    pub fn local_slice_mut<'a>(&self, ctx: &'a Ctx, count: usize) -> &'a mut [T] {
        let p = self.privatize(ctx, count);
        // SAFETY: as in `local_slice`, plus the documented exclusivity
        // contract (sole accessor between two sync points).
        unsafe { std::slice::from_raw_parts_mut(p as *mut T, count) }
    }
}

impl GlobalPtr<u64> {
    /// Remote atomic xor (used by the GUPS benchmark's update loop when
    /// run in atomic mode). Returns the previous value.
    pub fn rxor(&self, ctx: &Ctx, value: u64) -> u64 {
        ctx.fabric().xor_u64(ctx.rank(), self.addr, value)
    }

    /// Remote atomic add; returns the previous value.
    pub fn radd(&self, ctx: &Ctx, value: u64) -> u64 {
        ctx.fabric().add_u64(ctx.rank(), self.addr, value)
    }

    /// Non-fetching remote xor, eligible for per-destination aggregation
    /// (the GUPS update loop in aggregated mode). Applied at the next
    /// flush point; the previous value is not returned — a fetching
    /// atomic cannot be batched.
    pub fn rxor_agg(&self, ctx: &Ctx, value: u64) {
        ctx.fabric().xor_u64_buffered(ctx.rank(), self.addr, value);
    }

    /// Non-fetching remote add, eligible for aggregation (see
    /// [`GlobalPtr::rxor_agg`]).
    pub fn radd_agg(&self, ctx: &Ctx, value: u64) {
        ctx.fabric().add_u64_buffered(ctx.rank(), self.addr, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::{allocate, deallocate};
    use rupcxx_runtime::{spmd, RuntimeConfig};

    fn cfg(n: usize) -> RuntimeConfig {
        RuntimeConfig::new(n).segment_bytes(1 << 16)
    }

    #[test]
    fn rget_rput_roundtrip_remote() {
        spmd(cfg(2), |ctx| {
            let p: GlobalPtr<u64> = if ctx.rank() == 0 {
                let p = allocate::<u64>(ctx, 1, 4).expect("alloc");
                ctx.broadcast(0, [p.addr().rank() as u64, p.addr().offset() as u64]);
                p
            } else {
                let a = ctx.broadcast(0, [0u64; 2]);
                GlobalPtr::from_addr(GlobalAddr::new(a[0] as usize, a[1] as usize))
            };
            if ctx.rank() == 0 {
                for i in 0..4 {
                    p.offset(i).rput(ctx, (i * 11) as u64);
                }
            }
            ctx.barrier();
            let vals: Vec<u64> = (0..4).map(|i| p.offset(i).rget(ctx)).collect();
            assert_eq!(vals, vec![0, 11, 22, 33]);
            ctx.barrier();
            if ctx.rank() == 0 {
                deallocate(ctx, p);
            }
        });
    }

    #[test]
    fn slice_transfer() {
        spmd(cfg(2), |ctx| {
            let p = allocate::<f64>(ctx, ctx.rank(), 8).expect("alloc");
            let data: Vec<f64> = (0..8).map(|i| i as f64 * 0.5).collect();
            p.rput_slice(ctx, &data);
            let mut out = vec![0.0f64; 8];
            p.rget_slice(ctx, &mut out);
            assert_eq!(out, data);
            deallocate(ctx, p);
        });
    }

    #[test]
    fn where_and_locality() {
        spmd(cfg(2), |ctx| {
            let p = allocate::<u64>(ctx, 1, 1).expect("alloc");
            assert_eq!(p.where_(), 1);
            assert_eq!(p.is_local(ctx), ctx.rank() == 1);
            ctx.barrier();
            if ctx.rank() == 0 {
                deallocate(ctx, p);
            }
        });
        // Note: both ranks allocate in the test above; rank 0 frees its own
        // allocation and rank 1's stays until the job ends — acceptable in
        // a test, segments die with the job.
    }

    #[test]
    fn pointer_arithmetic_matches_element_size() {
        let p: GlobalPtr<u32> = GlobalPtr::from_addr(GlobalAddr::new(0, 64));
        assert_eq!(p.offset(3).addr().offset(), 64 + 12);
        let q: GlobalPtr<f64> = GlobalPtr::from_addr(GlobalAddr::new(2, 0));
        assert_eq!(q.offset(5).addr().offset(), 40);
        assert_eq!(q.offset(5).where_(), 2);
    }

    #[test]
    fn cast_preserves_address() {
        let p: GlobalPtr<u64> = GlobalPtr::from_addr(GlobalAddr::new(1, 16));
        let v: GlobalPtr<u8> = p.cast();
        assert_eq!(v.addr(), p.addr());
    }

    #[test]
    fn atomics_on_u64() {
        spmd(cfg(1), |ctx| {
            let p = allocate::<u64>(ctx, 0, 1).expect("alloc");
            p.rput(ctx, 0b1100);
            assert_eq!(p.rxor(ctx, 0b0110), 0b1100);
            assert_eq!(p.rget(ctx), 0b1010);
            assert_eq!(p.radd(ctx, 6), 0b1010);
            assert_eq!(p.rget(ctx), 16);
            deallocate(ctx, p);
        });
    }

    #[test]
    fn aggregated_ops_apply_at_fence() {
        use rupcxx_net::AggConfig;
        // High thresholds: nothing flushes until agg_fence forces it.
        let cfg = cfg(2).with_agg(AggConfig::new().flush_count(1024));
        spmd(cfg, |ctx| {
            let p: GlobalPtr<u64> = if ctx.rank() == 0 {
                let p = allocate::<u64>(ctx, 0, 3).expect("alloc");
                for i in 0..3 {
                    p.offset(i).rput(ctx, 100);
                }
                ctx.broadcast(0, [p.addr().offset() as u64]);
                p
            } else {
                let a = ctx.broadcast(0, [0u64; 1]);
                GlobalPtr::from_addr(GlobalAddr::new(0, a[0] as usize))
            };
            ctx.barrier();
            if ctx.rank() == 1 {
                p.offset(0).rput_agg(ctx, 7);
                p.offset(1).rxor_agg(ctx, 0b0110);
                p.offset(2).radd_agg(ctx, 5);
            }
            ctx.agg_fence();
            assert_eq!(p.offset(0).rget(ctx), 7);
            assert_eq!(p.offset(1).rget(ctx), 100 ^ 0b0110);
            assert_eq!(p.offset(2).rget(ctx), 105);
            ctx.barrier();
        });
    }

    #[test]
    fn aggregated_ops_fall_through_when_disabled() {
        spmd(cfg(2), |ctx| {
            let p = allocate::<u64>(ctx, ctx.rank(), 1).expect("alloc");
            p.rput(ctx, 1);
            // No aggregation configured: applied immediately, no fence.
            p.rxor_agg(ctx, 0b11);
            p.radd_agg(ctx, 4);
            p.rput_agg(ctx, 9);
            assert_eq!(p.rget(ctx), 9);
            deallocate(ctx, p);
        });
    }

    #[test]
    fn privatized_slice_agrees_with_fabric_path() {
        spmd(cfg(2), |ctx| {
            let p = allocate::<u64>(ctx, ctx.rank(), 16).expect("alloc");
            let data: Vec<u64> = (0..16).map(|i| i as u64 * 7 + ctx.rank() as u64).collect();
            p.rput_slice(ctx, &data);
            assert_eq!(p.local_slice(ctx, 16), &data[..]);
            assert_eq!(*p.offset(3).local_ref(ctx), data[3]);
            // Mutate privately, read back through the fabric.
            p.local_slice_mut(ctx, 16)[5] = 4242;
            assert_eq!(p.offset(5).rget(ctx), 4242);
            ctx.barrier();
            deallocate(ctx, p);
        });
    }

    #[test]
    #[should_panic(expected = "local affinity")]
    fn privatizing_a_remote_pointer_panics() {
        spmd(cfg(2), |ctx| {
            let p = allocate::<u64>(ctx, 1 - ctx.rank(), 4).expect("alloc");
            let _ = p.local_slice(ctx, 4);
        });
    }

    #[test]
    #[should_panic(expected = "word elements")]
    fn privatizing_non_word_elements_panics() {
        spmd(cfg(1), |ctx| {
            let p = allocate::<u16>(ctx, 0, 4).expect("alloc");
            let _ = p.local_slice(ctx, 4);
        });
    }

    #[test]
    fn non_word_sized_elements() {
        spmd(cfg(1), |ctx| {
            let p = allocate::<u16>(ctx, 0, 3).expect("alloc");
            p.offset(0).rput(ctx, 0xAAAA);
            p.offset(1).rput(ctx, 0xBBBB);
            p.offset(2).rput(ctx, 0xCCCC);
            assert_eq!(p.offset(1).rget(ctx), 0xBBBB);
            assert_eq!(p.offset(0).rget(ctx), 0xAAAA);
            assert_eq!(p.offset(2).rget(ctx), 0xCCCC);
            deallocate(ctx, p);
        });
    }
}
