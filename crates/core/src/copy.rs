//! Bulk data transfer (paper §III-D): `copy`, `async_copy`, events and
//! `async_copy_fence`.
//!
//! `copy(src, dst, count)` moves `count` contiguous elements between any
//! two places in the global address space, one-sided. When neither side is
//! local to the initiator the transfer stages through the initiator (a
//! get followed by a put), as UPC++/GASNet do for third-party copies.
//!
//! The non-blocking variant [`async_copy`] signals an [`Event`] on
//! completion; [`async_copy_fence`] waits for all outstanding async copies
//! issued by the calling rank. The fabric's RMA is synchronous (host
//! memory), so "non-blocking" completes eagerly — the API, event plumbing
//! and traffic accounting match the paper, while the *overlap* benefit at
//! scale is captured by the performance model rather than by wall-clock.

use crate::global_ptr::GlobalPtr;
use rupcxx_net::Pod;
use rupcxx_runtime::{Ctx, Event};

/// Blocking one-sided copy of `count` elements from `src` to `dst`
/// (the paper's `copy<T>(src, dst, count)`, UPC's `upc_memcpy`).
pub fn copy<T: Pod>(ctx: &Ctx, src: GlobalPtr<T>, dst: GlobalPtr<T>, count: usize) {
    let bytes = std::mem::size_of::<T>() * count;
    if bytes == 0 {
        return;
    }
    let me = ctx.rank();
    let fabric = ctx.fabric();
    // Stage through the initiator: a single buffer suffices because RMA is
    // synchronous. (GASNet would pipeline this; the traffic counts match.)
    let mut buf = vec![0u8; bytes];
    fabric.get(me, src.addr(), &mut buf);
    fabric.put(me, dst.addr(), &buf);
}

/// Non-blocking copy. If `event` is provided it is registered before the
/// transfer and signaled at completion, so callers can wait on individual
/// operations (the paper's `async_copy(src, dst, count, event)`).
pub fn async_copy<T: Pod>(
    ctx: &Ctx,
    src: GlobalPtr<T>,
    dst: GlobalPtr<T>,
    count: usize,
    event: Option<&Event>,
) {
    if let Some(e) = event {
        e.register();
    }
    copy(ctx, src, dst, count);
    if let Some(e) = event {
        e.signal();
    }
}

/// Wait for completion of all `async_copy`s issued by this rank
/// ("handle-less" synchronization, §V-E). Also drives progress once, like
/// a fence — which includes force-flushing any per-destination
/// aggregation buffers, so buffered fine-grained ops are injected here
/// too.
pub fn async_copy_fence(ctx: &Ctx) {
    ctx.fence();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::{allocate, deallocate};
    use rupcxx_net::GlobalAddr;
    use rupcxx_runtime::{spmd, RuntimeConfig};

    fn cfg(n: usize) -> RuntimeConfig {
        RuntimeConfig::new(n).segment_bytes(1 << 18)
    }

    #[test]
    fn copy_local_to_remote_and_back() {
        spmd(cfg(2), |ctx| {
            let src = allocate::<u64>(ctx, ctx.rank(), 16).expect("alloc");
            if ctx.rank() == 0 {
                let data: Vec<u64> = (0..16).map(|i| i * 3).collect();
                src.rput_slice(ctx, &data);
                // Copy into rank 1's segment.
                let remote = allocate::<u64>(ctx, 1, 16).expect("alloc");
                copy(ctx, src, remote, 16);
                let mut out = vec![0u64; 16];
                remote.rget_slice(ctx, &mut out);
                assert_eq!(out, data);
                deallocate(ctx, remote);
            }
            ctx.barrier();
            deallocate(ctx, src);
        });
    }

    #[test]
    fn third_party_copy() {
        // Rank 0 copies between rank 1 and rank 2 without owning either.
        spmd(cfg(3), |ctx| {
            let a = allocate::<u64>(ctx, ctx.rank(), 4).expect("alloc");
            let all: Vec<u64> = ctx.allgatherv(&[a.addr().rank() as u64, a.addr().offset() as u64]);
            let ptrs: Vec<GlobalPtr<u64>> = all
                .chunks_exact(2)
                .map(|c| GlobalPtr::from_addr(GlobalAddr::new(c[0] as usize, c[1] as usize)))
                .collect();
            if ctx.rank() == 1 {
                a.rput_slice(ctx, &[5, 6, 7, 8]);
            }
            ctx.barrier();
            if ctx.rank() == 0 {
                copy(ctx, ptrs[1], ptrs[2], 4);
            }
            ctx.barrier();
            if ctx.rank() == 2 {
                let mut out = [0u64; 4];
                a.rget_slice(ctx, &mut out);
                assert_eq!(out, [5, 6, 7, 8]);
            }
            ctx.barrier();
            deallocate(ctx, a);
        });
    }

    #[test]
    fn async_copy_signals_event() {
        spmd(cfg(2), |ctx| {
            if ctx.rank() == 0 {
                let src = allocate::<u64>(ctx, 0, 8).expect("alloc");
                let dst = allocate::<u64>(ctx, 1, 8).expect("alloc");
                src.rput_slice(ctx, &[9; 8]);
                let e = Event::new();
                async_copy(ctx, src, dst, 8, Some(&e));
                e.wait(ctx);
                assert_eq!(dst.offset(7).rget(ctx), 9);
                async_copy_fence(ctx);
                deallocate(ctx, src);
                deallocate(ctx, dst);
            }
            ctx.barrier();
        });
    }

    #[test]
    fn zero_count_copy_is_noop() {
        spmd(cfg(1), |ctx| {
            let p = allocate::<u64>(ctx, 0, 1).expect("alloc");
            copy(ctx, p, p, 0);
            deallocate(ctx, p);
        });
    }
}
