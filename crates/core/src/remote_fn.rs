//! Typed registered-function RPC — the paper's actual `async`
//! implementation strategy (§IV), exposed as a safe, typed API.
//!
//! "UPC++ uses helper function templates to pack the task function pointer
//! and its arguments into a contiguous buffer and then sends it to the
//! target node with an active message … We assume that the function entry
//! points on all processes are either all identical or have an offset that
//! can be collected at program loading time."
//!
//! [`FnRegistry`] is that assumption made explicit: every rank registers
//! the same functions in the same order *before* launch, yielding
//! [`RemoteFn`] handles whose ids agree across ranks. A call packs the
//! `Pod` argument after a reply token; the reply handler routes the packed
//! return value back to the caller's future. Unlike the boxed-closure path
//! ([`crate::async_on`]), nothing but plain bytes crosses ranks — this is
//! the path a real multi-process runtime must use, and the benchmarkable
//! baseline for the closure shortcut.
//!
//! ```
//! use rupcxx::prelude::*;
//! use rupcxx::remote_fn::FnRegistry;
//!
//! let mut reg = FnRegistry::new();
//! let square = reg.register(|_ctx: &Ctx, x: u64| x * x);
//! let out = rupcxx::spmd_registered(
//!     RuntimeConfig::new(2).segment_mib(1),
//!     reg,
//!     move |ctx| {
//!         if ctx.rank() == 0 {
//!             square.call(ctx, 1, 9).get(ctx)
//!         } else {
//!             0
//!         }
//!     },
//! );
//! assert_eq!(out[0], 81);
//! ```

use rupcxx_net::{Pod, Rank};
use rupcxx_runtime::shared::HandlerRegistry;
use rupcxx_runtime::{Ctx, RtFuture, RuntimeConfig};
use rupcxx_util::Bytes;
use std::marker::PhantomData;
use std::sync::atomic::Ordering;

/// A handle to a function registered identically on every rank.
pub struct RemoteFn<A: Pod, R: Pod> {
    id: u16,
    _sig: PhantomData<fn(A) -> R>,
}

impl<A: Pod, R: Pod> Clone for RemoteFn<A, R> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<A: Pod, R: Pod> Copy for RemoteFn<A, R> {}

/// Builder for the shared function table. Register every remote function
/// before launching the job (the paper's load-time function-entry
/// collection), then pass the registry to [`crate::spmd_registered`].
#[derive(Default)]
pub struct FnRegistry {
    handlers: HandlerRegistry,
    reply_id: Option<u16>,
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn take_u64(bytes: &[u8]) -> (u64, &[u8]) {
    let (head, rest) = bytes.split_at(8);
    (u64::from_le_bytes(head.try_into().expect("8 bytes")), rest)
}

impl FnRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        let mut me = FnRegistry::default();
        // Handler 0: the reply router. Payload = [token][packed R].
        let reply_id = me.handlers.register(|ctx, _src, bytes| {
            let (token, ret) = take_u64(&bytes);
            let cont = ctx.shared().pending_replies[ctx.rank()]
                .lock()
                .remove(&token)
                .expect("unknown RPC reply token");
            cont(Bytes::copy_from_slice(ret));
        });
        me.reply_id = Some(reply_id);
        me
    }

    /// Register `f`; every rank must perform the same registrations in
    /// the same order (SPMD discipline — checked implicitly by the shared
    /// table being built once, pre-launch).
    pub fn register<A: Pod, R: Pod>(
        &mut self,
        f: impl Fn(&Ctx, A) -> R + Send + Sync + 'static,
    ) -> RemoteFn<A, R> {
        let reply_id = self.reply_id.expect("registry initialized");
        let id = self.handlers.register(move |ctx, src, bytes| {
            // Payload = [token][packed A]; run and reply with [token][R].
            let (token, arg_bytes) = take_u64(&bytes);
            let arg = A::read_from(arg_bytes);
            let ret = f(ctx, arg);
            let mut reply = Vec::with_capacity(8 + std::mem::size_of::<R>());
            put_u64(&mut reply, token);
            reply.extend_from_slice(&ret.to_bytes());
            ctx.send_handler(src, reply_id, Bytes::from(reply));
        });
        RemoteFn {
            id,
            _sig: PhantomData,
        }
    }

    /// Freeze into the runtime handler table.
    pub fn into_handlers(self) -> HandlerRegistry {
        self.handlers
    }
}

impl<A: Pod, R: Pod> RemoteFn<A, R> {
    /// Asynchronously invoke on rank `place` with `arg` — the typed
    /// `async(place)(function, args…)`. Returns a future for the result.
    pub fn call(&self, ctx: &Ctx, place: Rank, arg: A) -> RtFuture<R> {
        let me = ctx.rank();
        let (future, setter) = RtFuture::<R>::pending();
        let token = ctx.shared().reply_tokens[me].fetch_add(1, Ordering::Relaxed);
        ctx.shared().pending_replies[me].lock().insert(
            token,
            Box::new(move |bytes: Bytes| setter.set(R::read_from(&bytes))),
        );
        let mut payload = Vec::with_capacity(8 + std::mem::size_of::<A>());
        put_u64(&mut payload, token);
        payload.extend_from_slice(&arg.to_bytes());
        ctx.send_handler(place, self.id, Bytes::from(payload));
        future
    }

    /// Invoke and wait (convenience).
    pub fn call_blocking(&self, ctx: &Ctx, place: Rank, arg: A) -> R {
        self.call(ctx, place, arg).get(ctx)
    }

    /// The raw handler id (diagnostics).
    pub fn id(&self) -> u16 {
        self.id
    }
}

/// Launch an SPMD job with a pre-built [`FnRegistry`] (wrapper around
/// `rupcxx_runtime::spmd_with_handlers`).
pub fn spmd_registered<Ret, F>(config: RuntimeConfig, registry: FnRegistry, body: F) -> Vec<Ret>
where
    Ret: Send,
    F: Fn(&Ctx) -> Ret + Send + Sync,
{
    rupcxx_runtime::spmd_with_handlers(config, registry.into_handlers(), body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize) -> RuntimeConfig {
        RuntimeConfig::new(n).segment_mib(1)
    }

    #[test]
    fn typed_call_roundtrip() {
        let mut reg = FnRegistry::new();
        let double = reg.register(|_: &Ctx, x: u64| x * 2);
        let out = spmd_registered(cfg(3), reg, move |ctx| {
            if ctx.rank() == 0 {
                double.call_blocking(ctx, 2, 21)
            } else {
                0
            }
        });
        assert_eq!(out[0], 42);
    }

    #[test]
    fn multiple_functions_and_float_args() {
        let mut reg = FnRegistry::new();
        let add = reg.register(|_: &Ctx, xy: [f64; 2]| xy[0] + xy[1]);
        let which_rank = reg.register(|ctx: &Ctx, _: u64| ctx.rank() as u64);
        let out = spmd_registered(cfg(2), reg, move |ctx| {
            if ctx.rank() == 1 {
                let s = add.call_blocking(ctx, 0, [1.5, 2.25]);
                let r = which_rank.call_blocking(ctx, 0, 0);
                (s, r)
            } else {
                (0.0, 99)
            }
        });
        assert_eq!(out[1], (3.75, 0));
    }

    #[test]
    fn many_outstanding_calls_resolve_in_any_order() {
        let mut reg = FnRegistry::new();
        let echo = reg.register(|_: &Ctx, x: u64| x + 1000);
        let out = spmd_registered(cfg(4), reg, move |ctx| {
            if ctx.rank() != 0 {
                return 0u64;
            }
            let futures: Vec<RtFuture<u64>> = (0..60)
                .map(|i| echo.call(ctx, 1 + (i as usize % 3), i))
                .collect();
            futures.into_iter().map(|f| f.get(ctx)).sum()
        });
        let expect: u64 = (0..60).map(|i| i + 1000).sum();
        assert_eq!(out[0], expect);
    }

    #[test]
    fn self_call_works() {
        let mut reg = FnRegistry::new();
        let neg = reg.register(|_: &Ctx, x: i64| -x);
        let out = spmd_registered(cfg(1), reg, move |ctx| neg.call_blocking(ctx, 0, 7));
        assert_eq!(out[0], -7);
    }

    #[test]
    fn remote_fn_composes_with_finish_style_fanout() {
        // Fan a typed call to every rank; futures all resolve.
        let mut reg = FnRegistry::new();
        let rank_sq = reg.register(|ctx: &Ctx, _: u64| (ctx.rank() * ctx.rank()) as u64);
        let out = spmd_registered(cfg(4), reg, move |ctx| {
            if ctx.rank() != 0 {
                return 0;
            }
            let fs: Vec<_> = (0..ctx.ranks()).map(|r| rank_sq.call(ctx, r, 0)).collect();
            fs.into_iter().map(|f| f.get(ctx)).sum::<u64>()
        });
        assert_eq!(out[0], 14); // 0² + 1² + 2² + 3²
    }
}
