//! Block-cyclically distributed shared arrays (paper §III-A).
//!
//! A [`SharedArray<T>`] distributes `size` elements over all ranks in a
//! one-dimensional block-cyclic layout with block size `bs` — UPC's
//! `shared [BS] T A[size]`, UPC++'s `shared_array<T, BS>`. The default
//! block size 1 is the cyclic layout, as in UPC.
//!
//! Construction is collective and mirrors `sa.init(...)`/`upc_all_alloc`:
//! every rank allocates its local portion and the base addresses are
//! all-gathered into a replicated directory.

use crate::global_ptr::GlobalPtr;
use rupcxx_net::{GlobalAddr, Pod, Rank};
use rupcxx_runtime::Ctx;
use std::sync::Arc;

/// A 1-D block-cyclic shared array.
#[derive(Clone, Debug)]
pub struct SharedArray<T: Pod> {
    size: usize,
    block: usize,
    ranks: usize,
    /// Directory of per-rank local-portion base pointers (replicated).
    bases: Arc<[GlobalAddr]>,
    _elem: std::marker::PhantomData<fn() -> T>,
}

impl<T: Pod> SharedArray<T> {
    /// Collectively create a shared array of `size` elements with block
    /// size `block` (1 = cyclic). All ranks must call with equal arguments.
    pub fn new(ctx: &Ctx, size: usize, block: usize) -> Self {
        assert!(block > 0, "block size must be positive");
        let n = ctx.ranks();
        let elem = std::mem::size_of::<T>();
        // Local capacity: every rank reserves the same number of whole
        // blocks, enough for the worst-placed rank.
        let nblocks_total = size.div_ceil(block);
        let blocks_per_rank = nblocks_total.div_ceil(n).max(1);
        let local_elems = blocks_per_rank * block;
        let mine = ctx
            .alloc_on(ctx.rank(), local_elems.max(1) * elem.max(1))
            .expect("segment memory for SharedArray");
        let gathered = ctx.allgatherv(&[mine.rank() as u64, mine.offset() as u64]);
        let bases: Vec<GlobalAddr> = gathered
            .chunks_exact(2)
            .map(|c| GlobalAddr::new(c[0] as usize, c[1] as usize))
            .collect();
        debug_assert_eq!(bases.len(), n);
        SharedArray {
            size,
            block,
            ranks: n,
            bases: bases.into(),
            _elem: std::marker::PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.size
    }

    /// True when the array has zero elements.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// The block size of the layout.
    pub fn block_size(&self) -> usize {
        self.block
    }

    /// The rank that owns element `i` (UPC's affinity).
    #[inline]
    pub fn owner(&self, i: usize) -> Rank {
        (i / self.block) % self.ranks
    }

    /// Global pointer to element `i` — the layout computation
    /// `block-cyclic index → (rank, local slot)`.
    #[inline]
    pub fn ptr(&self, i: usize) -> GlobalPtr<T> {
        assert!(
            i < self.size,
            "SharedArray index {i} out of bounds {}",
            self.size
        );
        let blk = i / self.block;
        let rank = blk % self.ranks;
        let local_slot = (blk / self.ranks) * self.block + (i % self.block);
        GlobalPtr::from_addr(self.bases[rank].add(local_slot * std::mem::size_of::<T>()))
    }

    /// Read element `i` (the paper's `cout << sa[0]`).
    #[inline]
    pub fn read(&self, ctx: &Ctx, i: usize) -> T {
        self.ptr(i).rget(ctx)
    }

    /// Write element `i` (the paper's `sa[0] = 1`).
    #[inline]
    pub fn write(&self, ctx: &Ctx, i: usize, value: T) {
        self.ptr(i).rput(ctx, value)
    }

    /// Indices of the elements owned by the calling rank, in increasing
    /// order — the loop bound rewrite of `upc_forall(...; affinity)`.
    pub fn my_indices<'a>(&'a self, ctx: &Ctx) -> impl Iterator<Item = usize> + 'a {
        let me = ctx.rank();
        let (block, ranks, size) = (self.block, self.ranks, self.size);
        (me * block..size)
            .step_by(block * ranks)
            .flat_map(move |start| start..(start + block).min(size))
    }

    /// Base pointer of `rank`'s local portion (for bulk operations).
    pub fn base_of(&self, rank: Rank) -> GlobalPtr<T> {
        GlobalPtr::from_addr(self.bases[rank])
    }

    /// Number of elements owned by `rank`. The owned elements occupy
    /// `rank`'s local portion contiguously (local slots `0..owned`): each
    /// owned block packs `block` consecutive slots, and only the array's
    /// final block can be partial.
    pub fn owned_len(&self, rank: Rank) -> usize {
        let nblocks = self.size.div_ceil(self.block.max(1));
        (rank..nblocks)
            .step_by(self.ranks)
            .map(|b| self.block.min(self.size - b * self.block))
            .sum()
    }

    /// Privatize the calling rank's local portion as a slice — the
    /// owner-computes fast path of `upc_forall`-style loops. Element `j`
    /// of the slice is the `j`-th element this rank owns, i.e. the same
    /// sequence [`SharedArray::my_indices`] walks. Validates affinity and
    /// element width once; see [`GlobalPtr::local_ref`] for the
    /// synchronization contract.
    pub fn local_slice<'a>(&self, ctx: &'a Ctx) -> &'a [T] {
        self.base_of(ctx.rank())
            .local_slice(ctx, self.owned_len(ctx.rank()))
    }

    /// Privatize the calling rank's local portion for mutation (sole
    /// accessor between two sync points — see
    /// [`GlobalPtr::local_slice_mut`]).
    pub fn local_slice_mut<'a>(&self, ctx: &'a Ctx) -> &'a mut [T] {
        self.base_of(ctx.rank())
            .local_slice_mut(ctx, self.owned_len(ctx.rank()))
    }

    /// Collectively destroy the array, freeing every rank's portion.
    pub fn destroy(self, ctx: &Ctx) {
        ctx.barrier();
        ctx.free(self.bases[ctx.rank()]);
        ctx.barrier();
    }
}

impl SharedArray<u64> {
    /// Remote atomic xor into element `i`; the GUPS update.
    #[inline]
    pub fn xor(&self, ctx: &Ctx, i: usize, value: u64) {
        self.ptr(i).rxor(ctx, value);
    }

    /// Non-fetching xor into element `i`, eligible for per-destination
    /// aggregation — the GUPS update in aggregated mode. Applied at the
    /// next flush point; call `ctx.agg_fence()` before depending on the
    /// result. Identical to [`SharedArray::xor`] when aggregation is off.
    #[inline]
    pub fn xor_agg(&self, ctx: &Ctx, i: usize, value: u64) {
        self.ptr(i).rxor_agg(ctx, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupcxx_runtime::{spmd, RuntimeConfig};

    fn cfg(n: usize) -> RuntimeConfig {
        RuntimeConfig::new(n).segment_bytes(1 << 18)
    }

    #[test]
    fn cyclic_layout_owner() {
        spmd(cfg(4), |ctx| {
            let a = SharedArray::<u64>::new(ctx, 16, 1);
            for i in 0..16 {
                assert_eq!(a.owner(i), i % 4);
            }
            a.destroy(ctx);
        });
    }

    #[test]
    fn block_layout_owner() {
        spmd(cfg(3), |ctx| {
            let a = SharedArray::<u64>::new(ctx, 20, 4);
            // blocks: [0..4)->r0, [4..8)->r1, [8..12)->r2, [12..16)->r0, ...
            assert_eq!(a.owner(0), 0);
            assert_eq!(a.owner(3), 0);
            assert_eq!(a.owner(4), 1);
            assert_eq!(a.owner(11), 2);
            assert_eq!(a.owner(12), 0);
            assert_eq!(a.owner(19), 1);
            a.destroy(ctx);
        });
    }

    #[test]
    fn write_read_every_element() {
        spmd(cfg(4), |ctx| {
            let a = SharedArray::<u64>::new(ctx, 64, 3);
            // Each rank writes its owned elements.
            for i in a.my_indices(ctx).collect::<Vec<_>>() {
                assert_eq!(a.owner(i), ctx.rank());
                a.write(ctx, i, (i * i) as u64);
            }
            ctx.barrier();
            for i in 0..64 {
                assert_eq!(a.read(ctx, i), (i * i) as u64, "element {i}");
            }
            a.destroy(ctx);
        });
    }

    #[test]
    fn my_indices_partition_the_array() {
        spmd(cfg(3), |ctx| {
            let a = SharedArray::<u64>::new(ctx, 25, 2);
            let mine: Vec<usize> = a.my_indices(ctx).collect();
            let counts = ctx.allreduce(mine.len() as u64, |x, y| x + y);
            assert_eq!(counts, 25);
            for &i in &mine {
                assert_eq!(a.owner(i), ctx.rank());
            }
            a.destroy(ctx);
        });
    }

    #[test]
    fn xor_updates() {
        spmd(cfg(2), |ctx| {
            let a = SharedArray::<u64>::new(ctx, 8, 1);
            ctx.barrier();
            if ctx.rank() == 0 {
                a.xor(ctx, 5, 0xFF);
                a.xor(ctx, 5, 0x0F);
            }
            ctx.barrier();
            assert_eq!(a.read(ctx, 5), 0xF0);
            a.destroy(ctx);
        });
    }

    #[test]
    fn xor_agg_matches_xor_after_fence() {
        use rupcxx_net::AggConfig;
        spmd(cfg(2).with_agg(AggConfig::new()), |ctx| {
            let a = SharedArray::<u64>::new(ctx, 8, 1);
            ctx.barrier();
            // Both ranks hammer every element; xor is commutative, so the
            // result is order-independent.
            for i in 0..8 {
                a.xor_agg(ctx, i, 1 << ctx.rank());
            }
            ctx.agg_fence();
            for i in 0..8 {
                assert_eq!(a.read(ctx, i), 0b11, "element {i}");
            }
            a.destroy(ctx);
        });
    }

    #[test]
    fn local_slice_matches_my_indices() {
        spmd(cfg(3), |ctx| {
            let a = SharedArray::<u64>::new(ctx, 25, 2);
            for i in a.my_indices(ctx).collect::<Vec<_>>() {
                a.write(ctx, i, 1000 + i as u64);
            }
            ctx.barrier();
            let mine: Vec<usize> = a.my_indices(ctx).collect();
            assert_eq!(a.owned_len(ctx.rank()), mine.len());
            let total: usize = (0..3).map(|r| a.owned_len(r)).sum();
            assert_eq!(total, 25);
            let local = a.local_slice(ctx);
            for (j, &i) in mine.iter().enumerate() {
                assert_eq!(local[j], 1000 + i as u64, "slot {j} = element {i}");
            }
            // Owner-computes mutation, visible through the fabric path.
            ctx.barrier();
            let lm = a.local_slice_mut(ctx);
            for v in lm.iter_mut() {
                *v += 1;
            }
            ctx.barrier();
            for i in 0..25 {
                assert_eq!(a.read(ctx, i), 1001 + i as u64, "element {i}");
            }
            a.destroy(ctx);
        });
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        spmd(cfg(1), |ctx| {
            let a = SharedArray::<u64>::new(ctx, 4, 1);
            let _ = a.read(ctx, 4);
        });
    }

    #[test]
    fn f64_elements() {
        spmd(cfg(2), |ctx| {
            let a = SharedArray::<f64>::new(ctx, 10, 1);
            if ctx.rank() == 0 {
                for i in 0..10 {
                    a.write(ctx, i, i as f64 + 0.25);
                }
            }
            ctx.barrier();
            assert_eq!(a.read(ctx, 9), 9.25);
            a.destroy(ctx);
        });
    }
}
