//! `rupcxx` — a PGAS extension for Rust, reproducing the UPC++ library
//! (Zheng et al., *UPC++: A PGAS Extension for C++*, IPDPS 2014).
//!
//! UPC++ demonstrates that a *library* ("compiler-free") can provide the
//! partitioned-global-address-space programming model of languages like
//! UPC and Titanium with equivalent performance. This crate is the Rust
//! rendition of the paper's core API (its Table I):
//!
//! | UPC idiom | UPC++ | `rupcxx` |
//! |---|---|---|
//! | `THREADS` | `ranks()` | [`Ctx::ranks`] |
//! | `MYTHREAD` | `myrank()` | [`Ctx::rank`] |
//! | `shared Type v` | `shared_var<Type>` | [`SharedVar`] |
//! | `shared [BS] T A[n]` | `shared_array<T, BS>` | [`SharedArray`] |
//! | `shared T *p` | `global_ptr<T>` | [`GlobalPtr`] |
//! | `upc_alloc` | `allocate<T>(rank, n)` | [`allocate`] |
//! | `upc_memcpy` | `copy<T>(src, dst, n)` | [`copy`] |
//! | `upc_barrier` / `upc_fence` | `barrier()` / `fence()` | [`Ctx::barrier`] / [`Ctx::fence`] |
//! | — | `async(place)(f, args…)` | [`async_on`] |
//! | — | `finish { … }` | [`Ctx::finish`] |
//!
//! # Execution model
//!
//! SPMD, as in UPC: [`rupcxx_runtime::spmd`] launches N ranks that all run
//! the same closure. Ranks communicate through one-sided reads/writes of
//! *shared objects* and through asynchronous remote function invocation.
//!
//! ```
//! use rupcxx::prelude::*;
//!
//! let sums = spmd(RuntimeConfig::new(4).segment_mib(1), |ctx| {
//!     // A cyclic shared array across all ranks (UPC: shared uint64_t A[16]).
//!     let a = SharedArray::<u64>::new(ctx, 16, 1);
//!     for i in (ctx.rank()..16).step_by(ctx.ranks()) {
//!         a.write(ctx, i, i as u64); // affinity-owned elements
//!     }
//!     ctx.barrier();
//!     (0..16).map(|i| a.read(ctx, i)).sum::<u64>()
//! });
//! assert!(sums.iter().all(|&s| s == 120));
//! ```
//!
//! # Differences from the paper, by design
//!
//! * Ranks are OS threads of one process; the "network" is the host's
//!   memory (see `rupcxx-net` for why this preserves one-sidedness).
//! * `global_ptr` → local raw pointer casts and the "escalate a private
//!   object to shared" feature (§III-C) are not provided: they require
//!   GASNet's segment-everything mode; data must live in segments here.
//! * Block size of [`SharedArray`] is a runtime value rather than a
//!   template parameter — strictly more general, same semantics
//!   (default 1 = cyclic, as in UPC).

pub mod copy;
pub mod forall;
pub mod global_ptr;
pub mod mem;
pub mod remote_fn;
pub mod rpc;
pub mod shared_array;
pub mod shared_var;
pub mod upc_mode;

pub use copy::{async_copy, async_copy_fence, copy};
pub use forall::{forall_blocked, forall_cyclic};
pub use global_ptr::GlobalPtr;
pub use mem::{allocate, allocate_init, deallocate};
pub use remote_fn::{spmd_registered, FnRegistry, RemoteFn};
pub use rpc::{async_after, async_on, async_on_all, async_with_event};
pub use shared_array::SharedArray;
pub use shared_var::SharedVar;
pub use upc_mode::UpcDirectTable;

pub use rupcxx_net::{GlobalAddr, Pod, Rank, SimNet};
pub use rupcxx_runtime::{
    spmd, Ctx, Event, FinishScope, GlobalLock, RtFuture, RuntimeConfig, Team,
};

/// Convenient glob-import of the whole public API.
pub mod prelude {
    pub use crate::copy::{async_copy, async_copy_fence, copy};
    pub use crate::forall::{forall_blocked, forall_cyclic};
    pub use crate::global_ptr::GlobalPtr;
    pub use crate::mem::{allocate, allocate_init, deallocate};
    pub use crate::remote_fn::{spmd_registered, FnRegistry, RemoteFn};
    pub use crate::rpc::{async_after, async_on, async_on_all, async_with_event};
    pub use crate::shared_array::SharedArray;
    pub use crate::shared_var::SharedVar;
    pub use crate::upc_mode::UpcDirectTable;
    pub use rupcxx_net::{GlobalAddr, Pod, Rank, SimNet};
    pub use rupcxx_runtime::{
        spmd, Ctx, Event, FinishScope, GlobalLock, RtFuture, RuntimeConfig, Team,
    };
}
