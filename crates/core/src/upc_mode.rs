//! "UPC mode": a direct shared-array access path modeling the Berkeley
//! UPC compiler's optimized codegen.
//!
//! The paper observes (§V-A) that UPC outperforms UPC++ by ~10 % on GUPS at
//! small scale because "the Berkeley UPC compiler and runtime are heavily
//! optimized for shared array accesses": the compiler strength-reduces the
//! block-cyclic layout computation (bit masks instead of division for
//! power-of-two geometry) and elides the proxy-object machinery.
//!
//! [`UpcDirectTable`] is our rendering of that baseline: it snapshots a
//! cyclic [`SharedArray<u64>`]'s directory and pre-computes shift/mask
//! constants, so an element access is mask → shift → word RMA with no
//! division, no bounds check and no proxy indirection. Benchmarks compare
//! it against the general [`SharedArray`] path (the "UPC++" curve).

use crate::shared_array::SharedArray;
use rupcxx_net::{GlobalAddr, Rank};
use rupcxx_runtime::Ctx;
use std::sync::Arc;

/// Direct-access view of a cyclic `SharedArray<u64>` whose rank count is a
/// power of two — the UPC-compiler fast path.
#[derive(Clone, Debug)]
pub struct UpcDirectTable {
    bases: Arc<[GlobalAddr]>,
    rank_mask: usize,
    rank_shift: u32,
}

impl UpcDirectTable {
    /// Build the direct view. Requires block size 1 (cyclic, UPC's default)
    /// and a power-of-two rank count; returns `None` otherwise (UPC falls
    /// back to its general path in the same situations).
    pub fn new(ctx: &Ctx, array: &SharedArray<u64>) -> Option<Self> {
        let n = ctx.ranks();
        if array.block_size() != 1 || !n.is_power_of_two() {
            return None;
        }
        let bases: Vec<GlobalAddr> = (0..n).map(|r| array.base_of(r).addr()).collect();
        Some(UpcDirectTable {
            bases: bases.into(),
            rank_mask: n - 1,
            rank_shift: n.trailing_zeros(),
        })
    }

    /// Rank owning element `i` (mask, no division).
    #[inline(always)]
    pub fn owner(&self, i: usize) -> Rank {
        i & self.rank_mask
    }

    /// Resolve element `i` to its global address (shift + mask only).
    #[inline(always)]
    fn addr(&self, i: usize) -> GlobalAddr {
        let rank = i & self.rank_mask;
        let slot = i >> self.rank_shift;
        self.bases[rank].add(slot * 8)
    }

    /// Direct word read.
    #[inline(always)]
    pub fn read(&self, ctx: &Ctx, i: usize) -> u64 {
        ctx.fabric().get_u64(ctx.rank(), self.addr(i))
    }

    /// Direct word write.
    #[inline(always)]
    pub fn write(&self, ctx: &Ctx, i: usize, value: u64) {
        ctx.fabric().put_u64(ctx.rank(), self.addr(i), value)
    }

    /// Direct xor update (the GUPS kernel step).
    #[inline(always)]
    pub fn xor(&self, ctx: &Ctx, i: usize, value: u64) {
        ctx.fabric().xor_u64(ctx.rank(), self.addr(i), value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupcxx_runtime::{spmd, RuntimeConfig};

    fn cfg(n: usize) -> RuntimeConfig {
        RuntimeConfig::new(n).segment_bytes(1 << 18)
    }

    #[test]
    fn direct_view_agrees_with_shared_array() {
        spmd(cfg(4), |ctx| {
            let a = SharedArray::<u64>::new(ctx, 64, 1);
            let direct = UpcDirectTable::new(ctx, &a).expect("pow2 geometry");
            if ctx.rank() == 0 {
                for i in 0..64 {
                    direct.write(ctx, i, i as u64 + 1000);
                }
            }
            ctx.barrier();
            for i in (0..64).step_by(7) {
                assert_eq!(a.read(ctx, i), i as u64 + 1000);
                assert_eq!(direct.read(ctx, i), i as u64 + 1000);
                assert_eq!(direct.owner(i), a.owner(i));
            }
            ctx.barrier();
            if ctx.rank() == 1 {
                direct.xor(ctx, 8, 0xFF);
            }
            ctx.barrier();
            assert_eq!(a.read(ctx, 8), 1008 ^ 0xFF);
            a.destroy(ctx);
        });
    }

    #[test]
    fn non_pow2_ranks_fall_back() {
        spmd(cfg(3), |ctx| {
            let a = SharedArray::<u64>::new(ctx, 9, 1);
            assert!(UpcDirectTable::new(ctx, &a).is_none());
            a.destroy(ctx);
        });
    }

    #[test]
    fn blocked_arrays_fall_back() {
        spmd(cfg(2), |ctx| {
            let a = SharedArray::<u64>::new(ctx, 16, 4);
            assert!(UpcDirectTable::new(ctx, &a).is_none());
            a.destroy(ctx);
        });
    }
}
