//! Vector clocks: the partial order under the happens-before relation.
//!
//! Each rank carries one [`VClock`] with one component per rank. Local
//! "events" (a global-memory access, a message send) tick the rank's own
//! component; receiving a synchronization edge (an AM delivery, a lock
//! hand-off, an event wait) joins the sender's snapshot in. Two access
//! snapshots `a`, `b` are *ordered* iff `a ≤ b` or `b ≤ a` elementwise;
//! everything else is concurrent — and concurrent conflicting accesses
//! are data races.

/// An immutable snapshot of a vector clock, attached to messages and
/// shadow-memory records. One `u64` per rank.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Stamp(pub Box<[u64]>);

impl Stamp {
    /// True when `self` happened-before-or-equals `other` (elementwise ≤).
    pub fn leq(&self, other: &Stamp) -> bool {
        leq(&self.0, &other.0)
    }

    /// True when neither snapshot happened-before the other.
    pub fn concurrent_with(&self, other: &Stamp) -> bool {
        !self.leq(other) && !other.leq(self)
    }
}

impl std::fmt::Display for Stamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ">")
    }
}

/// Elementwise `a ≤ b`.
pub(crate) fn leq(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).all(|(x, y)| x <= y)
}

/// One rank's mutable vector clock.
#[derive(Clone, Debug)]
pub struct VClock {
    v: Box<[u64]>,
}

impl VClock {
    /// The zero clock for a job of `ranks` ranks.
    pub fn new(ranks: usize) -> Self {
        VClock {
            v: vec![0u64; ranks].into_boxed_slice(),
        }
    }

    /// Advance `me`'s own component by one (a fresh local event).
    pub fn tick(&mut self, me: usize) {
        self.v[me] += 1;
    }

    /// Merge a received snapshot: elementwise max.
    pub fn join(&mut self, other: &Stamp) {
        for (mine, theirs) in self.v.iter_mut().zip(other.0.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Snapshot the current value.
    pub fn stamp(&self) -> Stamp {
        Stamp(self.v.clone())
    }

    /// The raw components (for computing global minima at prune time).
    pub fn components(&self) -> &[u64] {
        &self.v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_orders_successive_events_on_one_rank() {
        let mut c = VClock::new(3);
        c.tick(1);
        let a = c.stamp();
        c.tick(1);
        let b = c.stamp();
        assert!(a.leq(&b));
        assert!(!b.leq(&a));
        assert!(!a.concurrent_with(&b));
    }

    #[test]
    fn independent_ranks_are_concurrent() {
        let mut c0 = VClock::new(2);
        let mut c1 = VClock::new(2);
        c0.tick(0);
        c1.tick(1);
        assert!(c0.stamp().concurrent_with(&c1.stamp()));
    }

    #[test]
    fn join_establishes_order() {
        let mut sender = VClock::new(2);
        sender.tick(0);
        let msg = sender.stamp();
        let mut receiver = VClock::new(2);
        receiver.join(&msg);
        receiver.tick(1);
        // Everything at the receiver after the join is HB-after the send.
        assert!(msg.leq(&receiver.stamp()));
        // But the sender's *next* event is concurrent with the receiver.
        sender.tick(0);
        assert!(sender.stamp().concurrent_with(&receiver.stamp()));
    }

    #[test]
    fn stamp_display_is_compact() {
        let mut c = VClock::new(3);
        c.tick(0);
        c.tick(2);
        assert_eq!(c.stamp().to_string(), "<1,0,1>");
    }
}
