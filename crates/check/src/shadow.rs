//! Shadow memory: per-segment interval records of global-memory accesses.
//!
//! Every checked access to a rank's segment is recorded as an interval
//! `(initiator, [start, start+len), kind, clock)`. A new access races with
//! an existing record when the byte ranges overlap, the access kinds
//! conflict, and the two clock snapshots are concurrent.
//!
//! Records are pruned in two ways, both sound:
//! * a record is *replaced* by a new one with the same initiator, range
//!   and kind that happens-after it (any future access concurrent with
//!   the old record is also concurrent with its replacement, or already
//!   raced at insertion time);
//! * at a barrier — or when a shadow grows past a size threshold — every
//!   record dominated by the elementwise minimum over all ranks' current
//!   clocks is discarded (no future access can be concurrent with it).

use crate::clock::{leq, Stamp};

/// What an access does to memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// A plain read (`get` and friends).
    Read,
    /// A plain write (`put` and friends).
    Write,
    /// An atomic read-modify-write (`xor`/`add`/`cas`, aggregated word
    /// frames). Atomics never race with other atomics — that is exactly
    /// how GUPS' concurrent xor updates are well-defined — but they do
    /// conflict with plain reads and writes.
    Atomic,
}

impl AccessKind {
    /// True when two accesses of these kinds to overlapping bytes need a
    /// happens-before edge. Only read/read and atomic/atomic pairs are
    /// safe without one.
    pub fn conflicts_with(self, other: AccessKind) -> bool {
        !matches!(
            (self, other),
            (AccessKind::Read, AccessKind::Read) | (AccessKind::Atomic, AccessKind::Atomic)
        )
    }
}

impl std::fmt::Display for AccessKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Atomic => "atomic",
        })
    }
}

/// One recorded access.
#[derive(Clone, Debug)]
pub struct AccessRecord {
    /// Rank that performed (or initiated) the access.
    pub initiator: usize,
    /// First byte offset in the target segment.
    pub start: usize,
    /// Byte length (never 0).
    pub len: usize,
    /// Read / write / atomic.
    pub kind: AccessKind,
    /// Happens-before snapshot at the access.
    pub clock: Stamp,
    /// Static operation label for reports (e.g. `"put"`, `"agg-put"`).
    pub op: &'static str,
}

impl AccessRecord {
    fn overlaps(&self, start: usize, len: usize) -> bool {
        self.start < start + len && start < self.start + self.len
    }
}

/// A detected race: the prior record the new access collided with.
pub struct RaceWith {
    /// The existing record.
    pub prior: AccessRecord,
}

/// Shadow state for one rank's segment.
#[derive(Default)]
pub struct Shadow {
    records: Vec<AccessRecord>,
}

/// Above this many live records, [`Shadow::insert`] asks the caller for a
/// global min-clock prune (via the `min_clock` callback).
pub const SHADOW_PRUNE_THRESHOLD: usize = 1 << 14;

impl Shadow {
    /// Record `access`, returning every existing record it races with.
    /// `min_clock` is invoked (rarely) when the shadow needs pruning; it
    /// must return the elementwise minimum of all ranks' current clocks.
    pub fn insert(
        &mut self,
        access: AccessRecord,
        min_clock: impl FnOnce() -> Stamp,
    ) -> Vec<RaceWith> {
        let mut races = Vec::new();
        let mut replace: Option<usize> = None;
        for (i, rec) in self.records.iter().enumerate() {
            if !rec.overlaps(access.start, access.len) {
                continue;
            }
            if rec.kind.conflicts_with(access.kind) && rec.clock.concurrent_with(&access.clock) {
                races.push(RaceWith { prior: rec.clone() });
            }
            if replace.is_none()
                && rec.initiator == access.initiator
                && rec.start == access.start
                && rec.len == access.len
                && rec.kind == access.kind
                && rec.clock.leq(&access.clock)
            {
                replace = Some(i);
            }
        }
        match replace {
            Some(i) => self.records[i] = access,
            None => self.records.push(access),
        }
        if self.records.len() > SHADOW_PRUNE_THRESHOLD {
            self.prune(&min_clock());
        }
        races
    }

    /// Discard every record whose clock is dominated by `min` — no future
    /// access anywhere can be concurrent with it.
    pub fn prune(&mut self, min: &Stamp) {
        self.records.retain(|r| !leq(&r.clock.0, &min.0));
    }

    /// Records of writes/atomics overlapping `[start, start+len)` that are
    /// strictly happens-*after* `fill` — i.e. writes a cached line filled
    /// at `fill` cannot reflect. Used by the software read cache's
    /// stale-hit check: a hit whose reader is synchronized with such a
    /// write observed a value a coherent memory could never return.
    /// (Writes *concurrent* with `fill` are not returned — those already
    /// race with the fill's own read record and are reported as
    /// [`crate::FindingKind::DataRace`].)
    pub fn stale_writes(&self, start: usize, len: usize, fill: &Stamp) -> Vec<AccessRecord> {
        self.records
            .iter()
            .filter(|r| {
                r.kind != AccessKind::Read
                    && r.overlaps(start, len)
                    && fill.leq(&r.clock)
                    && !r.clock.leq(fill)
            })
            .cloned()
            .collect()
    }

    /// Number of live records (tests and diagnostics).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are live.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamp(v: &[u64]) -> Stamp {
        Stamp(v.to_vec().into_boxed_slice())
    }

    fn rec(
        initiator: usize,
        start: usize,
        len: usize,
        kind: AccessKind,
        v: &[u64],
    ) -> AccessRecord {
        AccessRecord {
            initiator,
            start,
            len,
            kind,
            clock: stamp(v),
            op: "test",
        }
    }

    fn no_min() -> Stamp {
        panic!("prune not expected")
    }

    #[test]
    fn concurrent_overlapping_write_read_races() {
        let mut s = Shadow::default();
        assert!(s
            .insert(rec(0, 0, 8, AccessKind::Write, &[1, 0]), no_min)
            .is_empty());
        let races = s.insert(rec(1, 4, 8, AccessKind::Read, &[0, 1]), no_min);
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].prior.initiator, 0);
    }

    #[test]
    fn ordered_accesses_do_not_race() {
        let mut s = Shadow::default();
        assert!(s
            .insert(rec(0, 0, 8, AccessKind::Write, &[1, 0]), no_min)
            .is_empty());
        // The reader joined the writer's clock: <1,1> dominates <1,0>.
        assert!(s
            .insert(rec(1, 0, 8, AccessKind::Read, &[1, 1]), no_min)
            .is_empty());
    }

    #[test]
    fn disjoint_ranges_do_not_race() {
        let mut s = Shadow::default();
        assert!(s
            .insert(rec(0, 0, 8, AccessKind::Write, &[1, 0]), no_min)
            .is_empty());
        assert!(s
            .insert(rec(1, 8, 8, AccessKind::Write, &[0, 1]), no_min)
            .is_empty());
    }

    #[test]
    fn atomic_atomic_is_not_a_race_but_atomic_read_is() {
        let mut s = Shadow::default();
        assert!(s
            .insert(rec(0, 0, 8, AccessKind::Atomic, &[1, 0]), no_min)
            .is_empty());
        assert!(s
            .insert(rec(1, 0, 8, AccessKind::Atomic, &[0, 1]), no_min)
            .is_empty());
        let races = s.insert(rec(1, 0, 8, AccessKind::Read, &[0, 2]), no_min);
        assert_eq!(races.len(), 1, "unordered atomic vs read must race");
    }

    #[test]
    fn dominated_same_shape_record_is_replaced() {
        let mut s = Shadow::default();
        let _ = s.insert(rec(0, 0, 8, AccessKind::Write, &[1, 0]), no_min);
        let _ = s.insert(rec(0, 0, 8, AccessKind::Write, &[2, 0]), no_min);
        assert_eq!(s.len(), 1, "happens-after same-shape access replaces");
    }

    #[test]
    fn stale_writes_finds_only_writes_ordered_after_fill() {
        let mut s = Shadow::default();
        let _ = s.insert(rec(0, 0, 8, AccessKind::Write, &[1, 0]), no_min);
        let _ = s.insert(rec(1, 8, 8, AccessKind::Write, &[5, 5]), no_min);
        let _ = s.insert(rec(1, 0, 8, AccessKind::Read, &[5, 5]), no_min);
        let fill = stamp(&[2, 2]);
        // The write at <1,0> is before the fill; the read at <5,5> is a
        // read; only a write after the fill in the overlapping range hits.
        assert!(s.stale_writes(0, 8, &fill).is_empty());
        let _ = s.insert(rec(1, 4, 8, AccessKind::Write, &[2, 6]), no_min);
        let hits = s.stale_writes(0, 8, &fill);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].initiator, 1);
        // A write concurrent with the fill is not "stale" (it is a plain
        // data race with the fill's read record instead).
        let _ = s.insert(rec(0, 0, 8, AccessKind::Write, &[9, 0]), no_min);
        assert_eq!(s.stale_writes(0, 8, &fill).len(), 1);
        // Disjoint ranges never hit.
        assert!(s.stale_writes(16, 8, &fill).is_empty());
    }

    #[test]
    fn min_clock_prune_discards_dominated_records() {
        let mut s = Shadow::default();
        let _ = s.insert(rec(0, 0, 8, AccessKind::Write, &[1, 0]), no_min);
        let _ = s.insert(rec(1, 8, 8, AccessKind::Write, &[0, 5]), no_min);
        s.prune(&stamp(&[1, 1]));
        assert_eq!(s.len(), 1, "only the record under the min goes");
        s.prune(&stamp(&[9, 9]));
        assert!(s.is_empty());
    }
}
