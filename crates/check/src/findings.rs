//! Checker findings and the end-of-job report.

use rupcxx_util::sync::Mutex;
use std::sync::Arc;

/// Classification of a checker finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FindingKind {
    /// Two concurrent conflicting global-memory accesses.
    DataRace,
    /// A cycle in the lock wait-for graph (including a rank re-acquiring
    /// a lock it already holds).
    LockCycle,
    /// A rank entered `barrier()` while holding a `GlobalLock`.
    LockAcrossBarrier,
    /// A rank blocked on an `Event` (or future) that can never be
    /// signaled — every other rank is finished or equally stuck.
    EventNeverSignaled,
    /// Ranks disagree on the number of `barrier()` episodes: a blocked
    /// barrier whose missing participant already exited the job.
    BarrierMismatch,
    /// A software-cache hit returned data whose line was filled *before* a
    /// write that is ordered before the read — the reader synchronized
    /// with the writer without an intervening cache invalidation
    /// (`barrier()`/`fence()`), so it observed a stale value a coherent
    /// memory could never return.
    StaleCachedRead,
    /// A confirmed global deadlock that matches no more specific pattern.
    Deadlock,
}

impl std::fmt::Display for FindingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FindingKind::DataRace => "data-race",
            FindingKind::LockCycle => "lock-cycle",
            FindingKind::LockAcrossBarrier => "lock-across-barrier",
            FindingKind::EventNeverSignaled => "event-never-signaled",
            FindingKind::BarrierMismatch => "barrier-mismatch",
            FindingKind::StaleCachedRead => "stale-cached-read",
            FindingKind::Deadlock => "deadlock",
        })
    }
}

/// One checker finding: a kind plus a deterministic human-readable
/// description carrying both operations' context (ranks, address range,
/// op labels, clock snapshots).
#[derive(Clone, Debug)]
pub struct Finding {
    /// What class of bug this is.
    pub kind: FindingKind,
    /// Deterministic description (no timestamps, no pointers).
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.kind, self.message)
    }
}

/// Where findings are delivered as they are recorded; tests install one
/// through `CheckConfig::with_sink` to assert on the outcome even when
/// the job aborts (deadlock findings surface as panics).
pub type FindingSink = Arc<Mutex<Vec<Finding>>>;

/// The schedule-independent verdict of a run: the distinct finding kinds
/// observed, sorted. Exploration dedups bugs by this (two schedules that
/// expose the same kind are the same bug), while full messages are
/// compared only across replays of the *same* schedule — they embed clock
/// snapshots that legitimately differ between delivery orders.
pub fn verdict(findings: &[Finding]) -> Vec<FindingKind> {
    let mut kinds: Vec<FindingKind> = findings.iter().map(|f| f.kind).collect();
    kinds.sort();
    kinds.dedup();
    kinds
}

/// Render the end-of-job report body.
pub fn render_report(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "rupcxx-check report: {} finding(s)\n",
        findings.len()
    ));
    for f in findings {
        out.push_str(&format!("{f}\n"));
    }
    out
}
