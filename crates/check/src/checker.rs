//! The online checker: per-rank vector clocks, shadow memory, lock/event
//! bookkeeping and the wait-for deadlock scan.
//!
//! One [`Checker`] is shared by every rank of a job (the fabric holds it
//! the way it holds the fault plan). All hooks are cheap mutex-guarded
//! updates; the runtime only calls them when the checker is installed, so
//! the unchecked path never pays more than one untaken branch.

use crate::clock::{Stamp, VClock};
use crate::findings::{render_report, Finding, FindingKind};
use crate::shadow::{AccessKind, AccessRecord, Shadow};
use crate::CheckConfig;
use rupcxx_util::sync::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A lock's identity: the (rank, offset) of its word in the global
/// address space — stable and deterministic, unlike host pointers.
pub type LockKey = (usize, usize);

/// What a blocked rank is waiting for (registered by every blocking
/// construct before it enters `wait_until`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitInfo {
    /// Blocked inside `barrier()` number `seq` (0-based per rank).
    Barrier {
        /// 0-based barrier episode index on the waiting rank.
        seq: u64,
    },
    /// Blocked acquiring a `GlobalLock`.
    Lock {
        /// The lock's global word.
        lock: LockKey,
    },
    /// Blocked in `Event::wait`.
    Event,
    /// Blocked in `RtFuture::get`.
    Future,
    /// Blocked at the end of a `finish` scope.
    Finish,
}

impl std::fmt::Display for WaitInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaitInfo::Barrier { seq } => write!(f, "barrier #{}", seq + 1),
            WaitInfo::Lock { lock } => write!(f, "lock ({}, 0x{:x})", lock.0, lock.1),
            WaitInfo::Event => f.write_str("event wait"),
            WaitInfo::Future => f.write_str("future get"),
            WaitInfo::Finish => f.write_str("finish scope"),
        }
    }
}

#[derive(Default)]
struct LockState {
    owner: Option<usize>,
    /// Clock of the most recent release — joined by the next acquirer,
    /// which is what orders two critical sections on the same lock.
    release: Option<Stamp>,
}

#[derive(Default)]
struct ScanState {
    /// Wait-table epoch of the previous stuck observation; a deadlock is
    /// only reported when a later scan sees the identical epoch (i.e. no
    /// wait registered or cleared in between — nothing moved).
    last_stuck_epoch: Option<u64>,
}

/// The shared checker instance for one SPMD job.
pub struct Checker {
    cfg: CheckConfig,
    ranks: usize,
    clocks: Box<[Mutex<VClock>]>,
    shadows: Box<[Mutex<Shadow>]>,
    /// Per-event accumulated signal clocks, keyed by the event core's
    /// address. (An address can be reused after an event is dropped; the
    /// stale join that could produce is an extra HB edge — it can mask a
    /// race, never invent one.)
    event_clocks: Mutex<HashMap<usize, VClock>>,
    locks: Mutex<HashMap<LockKey, LockState>>,
    waits: Box<[Mutex<Option<WaitInfo>>]>,
    /// Bumped on every wait register/clear and rank completion; the
    /// deadlock scan's notion of "something moved".
    wait_epoch: AtomicU64,
    barrier_entries: Box<[AtomicU64]>,
    completed: Box<[AtomicBool]>,
    scan: Mutex<ScanState>,
    findings: Mutex<Vec<Finding>>,
    reported: Mutex<HashSet<(FindingKind, String)>>,
    aborted: AtomicBool,
    abort_msg: Mutex<Option<String>>,
}

impl Checker {
    /// Build a checker for a job of `ranks` ranks.
    pub fn new(ranks: usize, cfg: CheckConfig) -> Self {
        Checker {
            cfg,
            ranks,
            clocks: (0..ranks).map(|_| Mutex::new(VClock::new(ranks))).collect(),
            shadows: (0..ranks).map(|_| Mutex::new(Shadow::default())).collect(),
            event_clocks: Mutex::new(HashMap::new()),
            locks: Mutex::new(HashMap::new()),
            waits: (0..ranks).map(|_| Mutex::new(None)).collect(),
            wait_epoch: AtomicU64::new(0),
            barrier_entries: (0..ranks).map(|_| AtomicU64::new(0)).collect(),
            completed: (0..ranks).map(|_| AtomicBool::new(false)).collect(),
            scan: Mutex::new(ScanState::default()),
            findings: Mutex::new(Vec::new()),
            reported: Mutex::new(HashSet::new()),
            aborted: AtomicBool::new(false),
            abort_msg: Mutex::new(None),
        }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// True when the happens-before race pass is on.
    #[inline]
    pub fn race_on(&self) -> bool {
        self.cfg.race
    }

    /// True when the deadlock/misuse pass is on.
    #[inline]
    pub fn deadlock_on(&self) -> bool {
        self.cfg.deadlock
    }

    // ---- clock plumbing -------------------------------------------------

    /// Snapshot `rank`'s clock for an outgoing message (ticking first, so
    /// the sender's later events are *not* ordered under the receiver's).
    pub fn send_stamp(&self, rank: usize) -> Stamp {
        let mut c = self.clocks[rank].lock();
        c.tick(rank);
        c.stamp()
    }

    /// Join a received message's snapshot into `rank`'s clock (called by
    /// the progress engine before the payload runs).
    pub fn join(&self, rank: usize, stamp: &Stamp) {
        let mut c = self.clocks[rank].lock();
        c.join(stamp);
        c.tick(rank);
    }

    /// Advance `rank`'s clock by one local event (finish entry/exit and
    /// other sync points without a partner snapshot).
    pub fn tick(&self, rank: usize) {
        self.clocks[rank].lock().tick(rank);
    }

    /// Elementwise minimum over all ranks' current clocks: the prune
    /// frontier — every record at or under it is in everyone's past.
    fn min_clock(&self) -> Stamp {
        let mut min = vec![u64::MAX; self.ranks];
        for m in self.clocks.iter() {
            for (lo, v) in min.iter_mut().zip(m.lock().components()) {
                *lo = (*lo).min(*v);
            }
        }
        Stamp(min.into_boxed_slice())
    }

    // ---- access recording ----------------------------------------------

    /// Record a direct access by `initiator` to `target`'s segment.
    pub fn access(
        &self,
        initiator: usize,
        target: usize,
        offset: usize,
        len: usize,
        kind: AccessKind,
        op: &'static str,
    ) {
        if !self.cfg.race || len == 0 {
            return;
        }
        let clock = {
            let mut c = self.clocks[initiator].lock();
            c.tick(initiator);
            c.stamp()
        };
        self.record(
            AccessRecord {
                initiator,
                start: offset,
                len,
                kind,
                clock,
                op,
            },
            target,
        );
    }

    /// Record an aggregated-frame access applied on `target`, attributed
    /// to the frame's sender with the clock the batch carried — the
    /// sender's snapshot at flush time, which is exactly when the
    /// buffered op was injected.
    #[allow(clippy::too_many_arguments)]
    pub fn frame_access(
        &self,
        src: usize,
        target: usize,
        offset: usize,
        len: usize,
        kind: AccessKind,
        stamp: &Stamp,
        op: &'static str,
    ) {
        if !self.cfg.race || len == 0 {
            return;
        }
        self.record(
            AccessRecord {
                initiator: src,
                start: offset,
                len,
                kind,
                clock: stamp.clone(),
                op,
            },
            target,
        );
    }

    fn record(&self, rec: AccessRecord, target: usize) {
        let races = self.shadows[target]
            .lock()
            .insert(rec.clone(), || self.min_clock());
        for race in races {
            let (a, b) = order_pair(&race.prior, &rec);
            let end = rec.start + rec.len;
            let key = format!(
                "{target}:{}:{}:{}:{}:{}:{}",
                rec.start, a.initiator, a.op, b.initiator, b.op, end
            );
            let message = format!(
                "data race on rank {target}'s segment [0x{:x}..0x{:x}): \
                 {} `{}` by rank {} at {} vs {} `{}` by rank {} at {} \
                 — no happens-before edge between them",
                a.start.max(b.start),
                (a.start + a.len).min(b.start + b.len),
                a.kind,
                a.op,
                a.initiator,
                a.clock,
                b.kind,
                b.op,
                b.initiator,
                b.clock,
            );
            self.report(FindingKind::DataRace, key, message);
        }
    }

    /// A software-cache hit: `initiator` read `[offset, offset+len)` of
    /// `target`'s segment from a line filled at `fill`. The fabric records
    /// the hit as an ordinary read at the current clock separately (for
    /// plain race detection); this hook adds the staleness check: a write
    /// ordered strictly *after* the fill cannot be reflected in the cached
    /// data, so finding one proves the hit returned a stale value. Clean
    /// programs never trigger this: synchronizing with a writer through
    /// `barrier()`/`fence()` invalidates the cache first, so the next read
    /// is a fresh fill ordered after the write.
    pub fn cache_read(
        &self,
        initiator: usize,
        target: usize,
        offset: usize,
        len: usize,
        fill: &Stamp,
    ) {
        if !self.cfg.race || len == 0 {
            return;
        }
        let stale = self.shadows[target].lock().stale_writes(offset, len, fill);
        for w in stale {
            let key = format!(
                "stale:{target}:{offset}:{len}:{initiator}:{}:{}",
                w.initiator, w.op
            );
            let message = format!(
                "stale cached read of rank {target}'s segment \
                 [0x{offset:x}..0x{:x}) by rank {initiator}: the line was \
                 filled at {fill} but the {} `{}` by rank {} at {} is \
                 ordered after the fill — the reader synchronized with the \
                 writer without a barrier()/fence() to invalidate the cache",
                offset + len,
                w.kind,
                w.op,
                w.initiator,
                w.clock,
            );
            self.report(FindingKind::StaleCachedRead, key, message);
        }
    }

    // ---- barrier hooks --------------------------------------------------

    /// A rank arrives at `barrier()`: flag locks held across the barrier,
    /// then register the barrier wait.
    pub fn barrier_enter(&self, rank: usize) {
        for (lock, st) in self.locks.lock().iter() {
            if st.owner == Some(rank) {
                self.report(
                    FindingKind::LockAcrossBarrier,
                    format!("lab:{rank}:{}:{}", lock.0, lock.1),
                    format!(
                        "rank {rank} entered barrier() while holding lock \
                         ({}, 0x{:x}) — a peer acquiring it inside the same \
                         barrier episode deadlocks",
                        lock.0, lock.1
                    ),
                );
            }
        }
        let seq = self.barrier_entries[rank].fetch_add(1, Ordering::AcqRel);
        self.wait_register(rank, WaitInfo::Barrier { seq });
    }

    /// A rank leaves `barrier()`: clear the wait, advance the clock and
    /// prune its own shadow (a barrier is the natural prune point — the
    /// global min-clock moves past everything pre-barrier once all ranks
    /// have gone through).
    pub fn barrier_exit(&self, rank: usize) {
        self.wait_clear(rank);
        self.tick(rank);
        if self.cfg.race {
            let min = self.min_clock();
            self.shadows[rank].lock().prune(&min);
        }
    }

    // ---- event hooks ----------------------------------------------------

    /// `Event::signal` on `rank`: accumulate the signaler's clock under
    /// the event's key so waiters can join it.
    pub fn event_signal(&self, rank: usize, key: usize) {
        let stamp = self.send_stamp(rank);
        self.event_clocks
            .lock()
            .entry(key)
            .or_insert_with(|| VClock::new(self.ranks))
            .join(&stamp);
    }

    /// Entering `Event::wait`.
    pub fn event_wait_begin(&self, rank: usize) {
        self.wait_register(rank, WaitInfo::Event);
    }

    /// `Event::wait` completed: join the accumulated signal clocks, so
    /// accesses after the wait are ordered after every signaler.
    pub fn event_wait_end(&self, rank: usize, key: usize) {
        self.wait_clear(rank);
        let stamp = self.event_clocks.lock().get(&key).map(|c| c.stamp());
        if let Some(stamp) = stamp {
            self.join(rank, &stamp);
        }
    }

    /// Entering `RtFuture::get` (ordering rides the reply AM's clock).
    pub fn future_wait_begin(&self, rank: usize) {
        self.wait_register(rank, WaitInfo::Future);
    }

    /// `RtFuture::get` completed.
    pub fn future_wait_end(&self, rank: usize) {
        self.wait_clear(rank);
    }

    /// Entering the blocking tail of a `finish` scope.
    pub fn finish_wait_begin(&self, rank: usize) {
        self.wait_register(rank, WaitInfo::Finish);
    }

    /// The `finish` scope closed (completion replies carried the clocks).
    pub fn finish_wait_end(&self, rank: usize) {
        self.wait_clear(rank);
        self.tick(rank);
    }

    // ---- lock hooks ------------------------------------------------------

    /// A successful `GlobalLock` CAS acquire: record ownership and join
    /// the previous holder's release clock (the lock hand-off edge).
    pub fn lock_acquired(&self, rank: usize, lock: LockKey) {
        let release = {
            let mut locks = self.locks.lock();
            let st = locks.entry(lock).or_default();
            st.owner = Some(rank);
            st.release.clone()
        };
        if let Some(stamp) = &release {
            self.join(rank, stamp);
        } else {
            self.tick(rank);
        }
        self.wait_clear(rank);
    }

    /// About to release a `GlobalLock` (called *before* the CAS makes the
    /// lock available, so the next acquirer always finds the clock).
    pub fn lock_release(&self, rank: usize, lock: LockKey) {
        let stamp = self.send_stamp(rank);
        let mut locks = self.locks.lock();
        let st = locks.entry(lock).or_default();
        st.owner = None;
        st.release = Some(stamp);
    }

    /// Blocking in `GlobalLock::acquire`.
    pub fn lock_wait_begin(&self, rank: usize, lock: LockKey) {
        self.wait_register(rank, WaitInfo::Lock { lock });
    }

    /// `GlobalLock::acquire` gave up its wait slot (acquired or failed).
    pub fn lock_wait_end(&self, rank: usize) {
        self.wait_clear(rank);
    }

    /// The lock's word was freed; forget its state.
    pub fn lock_destroyed(&self, lock: LockKey) {
        self.locks.lock().remove(&lock);
    }

    // ---- completion and the deadlock scan -------------------------------

    /// The rank's SPMD closure returned (it still serves progress, so it
    /// can never be "stuck").
    pub fn rank_completed(&self, rank: usize) {
        self.completed[rank].store(true, Ordering::SeqCst);
        self.wait_epoch.fetch_add(1, Ordering::SeqCst);
    }

    fn wait_register(&self, rank: usize, info: WaitInfo) {
        if !self.cfg.deadlock {
            return;
        }
        *self.waits[rank].lock() = Some(info);
        self.wait_epoch.fetch_add(1, Ordering::SeqCst);
    }

    fn wait_clear(&self, rank: usize) {
        if !self.cfg.deadlock {
            return;
        }
        *self.waits[rank].lock() = None;
        self.wait_epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// True once the deadlock pass declared the job wedged; blocking
    /// waits turn this into a panic (like `Fabric::has_failed`).
    #[inline]
    pub fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }

    /// The abort report, for the panic message.
    pub fn abort_message(&self) -> Option<String> {
        self.abort_msg.lock().clone()
    }

    /// Periodic idle-time scan from a blocked rank's `wait_until`.
    /// `quiet` must be the caller's observation that no message anywhere
    /// is queued or in flight. A deadlock is reported only when two
    /// consecutive scans observe the identical stuck wait table with no
    /// register/clear in between — transient states never confirm.
    pub fn maybe_scan(&self, quiet: bool) {
        if !self.cfg.deadlock || self.is_aborted() {
            return;
        }
        let mut scan = self.scan.lock();
        if !quiet {
            scan.last_stuck_epoch = None;
            return;
        }
        let epoch = self.wait_epoch.load(Ordering::SeqCst);
        let mut waiting: Vec<(usize, WaitInfo)> = Vec::new();
        for r in 0..self.ranks {
            if self.completed[r].load(Ordering::SeqCst) {
                continue;
            }
            match *self.waits[r].lock() {
                Some(info) => waiting.push((r, info)),
                None => {
                    // Somebody is computing: not stuck.
                    scan.last_stuck_epoch = None;
                    return;
                }
            }
        }
        if waiting.is_empty() || self.wait_epoch.load(Ordering::SeqCst) != epoch {
            scan.last_stuck_epoch = None;
            return;
        }
        match scan.last_stuck_epoch {
            Some(e) if e == epoch => {
                self.confirm_deadlock(&waiting);
            }
            _ => scan.last_stuck_epoch = Some(epoch),
        }
    }

    /// Two scans agreed: classify the stuck state and abort the job.
    fn confirm_deadlock(&self, waiting: &[(usize, WaitInfo)]) {
        if self.aborted.swap(true, Ordering::AcqRel) {
            return;
        }
        let before = self.findings.lock().len();
        self.classify_stuck(waiting);
        let findings = self.findings.lock();
        let msg = findings
            .get(before)
            .or_else(|| findings.last())
            .map(|f| f.to_string())
            .unwrap_or_else(|| "deadlock detected".to_string());
        *self.abort_msg.lock() = Some(format!("rupcxx-check: {msg}"));
    }

    fn classify_stuck(&self, waiting: &[(usize, WaitInfo)]) {
        let owners: HashMap<LockKey, Option<usize>> = self
            .locks
            .lock()
            .iter()
            .map(|(k, st)| (*k, st.owner))
            .collect();
        let waits_on_lock: HashMap<usize, LockKey> = waiting
            .iter()
            .filter_map(|(r, w)| match w {
                WaitInfo::Lock { lock } => Some((*r, *lock)),
                _ => None,
            })
            .collect();
        let mut specific = false;
        for &(rank, info) in waiting {
            match info {
                WaitInfo::Lock { lock } => {
                    specific = true;
                    self.classify_lock_wait(rank, lock, &owners, &waits_on_lock);
                }
                WaitInfo::Event | WaitInfo::Future => {
                    specific = true;
                    let what = if info == WaitInfo::Event {
                        "an event that is never signaled"
                    } else {
                        "a future that never resolves"
                    };
                    self.report(
                        FindingKind::EventNeverSignaled,
                        format!("ev:{rank}"),
                        format!(
                            "rank {rank} blocked waiting on {what}: every \
                             other rank has completed or is equally blocked"
                        ),
                    );
                }
                WaitInfo::Barrier { seq } => {
                    for c in 0..self.ranks {
                        if self.completed[c].load(Ordering::SeqCst)
                            && self.barrier_entries[c].load(Ordering::SeqCst) <= seq
                        {
                            specific = true;
                            self.report(
                                FindingKind::BarrierMismatch,
                                format!("bar:{rank}:{seq}"),
                                format!(
                                    "mismatched barrier arrival: rank {rank} \
                                     blocked in barrier #{} but rank {c} \
                                     completed after only {} barrier(s)",
                                    seq + 1,
                                    self.barrier_entries[c].load(Ordering::SeqCst)
                                ),
                            );
                            break;
                        }
                    }
                }
                WaitInfo::Finish => {}
            }
        }
        if !specific {
            let table: Vec<String> = waiting
                .iter()
                .map(|(r, w)| format!("rank {r}: {w}"))
                .collect();
            self.report(
                FindingKind::Deadlock,
                "generic".to_string(),
                format!(
                    "global deadlock: no rank can make progress ({})",
                    table.join("; ")
                ),
            );
        }
    }

    fn classify_lock_wait(
        &self,
        rank: usize,
        lock: LockKey,
        owners: &HashMap<LockKey, Option<usize>>,
        waits_on_lock: &HashMap<usize, LockKey>,
    ) {
        let owner = owners.get(&lock).copied().flatten();
        let Some(owner) = owner else {
            // Lock is free yet the rank is "stuck" acquiring it — a
            // transient the epoch check should have filtered; stay quiet.
            return;
        };
        if owner == rank {
            self.report(
                FindingKind::LockCycle,
                format!("self:{rank}:{}:{}", lock.0, lock.1),
                format!(
                    "self-deadlock: rank {rank} re-acquires lock \
                     ({}, 0x{:x}) it already holds",
                    lock.0, lock.1
                ),
            );
            return;
        }
        // Follow waiter -> held-lock -> owner edges looking for a cycle
        // back to `rank`.
        let mut chain = vec![(rank, lock)];
        let mut cur = owner;
        while let Some(&next_lock) = waits_on_lock.get(&cur) {
            chain.push((cur, next_lock));
            let Some(next_owner) = owners.get(&next_lock).copied().flatten() else {
                break;
            };
            if next_owner == rank {
                let path: Vec<String> = chain
                    .iter()
                    .map(|(r, l)| format!("rank {r} waits for lock ({}, 0x{:x})", l.0, l.1))
                    .collect();
                // One canonical report per cycle: keyed on the smallest
                // participating rank so each cycle is reported once.
                let min_rank = chain.iter().map(|(r, _)| *r).min().unwrap_or(rank);
                self.report(
                    FindingKind::LockCycle,
                    format!("cycle:{min_rank}"),
                    format!("lock cycle: {}", path.join("; ")),
                );
                return;
            }
            if chain.iter().any(|(r, _)| *r == next_owner) {
                return; // a cycle not through `rank`; its members report it
            }
            cur = next_owner;
        }
        self.report(
            FindingKind::Deadlock,
            format!("lockstuck:{rank}"),
            format!(
                "rank {rank} blocked acquiring lock ({}, 0x{:x}) held by \
                 rank {owner}, which cannot make progress",
                lock.0, lock.1
            ),
        );
    }

    // ---- findings -------------------------------------------------------

    fn report(&self, kind: FindingKind, dedup_key: String, message: String) {
        if !self.reported.lock().insert((kind, dedup_key)) {
            return;
        }
        let finding = Finding { kind, message };
        eprintln!("(rupcxx-check) {finding}");
        if let Some(sink) = &self.cfg.sink {
            sink.lock().push(finding.clone());
        }
        self.findings.lock().push(finding);
    }

    /// Snapshot all findings recorded so far.
    pub fn findings(&self) -> Vec<Finding> {
        self.findings.lock().clone()
    }

    /// End-of-job export: write the report file when a path was
    /// configured, and return the number of findings.
    pub fn export(&self) -> usize {
        let findings = self.findings.lock();
        if let Some(path) = &self.cfg.report_path {
            if let Err(e) = std::fs::write(path, render_report(&findings)) {
                eprintln!("(rupcxx-check: could not write report {path}: {e})");
            }
        }
        findings.len()
    }
}

/// Order a race's two sides deterministically (by initiator, then op),
/// so the report text does not depend on which access was recorded first.
fn order_pair<'a>(
    a: &'a AccessRecord,
    b: &'a AccessRecord,
) -> (&'a AccessRecord, &'a AccessRecord) {
    if (a.initiator, a.op) <= (b.initiator, b.op) {
        (a, b)
    } else {
        (b, a)
    }
}

impl std::fmt::Debug for Checker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Checker")
            .field("ranks", &self.ranks)
            .field("race", &self.cfg.race)
            .field("deadlock", &self.cfg.deadlock)
            .field("findings", &self.findings.lock().len())
            .finish()
    }
}
