//! rupcxx-check: an online happens-before race and deadlock checker for
//! rupcxx PGAS programs.
//!
//! The checker maintains one vector clock per rank, advanced by every
//! synchronization edge the runtime executes — barriers, fences, event
//! signal/wait, lock hand-offs, finish scopes, and (crucially) every
//! active-message delivery, which is the substrate all the collectives
//! and completion replies are built on. Every global-memory access is
//! recorded against the target segment's shadow memory as
//! `(initiator, byte range, read|write|atomic, clock)`; two overlapping,
//! conflicting, mutually-unordered accesses are reported as a data race
//! with both operations' context. A wait-for-graph pass run from the idle
//! loop flags lock cycles, locks held across `barrier()`, waits on events
//! that can never be signaled, and mismatched barrier arrival counts.
//!
//! Enable with `RUPCXX_CHECK=race|deadlock|all[,<report-path>]` (or
//! programmatically via [`CheckConfig`]). When disabled the runtime pays
//! one untaken branch per hook and nothing else.

mod checker;
mod clock;
mod findings;
mod shadow;

pub use checker::{Checker, LockKey, WaitInfo};
pub use clock::{Stamp, VClock};
pub use findings::{render_report, verdict, Finding, FindingKind, FindingSink};
pub use shadow::{AccessKind, AccessRecord, Shadow, SHADOW_PRUNE_THRESHOLD};

use rupcxx_util::sync::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Checker configuration, normally parsed from `RUPCXX_CHECK`.
#[derive(Clone, Default)]
pub struct CheckConfig {
    /// Run the happens-before data-race pass.
    pub race: bool,
    /// Run the wait-for-graph deadlock/misuse pass.
    pub deadlock: bool,
    /// Optional path the end-of-job report is written to.
    pub report_path: Option<String>,
    /// Optional live sink findings are pushed to as they are recorded
    /// (used by tests to observe findings across an aborting job).
    pub sink: Option<FindingSink>,
}

impl std::fmt::Debug for CheckConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckConfig")
            .field("race", &self.race)
            .field("deadlock", &self.deadlock)
            .field("report_path", &self.report_path)
            .field("sink", &self.sink.as_ref().map(|_| "FindingSink"))
            .finish()
    }
}

impl CheckConfig {
    /// Both passes on.
    pub fn all() -> Self {
        CheckConfig {
            race: true,
            deadlock: true,
            ..CheckConfig::default()
        }
    }

    /// Race pass only.
    pub fn race() -> Self {
        CheckConfig {
            race: true,
            ..CheckConfig::default()
        }
    }

    /// Deadlock pass only.
    pub fn deadlock() -> Self {
        CheckConfig {
            deadlock: true,
            ..CheckConfig::default()
        }
    }

    /// Attach a report path.
    pub fn with_report_path(mut self, path: impl Into<String>) -> Self {
        self.report_path = Some(path.into());
        self
    }

    /// Attach a live finding sink.
    pub fn with_sink(mut self, sink: FindingSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Parse a `RUPCXX_CHECK` value. `Ok(None)` means explicitly off;
    /// `Err` carries a description of what was wrong.
    pub fn parse(raw: &str) -> Result<Option<Self>, String> {
        let raw = raw.trim();
        let (mode, path) = match raw.split_once(',') {
            Some((m, p)) => (m.trim(), Some(p.trim())),
            None => (raw, None),
        };
        if let Some(p) = path {
            if p.is_empty() {
                return Err("empty report path after ','".to_string());
            }
        }
        let mut cfg = match mode {
            "" | "off" | "0" | "none" => {
                if path.is_some() {
                    return Err("report path given but checking is off".to_string());
                }
                return Ok(None);
            }
            "race" => CheckConfig::race(),
            "deadlock" => CheckConfig::deadlock(),
            "all" | "on" | "1" => CheckConfig::all(),
            other => return Err(format!("unknown mode {other:?}")),
        };
        cfg.report_path = path.map(str::to_string);
        Ok(Some(cfg))
    }

    /// Read `RUPCXX_CHECK` from the environment; malformed values abort
    /// with a clear message.
    pub fn from_env() -> Option<Self> {
        rupcxx_util::env::parse_env(
            "RUPCXX_CHECK",
            "race|deadlock|all[,<report-path>]",
            CheckConfig::parse,
        )
    }
}

// ---- thread-local current checker ---------------------------------------
//
// `Event::signal` has no ctx parameter, so it cannot reach the fabric's
// checker directly. The SPMD launcher instead pins `(checker, rank)` in
// thread-local storage for every rank and progress thread of a checked
// job. `ANY_ACTIVE` is the global fast gate: until some checked job has
// run in this process, the hook is one relaxed load and an untaken branch.

static ANY_ACTIVE: AtomicBool = AtomicBool::new(false);

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Checker>, usize)>> = const { RefCell::new(None) };
}

/// Pin `checker` as the current thread's checker, acting as `rank`.
/// Called by the SPMD launcher at rank/progress thread startup.
pub fn set_current(checker: Arc<Checker>, rank: usize) {
    ANY_ACTIVE.store(true, Ordering::Release);
    CURRENT.with(|c| *c.borrow_mut() = Some((checker, rank)));
}

/// Run `f` with the current thread's checker, if one is pinned.
#[inline]
pub fn with_current(f: impl FnOnce(&Arc<Checker>, usize)) {
    if !ANY_ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    CURRENT.with(|c| {
        if let Some((checker, rank)) = c.borrow().as_ref() {
            f(checker, *rank);
        }
    });
}

/// Shared registry keyed by job so all ranks of one [`CheckConfig`] use
/// one [`Checker`]. The fabric owns the instance; this helper just wraps
/// construction so `crates/net` does not need the config details.
pub fn build(ranks: usize, cfg: &CheckConfig) -> Arc<Checker> {
    Arc::new(Checker::new(ranks, cfg.clone()))
}

/// Convenience: a fresh empty sink for tests.
pub fn new_sink() -> FindingSink {
    Arc::new(Mutex::new(Vec::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_modes() {
        assert!(CheckConfig::parse("off").unwrap().is_none());
        assert!(CheckConfig::parse("").unwrap().is_none());
        let r = CheckConfig::parse("race").unwrap().unwrap();
        assert!(r.race && !r.deadlock);
        let d = CheckConfig::parse("deadlock").unwrap().unwrap();
        assert!(!d.race && d.deadlock);
        let a = CheckConfig::parse("all,/tmp/report.txt").unwrap().unwrap();
        assert!(a.race && a.deadlock);
        assert_eq!(a.report_path.as_deref(), Some("/tmp/report.txt"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(CheckConfig::parse("racy").is_err());
        assert!(CheckConfig::parse("all,").is_err());
        assert!(CheckConfig::parse("off,/tmp/x").is_err());
    }
}
