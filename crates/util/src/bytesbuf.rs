//! A cheaply clonable, immutable byte buffer (the subset of the `bytes`
//! crate's `Bytes` the workspace uses, kept local so offline builds work),
//! plus the [`SlabPool`] arena that backs zero-copy frame packing.
//!
//! Active-message payloads are packed once at the sender and read once at
//! the receiver; cloning shares the allocation instead of copying. Two
//! additions serve the aggregation hot path:
//!
//! - [`Bytes::pooled`] wraps a `Vec<u8>` taken from a [`SlabPool`] without
//!   copying or shrinking it; when the last clone drops, the slab's
//!   capacity returns to the pool for the next batch. (Plain
//!   `Bytes::from(Vec)` shrinks via `into_boxed_slice`, which *reallocates
//!   and copies* whenever capacity exceeds length — fatal for buffers
//!   deliberately reserved ahead of use.)
//! - [`Bytes::slice_ref`] re-windows a shared buffer around one of its own
//!   subslices, so a receiver can hand out per-frame views of a batch
//!   without per-frame copies.

use crate::sync::Mutex;
use std::ops::Deref;
use std::sync::{Arc, Weak};

/// A recycling arena of byte slabs for batch packing. `take` hands out a
/// cleared `Vec<u8>` with at least the requested capacity (reusing a
/// previously returned slab when one is available); slabs wrapped with
/// [`Bytes::pooled`] come back automatically when the last reader drops.
#[derive(Debug)]
pub struct SlabPool {
    slabs: Mutex<Vec<Vec<u8>>>,
    /// Retain at most this many idle slabs (excess capacity is freed).
    max_idle: usize,
}

impl SlabPool {
    /// A pool retaining up to `max_idle` idle slabs.
    #[must_use]
    pub fn new(max_idle: usize) -> Arc<Self> {
        Arc::new(SlabPool {
            slabs: Mutex::new(Vec::new()),
            max_idle,
        })
    }

    /// Take a cleared slab with `capacity` bytes reserved. Steady state is
    /// allocation-free: the slab comes from a previous batch and already
    /// owns the capacity.
    #[must_use]
    pub fn take(&self, capacity: usize) -> Vec<u8> {
        let recycled = self.slabs.lock().pop();
        match recycled {
            Some(mut v) => {
                v.clear();
                v.reserve(capacity);
                v
            }
            None => Vec::with_capacity(capacity),
        }
    }

    /// Return a slab to the pool (dropped if the pool is full).
    pub fn put(&self, mut slab: Vec<u8>) {
        slab.clear();
        let mut slabs = self.slabs.lock();
        if slabs.len() < self.max_idle {
            slabs.push(slab);
        }
    }

    /// Number of idle slabs currently held.
    #[must_use]
    pub fn idle(&self) -> usize {
        self.slabs.lock().len()
    }
}

/// A pooled buffer: the bytes plus a weak link back to the pool they
/// recycle into. Held behind `Arc` by [`Bytes::pooled`]; the `Drop` of the
/// last reference returns the slab's capacity to the pool.
#[derive(Debug)]
pub struct PooledBuf {
    data: Vec<u8>,
    pool: Weak<SlabPool>,
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.upgrade() {
            pool.put(std::mem::take(&mut self.data));
        }
    }
}

#[derive(Clone, Debug)]
enum Repr {
    /// Borrowed from static storage (zero allocation).
    Static(&'static [u8]),
    /// Shared heap allocation.
    Shared(Arc<[u8]>),
    /// Shared slab on loan from a [`SlabPool`].
    Pooled(Arc<PooledBuf>),
}

/// An immutable, reference-counted byte buffer with a cheap subslice
/// window (`off..off+len` into the backing storage).
#[derive(Clone, Debug)]
pub struct Bytes {
    repr: Repr,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer.
    #[must_use]
    pub const fn new() -> Self {
        Bytes {
            repr: Repr::Static(&[]),
            off: 0,
            len: 0,
        }
    }

    /// Wrap a static slice without allocating.
    #[must_use]
    pub const fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            repr: Repr::Static(data),
            off: 0,
            len: data.len(),
        }
    }

    /// Copy `data` into a new shared buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            len: data.len(),
            repr: Repr::Shared(Arc::from(data)),
            off: 0,
        }
    }

    /// Wrap a slab taken from `pool` without copying or reallocating; the
    /// slab (with its reserved capacity) returns to the pool when the last
    /// clone of the returned buffer drops.
    #[must_use]
    pub fn pooled(data: Vec<u8>, pool: &Arc<SlabPool>) -> Self {
        Bytes {
            len: data.len(),
            repr: Repr::Pooled(Arc::new(PooledBuf {
                data,
                pool: Arc::downgrade(pool),
            })),
            off: 0,
        }
    }

    /// Length in bytes.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the buffer is empty.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// View as a slice.
    #[inline]
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        let backing: &[u8] = match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
            Repr::Pooled(p) => &p.data,
        };
        &backing[self.off..self.off + self.len]
    }

    /// Re-window this buffer around `sub`, which must be a subslice of
    /// `self.as_slice()` (checked by pointer range). The result shares the
    /// backing storage — no copy, no allocation beyond the handle — which
    /// is how batch receivers hand out per-frame argument views.
    #[must_use]
    pub fn slice_ref(&self, sub: &[u8]) -> Self {
        let base = self.as_slice().as_ptr() as usize;
        let sp = sub.as_ptr() as usize;
        assert!(
            sp >= base && sp + sub.len() <= base + self.len,
            "slice_ref argument is not a subslice of this buffer"
        );
        Bytes {
            repr: self.repr.clone(),
            off: self.off + (sp - base),
            len: sub.len(),
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            len: v.len(),
            repr: Repr::Shared(Arc::from(v.into_boxed_slice())),
            off: 0,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_len() {
        assert!(Bytes::new().is_empty());
        let s = Bytes::from_static(&[1, 2, 3]);
        assert_eq!(s.len(), 3);
        let c = Bytes::copy_from_slice(&[4, 5]);
        assert_eq!(&c[..], &[4, 5]);
        let v = Bytes::from(vec![6]);
        assert_eq!(v.as_ref(), &[6]);
    }

    #[test]
    fn clone_shares_and_compares() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn slice_ref_shares_backing() {
        let a = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mid = a.slice_ref(&a.as_slice()[2..5]);
        assert_eq!(&mid[..], &[2, 3, 4]);
        // Window of a window.
        let inner = mid.slice_ref(&mid.as_slice()[1..2]);
        assert_eq!(&inner[..], &[3]);
    }

    #[test]
    #[should_panic(expected = "not a subslice")]
    fn slice_ref_rejects_foreign_slices() {
        let a = Bytes::from(vec![1, 2, 3]);
        let other = [9u8; 3];
        let _ = a.slice_ref(&other);
    }

    #[test]
    fn pool_recycles_capacity_through_bytes_drop() {
        let pool = SlabPool::new(4);
        let mut slab = pool.take(1024);
        assert!(slab.capacity() >= 1024);
        slab.extend_from_slice(&[7u8; 100]);
        let cap = slab.capacity();
        let b = Bytes::pooled(slab, &pool);
        assert_eq!(b.len(), 100);
        assert_eq!(pool.idle(), 0);
        let c = b.clone();
        drop(b);
        assert_eq!(pool.idle(), 0, "clone still alive");
        drop(c);
        assert_eq!(pool.idle(), 1, "last drop returns the slab");
        // Next take reuses the same capacity without allocating.
        let again = pool.take(64);
        assert!(again.capacity() >= cap.min(1024));
        assert!(again.is_empty());
    }

    #[test]
    fn pool_caps_idle_slabs() {
        let pool = SlabPool::new(2);
        for _ in 0..5 {
            pool.put(Vec::with_capacity(16));
        }
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn pooled_bytes_survive_pool_drop() {
        let pool = SlabPool::new(2);
        let mut slab = pool.take(8);
        slab.extend_from_slice(&[1, 2, 3]);
        let b = Bytes::pooled(slab, &pool);
        drop(pool);
        assert_eq!(&b[..], &[1, 2, 3]); // weak upgrade fails on drop; bytes stay valid
    }
}
