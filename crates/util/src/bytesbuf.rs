//! A cheaply clonable, immutable byte buffer (the subset of the `bytes`
//! crate's `Bytes` the workspace uses, kept local so offline builds work).
//!
//! Active-message payloads are packed once at the sender and read once at
//! the receiver; cloning shares the allocation instead of copying.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone)]
pub enum Bytes {
    /// Borrowed from static storage (zero allocation).
    Static(&'static [u8]),
    /// Shared heap allocation.
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::Static(&[])
    }

    /// Wrap a static slice without allocating.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::Static(data)
    }

    /// Copy `data` into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::Shared(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// View as a slice.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            Bytes::Static(s) => s,
            Bytes::Shared(a) => a,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::Shared(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::Static(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_len() {
        assert!(Bytes::new().is_empty());
        let s = Bytes::from_static(&[1, 2, 3]);
        assert_eq!(s.len(), 3);
        let c = Bytes::copy_from_slice(&[4, 5]);
        assert_eq!(&c[..], &[4, 5]);
        let v = Bytes::from(vec![6]);
        assert_eq!(v.as_ref(), &[6]);
    }

    #[test]
    fn clone_shares_and_compares() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }
}
