//! A miniature property-testing layer with a proptest-compatible surface.
//!
//! The workspace's property tests were written against `proptest`; this
//! module re-implements the small slice of its API they use (strategies
//! over ranges/`any`/collections/tuples, `prop_map`, `Just`, `prop_oneof!`
//! and the `proptest!` macro) on top of [`crate::rng::SplitMix64`], so the
//! tests run identically in offline builds. Cases are deterministic: the
//! generator is seeded from the test function's name.

use crate::rng::SplitMix64;
use std::ops::Range;

/// Number of cases run per property by default.
pub const DEFAULT_CASES: u32 = 64;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

/// A value generator. The associated `Value` mirrors proptest's trait.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut SplitMix64) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut SplitMix64) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SplitMix64) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SplitMix64) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                let off = (rng.next_u64() as i128).rem_euclid(span);
                (self.start as i128 + off) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! any_impl {
    ($($t:ty => $e:expr),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SplitMix64) -> $t {
                let f: fn(&mut SplitMix64) -> $t = $e;
                f(rng)
            }
        }
    )*};
}

/// Types with a full-domain generator, used by [`any`].
pub trait Arbitrary {
    /// Generate an arbitrary value of the type.
    fn arbitrary(rng: &mut SplitMix64) -> Self;
}

any_impl!(
    bool => |r| r.next_u64() & 1 == 1,
    u8 => |r| r.next_u64() as u8,
    u16 => |r| r.next_u64() as u16,
    u32 => |r| r.next_u64() as u32,
    u64 => |r| r.next_u64(),
    usize => |r| r.next_u64() as usize,
    i8 => |r| r.next_u64() as i8,
    i16 => |r| r.next_u64() as i16,
    i32 => |r| r.next_u64() as i32,
    i64 => |r| r.next_u64() as i64,
    f64 => |r| f64::from_bits(r.next_u64() & !(0x7ffu64 << 52) | ((r.next_u64() % 2047) << 52))
);

/// Strategy over the whole domain of `T` (proptest's `any::<T>()`).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut SplitMix64) -> T {
        T::arbitrary(rng)
    }
}

/// Generate any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $i:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut SplitMix64) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

/// A boxed value generator, as stored by [`OneOf`].
pub type BoxedGen<T> = Box<dyn Fn(&mut SplitMix64) -> T>;

/// Uniform choice among boxed generators (backs [`crate::prop_oneof!`]).
pub struct OneOf<T> {
    options: Vec<BoxedGen<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut SplitMix64) -> T {
        let i = rng.next_below(self.options.len() as u64) as usize;
        (self.options[i])(rng)
    }
}

/// Build a [`OneOf`] from generator closures.
pub fn one_of<T>(options: Vec<BoxedGen<T>>) -> OneOf<T> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
    OneOf { options }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Generate vectors of `elem` values with length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SplitMix64) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Fixed-size array strategies (`proptest::array`).
pub mod array {
    use super::*;

    /// Strategy for `[T; 3]` from one element strategy.
    pub struct Uniform3<S>(S);

    /// Generate `[T; 3]` arrays of `elem` values.
    pub fn uniform3<S: Strategy>(elem: S) -> Uniform3<S> {
        Uniform3(elem)
    }

    impl<S: Strategy> Strategy for Uniform3<S> {
        type Value = [S::Value; 3];
        fn generate(&self, rng: &mut SplitMix64) -> [S::Value; 3] {
            [
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
            ]
        }
    }
}

/// The names a `use ...::prelude::*` property test expects in scope.
pub mod prelude {
    pub use super::{any, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Shrink a failing `Vec` input to a locally minimal one, ddmin-style.
///
/// `fails` must return `true` for the original `input` (the property is
/// violated). The shrinker repeatedly tries removing chunks — halves
/// first, then smaller slices, down to single elements — keeping any
/// candidate that still fails, until no single-element removal preserves
/// the failure. The result is *1-minimal*: every element is necessary for
/// the failure, which is what makes a shrunk counterexample readable.
///
/// Deterministic (no randomness), so a shrunk failing schedule reported
/// by a property test is reproducible as-is.
pub fn shrink_vec<T: Clone>(input: Vec<T>, fails: impl Fn(&[T]) -> bool) -> Vec<T> {
    assert!(
        fails(&input),
        "shrink_vec: the original input must fail the property"
    );
    let mut cur = input;
    let mut chunk = cur.len().div_ceil(2).max(1);
    loop {
        let mut progressed = false;
        let mut start = 0;
        while start < cur.len() {
            let end = (start + chunk).min(cur.len());
            let mut candidate = Vec::with_capacity(cur.len() - (end - start));
            candidate.extend_from_slice(&cur[..start]);
            candidate.extend_from_slice(&cur[end..]);
            if fails(&candidate) {
                cur = candidate;
                progressed = true;
                // Re-test the same start: the slice that moved into this
                // window may be removable too.
                continue;
            }
            start += chunk;
        }
        if chunk == 1 {
            if !progressed {
                return cur;
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
    }
}

/// Deterministic per-test seed: FNV-1a over the test function's name.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Assert inside a property (panics with the case's message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        $crate::prop::one_of(vec![
            $({
                let s = $strat;
                Box::new(move |r: &mut $crate::rng::SplitMix64|
                    $crate::prop::Strategy::generate(&s, r))
                    as Box<dyn Fn(&mut $crate::rng::SplitMix64) -> _>
            }),+
        ])
    }};
}

/// Define property tests: each function runs its body over generated
/// inputs. Mirrors proptest's macro for the forms used in this repo.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (
        $(#[$meta:meta])* fn $name:ident $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($crate::prop::ProptestConfig::default())
            $(#[$meta])* fn $name $($rest)*);
    };
    (@funcs ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::prop::ProptestConfig = $cfg;
            let mut rng = $crate::rng::SplitMix64::new(
                $crate::prop::seed_from_name(stringify!($name)));
            for case in 0..cfg.cases {
                let _ = case;
                $(let $arg = $crate::prop::Strategy::generate(&$strat, &mut rng);)*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SplitMix64 {
        SplitMix64::new(42)
    }

    #[test]
    fn range_strategy_stays_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (-10i64..10).generate(&mut r);
            assert!((-10..10).contains(&v));
            let u = (1usize..4).generate(&mut r);
            assert!((1..4).contains(&u));
        }
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut r = rng();
        let s = collection::vec(any::<u8>(), 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn tuple_map_and_just() {
        let mut r = rng();
        let s = (0i64..5, 0i64..5).prop_map(|(a, b)| a + b);
        for _ in 0..100 {
            assert!((0..9).contains(&s.generate(&mut r)));
        }
        assert_eq!(Just(7).generate(&mut r), 7);
    }

    #[test]
    fn oneof_picks_each_arm() {
        let mut r = rng();
        let s = crate::prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn uniform3_generates_arrays() {
        let mut r = rng();
        let a = array::uniform3(-3i64..3).generate(&mut r);
        assert!(a.iter().all(|v| (-3..3).contains(v)));
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(seed_from_name("a"), seed_from_name("b"));
    }

    #[test]
    fn shrink_vec_finds_minimal_pair() {
        // Property fails iff the input contains both a 3 and a 7;
        // the minimal failing input is exactly {3, 7}.
        let fails = |v: &[u32]| v.contains(&3) && v.contains(&7);
        let noisy = vec![9, 1, 3, 4, 4, 2, 7, 8, 0, 3, 5, 6];
        let mut shrunk = shrink_vec(noisy, fails);
        shrunk.sort_unstable();
        assert_eq!(shrunk, vec![3, 7]);
    }

    #[test]
    fn shrink_vec_keeps_single_culprit() {
        let fails = |v: &[i64]| v.iter().any(|&x| x < 0);
        let shrunk = shrink_vec(vec![5, 2, -9, 8, 1, 0, 4], fails);
        assert_eq!(shrunk, vec![-9]);
    }

    #[test]
    fn shrink_vec_can_reach_empty() {
        // A property that always fails shrinks all the way to [].
        let shrunk = shrink_vec(vec![1, 2, 3, 4], |_| true);
        assert!(shrunk.is_empty());
    }

    #[test]
    #[should_panic(expected = "original input must fail")]
    fn shrink_vec_rejects_passing_input() {
        let _ = shrink_vec(vec![1], |v: &[i32]| v.contains(&99));
    }

    // The macro itself, exercised end to end.
    crate::proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_cases(x in 0u64..100, v in collection::vec(any::<bool>(), 0..4)) {
            crate::prop_assert!(x < 100);
            crate::prop_assert!(v.len() < 4);
        }
    }
}
