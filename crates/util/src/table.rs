//! Plain-text table rendering for the reproduction harnesses.
//!
//! The `repro-*` binaries print the same rows/series the paper reports;
//! this module renders them as aligned ASCII tables and CSV.

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Panics if the row width differs from the header width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned ASCII table.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..ncols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                // Right-align numeric-looking cells, left-align the rest.
                let numeric = cell
                    .chars()
                    .all(|ch| ch.is_ascii_digit() || ".-+eE%x".contains(ch));
                if numeric && !cell.is_empty() {
                    line.push_str(&format!("{:>width$}", cell, width = widths[c]));
                } else {
                    line.push_str(&format!("{:<width$}", cell, width = widths[c]));
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (no quoting — harness cells never contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a f64 with engineering-friendly precision (3 significant-ish
/// decimals, switching to scientific for very large/small magnitudes).
pub fn fnum(x: f64) -> String {
    let a = x.abs();
    if x == 0.0 {
        "0".to_string()
    } else if !(1e-3..1e7).contains(&a) {
        format!("{x:.3e}")
    } else if a >= 100.0 {
        format!("{x:.1}")
    } else if a >= 1.0 {
        format!("{x:.3}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(["cores", "GUPS"]);
        t.row(["16", "0.0017"]).row(["8192", "0.69"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("cores"));
        assert!(lines[2].contains("16"));
        assert!(lines[3].contains("8192"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(1234.5), "1234.5");
        assert_eq!(fnum(2.5), "2.500");
        assert_eq!(fnum(0.0017), "0.0017");
        assert!(fnum(1e9).contains('e'));
        assert!(fnum(1e-6).contains('e'));
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(["x"]);
        assert!(t.is_empty());
        t.row(["1"]);
        assert_eq!(t.len(), 1);
    }
}
