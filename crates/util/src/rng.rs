//! Deterministic random-number generators used by the paper's benchmarks.
//!
//! Three generators are provided:
//!
//! * [`Mt19937_64`] — the 64-bit Mersenne Twister. The paper's sample sort
//!   generates its keys with this generator (§V-C), so we implement the
//!   reference algorithm (Nishimura/Matsumoto 2004) from scratch.
//! * [`GupsRng`] — the HPCC Random Access polynomial LCG
//!   (`ran = (ran << 1) ^ (ran < 0 ? POLY : 0)`), used by GUPS (§V-A).
//! * [`SplitMix64`] — a tiny, fast generator used for seeding and for
//!   workloads where statistical quality does not matter.

/// The HPCC Random Access polynomial.
pub const POLY: u64 = 0x0000_0000_0000_0007;

/// Period of the HPCC random-access sequence (2^64 - 1 in the reference code,
/// represented here by the full u64 cycle of the LFSR).
const GUPS_PERIOD: i64 = 1_317_624_576_693_539_401;

/// The HPCC Random Access generator: a 64-bit Galois LFSR over the
/// polynomial `x^63 + x^2 + x + 1`.
///
/// This is exactly the update used in the paper's GUPS kernel:
/// ```c
/// ran = (ran << 1) ^ ((int64_t)ran < 0 ? POLY : 0);
/// ```
#[derive(Clone, Debug)]
pub struct GupsRng {
    state: u64,
}

impl GupsRng {
    /// Create a generator positioned at the `n`-th number of the HPCC random
    /// sequence, using the standard O(log n) jump-ahead based on repeated
    /// squaring of the companion matrix (here: shift table of the LFSR).
    pub fn starting_at(n: i64) -> Self {
        let mut n = n % GUPS_PERIOD;
        if n < 0 {
            n += GUPS_PERIOD;
        }
        if n == 0 {
            return Self { state: 1 };
        }
        // m2 caches the LFSR advanced by powers of two.
        let mut m2 = [0u64; 64];
        let mut temp: u64 = 1;
        for slot in m2.iter_mut() {
            *slot = temp;
            temp = Self::step(Self::step(temp));
        }
        let mut i = 62;
        while i >= 0 && ((n >> i) & 1) == 0 {
            i -= 1;
        }
        let mut ran: u64 = 2;
        while i > 0 {
            temp = 0;
            for (j, &m) in m2.iter().enumerate() {
                if (ran >> j) & 1 == 1 {
                    temp ^= m;
                }
            }
            ran = temp;
            i -= 1;
            if (n >> i) & 1 == 1 {
                ran = Self::step(ran);
            }
        }
        Self { state: ran }
    }

    /// Create a generator starting at the beginning of the sequence.
    pub fn new() -> Self {
        Self { state: 1 }
    }

    #[inline]
    fn step(x: u64) -> u64 {
        (x << 1) ^ (if (x as i64) < 0 { POLY } else { 0 })
    }

    /// Advance and return the next value in the sequence.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = Self::step(self.state);
        self.state
    }
}

impl Default for GupsRng {
    fn default() -> Self {
        Self::new()
    }
}

const NN: usize = 312;
const MM: usize = 156;
const MATRIX_A: u64 = 0xB502_6F5A_A966_19E9;
const UM: u64 = 0xFFFF_FFFF_8000_0000; // most significant 33 bits
const LM: u64 = 0x7FFF_FFFF; // least significant 31 bits

/// The 64-bit Mersenne Twister (MT19937-64), implemented from the reference
/// code of Nishimura and Matsumoto.
///
/// The paper's sample sort benchmark generates its 64-bit keys with this
/// generator, so reproducing it exactly lets our workload match the paper's.
#[derive(Clone)]
pub struct Mt19937_64 {
    mt: [u64; NN],
    mti: usize,
}

impl Mt19937_64 {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut mt = [0u64; NN];
        mt[0] = seed;
        for i in 1..NN {
            mt[i] = 6_364_136_223_846_793_005u64
                .wrapping_mul(mt[i - 1] ^ (mt[i - 1] >> 62))
                .wrapping_add(i as u64);
        }
        Self { mt, mti: NN }
    }

    /// Generate the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        if self.mti >= NN {
            for i in 0..NN - MM {
                let x = (self.mt[i] & UM) | (self.mt[i + 1] & LM);
                self.mt[i] = self.mt[i + MM] ^ (x >> 1) ^ if x & 1 == 1 { MATRIX_A } else { 0 };
            }
            for i in NN - MM..NN - 1 {
                let x = (self.mt[i] & UM) | (self.mt[i + 1] & LM);
                self.mt[i] =
                    self.mt[i + MM - NN] ^ (x >> 1) ^ if x & 1 == 1 { MATRIX_A } else { 0 };
            }
            let x = (self.mt[NN - 1] & UM) | (self.mt[0] & LM);
            self.mt[NN - 1] = self.mt[MM - 1] ^ (x >> 1) ^ if x & 1 == 1 { MATRIX_A } else { 0 };
            self.mti = 0;
        }
        let mut x = self.mt[self.mti];
        self.mti += 1;
        x ^= (x >> 29) & 0x5555_5555_5555_5555;
        x ^= (x << 17) & 0x71D6_7FFF_EDA6_0000;
        x ^= (x << 37) & 0xFFF7_EEE0_0000_0000;
        x ^= x >> 43;
        x
    }

    /// Generate a value in `[0, bound)` by rejection-free modulo (bias is
    /// negligible for the bounds the benchmarks use, and matches the paper's
    /// `genrand_uint64() % key_count` usage).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

impl std::fmt::Debug for Mt19937_64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mt19937_64")
            .field("mti", &self.mti)
            .finish()
    }
}

/// SplitMix64: a tiny, fast, well-distributed generator. Used for seeding
/// and for auxiliary randomness (e.g. ray-tracing jitter).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, bound)`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        // Lemire's multiply-shift bounded generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mt64_matches_reference_vector() {
        // Reference values from the mt19937-64 reference implementation
        // seeded via init_genrand64 is array-based in the original; the
        // scalar seeding used here matches the widely used variant
        // (init_genrand64(seed)). Check internal consistency instead:
        // stability of the first outputs across runs.
        let mut a = Mt19937_64::new(5489);
        let mut b = Mt19937_64::new(5489);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Mt19937_64::new(1234);
        let first: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        // Distinct seeds must give a different stream.
        let mut d = Mt19937_64::new(1235);
        let other: Vec<u64> = (0..4).map(|_| d.next_u64()).collect();
        assert_ne!(first, other);
    }

    #[test]
    fn mt64_known_answer_seed5489() {
        // Known-answer test: first three outputs of MT19937-64 with the
        // scalar seed 5489 (verified against the reference C code).
        let mut g = Mt19937_64::new(5489);
        let v: Vec<u64> = (0..3).map(|_| g.next_u64()).collect();
        assert_eq!(v[0], 14514284786278117030);
        assert_eq!(v[1], 4620546740167642908);
        assert_eq!(v[2], 13109570281517897720);
    }

    #[test]
    fn gups_starting_at_zero_is_sequence_start() {
        let mut a = GupsRng::starting_at(0);
        let mut b = GupsRng::new();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gups_jump_ahead_matches_stepping() {
        for n in [1i64, 2, 3, 17, 100, 1023] {
            let mut stepped = GupsRng::new();
            for _ in 0..n {
                stepped.next_u64();
            }
            let mut jumped = GupsRng::starting_at(n);
            for _ in 0..50 {
                assert_eq!(jumped.next_u64(), stepped.next_u64(), "n={n}");
            }
        }
    }

    #[test]
    fn gups_sequence_is_nonzero_and_varied() {
        let mut g = GupsRng::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let v = g.next_u64();
            assert_ne!(v, 0);
            seen.insert(v);
        }
        assert!(seen.len() > 9_990);
    }

    #[test]
    fn splitmix_f64_in_unit_interval() {
        let mut g = SplitMix64::new(42);
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn splitmix_bounded_below_bound() {
        let mut g = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..1000 {
                assert!(g.next_below(bound) < bound);
            }
        }
    }
}
