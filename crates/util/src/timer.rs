//! Wall-clock timing helpers.

use std::time::{Duration, Instant};

/// A simple stopwatch.
#[derive(Clone, Copy, Debug)]
pub struct Timer {
    start: Instant,
}

impl Timer {
    /// Start a new timer.
    pub fn start() -> Self {
        Timer {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed seconds since start.
    pub fn seconds(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Restart the timer and return the lap time in seconds.
    pub fn lap(&mut self) -> f64 {
        let now = Instant::now();
        let dt = now.duration_since(self.start).as_secs_f64();
        self.start = now;
        dt
    }
}

/// Time a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = Timer::start();
    let out = f();
    (out, t.seconds())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_is_monotone() {
        let t = Timer::start();
        let a = t.seconds();
        let b = t.seconds();
        assert!(b >= a);
        assert!(a >= 0.0);
    }

    #[test]
    fn timed_returns_value() {
        let (v, secs) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn lap_resets() {
        let mut t = Timer::start();
        std::thread::sleep(Duration::from_millis(2));
        let first = t.lap();
        assert!(first > 0.0);
        let second = t.seconds();
        assert!(second < first + 0.5);
    }
}
