//! Utilities shared across the `rupcxx` workspace.
//!
//! This crate deliberately has no dependencies on the rest of the workspace:
//! it provides the deterministic random-number generators used by the paper's
//! benchmarks (64-bit Mersenne Twister for sample sort, the HPCC polynomial
//! LCG for GUPS), simple statistics helpers, plain-text table rendering for
//! the reproduction harnesses, and a small intra-rank thread pool standing in
//! for the paper's "OpenMP within a rank" usage.

pub mod bytesbuf;
pub mod env;
pub mod prop;
pub mod rng;
pub mod stats;
pub mod sync;
pub mod table;
pub mod threadpool;
pub mod timer;

pub use bytesbuf::{Bytes, SlabPool};
pub use rng::{GupsRng, Mt19937_64, SplitMix64};
pub use stats::Summary;
pub use table::Table;
pub use threadpool::ThreadPool;
pub use timer::Timer;
