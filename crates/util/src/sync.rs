//! Thin synchronization wrappers over `std::sync`.
//!
//! The workspace builds in fully offline environments, so instead of
//! `parking_lot` / `crossbeam` we keep a small local layer with the same
//! ergonomics: `lock()` returns the guard directly (a poisoned lock —
//! possible only after a rank panic, at which point the job is already
//! failing — just hands out the inner state), and [`SegQueue`] provides
//! the unbounded MPMC queue the fabric uses for AM inboxes.

use std::collections::VecDeque;
use std::sync::Mutex as StdMutex;
use std::sync::RwLock as StdRwLock;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock()` returns the guard directly (parking_lot-style).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the calling thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with guard-returning `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value` in a reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// An unbounded MPMC FIFO queue (the AM-inbox shape of
/// `crossbeam::queue::SegQueue`). A mutexed `VecDeque` is plenty for the
/// fabric's contention profile: at most one producer rank pushing while
/// the owner rank's progress engine pops.
#[derive(Debug)]
pub struct SegQueue<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> Default for SegQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SegQueue<T> {
    /// An empty queue.
    pub const fn new() -> Self {
        SegQueue {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Enqueue at the tail.
    pub fn push(&self, value: T) {
        self.inner.lock().push_back(value);
    }

    /// Dequeue from the head.
    pub fn pop(&self) -> Option<T> {
        self.inner.lock().pop_front()
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Take every queued item in one critical section, in FIFO order.
    ///
    /// Unlike a `pop()` loop interleaved with `len()` calls, the snapshot
    /// is consistent: items pushed concurrently are either all-in or
    /// all-after, never observed half-drained. Tests asserting on inbox
    /// contents use this to avoid racy observations.
    ///
    /// The output is reserved to the exact queue length inside the
    /// critical section, so draining a large inbox is one allocation and
    /// one pass — no grow-and-move reallocation, and (unlike a
    /// `VecDeque → Vec` conversion) no in-place rotation of a wrapped
    /// ring buffer.
    pub fn drain(&self) -> Vec<T> {
        let mut q = self.inner.lock();
        let mut out = Vec::with_capacity(q.len());
        out.extend(q.drain(..));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_lock_and_try_lock() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(m.try_lock().map(|g| *g), Some(2));
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1, *r2);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn segqueue_fifo_and_len() {
        let q = SegQueue::new();
        assert!(q.is_empty());
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn segqueue_drain_takes_all_fifo() {
        let q = SegQueue::new();
        for i in 0..5 {
            q.push(i);
        }
        assert_eq!(q.drain(), vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
        assert_eq!(q.drain(), Vec::<i32>::new());
        q.push(9);
        assert_eq!(q.drain(), vec![9]);
    }

    #[test]
    fn segqueue_concurrent_producers() {
        let q = Arc::new(SegQueue::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        q.push(t * 100 + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut got = vec![];
        while let Some(v) = q.pop() {
            got.push(v);
        }
        got.sort_unstable();
        assert_eq!(got, (0..400).collect::<Vec<_>>());
    }
}
