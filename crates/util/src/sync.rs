//! Thin synchronization wrappers over `std::sync`.
//!
//! The workspace builds in fully offline environments, so instead of
//! `parking_lot` / `crossbeam` we keep a small local layer with the same
//! ergonomics: `lock()` returns the guard directly (a poisoned lock —
//! possible only after a rank panic, at which point the job is already
//! failing — just hands out the inner state), and [`SegQueue`] provides
//! the unbounded MPMC queue the fabric uses for AM inboxes.

use std::collections::VecDeque;
use std::sync::Mutex as StdMutex;
use std::sync::RwLock as StdRwLock;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock()` returns the guard directly (parking_lot-style).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the calling thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with guard-returning `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value` in a reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// A test-and-test-and-set spinlock for tiny, almost-always-uncontended
/// critical sections on hot paths (e.g. a per-thread aggregation shard's
/// frame buffer: the owning thread is effectively the only locker, and
/// hold times are a few dozen nanoseconds). The uncontended lock/unlock
/// pair is one CAS plus one release store — roughly half the cost of the
/// futex-based `std::sync::Mutex` round trip. Do NOT use it where a
/// holder can block or the lock is regularly contended: waiters burn CPU.
#[derive(Default)]
pub struct SpinMutex<T: ?Sized> {
    locked: std::sync::atomic::AtomicBool,
    value: std::cell::UnsafeCell<T>,
}

// SAFETY: the lock provides the needed mutual exclusion; like `Mutex`,
// sharing requires the inner value to be `Send` (the guard hands out
// `&mut T` across threads).
unsafe impl<T: ?Sized + Send> Send for SpinMutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for SpinMutex<T> {}

impl<T> SpinMutex<T> {
    /// Wrap `value` in a spinlock.
    pub const fn new(value: T) -> Self {
        SpinMutex {
            locked: std::sync::atomic::AtomicBool::new(false),
            value: std::cell::UnsafeCell::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

impl<T: ?Sized> SpinMutex<T> {
    /// Acquire the lock, spinning until it is free.
    #[inline]
    pub fn lock(&self) -> SpinGuard<'_, T> {
        use std::sync::atomic::Ordering;
        loop {
            if self
                .locked
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return SpinGuard { lock: self };
            }
            // Test-and-test-and-set: spin on a plain load so waiting
            // threads don't bounce the cache line with failed CASes.
            while self.locked.load(Ordering::Relaxed) {
                std::hint::spin_loop();
            }
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for SpinMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpinMutex").finish_non_exhaustive()
    }
}

/// Guard returned by [`SpinMutex::lock`]; releases on drop.
pub struct SpinGuard<'a, T: ?Sized> {
    lock: &'a SpinMutex<T>,
}

impl<T: ?Sized> std::ops::Deref for SpinGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: the guard holds the lock.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T: ?Sized> std::ops::DerefMut for SpinGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard holds the lock exclusively.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T: ?Sized> Drop for SpinGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        self.lock
            .locked
            .store(false, std::sync::atomic::Ordering::Release);
    }
}

/// An unbounded MPMC FIFO queue (the AM-inbox shape of
/// `crossbeam::queue::SegQueue`). A mutexed `VecDeque` is plenty for the
/// fabric's contention profile: at most one producer rank pushing while
/// the owner rank's progress engine pops.
#[derive(Debug)]
pub struct SegQueue<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> Default for SegQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SegQueue<T> {
    /// An empty queue.
    pub const fn new() -> Self {
        SegQueue {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Enqueue at the tail.
    pub fn push(&self, value: T) {
        self.inner.lock().push_back(value);
    }

    /// Dequeue from the head.
    pub fn pop(&self) -> Option<T> {
        self.inner.lock().pop_front()
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Take every queued item in one critical section, in FIFO order.
    ///
    /// Unlike a `pop()` loop interleaved with `len()` calls, the snapshot
    /// is consistent: items pushed concurrently are either all-in or
    /// all-after, never observed half-drained. Tests asserting on inbox
    /// contents use this to avoid racy observations.
    ///
    /// The output is reserved to the exact queue length inside the
    /// critical section, so draining a large inbox is one allocation and
    /// one pass — no grow-and-move reallocation, and (unlike a
    /// `VecDeque → Vec` conversion) no in-place rotation of a wrapped
    /// ring buffer.
    pub fn drain(&self) -> Vec<T> {
        let mut q = self.inner.lock();
        let mut out = Vec::with_capacity(q.len());
        out.extend(q.drain(..));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_lock_and_try_lock() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(m.try_lock().map(|g| *g), Some(2));
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn spin_mutex_excludes_and_releases() {
        let m = SpinMutex::new(0u64);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
        assert_eq!(m.into_inner(), 1);

        let shared = Arc::new(SpinMutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = shared.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *s.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*shared.lock(), 4000);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1, *r2);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn segqueue_fifo_and_len() {
        let q = SegQueue::new();
        assert!(q.is_empty());
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn segqueue_drain_takes_all_fifo() {
        let q = SegQueue::new();
        for i in 0..5 {
            q.push(i);
        }
        assert_eq!(q.drain(), vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
        assert_eq!(q.drain(), Vec::<i32>::new());
        q.push(9);
        assert_eq!(q.drain(), vec![9]);
    }

    #[test]
    fn segqueue_concurrent_producers() {
        let q = Arc::new(SegQueue::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        q.push(t * 100 + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut got = vec![];
        while let Some(v) = q.pop() {
            got.push(v);
        }
        got.sort_unstable();
        assert_eq!(got, (0..400).collect::<Vec<_>>());
    }
}
