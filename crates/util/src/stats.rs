//! Small statistics helpers for benchmark harnesses.

/// Summary statistics over a set of f64 samples.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Median (of the sorted samples).
    pub median: f64,
}

impl Summary {
    /// Compute summary statistics of `samples`. Returns `None` when empty.
    pub fn of(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        };
        Some(Summary {
            n,
            min: sorted[0],
            max: sorted[n - 1],
            mean,
            stddev: var.sqrt(),
            median,
        })
    }
}

/// Geometric mean of strictly positive samples; `None` if empty or any
/// sample is non-positive.
pub fn geomean(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() || samples.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let log_sum: f64 = samples.iter().map(|x| x.ln()).sum();
    Some((log_sum / samples.len() as f64).exp())
}

/// Linear least-squares fit `y = a + b*x`; returns `(a, b)`.
/// Returns `None` with fewer than two points or a degenerate x-range.
pub fn linfit(xs: &[f64], ys: &[f64]) -> Option<(f64, f64)> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    Some((a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_simple_set() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.n, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::of(&[7.5]).unwrap();
        assert_eq!(s.min, 7.5);
        assert_eq!(s.max, 7.5);
        assert_eq!(s.median, 7.5);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn geomean_basic() {
        let g = geomean(&[1.0, 100.0]).unwrap();
        assert!((g - 10.0).abs() < 1e-9);
        assert!(geomean(&[]).is_none());
        assert!(geomean(&[1.0, 0.0]).is_none());
    }

    #[test]
    fn linfit_recovers_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 3.0, 5.0, 7.0];
        let (a, b) = linfit(&xs, &ys).unwrap();
        assert!((a - 1.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
    }

    #[test]
    fn linfit_degenerate_is_none() {
        assert!(linfit(&[1.0, 1.0], &[2.0, 3.0]).is_none());
        assert!(linfit(&[1.0], &[2.0]).is_none());
    }
}
