//! Unified `RUPCXX_*` environment-variable parsing.
//!
//! Every subsystem toggle (`RUPCXX_TRACE`, `RUPCXX_FAULTS`, `RUPCXX_AGG`,
//! `RUPCXX_CHECK`, …) goes through [`parse_env`]: the subsystem supplies a
//! pure `&str -> Result<Option<T>, String>` parser, and this module owns
//! the policy — an unset variable disables the feature, a well-formed
//! value configures it, and a malformed value *aborts with a clear error*
//! instead of being silently ignored (a typo in a fault plan or checker
//! mode must never turn into an unchecked run that looks checked).

/// Read and parse environment variable `name`.
///
/// * unset → `None` (feature off);
/// * `parse(value)` returning `Ok(None)` → `None` (explicitly off);
/// * `Ok(Some(cfg))` → `Some(cfg)`;
/// * `Err(why)` → process abort naming the variable, the offending
///   value, the reason, and the expected `syntax`.
pub fn parse_env<T>(
    name: &str,
    syntax: &str,
    parse: impl FnOnce(&str) -> Result<Option<T>, String>,
) -> Option<T> {
    let raw = std::env::var(name).ok()?;
    match parse(&raw) {
        Ok(cfg) => cfg,
        Err(why) => invalid(name, &raw, &why, syntax),
    }
}

/// Abort with the canonical malformed-variable message. Public so
/// subsystems with auxiliary variables (e.g. `RUPCXX_TRACE_BUF`) can
/// report in the same format.
pub fn invalid(name: &str, raw: &str, why: &str, syntax: &str) -> ! {
    panic!("invalid {name}={raw:?}: {why} (expected {syntax})");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_flag(raw: &str) -> Result<Option<bool>, String> {
        match raw {
            "" | "off" => Ok(None),
            "on" => Ok(Some(true)),
            other => Err(format!("unknown value {other:?}")),
        }
    }

    #[test]
    fn unset_is_off() {
        assert_eq!(
            parse_env("RUPCXX_TEST_UNSET_VAR", "on|off", parse_flag),
            None
        );
    }

    #[test]
    fn set_values_parse() {
        std::env::set_var("RUPCXX_TEST_ENV_ON", "on");
        assert_eq!(
            parse_env("RUPCXX_TEST_ENV_ON", "on|off", parse_flag),
            Some(true)
        );
        std::env::set_var("RUPCXX_TEST_ENV_OFF", "off");
        assert_eq!(parse_env("RUPCXX_TEST_ENV_OFF", "on|off", parse_flag), None);
    }

    #[test]
    #[should_panic(expected = "invalid RUPCXX_TEST_ENV_BAD")]
    fn malformed_value_aborts() {
        std::env::set_var("RUPCXX_TEST_ENV_BAD", "bogus");
        let _ = parse_env("RUPCXX_TEST_ENV_BAD", "on|off", parse_flag);
    }
}
