//! A small fixed-size thread pool with dynamic (work-queue) scheduling.
//!
//! The paper's Embree port uses "OpenMP with dynamic scheduling to balance
//! the evaluation of the tiles" *within* each UPC++ rank (§V-D). This pool is
//! the Rust stand-in: a shared index counter hands out work items to worker
//! threads on demand, which is exactly `schedule(dynamic)` behaviour.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A fixed-size pool of worker threads executing dynamically scheduled
/// parallel-for loops.
pub struct ThreadPool {
    nthreads: usize,
}

impl ThreadPool {
    /// Create a pool that will use `nthreads` workers per parallel region
    /// (including the calling thread). `nthreads == 0` is clamped to 1.
    pub fn new(nthreads: usize) -> Self {
        ThreadPool {
            nthreads: nthreads.max(1),
        }
    }

    /// Number of workers used per parallel region.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Execute `body(i)` for every `i in 0..n`, distributing iterations
    /// dynamically over the pool's workers. Blocks until all iterations are
    /// complete. `body` runs concurrently from several threads.
    pub fn parallel_for<F>(&self, n: usize, body: F)
    where
        F: Fn(usize) + Sync,
    {
        if n == 0 {
            return;
        }
        if self.nthreads == 1 || n == 1 {
            for i in 0..n {
                body(i);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        let nworkers = self.nthreads.min(n);
        std::thread::scope(|scope| {
            let worker = || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                body(i);
            };
            for _ in 1..nworkers {
                scope.spawn(worker);
            }
            worker();
        });
    }

    /// Execute `body(i)` for every `i in 0..n`, in chunks of `chunk`
    /// iterations per grab (reduces counter contention for tiny bodies).
    pub fn parallel_for_chunked<F>(&self, n: usize, chunk: usize, body: F)
    where
        F: Fn(usize) + Sync,
    {
        let chunk = chunk.max(1);
        let nchunks = n.div_ceil(chunk);
        self.parallel_for(nchunks, |c| {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            for i in lo..hi {
                body(i);
            }
        });
    }
}

/// A shared atomic work counter for cross-rank dynamic scheduling
/// experiments (work stealing over shared memory).
#[derive(Clone, Debug, Default)]
pub struct WorkCounter(Arc<AtomicUsize>);

impl WorkCounter {
    /// New counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Claim the next work index; returns `None` once `limit` is reached.
    pub fn claim(&self, limit: usize) -> Option<usize> {
        let i = self.0.fetch_add(1, Ordering::Relaxed);
        (i < limit).then_some(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_for_visits_every_index_once() {
        let pool = ThreadPool::new(4);
        let n = 1000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        pool.parallel_for(n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn parallel_for_zero_and_one() {
        let pool = ThreadPool::new(3);
        pool.parallel_for(0, |_| panic!("must not run"));
        let ran = AtomicUsize::new(0);
        pool.parallel_for(1, |_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn chunked_covers_all() {
        let pool = ThreadPool::new(2);
        let n = 103;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        pool.parallel_for_chunked(n, 10, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn work_counter_hands_out_each_index_once() {
        let c = WorkCounter::new();
        let mut got = vec![];
        while let Some(i) = c.claim(5) {
            got.push(i);
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert!(c.claim(5).is_none());
    }

    #[test]
    fn single_thread_pool_is_sequential() {
        let pool = ThreadPool::new(1);
        let order = std::sync::Mutex::new(Vec::new());
        // With one worker the body runs on the calling thread in order.
        pool.parallel_for(5, |i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }
}
