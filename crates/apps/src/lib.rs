//! `rupcxx-apps` — the five benchmarks of the UPC++ paper (§V, Table III),
//! implemented as library code so that examples, integration tests and the
//! `repro-*` harnesses all drive the same kernels.
//!
//! | benchmark | computation | communication | paper baseline |
//! |---|---|---|---|
//! | [`gups`] | bit-xor updates | fine-grained random remote RMW | UPC (direct path) |
//! | [`stencil`] | 7-point 3-D Jacobi | bulk ghost-zone copies | Titanium (optimized indexing) |
//! | [`sample_sort`] | local quicksort | irregular one-sided redistribution | UPC |
//! | [`ray`] (MiniRay) | Monte-Carlo path tracing | single gather + reduction | — (strong scaling) |
//! | [`lulesh`] (MiniLulesh) | Lagrange leapfrog hydro | 26-neighbour ghost exchange | MPI (two-sided) |

pub mod gups;
pub mod lulesh;
pub mod ray;
pub mod sample_sort;
pub mod stencil;
