//! Random Access (GUPS) — paper §V-A.
//!
//! Measures the throughput of random xor-updates to a globally shared
//! table (giga-updates per second). The update loop is the paper's:
//!
//! ```c
//! for (i = MYTHREAD; i < NUPDATE; i += THREADS) {
//!     ran = (ran << 1) ^ ((int64_t)ran < 0 ? POLY : 0);
//!     Table[ran & (TableSize-1)] ^= ran;
//! }
//! ```
//!
//! Two code paths reproduce the paper's UPC-vs-UPC++ comparison:
//! * [`Variant::Upcxx`] — every access goes through the `SharedArray`
//!   proxy (runtime block-cyclic layout computation + bounds check);
//! * [`Variant::UpcDirect`] — the pre-resolved direct path modeling the
//!   Berkeley UPC compiler's optimized shared-array access.
//!
//! Updates use the fabric's atomic xor, so re-applying the identical
//! update sequence restores the table — the built-in verification.

use rupcxx::prelude::*;
use rupcxx::UpcDirectTable;
use rupcxx_util::{GupsRng, Timer};

/// Which access path performs the updates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// `SharedArray` proxy path (the UPC++ curve).
    Upcxx,
    /// `SharedArray` proxy path with per-destination aggregation: updates
    /// are non-fetching xors coalesced into batches (requires the job to
    /// be launched with `RuntimeConfig::with_agg` / `RUPCXX_AGG` for any
    /// batching to occur; falls through to per-op traffic otherwise).
    /// Xor is commutative and associative, so the final table is
    /// bit-for-bit identical to the per-op variants.
    UpcxxAgg,
    /// Pre-resolved direct path (the UPC curve).
    UpcDirect,
}

/// Benchmark parameters.
#[derive(Clone, Copy, Debug)]
pub struct GupsConfig {
    /// Total table words; must be a power of two (as in HPCC).
    pub table_size: usize,
    /// Updates performed per rank.
    pub updates_per_rank: usize,
    /// Access path.
    pub variant: Variant,
    /// Run the inverse pass and check the table returned to its initial
    /// state (doubles the runtime).
    pub verify: bool,
}

/// Result of one GUPS run (per rank; aggregate at rank 0).
#[derive(Clone, Copy, Debug)]
pub struct GupsResult {
    /// Wall seconds of the update phase on this rank.
    pub seconds: f64,
    /// Updates this rank performed.
    pub updates: usize,
    /// Aggregate giga-updates/s over all ranks (valid on every rank).
    pub gups: f64,
    /// Whether verification passed (true when `verify` was off).
    pub verified: bool,
    /// Wrapping sum of the whole table after the update phase (valid on
    /// every rank). Order-independent, so the aggregated and per-op
    /// variants must produce the same value for the same parameters.
    pub checksum: u64,
}

/// Run GUPS collectively. Every rank must call with identical `cfg`.
pub fn run(ctx: &Ctx, cfg: &GupsConfig) -> GupsResult {
    assert!(cfg.table_size.is_power_of_two(), "table size must be 2^k");
    let table = SharedArray::<u64>::new(ctx, cfg.table_size, 1);
    // Table[i] = i initially (HPCC convention). Owner-computes through
    // the privatized local slice — no per-element fabric traffic.
    for (slot, i) in table
        .local_slice_mut(ctx)
        .iter_mut()
        .zip(table.my_indices(ctx))
    {
        *slot = i as u64;
    }
    let direct = UpcDirectTable::new(ctx, &table);
    if cfg.variant == Variant::UpcDirect {
        assert!(
            direct.is_some(),
            "UpcDirect requires power-of-two rank count"
        );
    }
    ctx.barrier();

    let t = Timer::start();
    run_updates(ctx, cfg, &table, direct.as_ref());
    ctx.barrier();
    let seconds = t.seconds();

    let max_secs = ctx.allreduce(seconds, f64::max);
    let total_updates = (cfg.updates_per_rank * ctx.ranks()) as f64;
    let gups = total_updates / max_secs / 1e9;

    // Whole-table checksum before the (state-restoring) verify pass;
    // each rank sums its own portion locally.
    let mut local_sum = 0u64;
    for &v in table.local_slice(ctx) {
        local_sum = local_sum.wrapping_add(v);
    }
    let checksum = ctx.allreduce(local_sum, u64::wrapping_add);

    let mut verified = true;
    if cfg.verify {
        // Xor is an involution: the same update stream restores Table[i]=i.
        run_updates(ctx, cfg, &table, direct.as_ref());
        ctx.barrier();
        let mut ok = true;
        for (&v, i) in table.local_slice(ctx).iter().zip(table.my_indices(ctx)) {
            if v != i as u64 {
                ok = false;
                break;
            }
        }
        verified = ctx.allreduce(u64::from(ok), |a, b| a & b) == 1;
    }
    table.destroy(ctx);
    GupsResult {
        seconds,
        updates: cfg.updates_per_rank,
        gups,
        verified,
        checksum,
    }
}

fn run_updates(
    ctx: &Ctx,
    cfg: &GupsConfig,
    table: &SharedArray<u64>,
    direct: Option<&UpcDirectTable>,
) {
    let mask = cfg.table_size - 1;
    // Each rank starts at its offset of the global HPCC stream, exactly
    // like the paper's `for (i = MYTHREAD; ...; i += THREADS)` but with
    // contiguous per-rank chunks (same statistics, cheaper jump-ahead).
    let start = (ctx.rank() * cfg.updates_per_rank) as i64;
    let mut rng = GupsRng::starting_at(start);
    match cfg.variant {
        Variant::Upcxx => {
            for _ in 0..cfg.updates_per_rank {
                let ran = rng.next_u64();
                table.xor(ctx, ran as usize & mask, ran);
            }
        }
        Variant::UpcxxAgg => {
            for _ in 0..cfg.updates_per_rank {
                let ran = rng.next_u64();
                table.xor_agg(ctx, ran as usize & mask, ran);
            }
            // Completion fence: every buffered update applied at its
            // target before the timed phase ends.
            ctx.agg_fence();
        }
        Variant::UpcDirect => {
            let d = direct.expect("checked in run()");
            for _ in 0..cfg.updates_per_rank {
                let ran = rng.next_u64();
                d.xor(ctx, ran as usize & mask, ran);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupcxx_runtime::{spmd, RuntimeConfig};

    fn cfg_rt(n: usize) -> RuntimeConfig {
        RuntimeConfig::new(n).segment_mib(1)
    }

    #[test]
    fn gups_verifies_upcxx_path() {
        let out = spmd(cfg_rt(4), |ctx| {
            run(
                ctx,
                &GupsConfig {
                    table_size: 1 << 12,
                    updates_per_rank: 2000,
                    variant: Variant::Upcxx,
                    verify: true,
                },
            )
        });
        assert!(out.iter().all(|r| r.verified));
        assert!(out.iter().all(|r| r.gups > 0.0));
    }

    #[test]
    fn gups_verifies_direct_path() {
        let out = spmd(cfg_rt(2), |ctx| {
            run(
                ctx,
                &GupsConfig {
                    table_size: 1 << 10,
                    updates_per_rank: 1000,
                    variant: Variant::UpcDirect,
                    verify: true,
                },
            )
        });
        assert!(out.iter().all(|r| r.verified));
    }

    #[test]
    fn gups_agg_variant_matches_plain_checksum() {
        use rupcxx_net::AggConfig;
        let cfg = GupsConfig {
            table_size: 1 << 10,
            updates_per_rank: 1500,
            variant: Variant::Upcxx,
            verify: true,
        };
        let plain = spmd(cfg_rt(2), move |ctx| run(ctx, &cfg));
        let agg_cfg = GupsConfig {
            variant: Variant::UpcxxAgg,
            ..cfg
        };
        let agg = spmd(cfg_rt(2).with_agg(AggConfig::new()), move |ctx| {
            run(ctx, &agg_cfg)
        });
        assert!(agg.iter().all(|r| r.verified));
        assert_eq!(plain[0].checksum, agg[0].checksum);
    }

    #[test]
    fn single_rank_gups() {
        let out = spmd(cfg_rt(1), |ctx| {
            run(
                ctx,
                &GupsConfig {
                    table_size: 1 << 10,
                    updates_per_rank: 500,
                    variant: Variant::Upcxx,
                    verify: true,
                },
            )
        });
        assert!(out[0].verified);
        assert_eq!(out[0].updates, 500);
    }

    #[test]
    #[should_panic(expected = "2^k")]
    fn non_pow2_table_rejected() {
        spmd(cfg_rt(1), |ctx| {
            run(
                ctx,
                &GupsConfig {
                    table_size: 1000,
                    updates_per_rank: 1,
                    variant: Variant::Upcxx,
                    verify: false,
                },
            );
        });
    }
}
