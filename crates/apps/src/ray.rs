//! MiniRay — the distributed ray tracer of paper §V-D (Embree substitute).
//!
//! The paper extends Embree's sample renderer (Monte-Carlo path tracing)
//! to distributed memory: the image plane is divided into tiles, tiles are
//! distributed **statically and cyclically** over UPC++ ranks, each rank
//! balances its tiles dynamically over local threads (OpenMP there, a
//! work-queue thread pool here), and a final gather/sum-reduction combines
//! the partial images. Scene geometry is replicated on every rank.
//!
//! Embree's vectorized intersection kernels are replaced by a from-scratch
//! path tracer (spheres + ground plane, diffuse/mirror/emissive materials);
//! Fig. 7 measures the *scaling* of an embarrassingly parallel renderer,
//! which is preserved exactly (see DESIGN.md substitutions).
//!
//! Determinism: every pixel's sample stream is seeded by pixel index and
//! sample number only, so the rendered image is bit-identical for any rank
//! count — the cross-rank correctness check.

use rupcxx::prelude::*;
use rupcxx_util::{SplitMix64, ThreadPool, Timer};

/// A 3-component vector.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// Construct.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }
    /// Zero vector.
    pub const fn zero() -> Self {
        Vec3::new(0.0, 0.0, 0.0)
    }
    /// Dot product.
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }
    /// Euclidean norm.
    pub fn len(self) -> f64 {
        self.dot(self).sqrt()
    }
    /// Unit vector.
    pub fn norm(self) -> Vec3 {
        self * (1.0 / self.len())
    }
    /// Componentwise product.
    pub fn hadamard(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x * o.x, self.y * o.y, self.z * o.z)
    }
    /// Cross product.
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }
}

impl std::ops::Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}
impl std::ops::Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}
impl std::ops::Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, k: f64) -> Vec3 {
        Vec3::new(self.x * k, self.y * k, self.z * k)
    }
}

/// Surface material.
#[derive(Clone, Copy, Debug)]
pub struct Material {
    /// Diffuse albedo.
    pub albedo: Vec3,
    /// Emitted radiance.
    pub emission: Vec3,
    /// Probability of a mirror bounce (0 = pure diffuse).
    pub mirror: f64,
}

/// A sphere primitive.
#[derive(Clone, Copy, Debug)]
pub struct Sphere {
    /// Center.
    pub center: Vec3,
    /// Radius.
    pub radius: f64,
    /// Material.
    pub material: Material,
}

/// The replicated scene: ground plane at y=0 plus spheres plus sky light.
#[derive(Clone, Debug)]
pub struct Scene {
    /// Spheres.
    pub spheres: Vec<Sphere>,
    /// Ground material (checkerboard darkens alternate squares).
    pub ground: Material,
    /// Sky radiance (hit when a ray escapes).
    pub sky: Vec3,
}

impl Scene {
    /// The standard benchmark scene: a grid of mixed diffuse/mirror
    /// spheres and one emissive sphere, deterministic for a given seed.
    pub fn benchmark(nspheres: usize, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut spheres = Vec::with_capacity(nspheres + 1);
        // Area light.
        spheres.push(Sphere {
            center: Vec3::new(0.0, 6.0, -2.0),
            radius: 2.0,
            material: Material {
                albedo: Vec3::zero(),
                emission: Vec3::new(8.0, 7.5, 7.0),
                mirror: 0.0,
            },
        });
        for i in 0..nspheres {
            let gx = (i % 4) as f64 - 1.5;
            let gz = (i / 4) as f64;
            let r = 0.35 + 0.25 * rng.next_f64();
            spheres.push(Sphere {
                center: Vec3::new(gx * 1.6 + 0.4 * (rng.next_f64() - 0.5), r, -1.0 - gz * 1.4),
                radius: r,
                material: Material {
                    albedo: Vec3::new(
                        0.3 + 0.6 * rng.next_f64(),
                        0.3 + 0.6 * rng.next_f64(),
                        0.3 + 0.6 * rng.next_f64(),
                    ),
                    emission: Vec3::zero(),
                    mirror: if i % 3 == 0 { 0.85 } else { 0.0 },
                },
            });
        }
        Scene {
            spheres,
            ground: Material {
                albedo: Vec3::new(0.65, 0.65, 0.6),
                emission: Vec3::zero(),
                mirror: 0.0,
            },
            sky: Vec3::new(0.35, 0.45, 0.6),
        }
    }

    fn hit(&self, o: Vec3, d: Vec3) -> Option<(f64, Vec3, Material)> {
        let mut best: Option<(f64, Vec3, Material)> = None;
        let mut closest = f64::INFINITY;
        // Ground plane y = 0.
        if d.y < -1e-9 {
            let t = -o.y / d.y;
            if t > 1e-6 && t < closest {
                closest = t;
                let p = o + d * t;
                let checker = ((p.x.floor() + p.z.floor()) as i64).rem_euclid(2) == 0;
                let mut m = self.ground;
                if checker {
                    m.albedo = m.albedo * 0.45;
                }
                best = Some((t, Vec3::new(0.0, 1.0, 0.0), m));
            }
        }
        for s in &self.spheres {
            let oc = o - s.center;
            let b = oc.dot(d);
            let c = oc.dot(oc) - s.radius * s.radius;
            let disc = b * b - c;
            if disc <= 0.0 {
                continue;
            }
            let sq = disc.sqrt();
            for t in [-b - sq, -b + sq] {
                if t > 1e-6 && t < closest {
                    closest = t;
                    let n = ((o + d * t) - s.center).norm();
                    best = Some((t, n, s.material));
                    break;
                }
            }
        }
        best
    }
}

fn cosine_hemisphere(n: Vec3, rng: &mut SplitMix64) -> Vec3 {
    let u1 = rng.next_f64();
    let u2 = rng.next_f64();
    let r = u1.sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    let w = n;
    let a = if w.x.abs() > 0.9 {
        Vec3::new(0.0, 1.0, 0.0)
    } else {
        Vec3::new(1.0, 0.0, 0.0)
    };
    let u = w.cross(a).norm();
    let v = w.cross(u);
    (u * (r * theta.cos()) + v * (r * theta.sin()) + w * (1.0 - u1).sqrt()).norm()
}

/// Trace one path: Monte-Carlo integration of the rendering equation with
/// multi-bounce diffuse + mirror reflections (the paper's sample renderer
/// feature set, simplified).
pub fn trace(scene: &Scene, mut o: Vec3, mut d: Vec3, rng: &mut SplitMix64) -> Vec3 {
    let mut radiance = Vec3::zero();
    let mut throughput = Vec3::new(1.0, 1.0, 1.0);
    for bounce in 0..6 {
        match scene.hit(o, d) {
            None => {
                radiance = radiance + throughput.hadamard(scene.sky);
                break;
            }
            Some((t, n, m)) => {
                radiance = radiance + throughput.hadamard(m.emission);
                let p = o + d * t;
                if rng.next_f64() < m.mirror {
                    // Mirror bounce.
                    d = d - n * (2.0 * d.dot(n));
                } else {
                    throughput = throughput.hadamard(m.albedo);
                    d = cosine_hemisphere(n, rng);
                }
                o = p + n * 1e-6;
                // Russian roulette after a few bounces.
                if bounce >= 3 {
                    let pcont = throughput.x.max(throughput.y).max(throughput.z).min(0.95);
                    if rng.next_f64() > pcont {
                        break;
                    }
                    throughput = throughput * (1.0 / pcont);
                }
            }
        }
    }
    radiance
}

/// Tile scheduling policy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Schedule {
    /// Static cyclic distribution over ranks (the paper's §V-D choice).
    #[default]
    StaticCyclic,
    /// Global dynamic load balancing through a PGAS work queue: tiles are
    /// claimed with remote atomic fetch-add on a shared counter — the
    /// "distributed work queues" the paper names as future work ("Others
    /// have found PGAS a natural paradigm for implementing such schemes").
    GlobalQueue,
}

/// Renderer configuration.
#[derive(Clone, Debug)]
pub struct RayConfig {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Samples per pixel.
    pub spp: usize,
    /// Square tile edge in pixels.
    pub tile: usize,
    /// Worker threads per rank (the paper's OpenMP threads).
    pub threads_per_rank: usize,
    /// Scene sphere count.
    pub nspheres: usize,
    /// Scene/sampling seed.
    pub seed: u64,
}

/// Result of a distributed render.
#[derive(Clone, Debug)]
pub struct RayResult {
    /// Wall seconds (max over ranks).
    pub seconds: f64,
    /// Sum over all channels of the final image — the determinism check
    /// (identical for every rank count). Valid on every rank.
    pub checksum: f64,
    /// The final image (RGB f64 triples, row-major), only at rank 0.
    pub image: Option<Vec<f64>>,
    /// Tiles rendered by this rank.
    pub my_tiles: usize,
}

fn render_pixel(scene: &Scene, cfg: &RayConfig, px: usize, py: usize) -> Vec3 {
    let w = cfg.width as f64;
    let h = cfg.height as f64;
    let cam_pos = Vec3::new(0.0, 1.8, 3.5);
    let look = Vec3::new(0.0, 0.8, -1.5);
    let fwd = (look - cam_pos).norm();
    let right = fwd.cross(Vec3::new(0.0, 1.0, 0.0)).norm();
    let up = right.cross(fwd);
    let fov = 0.9;
    let mut acc = Vec3::zero();
    for s in 0..cfg.spp {
        // Pixel-indexed stream: identical for any rank/tile decomposition.
        let mut rng = SplitMix64::new(
            cfg.seed
                ^ ((py * cfg.width + px) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (s as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
        );
        let jx = rng.next_f64();
        let jy = rng.next_f64();
        let u = ((px as f64 + jx) / w - 0.5) * fov * (w / h);
        let v = (0.5 - (py as f64 + jy) / h) * fov;
        let dir = (fwd + right * u + up * v).norm();
        acc = acc + trace(scene, cam_pos, dir, &mut rng);
    }
    acc * (1.0 / cfg.spp as f64)
}

/// Run the distributed render collectively with the paper's static
/// cyclic tile distribution.
pub fn run(ctx: &Ctx, cfg: &RayConfig) -> RayResult {
    run_scheduled(ctx, cfg, Schedule::StaticCyclic)
}

/// Run the distributed render collectively with an explicit scheduling
/// policy.
pub fn run_scheduled(ctx: &Ctx, cfg: &RayConfig, schedule: Schedule) -> RayResult {
    let scene = Scene::benchmark(cfg.nspheres, cfg.seed);
    let tiles_x = cfg.width.div_ceil(cfg.tile);
    let tiles_y = cfg.height.div_ceil(cfg.tile);
    let ntiles = tiles_x * tiles_y;
    let me = ctx.rank();
    let n = ctx.ranks();

    // The global work counter for dynamic scheduling lives in rank 0's
    // segment; tiles are claimed with a remote atomic fetch-add.
    let queue: Option<GlobalPtr<u64>> = match schedule {
        Schedule::StaticCyclic => None,
        Schedule::GlobalQueue => {
            let p = if me == 0 {
                let p = allocate::<u64>(ctx, 0, 1).expect("work counter");
                p.rput(ctx, 0);
                ctx.broadcast(0, p)
            } else {
                ctx.broadcast(0, GlobalPtr::from_addr(GlobalAddr::new(0, 0)))
            };
            Some(p)
        }
    };

    ctx.barrier();
    let t = Timer::start();
    let partial = rupcxx_util::sync::Mutex::new(vec![0.0f64; cfg.width * cfg.height * 3]);
    let tiles_done = std::sync::atomic::AtomicUsize::new(0);
    let pool = ThreadPool::new(cfg.threads_per_rank);

    let render_tile = |tile: usize| {
        let tx = (tile % tiles_x) * cfg.tile;
        let ty = (tile / tiles_x) * cfg.tile;
        let x1 = (tx + cfg.tile).min(cfg.width);
        let y1 = (ty + cfg.tile).min(cfg.height);
        let mut buf = Vec::with_capacity((x1 - tx) * (y1 - ty) * 3);
        for py in ty..y1 {
            for px in tx..x1 {
                let c = render_pixel(&scene, cfg, px, py);
                buf.extend_from_slice(&[c.x, c.y, c.z]);
            }
        }
        // Commit the tile under the lock (cheap relative to tracing).
        let mut img = partial.lock();
        let mut it = buf.into_iter();
        for py in ty..y1 {
            for px in tx..x1 {
                let base = (py * cfg.width + px) * 3;
                img[base] = it.next().expect("tile buffer");
                img[base + 1] = it.next().expect("tile buffer");
                img[base + 2] = it.next().expect("tile buffer");
            }
        }
        tiles_done.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    };

    match schedule {
        Schedule::StaticCyclic => {
            // Static cyclic distribution over ranks, dynamic over local
            // threads (the paper's §V-D structure).
            let my_tiles: Vec<usize> = (me..ntiles).step_by(n).collect();
            pool.parallel_for(my_tiles.len(), |ti| render_tile(my_tiles[ti]));
        }
        Schedule::GlobalQueue => {
            // Every local worker claims tiles straight off the global
            // PGAS counter until the image is exhausted.
            let counter = queue.expect("allocated above");
            pool.parallel_for(cfg.threads_per_rank.max(1), |_| loop {
                let tile = counter.radd(ctx, 1) as usize;
                if tile >= ntiles {
                    break;
                }
                render_tile(tile);
            });
        }
    }
    let partial = partial.into_inner();
    let my_tiles = tiles_done.into_inner();

    // Final gather: sum-reduction of the partial images at rank 0
    // (the paper's compromise instead of a tile gatherv).
    let gathered = ctx.gatherv(0, rupcxx_net::pod::pack_slice(&partial));
    let image = gathered.map(|parts| {
        let mut sum = vec![0.0f64; cfg.width * cfg.height * 3];
        for part in parts {
            for (dst, v) in sum
                .iter_mut()
                .zip(rupcxx_net::pod::unpack_slice::<f64>(&part))
            {
                *dst += v;
            }
        }
        sum
    });
    let seconds = ctx.allreduce(t.seconds(), f64::max);
    let checksum_root = image.as_ref().map_or(0.0, |img| img.iter().sum());
    let checksum = ctx.broadcast(0, checksum_root);
    ctx.barrier();
    if let Some(p) = queue {
        if me == 0 {
            deallocate(ctx, p);
        }
    }

    RayResult {
        seconds,
        checksum,
        image,
        my_tiles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupcxx_runtime::{spmd, RuntimeConfig};

    fn small_cfg() -> RayConfig {
        RayConfig {
            width: 40,
            height: 30,
            spp: 2,
            tile: 8,
            threads_per_rank: 1,
            nspheres: 6,
            seed: 11,
        }
    }

    fn rt(n: usize) -> RuntimeConfig {
        RuntimeConfig::new(n).segment_mib(2)
    }

    #[test]
    fn image_identical_across_rank_counts() {
        let c1 = spmd(rt(1), |ctx| run(ctx, &small_cfg()))[0].checksum;
        let c3 = spmd(rt(3), |ctx| run(ctx, &small_cfg()))[0].checksum;
        let c4 = spmd(rt(4), |ctx| run(ctx, &small_cfg()))[0].checksum;
        assert_eq!(c1, c3, "decomposition must not change the image");
        assert_eq!(c1, c4);
        assert!(c1 > 0.0, "image is not black");
    }

    #[test]
    fn intra_rank_threads_do_not_change_image() {
        let mut cfg = small_cfg();
        let a = spmd(rt(2), {
            let cfg = cfg.clone();
            move |ctx| run(ctx, &cfg)
        })[0]
            .checksum;
        cfg.threads_per_rank = 3;
        let b = spmd(rt(2), move |ctx| run(ctx, &cfg))[0].checksum;
        assert_eq!(a, b);
    }

    #[test]
    fn tiles_partition_the_image() {
        let out = spmd(rt(3), |ctx| run(ctx, &small_cfg()));
        let total: usize = out.iter().map(|r| r.my_tiles).sum();
        // 40x30 with 8px tiles → 5×4 = 20 tiles.
        assert_eq!(total, 20);
        assert!(out[0].image.is_some());
        assert!(out[1].image.is_none());
    }

    #[test]
    fn global_queue_schedule_matches_static_image() {
        // The paper's future-work load balancer must not change the image
        // (per-pixel seeding) and must render every tile exactly once.
        let stat = spmd(rt(2), |ctx| run(ctx, &small_cfg()));
        let dynq = spmd(rt(2), |ctx| {
            run_scheduled(ctx, &small_cfg(), Schedule::GlobalQueue)
        });
        assert_eq!(stat[0].checksum, dynq[0].checksum);
        let total: usize = dynq.iter().map(|r| r.my_tiles).sum();
        assert_eq!(total, 20, "every tile claimed exactly once");
    }

    #[test]
    fn global_queue_single_rank_multithreaded() {
        let mut cfg = small_cfg();
        cfg.threads_per_rank = 3;
        let out = spmd(rt(1), move |ctx| {
            run_scheduled(ctx, &cfg, Schedule::GlobalQueue)
        });
        assert_eq!(out[0].my_tiles, 20);
        assert!(out[0].checksum > 0.0);
    }

    #[test]
    fn sphere_intersection_basics() {
        let scene = Scene {
            spheres: vec![Sphere {
                center: Vec3::new(0.0, 0.0, -5.0),
                radius: 1.0,
                material: Material {
                    albedo: Vec3::new(1.0, 1.0, 1.0),
                    emission: Vec3::zero(),
                    mirror: 0.0,
                },
            }],
            ground: Material {
                albedo: Vec3::zero(),
                emission: Vec3::zero(),
                mirror: 0.0,
            },
            sky: Vec3::zero(),
        };
        let hit = scene.hit(Vec3::new(0.0, 0.0, 0.0), Vec3::new(0.0, 0.0, -1.0));
        let (t, n, _) = hit.expect("ray hits sphere");
        assert!((t - 4.0).abs() < 1e-9);
        assert!((n.z - 1.0).abs() < 1e-9);
        // Miss.
        assert!(scene
            .hit(Vec3::new(0.0, 3.0, 0.0), Vec3::new(0.0, 0.0, -1.0))
            .is_none());
    }

    #[test]
    fn vec3_algebra() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-1.0, 0.5, 2.0);
        assert_eq!(a.dot(b), -1.0 + 1.0 + 6.0);
        assert_eq!((a + b).x, 0.0);
        assert_eq!((a - b).z, 1.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12 && c.dot(b).abs() < 1e-12);
        assert!((Vec3::new(3.0, 4.0, 0.0).len() - 5.0).abs() < 1e-12);
        assert!((Vec3::new(0.0, 0.0, 9.0).norm().z - 1.0).abs() < 1e-12);
    }
}
