//! Stencil — paper §V-B.
//!
//! A 7-point nearest-neighbour Jacobi iteration over a regular 3-D grid
//! distributed in all three dimensions: each rank owns a cubic portion
//! plus one layer of ghost cells. Ghost planes are copied one-sided with
//! the multidimensional array library (`A.constrict(d).copy(B)` — here
//! [`NdArray::copy_ghost_from`]); the local computation is
//!
//! ```text
//! B[i][j][k] = c·A[i][j][k] + A[i±1][j][k] + A[i][j±1][k] + A[i][j][k±1]
//! ```
//!
//! Two compute paths reproduce the paper's Titanium-vs-UPC++ comparison:
//! * [`Variant::Generic`] — point-indexed `NdArray::get`/`set` through the
//!   full library path;
//! * [`Variant::Optimized`] — `LocalGrid` per-dimension indexing with
//!   matching logical/physical stride, the paper's own porting strategy
//!   ("declare the grid arrays unstrided, index one dimension at a time").

use rupcxx::prelude::*;
use rupcxx_ndarray::{pt, LocalGrid, NdArray, Point, RectDomain};
use rupcxx_util::Timer;

/// Compute-path variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Fully generic library indexing (tolerates any view).
    Generic,
    /// Unstrided local accessor with per-dimension indexing (the
    /// Titanium-equivalent fast path).
    Optimized,
}

/// Benchmark parameters.
#[derive(Clone, Copy, Debug)]
pub struct StencilConfig {
    /// Interior points per rank in each dimension (paper: 256).
    pub local_edge: usize,
    /// Process grid (px, py, pz); must multiply to the rank count.
    pub grid: (usize, usize, usize),
    /// Jacobi iterations.
    pub iters: usize,
    /// Compute path.
    pub variant: Variant,
    /// Central coefficient `c`.
    pub c: f64,
}

/// Result of a stencil run.
#[derive(Clone, Copy, Debug)]
pub struct StencilResult {
    /// Wall seconds (max over ranks).
    pub seconds: f64,
    /// Aggregate GFLOP/s (8 flops per point update).
    pub gflops: f64,
    /// Sum of all interior values after the last iteration (global):
    /// the correctness checksum.
    pub checksum: f64,
}

/// Rank → 3-D process-grid coordinates (x fastest).
fn coords(rank: usize, grid: (usize, usize, usize)) -> (usize, usize, usize) {
    let (px, py, _pz) = grid;
    (rank % px, (rank / px) % py, rank / (px * py))
}

fn rank_of(c: (i64, i64, i64), grid: (usize, usize, usize)) -> Option<usize> {
    let (px, py, pz) = (grid.0 as i64, grid.1 as i64, grid.2 as i64);
    if c.0 < 0 || c.0 >= px || c.1 < 0 || c.1 >= py || c.2 < 0 || c.2 >= pz {
        None
    } else {
        Some((c.0 + c.1 * px + c.2 * px * py) as usize)
    }
}

/// The initial condition: a smooth product field, so any indexing bug
/// shows up in the checksum.
fn init_value(p: Point<3>) -> f64 {
    let (x, y, z) = (p[0] as f64, p[1] as f64, p[2] as f64);
    (x * 0.37).sin() + (y * 0.23).cos() + (z * 0.11).sin() * 0.5
}

/// Run the stencil collectively. Every rank passes identical `cfg`.
pub fn run(ctx: &Ctx, cfg: &StencilConfig) -> StencilResult {
    let (px, py, pz) = cfg.grid;
    assert_eq!(px * py * pz, ctx.ranks(), "process grid must cover ranks");
    let e = cfg.local_edge as i64;
    let (cx, cy, cz) = coords(ctx.rank(), cfg.grid);
    let lo = pt![cx as i64 * e, cy as i64 * e, cz as i64 * e];
    let interior = RectDomain::new(lo, lo + pt![e, e, e]);
    let with_ghosts = RectDomain::new(lo - pt![1, 1, 1], lo + pt![e + 1, e + 1, e + 1]);

    // Double buffering: A (read, with ghosts) and B (write).
    let a = NdArray::<f64, 3>::new(ctx, with_ghosts);
    let b = NdArray::<f64, 3>::new(ctx, with_ghosts);
    a.fill(ctx, 0.0);
    b.fill(ctx, 0.0);
    a.restrict(interior).fill_with(ctx, init_value);

    // Directory of both buffers for the one-sided ghost pulls.
    let dir_a: Vec<NdArray<f64, 3>> = ctx.allgatherv(&[a]);
    let dir_b: Vec<NdArray<f64, 3>> = ctx.allgatherv(&[b]);

    // Physical-boundary ghost planes stay zero (Dirichlet condition).
    let neighbors: Vec<(usize, i8, Option<usize>)> = (0..3usize)
        .flat_map(|dim| [(dim, -1i8), (dim, 1i8)])
        .map(|(dim, side)| {
            let mut c = (cx as i64, cy as i64, cz as i64);
            match dim {
                0 => c.0 += side as i64,
                1 => c.1 += side as i64,
                _ => c.2 += side as i64,
            }
            (dim, side, rank_of(c, cfg.grid))
        })
        .collect();

    ctx.barrier();
    let t = Timer::start();
    let mut cur = a;
    let mut nxt = b;
    let mut dir_cur = dir_a.clone();
    let mut dir_nxt = dir_b.clone();
    for _ in 0..cfg.iters {
        // Ghost exchange: pull each face from the neighbour's interior.
        for &(dim, side, nb) in &neighbors {
            if let Some(nb) = nb {
                cur.copy_ghost_from(ctx, &dir_cur[nb], interior, dim, side, 1);
            }
        }
        async_copy_fence(ctx);
        ctx.barrier();
        // Local computation.
        match cfg.variant {
            Variant::Optimized => {
                let src = LocalGrid::new(ctx, &cur);
                let dst = LocalGrid::new(ctx, &nxt);
                for i in lo[0]..lo[0] + e {
                    for j in lo[1]..lo[1] + e {
                        for k in lo[2]..lo[2] + e {
                            let v = cfg.c * src.at(i, j, k)
                                + src.at(i, j, k + 1)
                                + src.at(i, j, k - 1)
                                + src.at(i, j + 1, k)
                                + src.at(i, j - 1, k)
                                + src.at(i + 1, j, k)
                                + src.at(i - 1, j, k);
                            dst.put(i, j, k, v);
                        }
                    }
                }
            }
            Variant::Generic => {
                interior.for_each(|p| {
                    let v = cfg.c * cur.get(ctx, p)
                        + cur.get(ctx, p + Point::unit(2))
                        + cur.get(ctx, p - Point::unit(2))
                        + cur.get(ctx, p + Point::unit(1))
                        + cur.get(ctx, p - Point::unit(1))
                        + cur.get(ctx, p + Point::unit(0))
                        + cur.get(ctx, p - Point::unit(0));
                    nxt.set(ctx, p, v);
                });
            }
        }
        std::mem::swap(&mut cur, &mut nxt);
        std::mem::swap(&mut dir_cur, &mut dir_nxt);
        ctx.barrier();
    }
    let seconds = ctx.allreduce(t.seconds(), f64::max);

    // Checksum over the interior, through the privatized local accessor
    // (the final barrier of the iteration loop is the acquiring sync).
    let g = LocalGrid::new(ctx, &cur);
    let mut local_sum = 0.0;
    interior.for_each(|p| local_sum += g.at(p[0], p[1], p[2]));
    let checksum = ctx.allreduce(local_sum, |x, y| x + y);

    let pts = (cfg.local_edge.pow(3) * ctx.ranks()) as f64;
    let gflops = 8.0 * pts * cfg.iters as f64 / seconds / 1e9;

    ctx.barrier();
    a.destroy(ctx);
    b.destroy(ctx);
    StencilResult {
        seconds,
        gflops,
        checksum,
    }
}

/// Sequential reference implementation over the full global grid
/// (for correctness tests): returns the checksum after `iters` steps.
pub fn serial_reference(global: (usize, usize, usize), iters: usize, c: f64) -> f64 {
    let (nx, ny, nz) = global;
    let idx = move |i: usize, j: usize, k: usize| (i * (ny + 2) + j) * (nz + 2) + k;
    // Grid with a zero ghost shell, indices shifted by +1.
    let mut a = vec![0.0f64; (nx + 2) * (ny + 2) * (nz + 2)];
    let mut b = a.clone();
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                a[idx(i + 1, j + 1, k + 1)] = init_value(pt![i as i64, j as i64, k as i64]);
            }
        }
    }
    for _ in 0..iters {
        for i in 1..=nx {
            for j in 1..=ny {
                for k in 1..=nz {
                    b[idx(i, j, k)] = c * a[idx(i, j, k)]
                        + a[idx(i, j, k + 1)]
                        + a[idx(i, j, k - 1)]
                        + a[idx(i, j + 1, k)]
                        + a[idx(i, j - 1, k)]
                        + a[idx(i + 1, j, k)]
                        + a[idx(i - 1, j, k)];
                }
            }
        }
        std::mem::swap(&mut a, &mut b);
    }
    let mut sum = 0.0;
    for i in 1..=nx {
        for j in 1..=ny {
            for k in 1..=nz {
                sum += a[idx(i, j, k)];
            }
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupcxx_runtime::{spmd, RuntimeConfig};

    fn cfg_rt(n: usize) -> RuntimeConfig {
        RuntimeConfig::new(n).segment_mib(8)
    }

    fn stencil_cfg(edge: usize, grid: (usize, usize, usize), variant: Variant) -> StencilConfig {
        StencilConfig {
            local_edge: edge,
            grid,
            iters: 3,
            variant,
            c: 0.1,
        }
    }

    #[test]
    fn optimized_matches_serial_reference_2x1x1() {
        let reference = serial_reference((16, 8, 8), 3, 0.1);
        let out = spmd(cfg_rt(2), move |ctx| {
            run(ctx, &stencil_cfg(8, (2, 1, 1), Variant::Optimized))
        });
        for r in out {
            assert!(
                (r.checksum - reference).abs() < 1e-9 * reference.abs().max(1.0),
                "{} vs {reference}",
                r.checksum
            );
        }
    }

    #[test]
    fn generic_matches_serial_reference_2x2x1() {
        let reference = serial_reference((8, 8, 4), 3, 0.1);
        let out = spmd(cfg_rt(4), move |ctx| {
            run(ctx, &stencil_cfg(4, (2, 2, 1), Variant::Generic))
        });
        for r in out {
            assert!((r.checksum - reference).abs() < 1e-9 * reference.abs().max(1.0));
        }
    }

    #[test]
    fn variants_agree_exactly() {
        let a = spmd(cfg_rt(8), |ctx| {
            run(ctx, &stencil_cfg(4, (2, 2, 2), Variant::Optimized))
        });
        let b = spmd(cfg_rt(8), |ctx| {
            run(ctx, &stencil_cfg(4, (2, 2, 2), Variant::Generic))
        });
        assert_eq!(a[0].checksum, b[0].checksum, "identical arithmetic order");
        assert!(a[0].gflops > 0.0 && b[0].gflops > 0.0);
    }

    #[test]
    fn single_rank_matches_reference() {
        let reference = serial_reference((6, 6, 6), 3, 0.1);
        let out = spmd(cfg_rt(1), move |ctx| {
            run(ctx, &stencil_cfg(6, (1, 1, 1), Variant::Optimized))
        });
        assert!((out[0].checksum - reference).abs() < 1e-9 * reference.abs().max(1.0));
    }

    #[test]
    fn coords_roundtrip() {
        let grid = (2, 3, 4);
        for r in 0..24 {
            let c = coords(r, grid);
            assert_eq!(rank_of((c.0 as i64, c.1 as i64, c.2 as i64), grid), Some(r));
        }
        assert_eq!(rank_of((-1, 0, 0), grid), None);
        assert_eq!(rank_of((0, 3, 0), grid), None);
    }
}
